"""Unit tests for the unified distance backend dispatch."""

import numpy as np
import pytest

from repro.core.backend import (
    DispatchBackend,
    DistanceBackend,
    ScalarBackend,
    VectorizedBackend,
    backend_for,
    default_backend,
    get_backend,
)
from repro.core.distance import (
    cdf_distance as scalar_cdf_distance,
    one_sided_distance as scalar_one_sided_distance,
    pairwise_similarity_matrix_reference,
)
from repro.core.fastdist import SortedSampleBatch
from repro.core.measurement import (
    NONFINITE_MASK,
    NONFINITE_REJECT,
    MeasurementBatch,
    MetricWindow,
)
from repro.exceptions import InvalidSampleError, ReproError

TOL = 1e-9


def fleet(n=6, seed=0, width=40):
    rng = np.random.default_rng(seed)
    return [rng.normal(100.0, 2.0, width) for _ in range(n)]


class TestBackendRegistry:
    def test_cached_per_policy(self):
        assert get_backend("reject") is get_backend("reject")
        assert get_backend("mask") is not get_backend("reject")
        assert default_backend().nonfinite == NONFINITE_REJECT

    def test_unknown_policy_rejected(self):
        with pytest.raises(ReproError, match="nonfinite policy"):
            get_backend("ignore")

    def test_all_implementations_satisfy_the_protocol(self):
        for backend in (ScalarBackend(), VectorizedBackend(),
                        DispatchBackend()):
            assert isinstance(backend, DistanceBackend)

    def test_backend_for_reads_batch_provenance(self):
        raw = MetricWindow(node_id="n", benchmark="b", metric="m",
                           values=[1.0, 2.0])
        batch = MeasurementBatch(benchmark="b", metric="m", windows=(raw,))
        assert backend_for(batch).nonfinite == NONFINITE_MASK
        sanitized = MeasurementBatch(
            benchmark="b", metric="m", windows=(raw.mark_sanitized(),))
        assert backend_for(sanitized).nonfinite == NONFINITE_REJECT


class TestPairSemantics:
    """Pair-level dispatch must be bit-identical to the scalar oracle."""

    def test_cdf_distance_matches_scalar(self):
        a, b = fleet(2, seed=1)
        assert default_backend().cdf_distance(a, b) == scalar_cdf_distance(
            np.asarray(a), np.asarray(b))

    def test_one_sided_matches_scalar_both_polarities(self):
        a, b = fleet(2, seed=2)
        backend = default_backend()
        for hib in (True, False):
            assert backend.one_sided_distance(
                a, b, higher_is_better=hib) == scalar_one_sided_distance(
                    np.asarray(a), np.asarray(b), higher_is_better=hib)

    def test_similarity_is_one_minus_distance(self):
        a, b = fleet(2, seed=3)
        backend = default_backend()
        assert backend.similarity(a, b) == pytest.approx(
            1.0 - backend.cdf_distance(a, b), abs=TOL)
        assert backend.one_sided_similarity(a, b) == pytest.approx(
            1.0 - backend.one_sided_distance(a, b), abs=TOL)

    def test_reject_policy_raises_on_nan(self):
        with pytest.raises(InvalidSampleError):
            default_backend().cdf_distance([1.0, np.nan], [1.0, 2.0])

    def test_mask_policy_drops_nan(self):
        masked = get_backend("mask").cdf_distance([1.0, 2.0, np.nan],
                                                  [1.0, 2.0])
        clean = default_backend().cdf_distance([1.0, 2.0], [1.0, 2.0])
        assert masked == pytest.approx(clean, abs=TOL)


class TestCollectionSemantics:
    def test_pairwise_matches_reference_with_unit_diagonal(self):
        samples = fleet()
        got = default_backend().pairwise_similarities(samples)
        want = pairwise_similarity_matrix_reference(samples)
        np.fill_diagonal(want, 1.0)
        np.testing.assert_allclose(got, want, atol=TOL)

    def test_prepared_batch_is_reused(self):
        backend = default_backend()
        samples = fleet(4, seed=5)
        batch = backend.prepare(samples)
        assert backend.prepare(batch) is batch
        np.testing.assert_allclose(
            backend.pairwise_similarities(batch),
            backend.pairwise_similarities(samples), atol=TOL)

    def test_one_vs_many_matches_scalar_loop(self):
        samples = fleet(5, seed=6)
        reference = np.sort(samples[0])
        backend = default_backend()
        for direction in (0, 1, -1):
            got = backend.one_vs_many_distances(
                samples, reference, signed_direction=direction)
            want = ScalarBackend().one_vs_many_distances(
                samples, reference, signed_direction=direction)
            np.testing.assert_allclose(got, want, atol=TOL)

    def test_one_vs_many_similarities_complement(self):
        samples = fleet(4, seed=7)
        reference = np.sort(samples[1])
        backend = default_backend()
        np.testing.assert_allclose(
            backend.one_vs_many_similarities(samples, reference),
            1.0 - backend.one_vs_many_distances(samples, reference),
            atol=TOL)

    def test_rowwise_similarities_match_pair_calls(self):
        samples = fleet(5, seed=8, width=30)
        rows = np.sort(np.stack(samples), axis=1)
        backend = default_backend()
        got = backend.rowwise_similarities(rows[:-1], rows[1:],
                                           assume_sorted=True)
        want = np.array([backend.similarity(samples[i], samples[i + 1])
                         for i in range(len(samples) - 1)])
        np.testing.assert_allclose(got, want, atol=TOL)

    def test_ragged_samples_supported(self):
        rng = np.random.default_rng(9)
        samples = [rng.normal(10.0, 1.0, n) for n in (3, 17, 8, 1)]
        got = default_backend().pairwise_similarities(samples)
        want = pairwise_similarity_matrix_reference(samples)
        np.fill_diagonal(want, 1.0)
        np.testing.assert_allclose(got, want, atol=TOL)

    def test_mask_backend_collection_paths(self):
        samples = fleet(4, seed=10)
        dirty = [s.copy() for s in samples]
        dirty[2] = np.concatenate([dirty[2], [np.nan]])
        backend = get_backend("mask")
        got = backend.pairwise_similarities(dirty)
        want = default_backend().pairwise_similarities(samples)
        np.testing.assert_allclose(got, want, atol=TOL)


class TestPrepare:
    def test_prepare_sorts(self):
        backend = default_backend()
        batch = backend.prepare([[3.0, 1.0, 2.0]])
        np.testing.assert_array_equal(batch.row(0), [1.0, 2.0, 3.0])

    def test_prepare_assume_sorted_skips_validation(self):
        backend = default_backend()
        batch = backend.prepare([np.array([1.0, 2.0, 3.0])],
                                assume_sorted=True)
        assert isinstance(batch, SortedSampleBatch)
        np.testing.assert_array_equal(batch.row(0), [1.0, 2.0, 3.0])

    def test_clean_applies_policy(self):
        assert get_backend("mask").clean(
            [1.0, np.nan, 2.0]).tolist() == [1.0, 2.0]
        with pytest.raises(InvalidSampleError):
            default_backend().clean([1.0, np.nan])
