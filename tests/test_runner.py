"""Unit tests for the suite runner and measurement windows."""

import numpy as np
import pytest

from repro.benchsuite.runner import StepWindow, SuiteRunner
from repro.benchsuite.suite import suite_by_name
from repro.exceptions import BenchmarkError
from repro.hardware.node import Node


class TestStepWindow:
    def test_apply_slices_measurement_window(self):
        window = StepWindow(warmup=3, measure=4)
        series = np.arange(10.0)
        assert window.apply(series).tolist() == [3.0, 4.0, 5.0, 6.0]

    def test_short_series_rejected(self):
        with pytest.raises(BenchmarkError):
            StepWindow(warmup=5, measure=10).apply(np.arange(8.0))

    def test_invalid_window_rejected(self):
        with pytest.raises(BenchmarkError):
            StepWindow(warmup=-1, measure=5)
        with pytest.raises(BenchmarkError):
            StepWindow(warmup=0, measure=0)

    def test_total_steps(self):
        assert StepWindow(warmup=10, measure=20).total_steps == 30


class TestSuiteRunner:
    def test_micro_benchmark_unwindowed(self):
        runner = SuiteRunner(seed=0)
        assert runner.window_for(suite_by_name("gemm-flops")) is None

    def test_e2e_gets_default_warmup_window(self):
        runner = SuiteRunner(seed=0)
        spec = suite_by_name("resnet-models")
        window = runner.window_for(spec)
        assert window is not None
        assert window.warmup == 2 * spec.e2e_profile.warmup_steps

    def test_tuned_window_takes_precedence(self):
        tuned = StepWindow(warmup=48, measure=96)
        runner = SuiteRunner(seed=0, windows={"resnet-models": tuned})
        assert runner.window_for(suite_by_name("resnet-models")) is tuned

    def test_e2e_result_is_windowed(self):
        runner = SuiteRunner(seed=1)
        spec = suite_by_name("resnet-models")
        window = runner.window_for(spec)
        result = runner.run(spec, Node(node_id="n0"))
        assert result.sample("fp32_throughput").size == window.measure

    def test_windowed_series_excludes_ramp(self):
        runner = SuiteRunner(seed=2)
        spec = suite_by_name("resnet-models")
        series = runner.run(spec, Node(node_id="n0")).sample("fp32_throughput")
        # No warm-up transient left: first steps comparable to last.
        assert series[:10].mean() > 0.95 * series[-10:].mean()

    def test_run_on_nodes_keyed_by_id(self):
        runner = SuiteRunner(seed=3)
        nodes = [Node(node_id=f"n{i}") for i in range(3)]
        results = runner.run_on_nodes(suite_by_name("mem-bw"), nodes)
        assert set(results) == {"n0", "n1", "n2"}

    def test_run_repeated(self):
        runner = SuiteRunner(seed=4)
        results = runner.run_repeated(suite_by_name("mem-bw"),
                                      Node(node_id="n0"), repeats=5)
        assert len(results) == 5
        with pytest.raises(BenchmarkError):
            runner.run_repeated(suite_by_name("mem-bw"), Node(node_id="n0"), 0)

    def test_tuned_window_shrinks_duration(self):
        spec = suite_by_name("resnet-models")
        full_runner = SuiteRunner(seed=5)
        tuned_runner = SuiteRunner(seed=5, windows={
            "resnet-models": StepWindow(warmup=48, measure=48)})
        assert (tuned_runner.duration_minutes(spec)
                < full_runner.duration_minutes(spec))

    def test_micro_duration_unchanged(self):
        spec = suite_by_name("gemm-flops")
        assert SuiteRunner().duration_minutes(spec) == spec.duration_minutes

    def test_set_window(self):
        runner = SuiteRunner(seed=6)
        runner.set_window("bert-models", StepWindow(warmup=10, measure=20))
        assert runner.windows["bert-models"].measure == 20


class TestStreamIndependence:
    """A node's result must not depend on sweep order (service pool
    prerequisite): per-(node, benchmark) child streams."""

    def test_result_independent_of_node_order(self):
        spec = suite_by_name("mem-bw")
        nodes = [Node(node_id=f"n{i}") for i in range(5)]
        forward = SuiteRunner(seed=7).run_on_nodes(spec, nodes)
        backward = SuiteRunner(seed=7).run_on_nodes(spec, list(reversed(nodes)))
        for node_id, result in forward.items():
            for name, series in result.metrics.items():
                np.testing.assert_array_equal(series,
                                              backward[node_id].metrics[name])

    def test_result_independent_of_benchmark_order(self):
        specs = [suite_by_name("mem-bw"), suite_by_name("gemm-flops")]
        node = Node(node_id="n0")
        a_runner = SuiteRunner(seed=8)
        a = {spec.name: a_runner.run(spec, node) for spec in specs}
        b_runner = SuiteRunner(seed=8)
        b = {spec.name: b_runner.run(spec, node) for spec in reversed(specs)}
        for name in a:
            for metric, series in a[name].metrics.items():
                np.testing.assert_array_equal(series, b[name].metrics[metric])

    def test_repeats_still_vary(self):
        runner = SuiteRunner(seed=9)
        spec = suite_by_name("mem-bw")
        first, second = runner.run_repeated(spec, Node(node_id="n0"), 2)
        assert not np.array_equal(first.sample("h2d_bw_gbs"),
                                  second.sample("h2d_bw_gbs"))

    def test_reset_streams_replays_first_run(self):
        runner = SuiteRunner(seed=10)
        spec = suite_by_name("mem-bw")
        node = Node(node_id="n0")
        first = runner.run(spec, node)
        runner.reset_streams()
        replay = runner.run(spec, node)
        np.testing.assert_array_equal(first.sample("h2d_bw_gbs"),
                                      replay.sample("h2d_bw_gbs"))

    def test_different_seeds_differ(self):
        spec = suite_by_name("mem-bw")
        node = Node(node_id="n0")
        a = SuiteRunner(seed=11).run(spec, node)
        b = SuiteRunner(seed=12).run(spec, node)
        assert not np.array_equal(a.sample("h2d_bw_gbs"),
                                  b.sample("h2d_bw_gbs"))
