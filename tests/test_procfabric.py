"""Unit tests for the process-fabric building blocks.

Everything here runs in-process: the frame codec, the JSON specs that
cross the spawn boundary, the offline journal reduction the parent
uses on dead shards, the torn-tail heal, the drain seal, and the
config validation surface.  Tests that spawn real worker processes
live in ``tests/integration/test_process_fabric.py``.
"""

import json
import os

import pytest

from repro.exceptions import JournalError, ReproError, ServiceError
from repro.service.chaos import ProcessChaosPlan
from repro.service.procfabric import (
    PARENT_ORIGIN,
    ProcessFabric,
    WorkerFault,
    WorkerSpec,
    read_frame,
    replay_queue_state,
    write_frame,
)
from repro.service.store import JournalStore, RecordKind
from repro.service.supervisor import SupervisorConfig


def make_pipe_frame(message: dict) -> bytes:
    body = json.dumps(message).encode()
    return len(body).to_bytes(4, "big") + body


class TestFrameCodec:
    def test_round_trip(self):
        r, w = os.pipe()
        try:
            write_frame(w, {"cmd": "status", "n": 3})
            os.close(w)
            assert read_frame(r) == {"cmd": "status", "n": 3}
            assert read_frame(r) is None  # clean EOF
        finally:
            os.close(r)

    def test_multiple_frames_in_order(self):
        r, w = os.pipe()
        try:
            for i in range(5):
                write_frame(w, {"i": i})
            os.close(w)
            assert [read_frame(r)["i"] for _ in range(5)] == list(range(5))
        finally:
            os.close(r)

    def test_unicode_payload_survives(self):
        r, w = os.pipe()
        try:
            write_frame(w, {"node": "gpu-ü17", "reason": "✓"})
            os.close(w)
            assert read_frame(r)["node"] == "gpu-ü17"
        finally:
            os.close(r)

    def test_truncated_frame_reads_as_eof(self):
        r, w = os.pipe()
        try:
            os.write(w, make_pipe_frame({"x": 1})[:-2])
            os.close(w)
            assert read_frame(r) is None
        finally:
            os.close(r)

    def test_oversized_frame_is_a_protocol_fault(self):
        r, w = os.pipe()
        try:
            os.write(w, (1 << 30).to_bytes(4, "big"))
            os.close(w)
            with pytest.raises(WorkerFault):
                read_frame(r)
        finally:
            os.close(r)

    def test_write_to_closed_pipe_raises_worker_fault(self):
        r, w = os.pipe()
        os.close(r)
        try:
            with pytest.raises(WorkerFault):
                write_frame(w, {"cmd": "status"})
        finally:
            os.close(w)


class TestWorkerSpec:
    def test_payload_round_trip(self):
        spec = WorkerSpec(shard_index=3, journal_dir="/tmp/j",
                          builder="mod:fn", builder_args={"a": 1},
                          incarnation=2, heartbeat_every=4,
                          chaos={"seed": 7})
        clone = WorkerSpec.from_payload(
            json.loads(json.dumps(spec.to_payload())))
        assert clone == spec

    def test_defaults_survive_sparse_payload(self):
        spec = WorkerSpec.from_payload({"shard_index": 0,
                                        "journal_dir": "d",
                                        "builder": "m:f"})
        assert spec.incarnation == 0
        assert spec.chaos is None


class TestProcessChaosPlan:
    def test_payload_round_trip(self):
        plan = ProcessChaosPlan(seed=11, target_shards=(0, 2),
                                kill_after_appends=5, kill_incarnation=1,
                                kill_rate=0.25, stop_before_ticks=3,
                                stop_rate=0.1)
        clone = ProcessChaosPlan.from_payload(
            json.loads(json.dumps(plan.to_payload())))
        assert clone.seed == plan.seed
        assert clone.targets(0) and clone.targets(2) and not clone.targets(1)
        assert clone.kill_after_appends == 5
        assert clone.kill_incarnation == 1

    def test_deterministic_kill_fires_once_per_incarnation(self):
        plan = ProcessChaosPlan(seed=1, kill_after_appends=2)
        assert not plan.should_kill(0, 0, 1)
        assert not plan.should_kill(0, 0, 2)
        assert plan.should_kill(0, 0, 3)
        # The respawned incarnation must not deterministically die at
        # the same append again, or restart could never make progress.
        assert not plan.should_kill(0, 1, 3)

    def test_deterministic_stop_gated_by_incarnation(self):
        plan = ProcessChaosPlan(seed=1, stop_before_ticks=1,
                                stop_incarnation=2)
        assert not plan.should_stop(0, 0, 2)
        assert plan.should_stop(0, 2, 2)

    def test_target_scoping(self):
        plan = ProcessChaosPlan(seed=1, target_shards=(1,),
                                kill_after_appends=0)
        assert plan.should_kill(1, 0, 1)
        assert not plan.should_kill(0, 0, 1)

    def test_probabilistic_draws_are_reproducible(self):
        a = ProcessChaosPlan(seed=9, kill_rate=0.5)
        b = ProcessChaosPlan(seed=9, kill_rate=0.5)
        draws = [(s, i, n) for s in range(2) for i in range(2)
                 for n in range(1, 20)]
        assert ([a.should_kill(*d) for d in draws]
                == [b.should_kill(*d) for d in draws])
        assert any(a.should_kill(*d) for d in draws)

    def test_rate_validation(self):
        with pytest.raises(ServiceError):
            ProcessChaosPlan(seed=1, kill_rate=1.5)
        with pytest.raises(ServiceError):
            ProcessChaosPlan(seed=1, stop_rate=-0.1)
        with pytest.raises(ServiceError):
            ProcessChaosPlan(seed=1, kill_after_appends=-1)


class TestReplayQueueState:
    def journal(self, tmp_path) -> JournalStore:
        return JournalStore(tmp_path / "journal")

    def enqueue(self, store, event_id, *, origin=None, priority=0.5):
        payload = {"event_id": event_id, "priority": priority,
                   "attempts": 0,
                   "event": {"kind": "job-allocation", "nodes": ["n1"],
                             "statuses": [], "duration_hours": 24.0}}
        if origin is not None:
            payload["origin"] = list(origin)
        store.append(RecordKind.EVENT_ENQUEUED, payload)

    def test_pending_reflects_enqueue_minus_terminal(self, tmp_path):
        store = self.journal(tmp_path)
        self.enqueue(store, 1)
        self.enqueue(store, 2)
        self.enqueue(store, 3)
        store.append(RecordKind.EVENT_COMPLETED, {"event_id": 1})
        store.append(RecordKind.LOAD_SHED, {"event_id": 2})
        state = replay_queue_state(store.replay())
        assert set(state.pending) == {3}
        assert state.last_event_id == 3
        assert not state.sealed

    def test_origins_collected_from_enqueue_and_coalesce(self, tmp_path):
        store = self.journal(tmp_path)
        self.enqueue(store, 1, origin=(PARENT_ORIGIN, 7))
        store.append(RecordKind.EVENT_COALESCED,
                     {"event_id": 1, "priority": 0.9,
                      "origin": [0, 12]})
        state = replay_queue_state(store.replay())
        assert state.origins_seen == {(PARENT_ORIGIN, 7), (0, 12)}

    def test_handoff_moves_entry_out_of_pending(self, tmp_path):
        store = self.journal(tmp_path)
        self.enqueue(store, 1)
        store.append(RecordKind.SHARD_HANDOFF, {
            "event_id": 1, "priority": 0.5, "attempts": 0, "to_shard": 2,
            "event": {"kind": "job-allocation", "nodes": ["n1"],
                      "statuses": [], "duration_hours": 24.0}})
        state = replay_queue_state(store.replay())
        assert not state.pending
        assert state.handed_off[1]["to_shard"] == 2

    def test_handoff_origin_rides_through_replay(self, tmp_path):
        """The origin _degrade stamps on a handoff must survive replay
        verbatim: reconcile_handoffs re-delivers under that origin, so
        losing it would re-introduce the double-delivery bug."""
        store = self.journal(tmp_path)
        self.enqueue(store, 1, origin=(-1, 7))
        store.append(RecordKind.SHARD_HANDOFF, {
            "event_id": 1, "priority": 0.5, "attempts": 0, "to_shard": 2,
            "origin": [-1, 7],
            "event": {"kind": "job-allocation", "nodes": ["n1"],
                      "statuses": [], "duration_hours": 24.0}})
        state = replay_queue_state(store.replay())
        assert state.handed_off[1]["origin"] == [-1, 7]
        assert (-1, 7) in state.origins_seen

    def test_snapshot_merges_origins_and_handoffs(self, tmp_path):
        store = self.journal(tmp_path)
        store.append(RecordKind.STATE_SNAPSHOT, {
            "last_event_id": 9,
            "origins_seen": [[1, 4]],
            "handed_off": [{"event_id": 5, "to_shard": 1,
                            "event": {"kind": "periodic", "nodes": ["n2"],
                                      "statuses": [],
                                      "duration_hours": 24.0}}]})
        state = replay_queue_state(store.replay())
        assert state.last_event_id == 9
        assert (1, 4) in state.origins_seen
        assert 5 in state.handed_off

    def test_sealed_only_when_drain_is_final(self, tmp_path):
        store = self.journal(tmp_path)
        self.enqueue(store, 1)
        store.append(RecordKind.FABRIC_DRAIN, {"reason": "drain"})
        assert replay_queue_state(store.replay()).sealed
        self.enqueue(store, 2)
        assert not replay_queue_state(store.replay()).sealed


class TestTornTailHeal:
    """A real SIGKILL can cut the final journal line before its
    newline; a later appender must not merge two records."""

    def test_missing_final_newline_is_healed_on_open(self, tmp_path):
        store = JournalStore(tmp_path / "journal")
        store.append(RecordKind.EVENT_COMPLETED, {"event_id": 1})
        with open(store.path, "rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.truncate()  # kill the trailing newline
        healed = JournalStore(tmp_path / "journal")
        healed.append(RecordKind.EVENT_COMPLETED, {"event_id": 2})
        records = list(healed.replay())
        assert [r.payload["event_id"] for r in records] == [1, 2]

    def test_torn_partial_line_still_skips_cleanly(self, tmp_path):
        store = JournalStore(tmp_path / "journal")
        store.append(RecordKind.EVENT_COMPLETED, {"event_id": 1})
        with open(store.path, "ab") as handle:
            handle.write(b'{"seq": 2, "kind": "event-comp')  # torn write
        healed = JournalStore(tmp_path / "journal")
        healed.append(RecordKind.EVENT_COMPLETED, {"event_id": 3})
        payloads = [r.payload["event_id"] for r in healed.replay()]
        assert payloads == [1, 3]

    def test_empty_and_missing_files_are_untouched(self, tmp_path):
        JournalStore(tmp_path / "a")  # missing file: no error
        (tmp_path / "b").mkdir()
        (tmp_path / "b" / "journal.jsonl").write_bytes(b"")
        JournalStore(tmp_path / "b")  # empty file: no error


@pytest.fixture(scope="module")
def service_parts():
    """One tiny control-plane build, shared by the seal tests."""
    from repro.service.procfabric import default_builder

    return default_builder({
        "fleet_size": 6, "suite": ["ib-loopback"], "learn_on": 3,
        "pool": {"max_workers": 2, "benchmark_timeout_seconds": 2.0,
                 "max_attempts": 1, "backoff_base_seconds": 0.0,
                 "poll_interval_seconds": 0.005}})


class TestSealAndSync:
    def test_sync_flushes_without_appending(self, tmp_path):
        store = JournalStore(tmp_path / "journal")
        store.append(RecordKind.EVENT_COMPLETED, {"event_id": 1})
        before = store.path.read_bytes()
        store.sync()
        assert store.path.read_bytes() == before

    def test_sync_on_virgin_store_is_a_noop(self, tmp_path):
        JournalStore(tmp_path / "journal").sync()

    def test_service_seal_journals_drain_marker(self, tmp_path,
                                                service_parts):
        from repro.service.controlplane import ValidationService

        anubis, nodes, config = service_parts
        service = ValidationService(anubis, nodes,
                                    journal_dir=tmp_path / "journal",
                                    config=config)
        service.seal(reason="test-drain", extra={"shard": 4})
        last = list(service.store.replay())[-1]
        assert last.kind == RecordKind.FABRIC_DRAIN
        assert last.payload["reason"] == "test-drain"
        assert last.payload["shard"] == 4
        assert "pending" in last.payload

    def test_seal_without_journal_is_a_noop(self, service_parts):
        from repro.service.controlplane import ValidationService

        anubis, nodes, config = service_parts
        service = ValidationService(anubis, nodes, journal_dir=None,
                                    config=config)
        service.seal()  # must not raise


class TestConfigValidation:
    """The knob-validation surface: every config error is a
    :class:`ServiceError`, and a :class:`ServiceError` is a
    :class:`ValueError` -- callers may catch either."""

    def test_service_error_is_a_value_error(self):
        error = ServiceError("bad knob")
        assert isinstance(error, ValueError)
        assert isinstance(error, ReproError)
        assert isinstance(JournalError("x"), ValueError)

    def test_pool_knobs(self):
        from repro.service.pool import PoolConfig
        with pytest.raises(ValueError):
            PoolConfig(max_workers=0)
        with pytest.raises(ValueError):
            PoolConfig(max_attempts=0)
        with pytest.raises(ValueError):
            PoolConfig(poll_interval_seconds=0.0)

    def test_service_knobs(self):
        from repro.service.controlplane import ServiceConfig
        with pytest.raises(ValueError):
            ServiceConfig(max_queue_depth=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_event_attempts=0)
        with pytest.raises(ValueError):
            ServiceConfig(snapshot_every=0)

    def test_supervisor_knobs(self):
        with pytest.raises(ValueError):
            SupervisorConfig(shard_count=0)
        with pytest.raises(ValueError):
            SupervisorConfig(watchdog_stall_ticks=0)
        with pytest.raises(ValueError):
            SupervisorConfig(restart_backoff_base_ticks=0)
        with pytest.raises(ValueError):
            SupervisorConfig(restart_backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            SupervisorConfig(max_shard_restarts=0)

    def test_process_fabric_requires_journal_root(self):
        with pytest.raises(ValueError):
            ProcessFabric(builder="m:f", journal_root=None)

    @pytest.mark.parametrize("knob", ["status_deadline_seconds",
                                      "tick_deadline_seconds",
                                      "spawn_deadline_seconds",
                                      "drain_timeout_seconds"])
    def test_process_fabric_deadlines_must_be_positive(self, tmp_path,
                                                       knob):
        with pytest.raises(ValueError):
            ProcessFabric(builder="m:f", journal_root=tmp_path,
                          **{knob: 0.0})

    def test_builder_reference_must_be_module_colon_function(self):
        from repro.service.procfabric import _resolve_builder
        with pytest.raises(ValueError):
            _resolve_builder("no-colon-here")
        fn = _resolve_builder("repro.service.procfabric:default_builder")
        from repro.service.procfabric import default_builder
        assert fn is default_builder
