"""Unit tests for multi-node benchmark execution."""

import numpy as np
import pytest

from repro.benchsuite.multinode import run_all_pair_scan, run_group_collective
from repro.benchsuite.suite import suite_by_name
from repro.exceptions import BenchmarkError
from repro.hardware.components import defect_mode
from repro.hardware.node import Node
from repro.topology.fattree import FatTree, FatTreeConfig


def _tree(n=8):
    return FatTree(FatTreeConfig(n_nodes=n, nodes_per_tor=4, tors_per_pod=2,
                                 uplinks_per_tor=20, redundant_uplinks=4))


def _nodes(n=8, bad_nic=None):
    rng = np.random.default_rng(0)
    nodes = [Node(node_id=f"n{i}") for i in range(n)]
    if bad_nic is not None:
        nodes[bad_nic].apply_defect(defect_mode("ib_hca_degraded"), rng)
    return nodes


class TestAllPairScan:
    def test_covers_all_pairs(self):
        result = run_all_pair_scan(_tree(), _nodes(), np.random.default_rng(1))
        assert len(result.pair_bandwidths) == 8 * 7 // 2

    def test_node_count_mismatch_rejected(self):
        with pytest.raises(BenchmarkError):
            run_all_pair_scan(_tree(8), _nodes(6), np.random.default_rng(2))

    def test_bad_nic_localized_by_median(self):
        result = run_all_pair_scan(_tree(), _nodes(bad_nic=3),
                                   np.random.default_rng(3))
        medians = result.node_median_bandwidth
        assert medians[3] < 0.9 * max(medians.values())
        # The minimum is NOT a localizer: every partner of the bad
        # node shares one low pair.
        mins = result.node_min_bandwidth
        assert max(mins.values()) < 0.9 * max(medians.values())

    def test_healthy_fabric_uniform_bandwidth(self):
        result = run_all_pair_scan(_tree(), _nodes(), np.random.default_rng(4),
                                   noise_cv=0.0)
        values = list(result.pair_bandwidths.values())
        assert np.ptp(values) < 0.01 * np.mean(values)

    def test_broken_tor_degrades_crossing_pairs(self):
        tree = _tree()
        tree.fail_uplinks(0, 3)
        result = run_all_pair_scan(tree, _nodes(), np.random.default_rng(5),
                                   noise_cv=0.0)
        cross = result.pair_bandwidths[frozenset((0, 4))]
        intra = result.pair_bandwidths[frozenset((0, 1))]
        assert cross < intra


class TestGroupCollective:
    def test_slowest_member_dominates(self):
        spec = suite_by_name("multinode-collectives")
        tree = _tree()
        rng = np.random.default_rng(6)
        healthy = run_group_collective(spec, tree, _nodes(), [0, 1, 4, 5], rng)
        rng = np.random.default_rng(6)
        with_bad = run_group_collective(spec, tree,
                                        _nodes(bad_nic=1), [0, 1, 4, 5], rng)
        assert (with_bad["allreduce_busbw_gbs"].mean()
                < healthy["allreduce_busbw_gbs"].mean())

    def test_congestion_scales_group_bandwidth(self):
        spec = suite_by_name("multinode-collectives")
        tree = _tree()
        rng = np.random.default_rng(7)
        base = run_group_collective(spec, tree, _nodes(), [0, 4], rng)
        tree.fail_uplinks(0, 4)
        rng = np.random.default_rng(7)
        congested = run_group_collective(spec, tree, _nodes(), [0, 4], rng)
        assert (congested["allreduce_busbw_gbs"].mean()
                < base["allreduce_busbw_gbs"].mean())

    def test_single_member_rejected(self):
        spec = suite_by_name("multinode-collectives")
        with pytest.raises(BenchmarkError):
            run_group_collective(spec, _tree(), _nodes(), [0],
                                 np.random.default_rng(8))

    def test_out_of_range_member_rejected(self):
        spec = suite_by_name("multinode-collectives")
        with pytest.raises(BenchmarkError):
            run_group_collective(spec, _tree(), _nodes(), [0, 99],
                                 np.random.default_rng(9))

    def test_all_metrics_emitted(self):
        spec = suite_by_name("multinode-collectives")
        samples = run_group_collective(spec, _tree(), _nodes(), [0, 1],
                                       np.random.default_rng(10))
        assert set(samples) == {m.name for m in spec.metrics}
