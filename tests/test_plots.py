"""Unit tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.analysis.plots import ascii_bars, ascii_cdf


class TestAsciiCdf:
    def test_single_series_renders(self):
        rng = np.random.default_rng(0)
        art = ascii_cdf({"healthy": rng.normal(100, 2, 50)})
        assert "healthy" in art
        assert "1.00 |" in art and "0.00 |" in art

    def test_two_series_distinct_glyphs(self):
        rng = np.random.default_rng(1)
        art = ascii_cdf({"a": rng.normal(100, 1, 30),
                         "b": rng.normal(80, 1, 30)})
        assert "*" in art and "o" in art

    def test_shifted_series_separate_vertically(self):
        art = ascii_cdf({"fast": [100.0] * 5, "slow": [50.0] * 5}, width=40)
        body = [line for line in art.splitlines() if "|" in line]
        # 'slow' jumps to F=1 immediately (top row); 'fast' stays at
        # F=0 across most of the range (bottom row).
        assert "o" in body[0]
        assert "*" in body[-1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf({})

    def test_too_many_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf({f"s{i}": [1.0] for i in range(7)})

    def test_constant_sample_supported(self):
        art = ascii_cdf({"flat": [5.0, 5.0, 5.0]})
        assert "flat" in art

    def test_label_appended(self):
        art = ascii_cdf({"x": [1.0, 2.0]}, x_label="GB/s")
        assert "GB/s" in art


class TestAsciiBars:
    def test_bar_lengths_proportional(self):
        art = ascii_bars({"big": 10.0, "small": 5.0}, width=20)
        lines = art.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_values_printed(self):
        art = ascii_bars({"a": 1.234}, fmt="{:.1f}")
        assert "1.2" in art

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars({})

    def test_zero_values_safe(self):
        art = ascii_bars({"nothing": 0.0})
        assert "nothing" in art
