"""Forward/backward compatibility of the journal's kind registry, and
the operator surfacing of journal-health counters.

The shard fabric introduced four record kinds (``load-shed``,
``shard-heartbeat``, ``shard-degraded``, ``shard-handoff``).  An
*older* analytics reader -- one whose ``known_kinds`` predates them --
must warn-and-skip those records, never crash, and the skip counts
must now be *visible*: ``JournalReader.health()`` feeds
``build_report``'s ``journal`` section, the markdown report, and
``Anubis.fleet_report``.
"""

import pytest

from repro.analytics import JournalReader, build_report
from repro.analytics.report import render_json, render_markdown
from repro.analytics.slo import SupervisorReducer
from repro.service.store import KNOWN_KINDS, JournalStore, RecordKind

#: The kinds the shard fabric added -- an "older reader" is one built
#: before these existed.
NEW_KINDS = frozenset({"load-shed", "shard-heartbeat", "shard-degraded",
                       "shard-handoff"})
OLD_KNOWN_KINDS = KNOWN_KINDS - NEW_KINDS

#: The kinds the process fabric added on top; a reader from the
#: thread-fabric era must skip these the same way.
PROC_KINDS = frozenset({"fabric-drain", "proc-heartbeat", "proc-restart"})
PRE_PROC_KNOWN_KINDS = KNOWN_KINDS - PROC_KINDS


def write_fabric_journal(directory) -> JournalStore:
    """A journal mixing classic records with the shard-fabric kinds."""
    store = JournalStore(directory)
    store.append(RecordKind.EVENT_ENQUEUED, {
        "event_id": 1, "priority": 0.4,
        "event": {"kind": "job-allocation", "duration_hours": 24.0}})
    store.append(RecordKind.SHARD_HEARTBEAT, {
        "shard": 0, "tick": 1, "progress": 0, "queue_depth": 1,
        "restarts": 0, "stalled_ticks": 0})
    store.append(RecordKind.LOAD_SHED, {
        "event_id": 2, "kind": "job-allocation", "priority": 0.1,
        "coalesced": 0, "reason": "queue-full"})
    store.append(RecordKind.SHARD_HANDOFF, {
        "event_id": 1, "priority": 0.4, "to_shard": 1,
        "event": {"kind": "job-allocation", "duration_hours": 24.0}})
    store.append(RecordKind.SHARD_DEGRADED, {
        "shard": 0, "tick": 9, "restarts": 3, "reason": "watchdog-stall"})
    store.append(RecordKind.SHARD_HEARTBEAT, {
        "shard": 0, "tick": 2, "progress": 1, "queue_depth": 0,
        "restarts": 1, "stalled_ticks": 0})
    return store


class TestOlderReaderForwardCompat:
    def test_new_kinds_are_registered(self):
        assert NEW_KINDS <= KNOWN_KINDS

    def test_older_reader_warns_and_skips_new_kinds(self, tmp_path):
        write_fabric_journal(tmp_path / "journal")
        reader = JournalReader(tmp_path / "journal",
                               known_kinds=OLD_KNOWN_KINDS)
        records = reader.read_all()  # must not raise
        assert [r.kind for r in records] == ["event-enqueued"]
        assert reader.unknown_kinds == {"shard-heartbeat": 2,
                                        "load-shed": 1,
                                        "shard-handoff": 1,
                                        "shard-degraded": 1}
        assert reader.corrupt_lines == 0

    def test_skipped_kinds_do_not_break_the_report(self, tmp_path):
        write_fabric_journal(tmp_path / "journal")
        reader = JournalReader(tmp_path / "journal",
                               known_kinds=OLD_KNOWN_KINDS)
        report = build_report(reader.read_all(),
                              journal_health=reader.health())
        assert report["journal"]["records"] == 1
        assert report["journal"]["unknown_kinds"] == {
            "shard-heartbeat": 2, "load-shed": 1,
            "shard-handoff": 1, "shard-degraded": 1}
        render_json(report)
        markdown = render_markdown(report)
        assert "Unknown record kinds" in markdown
        assert "shard-heartbeat" in markdown

    def test_current_reader_sees_everything(self, tmp_path):
        write_fabric_journal(tmp_path / "journal")
        reader = JournalReader(tmp_path / "journal")
        records = reader.read_all()
        assert len(records) == 6
        assert reader.health() == {"corrupt_lines": 0, "unknown_kinds": {}}


class TestJournalHealthSurfacing:
    def test_corrupt_lines_reach_the_report(self, tmp_path):
        store = write_fabric_journal(tmp_path / "journal")
        with open(store.path, "a") as handle:
            handle.write("not a journal line\n")
        reader = JournalReader(tmp_path / "journal")
        records = reader.read_all()
        assert reader.corrupt_lines == 1
        report = build_report(records, journal_health=reader.health())
        assert report["journal"]["corrupt_lines"] == 1
        assert "corrupt_lines" in render_markdown(report)

    def test_health_defaults_absent_without_reader(self, tmp_path):
        write_fabric_journal(tmp_path / "journal")
        records = JournalReader(tmp_path / "journal").read_all()
        report = build_report(records)
        assert "corrupt_lines" not in report["journal"]

    def test_reports_stay_deterministic(self, tmp_path):
        store = write_fabric_journal(tmp_path / "journal")
        with open(store.path, "a") as handle:
            handle.write("garbage\n")

        def render():
            reader = JournalReader(tmp_path / "journal")
            records = reader.read_all()
            report = build_report(records, journal_health=reader.health())
            return render_json(report), render_markdown(report)

        assert render() == render()


def write_process_fabric_journal(directory) -> JournalStore:
    """A journal as one process-fabric worker would leave it: real
    heartbeats, a parent-journaled restart, and a final drain seal."""
    store = JournalStore(directory)
    store.append(RecordKind.EVENT_ENQUEUED, {
        "event_id": 1, "priority": 0.4,
        "event": {"kind": "job-allocation", "duration_hours": 24.0}})
    store.append(RecordKind.PROC_HEARTBEAT, {
        "shard": 1, "incarnation": 0, "beat": 1, "progress": 0,
        "queue_depth": 1})
    store.append(RecordKind.PROC_RESTART, {
        "shard": 1, "incarnation": 1, "tick": 4})
    store.append(RecordKind.PROC_HEARTBEAT, {
        "shard": 1, "incarnation": 1, "beat": 1, "progress": 1,
        "queue_depth": 0})
    store.append(RecordKind.FABRIC_DRAIN, {
        "reason": "signal-15", "pending": 0, "events_processed": 1,
        "dead_letters": 0, "shard": 1, "incarnation": 1})
    return store


class TestProcessFabricKindsForwardCompat:
    def test_process_kinds_are_registered(self):
        assert PROC_KINDS <= KNOWN_KINDS

    def test_pre_process_reader_warns_and_skips(self, tmp_path):
        write_process_fabric_journal(tmp_path / "journal")
        reader = JournalReader(tmp_path / "journal",
                               known_kinds=PRE_PROC_KNOWN_KINDS)
        records = reader.read_all()  # must not raise
        assert [r.kind for r in records] == ["event-enqueued"]
        assert reader.unknown_kinds == {"proc-heartbeat": 2,
                                        "proc-restart": 1,
                                        "fabric-drain": 1}
        report = build_report(records, journal_health=reader.health())
        assert report["journal"]["unknown_kinds"]["fabric-drain"] == 1
        render_json(report)
        render_markdown(report)

    def test_reducer_reports_drain_and_process_rows(self, tmp_path):
        write_process_fabric_journal(tmp_path / "journal")
        records = JournalReader(tmp_path / "journal").read_all()
        reducer = SupervisorReducer()
        for record in records:
            reducer.consume(record)
        result = reducer.result()
        assert result["drains"] == 1
        assert result["drain_reasons"] == {"signal-15": 1}
        assert result["clean_shutdown"] is True
        assert result["proc_heartbeats"] == 2
        assert result["proc_restarts"] == 1
        assert result["proc_restarts_by_shard"] == {"1": 1}

    def test_clean_shutdown_requires_drain_as_final_record(self, tmp_path):
        store = write_process_fabric_journal(tmp_path / "journal")
        store.append(RecordKind.EVENT_ENQUEUED, {
            "event_id": 2, "priority": 0.1,
            "event": {"kind": "periodic", "duration_hours": 24.0}})
        records = JournalReader(tmp_path / "journal").read_all()
        reducer = SupervisorReducer()
        for record in records:
            reducer.consume(record)
        result = reducer.result()
        assert result["drains"] == 1
        assert result["clean_shutdown"] is False

    def test_empty_journal_is_not_a_clean_shutdown(self):
        assert SupervisorReducer().result()["clean_shutdown"] is False

    def test_markdown_renders_drain_and_restart_tables(self, tmp_path):
        write_process_fabric_journal(tmp_path / "journal")
        reader = JournalReader(tmp_path / "journal")
        report = build_report(reader.read_all(),
                              journal_health=reader.health())
        markdown = render_markdown(report)
        assert "clean_shutdown" in markdown
        assert "Clean drains by reason" in markdown
        assert "Worker-process restarts by shard" in markdown


def write_sku_journal(directory) -> JournalStore:
    """A journal as a mixed-fleet control plane writes it: ``sku``
    fields on transitions/rollbacks/provenance and 5-element
    violation rows on ``event-completed``."""
    store = JournalStore(directory)
    store.append(RecordKind.TRANSITION, {
        "node_id": "node-0000", "sku": "H100",
        "old": "healthy", "new": "quarantined", "reason": "validation"})
    store.append(RecordKind.TRANSITION, {
        "node_id": "node-0001", "sku": "A100",
        "old": "healthy", "new": "in-validation", "reason": ""})
    store.append(RecordKind.EVENT_COMPLETED, {
        "event_id": 1, "kind": "job-allocation", "duration_hours": 24.0,
        "skipped": False,
        "validated_nodes": ["node-0000", "node-0001"],
        "benchmarks_run": ["ib-loopback"],
        "violations": [["node-0000", "ib-loopback", "ib_write_bw_gbs",
                        "similarity 0.41 < 0.95", "H100"]]})
    store.append(RecordKind.CRITERIA_ROLLBACK, {
        "sku": "H100", "benchmark": "ib-loopback",
        "metric": "ib_write_bw_gbs", "candidate_rate": 0.4,
        "baseline_rate": 0.02, "reason": "eviction-rate spike",
        "learn_path": "full"})
    store.append(RecordKind.BATCH_PROVENANCE, {
        "event_id": 1,
        "provenance": [
            {"sku": "A100", "benchmark": "ib-loopback",
             "metric": "ib_write_bw_gbs", "windows": 3, "quarantined": 0},
            {"sku": "H100", "benchmark": "ib-loopback",
             "metric": "ib_write_bw_gbs", "windows": 2, "quarantined": 1},
        ]})
    return store


def write_pre_sku_journal(directory) -> JournalStore:
    """The same story as one pre-SKU (schema v1) control plane wrote
    it: no ``sku`` fields anywhere, 4-element violation rows."""
    store = JournalStore(directory)
    store.append(RecordKind.TRANSITION, {
        "node_id": "node-0000",
        "old": "healthy", "new": "quarantined", "reason": "validation"})
    store.append(RecordKind.EVENT_COMPLETED, {
        "event_id": 1, "kind": "job-allocation", "duration_hours": 24.0,
        "skipped": False,
        "validated_nodes": ["node-0000"],
        "benchmarks_run": ["ib-loopback"],
        "violations": [["node-0000", "ib-loopback", "ib_write_bw_gbs",
                        "similarity 0.41 < 0.95"]]})
    store.append(RecordKind.CRITERIA_ROLLBACK, {
        "benchmark": "ib-loopback", "metric": "ib_write_bw_gbs",
        "candidate_rate": 0.4, "baseline_rate": 0.02,
        "reason": "eviction-rate spike"})
    store.append(RecordKind.BATCH_PROVENANCE, {
        "event_id": 1,
        "provenance": [
            {"benchmark": "ib-loopback", "metric": "ib_write_bw_gbs",
             "windows": 3, "quarantined": 1},
        ]})
    return store


class TestSkuJournalCompat:
    """The SKU axis rides on *existing* record kinds -- no new kinds,
    so a current reader sees a mixed-fleet journal with zero unknown
    kinds, and a pre-SKU journal replays into the ``"unknown"``
    legacy bucket instead of failing."""

    def test_sku_fields_introduce_no_new_kinds(self, tmp_path):
        write_sku_journal(tmp_path / "journal")
        reader = JournalReader(tmp_path / "journal")
        records = reader.read_all()
        assert len(records) == 5
        assert reader.unknown_kinds == {}
        assert reader.corrupt_lines == 0

    def test_sku_journal_builds_per_sku_tables(self, tmp_path):
        write_sku_journal(tmp_path / "journal")
        reader = JournalReader(tmp_path / "journal")
        report = build_report(reader.read_all(),
                              journal_health=reader.health())
        by_sku = report["sku"]["by_sku"]
        assert set(by_sku) == {"A100", "H100"}
        assert by_sku["H100"]["incidents"] == 1
        assert by_sku["H100"]["rollbacks"] == 1
        assert by_sku["H100"]["quarantine_rate"] == pytest.approx(0.5)
        assert by_sku["A100"]["incidents"] == 0
        assert by_sku["A100"]["rollbacks"] == 0
        assert report["rollbacks"]["by_pair"] == {
            "H100/ib-loopback/ib_write_bw_gbs": 1}
        markdown = render_markdown(report)
        assert "Per-SKU fleet health" in markdown
        assert "H100" in markdown

    def test_pre_sku_journal_replays_into_unknown_bucket(self, tmp_path):
        write_pre_sku_journal(tmp_path / "journal")
        reader = JournalReader(tmp_path / "journal")
        records = reader.read_all()  # must not raise
        assert reader.unknown_kinds == {}
        assert reader.corrupt_lines == 0
        report = build_report(records, journal_health=reader.health())
        by_sku = report["sku"]["by_sku"]
        assert set(by_sku) == {"unknown"}
        assert by_sku["unknown"]["incidents"] == 1
        assert by_sku["unknown"]["rollbacks"] == 1
        assert by_sku["unknown"]["windows"] == 3
        assert report["rollbacks"]["by_pair"] == {
            "unknown/ib-loopback/ib_write_bw_gbs": 1}
        render_json(report)
        render_markdown(report)

    def test_pre_sku_event_replays_through_control_plane(self, tmp_path):
        """A v1 journal's 4-element violation rows must restore into
        the control plane's completed-event cache without crashing."""
        from repro.service.store import JournalStore as Store

        directory = tmp_path / "journal"
        store = Store(directory)
        store.append(RecordKind.EVENT_ENQUEUED, {
            "event_id": 1, "priority": 0.4,
            "event": {"kind": "job-allocation", "duration_hours": 24.0}})
        store.append(RecordKind.EVENT_COMPLETED, {
            "event_id": 1, "kind": "job-allocation",
            "duration_hours": 24.0, "skipped": False,
            "validated_nodes": ["node-0000"],
            "benchmarks_run": ["ib-loopback"],
            "violations": [["node-0000", "ib-loopback",
                            "ib_write_bw_gbs", "low", ]]})
        del store

        from repro.core.selector import Selector
        from repro.core.system import Anubis
        from repro.core.validator import Validator
        from repro.benchsuite.suite import suite_by_name
        from repro.hardware import build_fleet
        from repro.simulation import analytic_coverage_table, suite_durations
        from repro.simulation.generator import generate_incident_trace
        from repro.survival import extract_status_samples
        from repro.survival.exponential import ExponentialModel
        from repro.service import ValidationService

        suite = (suite_by_name("ib-loopback"),)
        fleet = build_fleet(4, seed=0)
        trace = generate_incident_trace(50, 800.0, seed=1)
        model = ExponentialModel().fit(extract_status_samples(trace))
        selector = Selector(model, analytic_coverage_table(suite),
                            suite_durations(suite), p0=0.05)
        service = ValidationService(
            Anubis(Validator(suite), selector), fleet.nodes,
            journal_dir=directory)
        # Replay consumed the 4-element row without raising and
        # counted the event; the restored violation defaults to the
        # legacy namespace.
        assert service.metrics.events_processed == 1
        assert service.metrics.validations_run == 1


class TestSupervisorReducer:
    def test_reduces_fabric_records(self, tmp_path):
        write_fabric_journal(tmp_path / "journal")
        records = JournalReader(tmp_path / "journal").read_all()
        reducer = SupervisorReducer()
        for record in records:
            reducer.consume(record)
        result = reducer.result()
        assert result["heartbeats"] == 2
        # Per-shard restarts are a high-water mark over heartbeats.
        assert result["restarts_by_shard"] == {"0": 1}
        assert result["restarts_total"] == 1
        assert result["shards_degraded"] == 1
        assert result["degraded"][0]["reason"] == "watchdog-stall"
        assert result["handoffs"] == 1
        assert result["handoffs_by_target"] == {"1": 1}
        assert result["events_shed"] == 1
        assert result["shed_by_kind"] == {"job-allocation": 1}
        assert result["shed_rate"] == pytest.approx(1.0)
        assert result["last_heartbeat_by_shard"]["0"]["tick"] == 2

    def test_supervisor_section_renders(self, tmp_path):
        write_fabric_journal(tmp_path / "journal")
        reader = JournalReader(tmp_path / "journal")
        report = build_report(reader.read_all(),
                              journal_health=reader.health())
        assert report["supervisor"]["heartbeats"] == 2
        markdown = render_markdown(report)
        assert "## Shard supervisor" in markdown
        assert "Load shed by event kind" in markdown

    def test_empty_journal_yields_zeroed_section(self):
        report = build_report([])
        assert report["supervisor"]["heartbeats"] == 0
        assert report["supervisor"]["shed_rate"] == 0.0
