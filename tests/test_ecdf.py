"""Unit tests for the ECDF representation."""

import numpy as np
import pytest

from repro.core.ecdf import Ecdf, as_sample
from repro.exceptions import InvalidSampleError


class TestAsSample:
    def test_list_coerced_to_float_array(self):
        arr = as_sample([1, 2, 3])
        assert arr.dtype == float
        assert arr.tolist() == [1.0, 2.0, 3.0]

    def test_2d_input_flattened(self):
        assert as_sample([[1.0, 2.0], [3.0, 4.0]]).shape == (4,)

    def test_empty_rejected(self):
        with pytest.raises(InvalidSampleError):
            as_sample([])

    def test_inf_rejected(self):
        with pytest.raises(InvalidSampleError):
            as_sample([1.0, float("inf")])

    def test_does_not_mutate_input(self):
        original = np.array([3.0, 1.0, 2.0])
        as_sample(original)
        assert original.tolist() == [3.0, 1.0, 2.0]


class TestEcdf:
    def test_points_sorted(self):
        ecdf = Ecdf.from_sample([3.0, 1.0, 2.0])
        assert ecdf.points.tolist() == [1.0, 2.0, 3.0]

    def test_evaluate_right_continuous(self):
        ecdf = Ecdf.from_sample([1.0, 2.0, 3.0, 4.0])
        assert ecdf.evaluate([2.0]).tolist() == [0.5]
        assert ecdf.evaluate([1.9]).tolist() == [0.25]

    def test_evaluate_extremes(self):
        ecdf = Ecdf.from_sample([1.0, 2.0])
        assert ecdf.evaluate([0.0]).tolist() == [0.0]
        assert ecdf.evaluate([10.0]).tolist() == [1.0]

    def test_duplicates_preserved(self):
        ecdf = Ecdf.from_sample([1.0, 1.0, 2.0])
        assert ecdf.evaluate([1.0]).tolist() == [pytest.approx(2.0 / 3.0)]

    def test_support(self):
        assert Ecdf.from_sample([5.0, 1.0, 3.0]).support == (1.0, 5.0)

    def test_n(self):
        assert Ecdf.from_sample([1.0, 2.0, 3.0]).n == 3

    def test_quantile_bounds_checked(self):
        ecdf = Ecdf.from_sample([1.0, 2.0])
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_mean(self):
        assert Ecdf.from_sample([1.0, 3.0]).mean() == 2.0
