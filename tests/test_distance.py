"""Unit tests for the Eq. (2)-(4) distance and similarity metrics."""

import numpy as np
import pytest

from repro.core.backend import pairwise_similarity_matrix
from repro.core.distance import (
    cdf_distance,
    one_sided_distance,
    one_sided_similarity,
    similarity,
)
from repro.exceptions import InvalidSampleError


class TestCdfDistance:
    def test_identical_samples_have_zero_distance(self):
        sample = [1.0, 2.0, 3.0]
        assert cdf_distance(sample, sample) == 0.0

    def test_identical_single_values(self):
        assert cdf_distance([5.0], [5.0]) == 0.0

    def test_single_values_give_relative_regression(self):
        # d({90}, {100}) = (100 - 90) / 100 = 0.1
        assert cdf_distance([90.0], [100.0]) == pytest.approx(0.1)

    def test_twenty_percent_regression(self):
        assert cdf_distance([80.0], [100.0]) == pytest.approx(0.2)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = rng.normal(100.0, 2.0, 50)
        b = rng.normal(95.0, 2.0, 60)
        assert cdf_distance(a, b) == pytest.approx(cdf_distance(b, a))

    def test_bounded_in_unit_interval(self):
        assert 0.0 <= cdf_distance([1e-6], [1e6]) <= 1.0

    def test_scale_invariance(self):
        rng = np.random.default_rng(1)
        a = rng.normal(100.0, 1.0, 40)
        b = rng.normal(90.0, 1.0, 40)
        assert cdf_distance(a, b) == pytest.approx(
            cdf_distance(a * 1000.0, b * 1000.0)
        )

    def test_larger_shift_larger_distance(self):
        rng = np.random.default_rng(2)
        base = rng.normal(100.0, 1.0, 100)
        small = cdf_distance(base * 0.98, base)
        large = cdf_distance(base * 0.80, base)
        assert large > small

    def test_empty_sample_rejected(self):
        with pytest.raises(InvalidSampleError):
            cdf_distance([], [1.0])

    def test_nan_sample_rejected(self):
        with pytest.raises(InvalidSampleError):
            cdf_distance([1.0, float("nan")], [1.0])

    def test_all_zero_samples(self):
        assert cdf_distance([0.0, 0.0], [0.0]) == 0.0


class TestSimilarity:
    def test_similarity_is_one_minus_distance(self):
        a, b = [90.0, 91.0], [100.0, 101.0]
        assert similarity(a, b) == pytest.approx(1.0 - cdf_distance(a, b))

    def test_ten_percent_regression_similarity(self):
        assert similarity([90.0], [100.0]) == pytest.approx(0.9)


class TestOneSidedDistance:
    def test_under_performing_observed_is_penalized(self):
        # Observed slower than criteria -> positive distance.
        assert one_sided_distance([90.0], [100.0]) > 0.0

    def test_over_performing_observed_is_free(self):
        # Observed faster than criteria -> no penalty for throughput.
        assert one_sided_distance([110.0], [100.0]) == 0.0

    def test_latency_polarity_flips(self):
        # Higher latency is worse.
        worse = one_sided_distance([120.0], [100.0], higher_is_better=False)
        better = one_sided_distance([80.0], [100.0], higher_is_better=False)
        assert worse > 0.0
        assert better == 0.0

    def test_one_sided_never_exceeds_two_sided(self):
        rng = np.random.default_rng(3)
        a = rng.normal(95.0, 3.0, 80)
        b = rng.normal(100.0, 3.0, 80)
        assert one_sided_distance(a, b) <= cdf_distance(a, b) + 1e-12

    def test_one_sided_similarity_threshold_semantics(self):
        # A 10% regression breaks alpha = 0.95; a 1% one does not.
        assert one_sided_similarity([90.0], [100.0]) < 0.95
        assert one_sided_similarity([99.0], [100.0]) > 0.95


class TestPairwiseSimilarityMatrix:
    def test_shape_and_diagonal(self):
        samples = [[1.0, 2.0], [1.1, 2.1], [5.0, 6.0]]
        matrix = pairwise_similarity_matrix(samples)
        assert matrix.shape == (3, 3)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_symmetric(self):
        rng = np.random.default_rng(4)
        samples = [rng.normal(100, 2, 30) for _ in range(4)]
        matrix = pairwise_similarity_matrix(samples)
        assert np.allclose(matrix, matrix.T)

    def test_close_samples_more_similar_than_far(self):
        matrix = pairwise_similarity_matrix([[100.0], [99.0], [50.0]])
        assert matrix[0, 1] > matrix[0, 2]
