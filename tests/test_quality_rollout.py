"""Guarded criteria rollout: shadow evaluation, rejection, rollback."""

import numpy as np
import pytest

from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import suite_by_name
from repro.core.drift import predicted_eviction_rate
from repro.core.selector import Selector
from repro.core.system import Anubis
from repro.core.validator import Validator
from repro.exceptions import InvalidSampleError, ReproError
from repro.hardware.fleet import build_fleet
from repro.quality import RolloutConfig, evaluate_rollout
from repro.service import PoolConfig, ServiceConfig, ValidationService
from repro.simulation import analytic_coverage_table, suite_durations
from repro.simulation.dirty import poisoned_windows
from repro.simulation.generator import generate_incident_trace
from repro.survival import extract_status_samples
from repro.survival.exponential import ExponentialModel

ALPHA = 0.95


def healthy_windows(n=12, base=100.0, seed=0):
    rng = np.random.default_rng(seed)
    return [base * (1.0 + 0.02 * rng.standard_normal(32)) for _ in range(n)]


class TestPredictedEvictionRate:
    def test_matching_criteria_evicts_nobody(self):
        windows = healthy_windows()
        criteria = np.concatenate(windows)
        assert predicted_eviction_rate(windows, criteria, alpha=ALPHA) == 0.0

    def test_inflated_criteria_evicts_everyone(self):
        windows = healthy_windows()
        criteria = np.concatenate(windows) * 3.0
        assert predicted_eviction_rate(windows, criteria, alpha=ALPHA) == 1.0

    def test_dead_windows_count_as_evictions(self):
        windows = healthy_windows(n=4)
        criteria = np.concatenate(windows)
        windows.append(np.full(8, np.nan))
        rate = predicted_eviction_rate(windows, criteria, alpha=ALPHA)
        assert rate == pytest.approx(1 / 5)

    def test_partially_non_finite_windows_masked(self):
        windows = healthy_windows(n=6)
        criteria = np.concatenate(windows)
        windows[0] = np.concatenate([windows[0], [np.nan, np.inf]])
        assert predicted_eviction_rate(windows, criteria, alpha=ALPHA) == 0.0

    def test_empty_window_list_rejected(self):
        with pytest.raises(InvalidSampleError):
            predicted_eviction_rate([], np.arange(4.0), alpha=ALPHA)


class TestEvaluateRollout:
    def test_bootstrap_within_cap_accepted(self):
        windows = healthy_windows()
        decision = evaluate_rollout(windows, np.concatenate(windows), None,
                                    alpha=ALPHA)
        assert decision.accepted
        assert decision.baseline_rate is None

    def test_bootstrap_poisoned_candidate_rejected(self):
        windows = healthy_windows()
        poisoned = np.concatenate(windows) * 3.0
        decision = evaluate_rollout(windows, poisoned, None, alpha=ALPHA)
        assert not decision.accepted
        assert decision.candidate_rate == 1.0

    def test_poisoned_update_rejected_against_previous(self):
        windows = healthy_windows()
        previous = np.concatenate(windows)
        decision = evaluate_rollout(windows, previous * 3.0, previous,
                                    alpha=ALPHA)
        assert not decision.accepted
        assert decision.baseline_rate == 0.0
        assert decision.candidate_rate == 1.0
        assert "jumped" in decision.reason

    def test_honest_refresh_accepted(self):
        windows = healthy_windows(seed=1)
        previous = np.concatenate(healthy_windows(seed=0))
        candidate = np.concatenate(windows)
        decision = evaluate_rollout(windows, candidate, previous, alpha=ALPHA)
        assert decision.accepted

    def test_abstains_below_min_shadow_windows(self):
        windows = healthy_windows(n=1)
        poisoned = windows[0] * 3.0
        decision = evaluate_rollout(windows, poisoned, None, alpha=ALPHA)
        assert decision.accepted
        assert "abstained" in decision.reason

    def test_config_validation(self):
        with pytest.raises(ReproError):
            RolloutConfig(max_eviction_jump=1.5)
        with pytest.raises(ReproError):
            RolloutConfig(min_shadow_windows=0)

    def test_lower_is_better_direction(self):
        # For a latency-like metric, *lower* values are better: a
        # candidate shifted far below the windows evicts them all.
        windows = healthy_windows()
        poisoned = np.concatenate(windows) / 3.0
        decision = evaluate_rollout(windows, poisoned, None, alpha=ALPHA,
                                    higher_is_better=False)
        assert not decision.accepted


class PoisoningRunner(SuiteRunner):
    """Reports every measurement a factor too high from sweep N on.

    Models the guarded-rollout adversary: a collector regression that
    skews the whole fleet coherently, so re-learned criteria would
    evict every healthy node.
    """

    def __init__(self, factor=3.0, **kwargs):
        super().__init__(**kwargs)
        self.factor = factor
        self.poisoning = False

    def _execute(self, spec, node):
        result = super()._execute(spec, node)
        if not self.poisoning:
            return result
        from repro.benchsuite.base import BenchmarkResult
        return BenchmarkResult(
            benchmark=result.benchmark, node_id=result.node_id,
            metrics={name: series * self.factor
                     for name, series in result.metrics.items()},
            sku=result.sku)


def build_guarded_service(journal_dir=None):
    suite = (suite_by_name("ib-loopback"), suite_by_name("mem-bw"))
    fleet = build_fleet(8, seed=5)
    runner = PoisoningRunner(seed=9)
    validator = Validator(suite, runner=runner)
    trace = generate_incident_trace(50, 800.0, seed=11)
    model = ExponentialModel().fit(extract_status_samples(trace))
    selector = Selector(model, analytic_coverage_table(suite),
                        suite_durations(suite), p0=0.05)
    config = ServiceConfig(pool=PoolConfig(max_workers=2),
                           rollout=RolloutConfig())
    service = ValidationService(Anubis(validator, selector), fleet.nodes,
                                journal_dir=journal_dir, config=config)
    return service, fleet, runner


class TestGuardedServiceLearning:
    def test_bootstrap_learn_accepted(self):
        service, fleet, _runner = build_guarded_service()
        decisions = service.learn_criteria(fleet.nodes)
        assert decisions and all(d.accepted for d in decisions)
        assert service.anubis.validator.criteria

    def test_poisoned_relearn_rolled_back(self, tmp_path):
        service, fleet, runner = build_guarded_service(str(tmp_path))
        service.learn_criteria(fleet.nodes)
        before = dict(service.anubis.validator.criteria)

        runner.poisoning = True
        decisions = service.learn_criteria(fleet.nodes)
        assert decisions and all(not d.accepted for d in decisions)
        # Previous criteria still active, object for object.
        assert service.anubis.validator.criteria == before
        # The fleet still validates under them without a mass
        # eviction: the poisoning was in the telemetry, and the guard
        # kept the criteria anchored to reality.  (A single marginal
        # node may still trip ordinary noise on a later sweep.)
        runner.poisoning = False
        report = service.anubis.validator.validate(fleet.nodes)
        assert len(report.defective_nodes) <= 1

    def test_rollback_journaled_and_recovery_safe(self, tmp_path):
        service, fleet, runner = build_guarded_service(str(tmp_path))
        service.learn_criteria(fleet.nodes)
        runner.poisoning = True
        service.learn_criteria(fleet.nodes)

        kinds = [record.kind for record in service.store.replay()]
        assert "criteria-rollback" in kinds

        # A fresh service on the same journal recovers the *active*
        # (pre-poison) criteria and ignores the rollback records.
        reborn, _, _ = build_guarded_service()
        reborn_service = ValidationService(
            reborn.anubis, fleet.nodes, journal_dir=str(tmp_path),
            config=ServiceConfig(pool=PoolConfig(max_workers=2),
                                 rollout=RolloutConfig()))
        restored = reborn_service.anubis.validator.criteria
        active = service.anubis.validator.criteria
        assert set(restored) == set(active)
        for key in active:
            np.testing.assert_allclose(
                np.asarray(restored[key].criteria, dtype=float),
                np.asarray(active[key].criteria, dtype=float))

    def test_poisoned_windows_generator_is_rejected(self):
        # The simulation-layer adversary and the guard agree.
        windows = healthy_windows()
        candidate = np.concatenate(
            poisoned_windows(n_windows=12, base_value=100.0))
        decision = evaluate_rollout(windows, candidate,
                                    np.concatenate(windows), alpha=ALPHA)
        assert not decision.accepted
