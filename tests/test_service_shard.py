"""Unit coverage for the shard-fabric building blocks.

The integration story (supervised ticking, watchdogs, chaos) lives in
``tests/integration/test_shard_fabric.py``; this file pins down the
pieces in isolation: the consistent-hash ring's placement contract,
the supervisor/service config validation, the queue's peek/shed
primitives, and the origin marker's journal round-trip.
"""

import dataclasses

import pytest

from repro.core.selector import NodeStatus
from repro.core.system import EventKind, ValidationEvent
from repro.exceptions import ServiceError
from repro.hardware.fleet import build_fleet
from repro.service import EventQueue, HashRing, ServiceConfig
from repro.service.queue import QueuedEvent
from repro.service.supervisor import SupervisorConfig

FLEET = build_fleet(24, seed=5)
NODE_IDS = [node.node_id for node in FLEET.nodes]


def make_event(indices, kind=EventKind.JOB_ALLOCATION, duration=24.0):
    nodes = tuple(FLEET.nodes[i] for i in indices)
    statuses = tuple(NodeStatus(node_id=node.node_id, covariates=[0.5, 1.0])
                     for node in nodes)
    return ValidationEvent(kind=kind, nodes=nodes, statuses=statuses,
                           duration_hours=duration)


class TestHashRing:
    def test_placement_is_stable_across_instances(self):
        first = HashRing(4)
        second = HashRing(4)
        assert all(first.owner(n) == second.owner(n) for n in NODE_IDS)

    def test_every_node_assigned_exactly_once(self):
        ring = HashRing(3)
        assignment = ring.assignment(NODE_IDS)
        assert sorted(assignment) == [0, 1, 2]
        flat = [n for owned in assignment.values() for n in owned]
        assert sorted(flat) == sorted(NODE_IDS)

    def test_owner_matches_assignment(self):
        ring = HashRing(3)
        assignment = ring.assignment(NODE_IDS)
        for index, owned in assignment.items():
            assert all(ring.owner(n) == index for n in owned)

    def test_alive_fallthrough_skips_dead_shards(self):
        ring = HashRing(3)
        for node_id in NODE_IDS:
            home = ring.owner(node_id)
            alive = {0, 1, 2} - {home}
            rerouted = ring.owner(node_id, alive=alive)
            assert rerouted in alive

    def test_fallthrough_only_moves_orphaned_nodes(self):
        # Consistent hashing's point: killing shard 0 must not move
        # any node that shard 1 or 2 already owned.
        ring = HashRing(3)
        for node_id in NODE_IDS:
            home = ring.owner(node_id)
            if home != 0:
                assert ring.owner(node_id, alive={1, 2}) == home

    def test_empty_alive_raises(self):
        ring = HashRing(2)
        with pytest.raises(ServiceError):
            ring.owner(NODE_IDS[0], alive=set())

    @pytest.mark.parametrize("shards,virtual", [(0, 8), (2, 0)])
    def test_bad_geometry_raises(self, shards, virtual):
        with pytest.raises(ServiceError):
            HashRing(shards, virtual_nodes=virtual)


class TestSupervisorConfig:
    def test_backoff_is_exponential_and_capped(self):
        config = SupervisorConfig(restart_backoff_base_ticks=2,
                                  restart_backoff_multiplier=2.0,
                                  restart_backoff_max_ticks=10)
        assert [config.backoff_ticks(k) for k in range(5)] == [2, 4, 8, 10, 10]

    def test_backoff_floor_is_one_tick(self):
        config = SupervisorConfig()
        assert config.backoff_ticks(-3) >= 1

    @pytest.mark.parametrize("field,value", [
        ("shard_count", 0),
        ("virtual_nodes", 0),
        ("watchdog_stall_ticks", 0),
        ("restart_backoff_base_ticks", 0),
        ("restart_backoff_multiplier", 0.5),
        ("max_shard_restarts", 0),
        ("restart_forgive_after_ticks", 0),
    ])
    def test_validation_rejects_bad_values(self, field, value):
        with pytest.raises(ServiceError):
            SupervisorConfig(**{field: value})

    def test_backoff_cap_below_base_rejected(self):
        with pytest.raises(ServiceError):
            SupervisorConfig(restart_backoff_base_ticks=4,
                             restart_backoff_max_ticks=2)


class TestServiceConfigQueueDepth:
    def test_default_is_unbounded(self):
        assert ServiceConfig().max_queue_depth is None

    def test_zero_depth_rejected(self):
        with pytest.raises(ServiceError):
            ServiceConfig(max_queue_depth=0)

    def test_positive_depth_accepted(self):
        assert ServiceConfig(max_queue_depth=3).max_queue_depth == 3


class TestQueuePrimitives:
    def test_peek_returns_pop_order_without_consuming(self):
        queue = EventQueue()
        queue.push(make_event([0]), 0.2)
        high, _ = queue.push(make_event([1]), 0.9)
        assert queue.peek() is high
        assert len(queue) == 2
        assert queue.pop() is high

    def test_peek_discards_stale_priority_tuples(self):
        queue = EventQueue()
        entry, _ = queue.push(make_event([0]), 0.1)
        queue.push(make_event([0]), 0.8)  # coalesce: priority raise
        assert queue.peek() is entry
        assert queue.peek().priority == pytest.approx(0.8)

    def test_shed_lowest_picks_min_priority_then_oldest(self):
        queue = EventQueue()
        queue.push(make_event([0]), 0.9)
        first_low, _ = queue.push(make_event([1]), 0.1)
        queue.push(make_event([2]), 0.1)
        victim = queue.shed_lowest()
        assert victim is first_low
        assert victim.shed is True
        assert len(queue) == 2
        # The victim is really gone, not lazily resurrectable.
        assert all(e is not victim for e in queue.pending())

    def test_shed_on_empty_queue(self):
        assert EventQueue().shed_lowest() is None


class TestOriginRoundTrip:
    def test_origin_survives_payload_round_trip(self):
        entry = QueuedEvent(event_id=7, event=make_event([0, 1]),
                            priority=0.5, origin=(2, 13))
        payload = entry.to_payload()
        assert payload["origin"] == [2, 13]
        fleet_index = {node.node_id: node for node in FLEET.nodes}
        restored = QueuedEvent.from_payload(payload, fleet_index)
        assert restored.origin == (2, 13)
        assert restored.event_id == 7

    def test_no_origin_omitted_from_payload(self):
        entry = QueuedEvent(event_id=3, event=make_event([0]), priority=0.4)
        payload = entry.to_payload()
        assert "origin" not in payload
        fleet_index = {node.node_id: node for node in FLEET.nodes}
        assert QueuedEvent.from_payload(payload, fleet_index).origin is None

    def test_supervisor_config_is_frozen(self):
        config = SupervisorConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.shard_count = 9
