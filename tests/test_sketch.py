"""Quantile sketches: equi-depth selection, merge, distance bound.

The load-bearing guarantee is the property test in
``TestDistanceBound``: for any pair of windows, the Eq. 2 distance
between their k-point sketches deviates from the exact scalar-oracle
distance by less than :func:`repro.core.sketch.distance_bound` -- the
incremental criteria engine's borderline-verification band is sized
from exactly this bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import similarity
from repro.core.sketch import (
    DEFAULT_SKETCH_SIZE,
    distance_bound,
    fingerprint,
    fingerprint_rows,
    merge_sketches,
    sketch_rows,
    sketch_sorted,
)


class TestSketchSorted:
    def test_identity_when_window_fits(self):
        values = np.sort(np.random.default_rng(0).normal(size=50))
        out = sketch_sorted(values, k=64)
        np.testing.assert_array_equal(out, values)
        assert out is not values  # always a private copy

    def test_compresses_to_k_points(self):
        values = np.sort(np.random.default_rng(1).normal(size=1000))
        out = sketch_sorted(values, k=32)
        assert out.size == 32

    def test_extremes_pinned(self):
        values = np.sort(np.random.default_rng(2).lognormal(size=500))
        out = sketch_sorted(values, k=16)
        assert out[0] == values[0]
        assert out[-1] == values[-1]

    def test_output_sorted(self):
        values = np.sort(np.random.default_rng(3).normal(size=777))
        out = sketch_sorted(values, k=33)
        assert (np.diff(out) >= 0).all()

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            sketch_sorted(np.array([]), k=8)

    def test_tiny_k_rejected(self):
        with pytest.raises(ValueError):
            sketch_sorted(np.arange(10.0), k=1)
        with pytest.raises(ValueError):
            distance_bound(1)


class TestSketchRows:
    def test_matches_per_row_sketch(self):
        rng = np.random.default_rng(4)
        data = np.sort(rng.normal(size=(7, 300)), axis=1)
        rows = sketch_rows(data, k=24)
        assert rows.shape == (7, 24)
        for i in range(7):
            np.testing.assert_array_equal(rows[i],
                                          sketch_sorted(data[i], k=24))

    def test_identity_when_rows_fit(self):
        data = np.sort(np.random.default_rng(5).normal(size=(3, 10)), axis=1)
        np.testing.assert_array_equal(sketch_rows(data, k=16), data)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            sketch_rows(np.arange(10.0), k=4)


class TestMergeSketches:
    def test_uniform_merge_equals_pooled_sketch(self):
        rng = np.random.default_rng(6)
        windows = [np.sort(rng.normal(size=200)) for _ in range(5)]
        sketches = [sketch_sorted(w, k=32) for w in windows]
        merged = merge_sketches(sketches, [200] * 5, k=64)
        assert merged.size == 64
        assert merged[0] == min(s[0] for s in sketches)
        assert merged[-1] == max(s[-1] for s in sketches)
        assert (np.diff(merged) >= 0).all()

    def test_weighted_merge_respects_counts(self):
        # One sketch summarizing 10x the observations dominates the
        # pooled quantiles.
        heavy = np.linspace(0.0, 1.0, 16)
        light = np.linspace(100.0, 101.0, 16)
        merged = merge_sketches([heavy, light], [1600, 16], k=16)
        # Nearly all interior quantiles come from the heavy sketch.
        assert np.count_nonzero(merged < 50.0) >= 14

    def test_small_union_returned_exactly(self):
        a, b = np.array([1.0, 3.0]), np.array([2.0, 400.0])
        merged = merge_sketches([a, b], [10, 2], k=16)
        np.testing.assert_array_equal(merged, [1.0, 2.0, 3.0, 400.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            merge_sketches([], [], k=8)
        with pytest.raises(ValueError):
            merge_sketches([np.arange(4.0)], [4, 4], k=8)
        with pytest.raises(ValueError):
            merge_sketches([np.arange(4.0)], [2], k=8)  # count < points
        with pytest.raises(ValueError):
            merge_sketches([np.array([])], [0], k=8)


class TestFingerprints:
    def test_sensitive_to_any_edit(self):
        base = np.arange(32.0)
        fp = fingerprint(base)
        edited = base.copy()
        edited[7] += 1e-9
        assert fingerprint(edited) != fp
        assert fingerprint(base[::-1]) != fp          # reorder
        assert fingerprint(base[:-1]) != fp           # truncate
        assert fingerprint(np.append(base, 0.0)) != fp  # append

    def test_deterministic(self):
        values = np.random.default_rng(7).normal(size=64)
        assert fingerprint(values) == fingerprint(values.copy())

    def test_rows_fast_path_matches_generic(self):
        rng = np.random.default_rng(8)
        data = rng.normal(size=(6, 40))
        fast = fingerprint_rows(data)
        generic = fingerprint_rows([row for row in data])
        np.testing.assert_array_equal(fast, generic)
        assert fast.dtype == np.uint64

    def test_ragged_rows(self):
        rows = [np.arange(3.0), np.arange(5.0)]
        out = fingerprint_rows(rows)
        assert out.size == 2
        assert out[0] != out[1]


# ----------------------------------------------------------------------
# The distance bound (property-tested vs. the scalar oracle)
# ----------------------------------------------------------------------

window_strategy = st.one_of(
    # Smooth unimodal
    st.tuples(st.integers(0, 2**31 - 1),
              st.integers(min_value=150, max_value=600)).map(
        lambda t: np.random.default_rng(t[0]).normal(100.0, 5.0, t[1])),
    # Heavy-tailed
    st.tuples(st.integers(0, 2**31 - 1),
              st.integers(min_value=150, max_value=600)).map(
        lambda t: np.random.default_rng(t[0]).lognormal(3.0, 1.0, t[1])),
    # Bimodal (the healthy/defective mixture shape)
    st.tuples(st.integers(0, 2**31 - 1),
              st.integers(min_value=150, max_value=600)).map(
        lambda t: np.concatenate([
            np.random.default_rng(t[0]).normal(80.0, 2.0, t[1] // 2),
            np.random.default_rng(t[0] + 1).normal(120.0, 2.0,
                                                   t[1] - t[1] // 2)])),
    # Tie-heavy discrete
    st.tuples(st.integers(0, 2**31 - 1),
              st.integers(min_value=150, max_value=600)).map(
        lambda t: np.random.default_rng(t[0]).integers(
            0, 8, t[1]).astype(float)),
)


class TestDistanceBound:
    @given(a=window_strategy, b=window_strategy,
           k=st.sampled_from([32, 64, 128]))
    @settings(max_examples=60, deadline=None)
    def test_sketch_distance_within_bound_of_exact(self, a, b, k):
        """|sim(sketch_a, sketch_b) - sim(a, b)| < distance_bound(k).

        ``similarity`` is the scalar Eq. 2-3 oracle, so this pins the
        engine's verification band to reality across distribution
        shapes, sizes and sketch resolutions.
        """
        exact = similarity(a, b)
        approx = similarity(sketch_sorted(np.sort(a), k),
                            sketch_sorted(np.sort(b), k))
        assert abs(approx - exact) < distance_bound(k)

    def test_bound_tightens_with_k(self):
        assert distance_bound(256) < distance_bound(64) < distance_bound(16)

    def test_exact_when_windows_fit(self):
        rng = np.random.default_rng(9)
        a, b = rng.normal(size=40), rng.normal(size=50)
        k = DEFAULT_SKETCH_SIZE
        exact = similarity(a, b)
        approx = similarity(sketch_sorted(np.sort(a), k),
                            sketch_sorted(np.sort(b), k))
        assert approx == pytest.approx(exact, abs=1e-12)
