"""Unit tests for repeatability drift detection (§3.4 guideline 3)."""

import numpy as np
import pytest

from repro.core.drift import evaluate_drift
from repro.exceptions import InvalidSampleError


def samples(level=100.0, sigma=0.3, n_nodes=10, steps=120, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(level, sigma, steps) for _ in range(n_nodes)]


class TestEvaluateDrift:
    def test_no_change_is_healthy(self):
        report = evaluate_drift(samples(seed=1), samples(seed=2))
        assert report.healthy
        assert abs(report.level_shift) < 0.01

    def test_level_shift_triggers_relearn(self):
        report = evaluate_drift(samples(seed=3), samples(level=95.0, seed=4))
        assert report.needs_relearn
        assert report.level_shift == pytest.approx(-0.05, abs=0.005)

    def test_speedup_also_triggers_relearn(self):
        # A faster driver still invalidates the old criteria.
        report = evaluate_drift(samples(seed=5), samples(level=106.0, seed=6))
        assert report.needs_relearn
        assert report.level_shift > 0.0

    def test_variance_blowup_triggers_retune(self):
        before = samples(sigma=0.2, seed=7)
        after = [100.0 * (1 + 0.04 * np.random.default_rng(i).standard_normal(120))
                 for i in range(10)]
        report = evaluate_drift(before, after)
        assert report.needs_retune
        assert report.repeatability_after < report.repeatability_before

    def test_small_drift_within_margin_is_healthy(self):
        report = evaluate_drift(samples(seed=8), samples(level=100.5, seed=9))
        assert not report.needs_relearn

    def test_margin_controls_sensitivity(self):
        before, after = samples(seed=10), samples(level=98.5, seed=11)
        strict = evaluate_drift(before, after, margin=0.2)
        loose = evaluate_drift(before, after, margin=1.0)
        assert strict.needs_relearn
        assert not loose.needs_relearn

    def test_too_few_samples_rejected(self):
        with pytest.raises(InvalidSampleError):
            evaluate_drift([samples()[0]], samples())

    def test_invalid_margin_rejected(self):
        with pytest.raises(ValueError):
            evaluate_drift(samples(), samples(), margin=0.0)
