"""Unit tests for the outlier-detection and criteria baselines."""

import numpy as np
import pytest

from repro.analysis.baselines import (
    iqr_criteria,
    kmeans_criteria,
    margin_ratio,
)
from repro.analysis.outliers import OneClassSvm, local_outlier_factor, lof_outliers
from repro.exceptions import CriteriaError


def clustered_points(seed=0):
    """A dense cluster, a sparse-but-valid group, and one true outlier."""
    rng = np.random.default_rng(seed)
    dense = rng.normal(100.0, 0.3, 60)
    sparse = rng.normal(98.0, 1.5, 8)
    outlier = np.array([60.0])
    return np.concatenate([dense, sparse, outlier])


class TestLof:
    def test_true_outlier_has_highest_score(self):
        points = clustered_points()
        scores = local_outlier_factor(points, k=10)
        assert int(np.argmax(scores)) == len(points) - 1

    def test_flags_true_outlier(self):
        points = clustered_points()
        outliers = lof_outliers(points, k=10, threshold=1.5)
        assert len(points) - 1 in outliers

    def test_paper_false_positive_mode(self):
        # Figure 6's complaint: LOF can mark low-density-but-expected
        # points (the sparse group) as outliers too.
        points = clustered_points()
        outliers = set(lof_outliers(points, k=10, threshold=1.5).tolist())
        sparse_indices = set(range(60, 68))
        assert outliers & sparse_indices  # at least one false positive

    def test_uniform_data_scores_near_one(self):
        rng = np.random.default_rng(1)
        scores = local_outlier_factor(rng.uniform(0, 1, (100, 2)), k=10)
        assert np.median(scores) == pytest.approx(1.0, abs=0.15)

    def test_2d_input(self):
        rng = np.random.default_rng(2)
        points = rng.normal(0, 1, (50, 2))
        assert local_outlier_factor(points, k=5).shape == (50,)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            local_outlier_factor([1.0])


class TestOneClassSvm:
    def test_flags_far_point(self):
        rng = np.random.default_rng(3)
        train = rng.normal(100.0, 1.0, 80)
        model = OneClassSvm(nu=0.1).fit(train)
        scores = model.decision_function([100.0, 60.0])
        assert scores[0] > scores[1]
        assert scores[1] < 0.0

    def test_training_outlier_fraction_bounded(self):
        rng = np.random.default_rng(4)
        train = rng.normal(0.0, 1.0, 100)
        model = OneClassSvm(nu=0.1).fit(train)
        flagged = model.outliers(train)
        assert len(flagged) <= 30  # roughly nu-bounded with slack

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            OneClassSvm().decision_function([1.0])

    def test_invalid_nu_rejected(self):
        with pytest.raises(ValueError):
            OneClassSvm(nu=0.0)
        with pytest.raises(ValueError):
            OneClassSvm(nu=1.5)

    def test_explicit_gamma(self):
        rng = np.random.default_rng(5)
        train = rng.normal(0.0, 1.0, 50)
        model = OneClassSvm(nu=0.2, gamma=0.5).fit(train)
        assert model.decision_function([0.0]).shape == (1,)


def _series_population(seed=0, n_healthy=20, shifts=(0.8, 0.85)):
    rng = np.random.default_rng(seed)
    healthy = [rng.normal(100.0, 1.0, 80) for _ in range(n_healthy)]
    defective = [rng.normal(100.0 * s, 1.0, 80) for s in shifts]
    return healthy + defective, list(range(n_healthy, n_healthy + len(shifts)))


class TestIqrCriteria:
    def test_flags_low_mean_samples(self):
        samples, truth = _series_population()
        result = iqr_criteria(samples)
        assert set(result.defect_indices) == set(truth)

    def test_criteria_is_member_sample(self):
        samples, _ = _series_population()
        result = iqr_criteria(samples)
        assert result.criteria.shape == (80,)

    def test_needs_three_samples(self):
        with pytest.raises(CriteriaError):
            iqr_criteria([[1.0], [2.0]])


class TestKmeansCriteria:
    def test_flags_minority_cluster(self):
        samples, truth = _series_population(seed=1)
        result = kmeans_criteria(samples, seed=0)
        assert set(result.defect_indices) == set(truth)

    def test_unequal_lengths_rejected(self):
        with pytest.raises(CriteriaError):
            kmeans_criteria([[1.0, 2.0], [1.0], [2.0, 3.0]])

    def test_criteria_is_majority_mean(self):
        samples, _ = _series_population(seed=2)
        result = kmeans_criteria(samples, seed=0)
        healthy_matrix = np.array([samples[i] for i in result.healthy_indices])
        assert np.allclose(result.criteria,
                           np.sort(healthy_matrix.mean(axis=0)))


class TestMarginRatio:
    def test_no_defects_is_infinite(self):
        samples, _ = _series_population(seed=3)
        assert margin_ratio(samples, samples[0], []) == float("inf")

    def test_clear_separation_gives_large_ratio(self):
        samples, truth = _series_population(seed=4, shifts=(0.7,))
        from repro.core.criteria import learn_criteria
        result = learn_criteria(samples, 0.95, centroid="medoid")
        ratio = margin_ratio(samples, result.criteria, result.defect_indices)
        assert ratio > 3.0

    def test_marginal_defect_lowers_ratio(self):
        samples, _ = _series_population(seed=5, shifts=(0.7,))
        from repro.core.criteria import learn_criteria
        result = learn_criteria(samples, 0.95, centroid="medoid")
        clear = margin_ratio(samples, result.criteria, result.defect_indices)
        # Declare a healthy sample defective: the margin collapses.
        polluted = list(result.defect_indices) + [0]
        assert margin_ratio(samples, result.criteria, polluted) < clear
