"""Unit tests for the minimal NumPy MLP."""

import numpy as np
import pytest

from repro.survival.mlp import Mlp


class TestForward:
    def test_output_shape(self):
        net = Mlp([3, 8, 1], seed=0)
        out = net.forward(np.zeros((5, 3)))
        assert out.shape == (5, 1)

    def test_1d_input_promoted(self):
        net = Mlp([3, 1], seed=0)
        assert net.forward(np.zeros(3)).shape == (1, 1)

    def test_too_few_layers_rejected(self):
        with pytest.raises(ValueError):
            Mlp([3])

    def test_deterministic_init(self):
        a = Mlp([2, 4, 1], seed=7)
        b = Mlp([2, 4, 1], seed=7)
        x = np.ones((1, 2))
        assert np.allclose(a.forward(x), b.forward(x))


class TestBackward:
    def test_backward_requires_forward(self):
        net = Mlp([2, 1], seed=0)
        with pytest.raises(RuntimeError):
            net.backward(np.ones((1, 1)))

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        net = Mlp([3, 4, 1], seed=1)
        x = rng.standard_normal((6, 3))
        # Loss = sum(out); dL/dout = ones.
        net.forward(x, train=True)
        net.backward(np.ones((6, 1)))
        analytic = net._grads_w[0].copy()

        eps = 1e-6
        w = net.weights[0]
        numeric = np.zeros_like(w)
        for i in range(w.shape[0]):
            for j in range(w.shape[1]):
                w[i, j] += eps
                plus = net.forward(x, train=False).sum()
                w[i, j] -= 2 * eps
                minus = net.forward(x, train=False).sum()
                w[i, j] += eps
                numeric[i, j] = (plus - minus) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-4)


class TestTraining:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((256, 2))
        y = (2.0 * x[:, 0] - 1.0 * x[:, 1])[:, None]
        net = Mlp([2, 16, 1], seed=3)
        for _ in range(400):
            out = net.forward(x, train=True)
            grad = 2.0 * (out - y) / x.shape[0]
            net.backward(grad)
            net.step(lr=1e-2)
        final = net.forward(x, train=False)
        mse = float(np.mean((final - y) ** 2))
        assert mse < 0.05

    def test_zero_grad_resets(self):
        net = Mlp([2, 1], seed=0)
        net.forward(np.ones((1, 2)), train=True)
        net.backward(np.ones((1, 1)))
        net.zero_grad()
        assert all(np.all(g == 0) for g in net._grads_w)
