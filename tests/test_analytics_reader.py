"""Unit tests: the incremental journal reader and its edge cases."""

import json

import pytest

from repro.analytics import JournalReader, ReaderCursor
from repro.service.store import KNOWN_KINDS, JournalStore, RecordKind, record_crc


def make_store(tmp_path, n=0):
    store = JournalStore(tmp_path / "journal")
    for i in range(n):
        store.append(RecordKind.TRANSITION, {"node_id": f"n{i}",
                                             "old": "healthy",
                                             "new": "scheduled",
                                             "reason": "t"})
    return store


class TestSnapshotRead:
    def test_empty_directory_reads_as_empty(self, tmp_path):
        reader = JournalReader(tmp_path / "nowhere")
        assert reader.read_all() == []
        result = reader.poll()
        assert result.records == ()
        assert not result.reset

    def test_reads_everything_the_store_wrote(self, tmp_path):
        store = make_store(tmp_path, n=5)
        reader = JournalReader(store.directory)
        records = reader.read_all()
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]
        assert all(r.kind == "transition" for r in records)

    def test_agrees_with_store_replay(self, tmp_path):
        store = make_store(tmp_path, n=7)
        assert JournalReader(store.directory).read_all() == store.replay()


class TestIncrementalPoll:
    def test_cursor_resumes_where_the_last_poll_stopped(self, tmp_path):
        store = make_store(tmp_path, n=3)
        reader = JournalReader(store.directory)
        first = reader.poll()
        assert [r.seq for r in first.records] == [1, 2, 3]

        store.append(RecordKind.TRANSITION, {"node_id": "n9"})
        second = reader.poll(first.cursor)
        assert [r.seq for r in second.records] == [4]
        assert not second.reset

        third = reader.poll(second.cursor)
        assert third.records == ()

    def test_cursor_round_trips_through_json(self, tmp_path):
        store = make_store(tmp_path, n=2)
        reader = JournalReader(store.directory)
        cursor = reader.poll().cursor
        revived = ReaderCursor.from_payload(
            json.loads(json.dumps(cursor.to_payload())))
        assert revived == cursor
        store.append(RecordKind.TRANSITION, {"node_id": "nx"})
        assert [r.seq for r in reader.poll(revived).records] == [3]


class TestTruncatedTail:
    def test_truncated_final_record_is_left_for_later(self, tmp_path):
        store = make_store(tmp_path, n=3)
        full = store.path.read_text()
        store.path.write_text(full[:-15])  # crash mid-append

        reader = JournalReader(store.directory)
        result = reader.poll()
        assert [r.seq for r in result.records] == [1, 2]
        assert reader.corrupt_lines == 0  # not corrupt, just unfinished

        # The write completes later: only then is record 3 delivered.
        store.path.write_text(full)
        resumed = reader.poll(result.cursor)
        assert [r.seq for r in resumed.records] == [3]
        assert not resumed.reset

    def test_unterminated_first_line_reads_as_empty(self, tmp_path):
        store = make_store(tmp_path, n=1)
        store.path.write_text(store.path.read_text().rstrip("\n"))
        reader = JournalReader(store.directory)
        result = reader.poll()
        assert result.records == ()
        assert not result.reset


class TestCorruption:
    def test_crc_mismatched_middle_record_is_skipped(self, tmp_path):
        store = make_store(tmp_path, n=3)
        lines = store.path.read_text().splitlines()
        doctored = json.loads(lines[1])
        doctored["payload"]["node_id"] = "evil"  # body no longer matches crc
        lines[1] = json.dumps(doctored)
        store.path.write_text("\n".join(lines) + "\n")

        reader = JournalReader(store.directory)
        records = reader.read_all()
        assert [r.seq for r in records] == [1, 3]
        assert reader.corrupt_lines == 1

    def test_undecodable_middle_line_is_skipped(self, tmp_path):
        store = make_store(tmp_path, n=3)
        lines = store.path.read_text().splitlines()
        lines[1] = "{not json"
        store.path.write_text("\n".join(lines) + "\n")
        reader = JournalReader(store.directory)
        assert [r.seq for r in reader.read_all()] == [1, 3]
        assert reader.corrupt_lines == 1


class TestCompactionRace:
    def test_compaction_between_polls_resets_the_reader(self, tmp_path):
        store = make_store(tmp_path, n=6)
        reader = JournalReader(store.directory)
        cursor = reader.poll().cursor
        assert cursor.seq == 6

        # Compaction rewrites the journal; seqs restart at 1.
        store.rewrite([(RecordKind.STATE_SNAPSHOT, {"states": {}}),
                       (RecordKind.EVENT_ENQUEUED, {"event_id": 9})])
        result = reader.poll(cursor)
        assert result.reset
        assert [(r.seq, r.kind) for r in result.records] \
            == [(1, "state-snapshot"), (2, "event-enqueued")]

        # After the reset the new segment tails normally again.
        store.append(RecordKind.TRANSITION, {"node_id": "n1"})
        after = reader.poll(result.cursor)
        assert not after.reset
        assert [r.seq for r in after.records] == [3]

    def test_crc_mismatch_after_compaction(self, tmp_path):
        """A record corrupted *post-compaction* is skipped, not resurrected."""
        store = make_store(tmp_path, n=4)
        reader = JournalReader(store.directory)
        cursor = reader.poll().cursor
        store.rewrite([(RecordKind.STATE_SNAPSHOT, {"states": {}}),
                       (RecordKind.TRANSITION, {"node_id": "a"}),
                       (RecordKind.TRANSITION, {"node_id": "b"})])
        lines = store.path.read_text().splitlines()
        doctored = json.loads(lines[1])
        doctored["payload"]["node_id"] = "evil"
        lines[1] = json.dumps(doctored)
        store.path.write_text("\n".join(lines) + "\n")

        result = reader.poll(cursor)
        assert result.reset
        assert [r.seq for r in result.records] == [1, 3]
        assert reader.corrupt_lines == 1

    def test_vanished_journal_resets_an_established_cursor(self, tmp_path):
        store = make_store(tmp_path, n=2)
        reader = JournalReader(store.directory)
        cursor = reader.poll().cursor
        store.path.unlink()
        result = reader.poll(cursor)
        assert result.reset
        assert result.records == ()


class TestUnknownKinds:
    def append_unknown(self, store, kind="hologram-audit"):
        seq = store.next_seq
        line = json.dumps({"seq": seq, "kind": kind, "payload": {},
                           "crc": record_crc(seq, kind, {})})
        with store.path.open("a") as handle:
            handle.write(line + "\n")

    def test_unknown_kind_is_warned_and_skipped(self, tmp_path, caplog):
        store = make_store(tmp_path, n=2)
        self.append_unknown(store)
        reader = JournalReader(store.directory)
        with caplog.at_level("WARNING"):
            records = reader.read_all()
        assert [r.seq for r in records] == [1, 2]
        assert reader.unknown_kinds == {"hologram-audit": 1}
        assert "unknown record kind" in caplog.text

    def test_unknown_kind_warns_once_but_counts_every_occurrence(
            self, tmp_path, caplog):
        store = make_store(tmp_path, n=1)
        self.append_unknown(store)
        self.append_unknown(store)
        reader = JournalReader(store.directory)
        with caplog.at_level("WARNING"):
            reader.read_all()
        assert reader.unknown_kinds["hologram-audit"] == 2
        assert caplog.text.count("unknown record kind") == 1

    def test_every_registry_kind_is_known(self, tmp_path):
        store = JournalStore(tmp_path / "journal")
        for kind in RecordKind:
            store.append(kind, {})
        reader = JournalReader(store.directory)
        assert len(reader.read_all()) == len(RecordKind)
        assert reader.unknown_kinds == {}
        assert KNOWN_KINDS == {kind.value for kind in RecordKind}


class TestTailingLoop:
    def test_follow_style_loop_sees_writes_and_compactions(self, tmp_path):
        """The exact consume loop the CLI --follow mode runs."""
        store = make_store(tmp_path, n=2)
        reader = JournalReader(store.directory)
        seen: list = []
        cursor = None
        for step in range(4):
            result = reader.poll(cursor)
            cursor = result.cursor
            if result.reset:
                seen = []
            seen.extend(result.records)
            if step == 0:
                assert len(seen) == 2
                store.append(RecordKind.TRANSITION, {"node_id": "x"})
            elif step == 1:
                assert len(seen) == 3
                store.rewrite([(RecordKind.STATE_SNAPSHOT, {"states": {}})])
            elif step == 2:
                assert len(seen) == 1  # rebuilt after reset
                store.append(RecordKind.TRANSITION, {"node_id": "y"})
        assert [r.seq for r in seen] == [1, 2]


@pytest.mark.parametrize("payload", [{}, {"offset": 10, "seq": 3,
                                          "fingerprint": 99}])
def test_cursor_payload_shapes(payload):
    cursor = ReaderCursor.from_payload(payload)
    assert cursor.offset == payload.get("offset", 0)
    assert cursor.seq == payload.get("seq", 0)
    assert cursor.fingerprint == payload.get("fingerprint")
