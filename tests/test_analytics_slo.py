"""Unit tests: SLO reducers and the deterministic report builder."""

from repro.analytics import (
    AvailabilityOverheadReducer,
    DLQReducer,
    EvictionPrecisionReducer,
    MTBIReducer,
    SanitizationReducer,
    build_report,
    render_json,
    render_markdown,
)
from repro.service.store import JournalRecord, RecordKind


def rec(seq, kind, payload):
    return JournalRecord(seq=seq, kind=getattr(kind, "value", kind),
                         payload=payload)


def completed(seq, event_id, *, nodes, defective=(), hours=24.0,
              latency=0.1, wall=1.0, skipped=False):
    return rec(seq, RecordKind.EVENT_COMPLETED, {
        "event_id": event_id,
        "kind": "job-allocation",
        "skipped": skipped,
        "validated_nodes": list(nodes),
        "benchmarks_run": ["gemm"],
        "violations": [],
        "defective": list(defective),
        "short_circuited": [],
        "queue_latency_seconds": latency,
        "validation_seconds": wall,
        "duration_hours": hours,
    })


def transition(seq, node, new, reason="event-1"):
    return rec(seq, RecordKind.TRANSITION, {
        "node_id": node, "old": "healthy", "new": new, "reason": reason})


class TestMTBI:
    def test_fleet_mtbi_is_node_hours_over_incidents(self):
        reducer = MTBIReducer(buckets=2)
        reducer.consume(completed(1, 1, nodes=["a", "b"], hours=10.0))
        reducer.consume(transition(2, "a", "quarantined"))
        reducer.consume(completed(3, 2, nodes=["a", "b"], hours=10.0))
        result = reducer.result()
        assert result["node_hours_observed"] == 40.0
        assert result["incidents"] == 1
        assert result["fleet_mtbi_hours"] == 40.0

    def test_no_incidents_yields_none(self):
        reducer = MTBIReducer()
        reducer.consume(completed(1, 1, nodes=["a"], hours=5.0))
        assert reducer.result()["fleet_mtbi_hours"] is None

    def test_trend_buckets_partition_the_node_hours(self):
        reducer = MTBIReducer(buckets=2)
        reducer.consume(completed(1, 1, nodes=["a"], hours=10.0))
        reducer.consume(transition(2, "a", "quarantined"))
        reducer.consume(completed(3, 2, nodes=["a"], hours=10.0))
        trend = reducer.result()["trend"]
        assert len(trend) == 2
        assert sum(b["node_hours"] for b in trend) == 20.0
        assert sum(b["incidents"] for b in trend) == 1

    def test_worst_nodes_ranked_by_incident_count(self):
        reducer = MTBIReducer()
        for seq, node in enumerate(["a", "b", "a"], start=1):
            reducer.consume(transition(seq, node, "quarantined"))
        worst = reducer.result()["worst_nodes"]
        assert worst[0]["node_id"] == "a"
        assert worst[0]["incidents"] == 2


class TestAvailability:
    def test_curve_tracks_quarantine_fraction(self):
        reducer = AvailabilityOverheadReducer(fleet_size=4)
        reducer.consume(transition(1, "a", "quarantined"))
        reducer.consume(completed(2, 1, nodes=["b"], wall=2.0))
        reducer.consume(transition(3, "a", "healthy",
                                   reason="repair-complete"))
        reducer.consume(completed(4, 2, nodes=["b"], wall=3.0))
        result = reducer.result()
        assert result["curve"] == [
            {"validation_s": 2.0, "availability": 0.75},
            {"validation_s": 5.0, "availability": 1.0},
        ]
        assert result["availability_now"] == 1.0
        assert result["validation_total_s"] == 5.0

    def test_curve_downsamples_to_the_requested_points(self):
        reducer = AvailabilityOverheadReducer(curve_points=4)
        for i in range(1, 41):
            reducer.consume(completed(i, i, nodes=[f"n{i}"], wall=1.0))
        curve = reducer.result()["curve"]
        assert len(curve) == 4
        assert curve[0]["validation_s"] == 1.0
        assert curve[-1]["validation_s"] == 40.0

    def test_state_snapshot_seeds_the_fleet(self):
        reducer = AvailabilityOverheadReducer()
        reducer.consume(rec(1, RecordKind.STATE_SNAPSHOT, {
            "states": {"a": "healthy", "b": "quarantined"}}))
        reducer.consume(completed(2, 1, nodes=["a"]))
        assert reducer.result()["availability_now"] == 0.5


class TestEvictionPrecision:
    def test_repeat_offender_requires_a_completed_repair(self):
        reducer = EvictionPrecisionReducer()
        reducer.consume(transition(1, "a", "quarantined"))
        reducer.consume(transition(2, "a", "healthy",
                                   reason="repair-complete"))
        reducer.consume(transition(3, "a", "quarantined"))
        reducer.consume(transition(4, "b", "quarantined"))
        result = reducer.result()
        assert result["quarantines"] == 3
        assert result["nodes_evicted"] == 2
        assert result["repeat_offenders"] == ["a"]
        assert result["repeat_offender_rate"] == 0.5
        assert result["requarantines_after_repair"] == 1

    def test_non_repair_return_is_not_a_completed_repair(self):
        reducer = EvictionPrecisionReducer()
        reducer.consume(transition(1, "a", "quarantined"))
        reducer.consume(transition(2, "a", "healthy", reason="tick-failed"))
        reducer.consume(transition(3, "a", "quarantined"))
        assert reducer.result()["repeat_offenders"] == []


class TestDLQ:
    def test_depth_grows_and_rebaselines_on_snapshot(self):
        reducer = DLQReducer()
        reducer.consume(rec(1, RecordKind.EVENT_DEAD_LETTERED,
                            {"event_id": 1}))
        reducer.consume(rec(2, RecordKind.EVENT_DEAD_LETTERED,
                            {"event_id": 2}))
        reducer.consume(rec(3, RecordKind.STATE_SNAPSHOT,
                            {"states": {}, "dead_letters": [{}]}))
        result = reducer.result()
        assert result["events_parked"] == 2
        assert result["depth_now"] == 1
        assert [p["depth"] for p in result["depth_series"]] == [1, 2, 1]


class TestSanitization:
    def test_batch_provenance_folds_by_pair(self):
        reducer = SanitizationReducer()
        reducer.consume(rec(1, RecordKind.BATCH_PROVENANCE, {
            "event_id": 1,
            "provenance": [
                {"benchmark": "gemm", "metric": "gflops", "windows": 4,
                 "sanitized": 4, "quarantined": 1,
                 "faults": {"non-finite": 2}},
                {"benchmark": "nccl", "metric": "busbw", "windows": 2,
                 "sanitized": 2, "quarantined": 0, "faults": {}},
            ]}))
        reducer.consume(rec(2, RecordKind.BATCH_PROVENANCE, {
            "event_id": 2,
            "provenance": [
                {"benchmark": "gemm", "metric": "gflops", "windows": 4,
                 "sanitized": 4, "quarantined": 3,
                 "faults": {"non-finite": 1, "unit-scale": 1}},
            ]}))
        result = reducer.result()
        gemm = result["by_pair"]["unknown/gemm/gflops"]
        assert gemm["windows"] == 8
        assert gemm["quarantine_rate"] == 0.5
        assert gemm["faults"] == {"non-finite": 3, "unit-scale": 1}
        assert result["windows_total"] == 10
        assert result["windows_quarantined"] == 4


class TestBuildReport:
    def stream(self):
        return [
            rec(1, RecordKind.EVENT_ENQUEUED,
                {"event_id": 1, "event": {"kind": "periodic"},
                 "priority": 0.5}),
            transition(2, "a", "quarantined"),
            completed(3, 1, nodes=["a", "b"], defective=["a"]),
            rec(4, RecordKind.CRITERIA_ROLLBACK,
                {"benchmark": "gemm", "metric": "gflops",
                 "candidate_rate": 0.9, "baseline_rate": 0.1,
                 "reason": "eviction budget"}),
            rec(5, RecordKind.BREAKER_TRANSITION,
                {"benchmark": "nccl", "old": "closed", "new": "open",
                 "reason": "fleet-wide"}),
            rec(6, RecordKind.PIPELINE_STATS,
                {"stages": {"execute": {"count": 3, "seconds": 0.5}}}),
        ]

    def test_sections_present(self):
        report = build_report(self.stream())
        assert report["journal"]["records"] == 6
        assert report["service"]["events_completed"] == 1
        assert report["mtbi"]["incidents"] == 1
        assert report["breakers"]["opens_by_benchmark"] == {"nccl": 1}
        assert report["rollbacks"]["by_pair"] == {"unknown/gemm/gflops": 1}
        assert report["pipeline"]["execute"]["count"] == 3

    def test_byte_identical_across_replays(self):
        first = build_report(self.stream())
        second = build_report(self.stream())
        assert render_json(first) == render_json(second)
        assert render_markdown(first) == render_markdown(second)

    def test_renderers_share_one_document(self):
        report = build_report(self.stream(), fleet_size=8)
        markdown = render_markdown(report)
        assert "## MTBI" in markdown
        assert "## Availability vs. validation overhead" in markdown
        assert "## Circuit breakers" in markdown
        assert "gemm/gflops" in markdown
        assert render_json(report).endswith("\n")

    def test_unconsumed_kinds_do_not_crash(self):
        report = build_report([rec(1, RecordKind.MEASUREMENT_BATCH, {
            "benchmark": "gemm", "metric": "gflops", "windows": []})])
        assert report["journal"]["records"] == 1
