"""Unit tests for the workload mix and model zoo."""

import pytest

from repro.workloads.distribution import (
    WORKLOAD_MIX,
    benchmark_coverage_of_mix,
    family_shares,
    sample_jobs,
)
from repro.workloads.models import MODEL_ZOO, model_config, models_for_benchmark


class TestDistribution:
    def test_shares_sum_to_one(self):
        assert sum(item.share for item in WORKLOAD_MIX) == pytest.approx(1.0)

    def test_three_families(self):
        shares = family_shares()
        assert set(shares) == {"transformer", "cnn", "other"}

    def test_transformers_dominate(self):
        shares = family_shares()
        assert shares["transformer"] > shares["cnn"] > shares["other"]

    def test_unidentified_share_substantial(self):
        # The paper: 35.5% of Transformers are unidentifiable.
        transformer_total = family_shares()["transformer"]
        unknown = sum(i.share for i in WORKLOAD_MIX
                      if i.family == "transformer" and i.model == "unidentified")
        assert 0.25 < unknown / transformer_total < 0.45

    def test_e2e_benchmarks_cover_most_jobs(self):
        assert benchmark_coverage_of_mix() > 0.8

    def test_covering_benchmarks_exist_in_suite(self):
        from repro.benchsuite.suite import suite_by_name
        for item in WORKLOAD_MIX:
            if item.covering_benchmark:
                suite_by_name(item.covering_benchmark)  # raises if missing

    def test_sample_jobs_follows_mix(self):
        jobs = sample_jobs(5000, seed=0)
        gpt_share = sum(1 for j in jobs if j.model == "gpt") / len(jobs)
        assert gpt_share == pytest.approx(0.155, abs=0.03)

    def test_sample_jobs_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sample_jobs(0)


class TestModelZoo:
    def test_lookup(self):
        config = model_config("bert-large")
        assert config.parameters_m == 340.0
        with pytest.raises(KeyError):
            model_config("nope")

    def test_all_benchmarks_resolvable(self):
        from repro.benchsuite.suite import suite_by_name
        for config in MODEL_ZOO:
            suite_by_name(config.benchmark)

    def test_models_for_benchmark(self):
        resnets = models_for_benchmark("resnet-models")
        assert {m.name for m in resnets} == {"resnet50", "resnet101", "resnet152"}

    def test_transformers_have_sequence_length(self):
        for config in MODEL_ZOO:
            if config.family == "transformer":
                assert config.sequence_length is not None

    def test_cnns_have_image_size(self):
        for config in MODEL_ZOO:
            if config.family == "cnn":
                assert config.image_size == 224

    def test_invalid_config_rejected(self):
        from repro.workloads.models import ModelConfig
        with pytest.raises(ValueError):
            ModelConfig("x", "cnn", "resnet-models", 0)
        with pytest.raises(ValueError):
            ModelConfig("x", "cnn", "resnet-models", 8, precision="int4")
