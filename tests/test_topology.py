"""Unit tests for the fat-tree topology and congestion model."""

import pytest

from repro.exceptions import TopologyError
from repro.topology.congestion import (
    allreduce_pair_bandwidths,
    nominal_bus_bandwidth,
)
from repro.topology.fattree import FatTree, FatTreeConfig


def _testbed():
    """The paper's 24-node, 25%-redundant-uplink testbed shape."""
    return FatTree(FatTreeConfig(n_nodes=24, nodes_per_tor=4, tors_per_pod=3,
                                 uplinks_per_tor=20, redundant_uplinks=4))


class TestFatTreeStructure:
    def test_tor_and_pod_counts(self):
        tree = _testbed()
        assert tree.n_tors == 6
        assert tree.n_pods == 2

    def test_every_node_has_a_tor(self):
        tree = _testbed()
        for node in tree.nodes:
            assert 0 <= tree.tor_of(node) < tree.n_tors

    def test_nodes_in_tor_partition(self):
        tree = _testbed()
        all_nodes = [n for t in range(tree.n_tors) for n in tree.nodes_in_tor(t)]
        assert sorted(all_nodes) == tree.nodes

    def test_hop_distances(self):
        tree = _testbed()
        assert tree.hop_distance(0, 1) == 2     # same ToR
        assert tree.hop_distance(0, 4) == 4     # same pod, different ToR
        assert tree.hop_distance(0, 23) == 6    # across pods

    def test_hop_distance_self_rejected(self):
        with pytest.raises(TopologyError):
            _testbed().hop_distance(3, 3)

    def test_unknown_node_rejected(self):
        with pytest.raises(TopologyError):
            _testbed().tor_of(99)

    def test_graph_tiers(self):
        tree = _testbed()
        tiers = {d["tier"] for _, d in tree.graph.nodes(data=True)}
        assert tiers == {"node", "tor", "agg", "core"}

    def test_invalid_config_rejected(self):
        with pytest.raises(TopologyError):
            FatTreeConfig(n_nodes=0)
        with pytest.raises(TopologyError):
            FatTreeConfig(redundant_uplinks=30, uplinks_per_tor=20)


class TestUplinkState:
    def test_fail_and_repair(self):
        tree = _testbed()
        tree.fail_uplinks(0, 3)
        assert tree.alive_uplinks(0) == 17
        tree.repair_uplinks(0, 2)
        assert tree.alive_uplinks(0) == 19
        tree.repair_uplinks(0)
        assert tree.alive_uplinks(0) == 20

    def test_cannot_fail_more_than_alive(self):
        tree = _testbed()
        with pytest.raises(TopologyError):
            tree.fail_uplinks(0, 21)

    def test_cannot_over_repair(self):
        tree = _testbed()
        with pytest.raises(TopologyError):
            tree.repair_uplinks(0, 1)

    def test_congestion_threshold_is_half_redundancy(self):
        tree = _testbed()
        # threshold = 20 - 4/2 = 18 alive
        tree.fail_uplinks(0, 2)
        assert not tree.congested(0)
        tree.fail_uplinks(0, 1)
        assert tree.congested(0)

    def test_redundancy_ratio(self):
        tree = _testbed()
        assert tree.redundancy_ratio(0) == 1.0
        tree.fail_uplinks(0, 2)
        assert tree.redundancy_ratio(0) == pytest.approx(0.5)


class TestCongestionModel:
    def test_nominal_bandwidth_positive(self):
        assert nominal_bus_bandwidth(_testbed()) > 100.0

    def test_healthy_fabric_full_bandwidth(self):
        tree = _testbed()
        pairs = [(0, 4), (1, 5)]
        results = allreduce_pair_bandwidths(tree, pairs, noise_cv=0.0)
        nominal = nominal_bus_bandwidth(tree)
        for r in results:
            assert r.bandwidth_gbps == pytest.approx(nominal)
            assert not r.congested

    def test_intra_tor_pair_never_congested(self):
        tree = _testbed()
        tree.fail_uplinks(0, 4)  # kill all redundancy on ToR 0
        results = allreduce_pair_bandwidths(tree, [(0, 1)], noise_cv=0.0)
        assert not results[0].congested

    def test_broken_redundancy_degrades_crossing_pairs(self):
        tree = _testbed()
        tree.fail_uplinks(0, 3)  # below the threshold of 18
        results = allreduce_pair_bandwidths(tree, [(0, 4)], noise_cv=0.0)
        assert results[0].congested
        assert results[0].bandwidth_gbps < nominal_bus_bandwidth(tree)

    def test_half_redundancy_boundary_is_safe(self):
        tree = _testbed()
        tree.fail_uplinks(0, 2)  # exactly half the redundancy: still fine
        results = allreduce_pair_bandwidths(tree, [(0, 4)], noise_cv=0.0)
        assert not results[0].congested

    def test_isolated_pair_tolerates_redundancy_loss(self):
        tree = _testbed()
        tree.fail_uplinks(0, 4)  # all redundancy gone, base capacity intact
        results = allreduce_pair_bandwidths(tree, [(0, 4)], concurrent=False,
                                            noise_cv=0.0)
        assert not results[0].congested

    def test_concurrent_pairs_must_be_disjoint(self):
        with pytest.raises(TopologyError):
            allreduce_pair_bandwidths(_testbed(), [(0, 4), (0, 5)])

    def test_degenerate_pair_rejected(self):
        with pytest.raises(TopologyError):
            allreduce_pair_bandwidths(_testbed(), [(1, 1)])

    def test_worst_tor_dominates(self):
        tree = _testbed()
        tree.fail_uplinks(0, 4)
        tree.fail_uplinks(1, 3)
        result = allreduce_pair_bandwidths(tree, [(0, 4)], noise_cv=0.0)[0]
        threshold = tree.config.congestion_threshold
        expected_scale = tree.alive_uplinks(0) / threshold
        assert result.bandwidth_gbps == pytest.approx(
            nominal_bus_bandwidth(tree) * expected_scale
        )
