"""Unit tests for the benchmark suite registry and measurement model."""

import numpy as np
import pytest

from repro.benchsuite.base import (
    BenchmarkKind,
    BenchmarkSpec,
    E2eProfile,
    MetricSpec,
    Phase,
    measure_metric,
    run_benchmark,
)
from repro.benchsuite.suite import (
    e2e_suite,
    full_suite,
    micro_suite,
    multi_node_suite,
    single_node_suite,
    suite_by_name,
    total_duration_minutes,
    total_metric_count,
)
from repro.exceptions import BenchmarkError
from repro.hardware.components import defect_mode
from repro.hardware.node import Node


class TestSuiteRegistry:
    def test_twenty_four_benchmarks(self):
        # The paper's cluster dataset: 24 benchmarks.
        assert len(full_suite()) == 24

    def test_phases_partition_suite(self):
        assert len(single_node_suite()) + len(multi_node_suite()) == 24

    def test_kinds_partition_suite(self):
        assert len(micro_suite()) + len(e2e_suite()) == 24

    def test_unique_names(self):
        names = [s.name for s in full_suite()]
        assert len(set(names)) == len(names)

    def test_lookup(self):
        assert suite_by_name("gemm-flops").kind is BenchmarkKind.MICRO
        with pytest.raises(KeyError):
            suite_by_name("nope")

    def test_table2_families_present(self):
        names = {s.name for s in full_suite()}
        for expected in ("ib-loopback", "mem-bw", "nccl-bw-nvlink", "disk-fio",
                         "resnet-models", "bert-models", "gpt-models",
                         "matmul-allreduce-overlap", "all-pair-rdma"):
            assert expected in names

    def test_metric_count_substantial(self):
        assert total_metric_count() >= 40

    def test_total_duration_hours_scale(self):
        # A full-set validation costs a few hours, per the paper.
        assert 180.0 < total_duration_minutes() < 600.0

    def test_e2e_benchmarks_have_profiles(self):
        for spec in e2e_suite():
            assert spec.e2e_profile is not None

    def test_every_metric_has_positive_base(self):
        for spec in full_suite():
            for metric in spec.metrics:
                assert metric.base_value > 0


class TestSpecValidation:
    def test_duplicate_metric_names_rejected(self):
        metric = MetricSpec(name="m", unit="x", base_value=1.0)
        with pytest.raises(BenchmarkError):
            BenchmarkSpec(name="b", kind=BenchmarkKind.MICRO,
                          phase=Phase.SINGLE_NODE, duration_minutes=1.0,
                          sensitivity={}, metrics=(metric, metric))

    def test_e2e_without_profile_rejected(self):
        metric = MetricSpec(name="m", unit="x", base_value=1.0, series_length=10)
        with pytest.raises(BenchmarkError):
            BenchmarkSpec(name="b", kind=BenchmarkKind.E2E,
                          phase=Phase.SINGLE_NODE, duration_minutes=1.0,
                          sensitivity={}, metrics=(metric,))

    def test_metric_lookup(self):
        spec = suite_by_name("mem-bw")
        assert spec.metric("h2d_bw_gbs").unit == "GB/s"
        with pytest.raises(KeyError):
            spec.metric("nope")


class TestMeasurementModel:
    def test_healthy_node_measures_near_base(self):
        spec = suite_by_name("gemm-flops")
        metric = spec.metric("fp16_tflops")
        node = Node(node_id="n0")
        rng = np.random.default_rng(0)
        values = [measure_metric(spec, metric, node, rng)[0] for _ in range(50)]
        assert np.mean(values) == pytest.approx(metric.base_value, rel=0.03)

    def test_defective_node_measures_lower(self):
        spec = suite_by_name("ib-loopback")
        metric = spec.metrics[0]
        rng = np.random.default_rng(1)
        bad = Node(node_id="bad")
        bad.apply_defect(defect_mode("ib_hca_degraded"), rng)
        good_value = measure_metric(spec, metric, Node(node_id="ok"), rng)[0]
        bad_value = measure_metric(spec, metric, bad, rng)[0]
        assert bad_value < 0.95 * good_value

    def test_latency_polarity(self):
        spec = suite_by_name("cpu-memory-latency")
        metric = spec.metric("memory_latency_ns")
        rng = np.random.default_rng(2)
        bad = Node(node_id="bad")
        bad.apply_defect(defect_mode("dram_latency"), rng)
        good_value = measure_metric(spec, metric, Node(node_id="ok"), rng)[0]
        bad_value = measure_metric(spec, metric, bad, rng)[0]
        assert bad_value > good_value  # slower memory = higher latency

    def test_node_factor_stable_across_runs(self):
        spec = suite_by_name("gemm-flops")
        node = Node(node_id="fixed")
        a = run_benchmark(spec, node, np.random.default_rng(3))
        b = run_benchmark(spec, node, np.random.default_rng(4))
        # Same node: means within run-to-run variation, not node_cv apart.
        for name in a.metrics:
            assert a.metrics[name][0] == pytest.approx(b.metrics[name][0], rel=0.02)

    def test_series_length_override(self):
        spec = suite_by_name("resnet-models")
        node = Node(node_id="n0")
        result = run_benchmark(spec, node, np.random.default_rng(5), n_steps=100)
        assert all(len(series) == 100 for series in result.metrics.values())

    def test_warmup_ramp_visible_in_e2e(self):
        spec = suite_by_name("resnet-models")
        node = Node(node_id="n0")
        result = run_benchmark(spec, node, np.random.default_rng(6), n_steps=400)
        series = result.metrics["fp32_throughput"]
        assert series[:5].mean() < 0.8 * series[-50:].mean()

    def test_invalid_steps_rejected(self):
        spec = suite_by_name("resnet-models")
        with pytest.raises(BenchmarkError):
            run_benchmark(spec, Node(node_id="n0"),
                          np.random.default_rng(7), n_steps=0)

    def test_samples_strictly_positive(self):
        spec = suite_by_name("kernel-launch")
        result = run_benchmark(spec, Node(node_id="n0"), np.random.default_rng(8))
        for series in result.metrics.values():
            assert np.all(series > 0)

    def test_result_sample_lookup(self):
        spec = suite_by_name("mem-bw")
        result = run_benchmark(spec, Node(node_id="n0"), np.random.default_rng(9))
        assert result.sample("h2d_bw_gbs").shape == (1,)
        with pytest.raises(KeyError):
            result.sample("nope")


class TestE2eProfile:
    def test_shape_starts_low_and_recovers(self):
        profile = E2eProfile(warmup_steps=50, period=20, ramp_depth=0.4)
        shape = profile.shape(400)
        assert shape[0] < 0.65
        assert shape[-1] == pytest.approx(1.0, abs=0.05)

    def test_seasonality_has_requested_period(self):
        profile = E2eProfile(warmup_steps=1, period=25,
                             seasonal_amplitude=0.05, ramp_depth=0.0)
        shape = profile.shape(100)
        assert shape[0] == pytest.approx(shape[25], rel=0.02)
