"""Unit tests for criteria persistence and fault injection."""

import numpy as np
import pytest

from repro.benchsuite.faults import FaultInjectingRunner
from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import suite_by_name
from repro.core.persistence import load_criteria, save_criteria
from repro.core.validator import Validator
from repro.exceptions import CriteriaError
from repro.hardware.node import Node


def small_suite():
    return (suite_by_name("ib-loopback"), suite_by_name("mem-bw"))


def trained_validator(seed=0):
    validator = Validator(small_suite(), runner=SuiteRunner(seed=seed))
    nodes = [Node(node_id=f"n{i}") for i in range(10)]
    validator.learn_criteria(nodes)
    return validator, nodes


class TestPersistence:
    def test_round_trip_preserves_decisions(self, tmp_path):
        validator, nodes = trained_validator()
        path = tmp_path / "criteria.json"
        save_criteria(validator, path)

        fresh = Validator(small_suite(), runner=SuiteRunner(seed=0))
        loaded = load_criteria(fresh, path)
        assert loaded == len(validator.criteria)
        report_a = validator.validate(nodes)
        report_b = fresh.validate(nodes)
        assert report_a.defective_nodes == report_b.defective_nodes

    def test_round_trip_preserves_values(self, tmp_path):
        validator, _ = trained_validator()
        path = tmp_path / "criteria.json"
        save_criteria(validator, path)
        fresh = Validator(small_suite())
        load_criteria(fresh, path)
        for key, original in validator.criteria.items():
            restored = fresh.criteria[key]
            assert np.allclose(np.asarray(original.criteria),
                               np.asarray(restored.criteria))
            assert restored.alpha == original.alpha
            assert restored.higher_is_better == original.higher_is_better

    def test_unknown_benchmarks_skipped(self, tmp_path):
        validator, _ = trained_validator()
        path = tmp_path / "criteria.json"
        save_criteria(validator, path)
        shrunken = Validator((suite_by_name("ib-loopback"),))
        loaded = load_criteria(shrunken, path)
        assert loaded == 1  # only the loopback metric

    def test_empty_validator_rejected(self, tmp_path):
        validator = Validator(small_suite())
        with pytest.raises(CriteriaError):
            save_criteria(validator, tmp_path / "x.json")

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(CriteriaError):
            load_criteria(Validator(small_suite()), path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "v9.json"
        path.write_text('{"version": 9, "entries": []}')
        with pytest.raises(CriteriaError):
            load_criteria(Validator(small_suite()), path)


class TestFaultInjection:
    def test_no_faults_means_identical_behavior(self):
        spec = suite_by_name("ib-loopback")
        node = Node(node_id="n0")
        plain = SuiteRunner(seed=1).run(spec, node)
        faulty = FaultInjectingRunner(seed=1).run(spec, node)
        assert np.allclose(plain.sample("ib_write_bw_gbs"),
                           faulty.sample("ib_write_bw_gbs"))

    def test_crash_produces_empty_samples(self):
        runner = FaultInjectingRunner(crash_rate=1.0, seed=2)
        result = runner.run(suite_by_name("ib-loopback"), Node(node_id="n0"))
        assert result.sample("ib_write_bw_gbs").size == 0
        assert runner.injected[0][2] == "crash"

    def test_hang_produces_nan(self):
        runner = FaultInjectingRunner(hang_rate=1.0, seed=3)
        result = runner.run(suite_by_name("mem-bw"), Node(node_id="n0"))
        assert np.all(np.isnan(result.sample("h2d_bw_gbs")))

    def test_hang_handles_integer_metric_series(self, monkeypatch):
        """Regression: the hang fault used ``np.full_like(series,
        np.nan)``, which raises on an integer-dtype series (NaN cannot
        be cast to int) -- it must coerce to float instead."""
        from repro.benchsuite.base import BenchmarkResult

        original = SuiteRunner._execute

        def int_execute(self, spec, node):
            result = original(self, spec, node)
            return BenchmarkResult(
                benchmark=result.benchmark, node_id=result.node_id,
                metrics={name: np.asarray(np.round(series), dtype=np.int64)
                         for name, series in result.metrics.items()})

        monkeypatch.setattr(SuiteRunner, "_execute", int_execute)
        runner = FaultInjectingRunner(hang_rate=1.0, seed=3)
        result = runner.run(suite_by_name("mem-bw"), Node(node_id="n0"))
        corrupted = result.sample("h2d_bw_gbs")
        assert corrupted.dtype.kind == "f"
        assert np.all(np.isnan(corrupted))

    def test_fault_scoping_to_nodes(self):
        runner = FaultInjectingRunner(crash_rate=1.0, fault_nodes={"bad"}, seed=4)
        ok = runner.run(suite_by_name("mem-bw"), Node(node_id="good"))
        assert ok.sample("h2d_bw_gbs").size == 1
        broken = runner.run(suite_by_name("mem-bw"), Node(node_id="bad"))
        assert broken.sample("h2d_bw_gbs").size == 0

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultInjectingRunner(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjectingRunner(crash_rate=0.6, hang_rate=0.6)

    def test_validator_flags_crashed_nodes(self):
        """End to end: execution failures surface as defects."""
        validator = Validator(small_suite(), runner=SuiteRunner(seed=5))
        nodes = [Node(node_id=f"n{i}") for i in range(8)]
        validator.learn_criteria(nodes)
        validator.runner = FaultInjectingRunner(crash_rate=1.0,
                                                fault_nodes={"n3"}, seed=6)
        report = validator.validate(nodes)
        assert report.defective_nodes == ["n3"]
        reasons = {v.reason for v in report.violations if v.node_id == "n3"}
        assert any("execution-failure" in r for r in reasons)


class TestPersistenceHardening:
    """Atomic writes, checksum verification, backup rollback."""

    def test_save_leaves_no_tmp_file(self, tmp_path):
        validator, _ = trained_validator()
        path = tmp_path / "criteria.json"
        save_criteria(validator, path)
        save_criteria(validator, path)  # overwrite path too
        leftovers = {p.name for p in tmp_path.iterdir()}
        assert leftovers == {"criteria.json", "criteria.json.bak"}

    def test_payload_carries_version_and_checksum(self, tmp_path):
        import json

        validator, _ = trained_validator()
        path = tmp_path / "criteria.json"
        save_criteria(validator, path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 3
        assert isinstance(payload["checksum"], int)

    def test_bit_flip_detected_by_checksum(self, tmp_path):
        import json

        validator, _ = trained_validator()
        path = tmp_path / "criteria.json"
        save_criteria(validator, path, keep_backup=False)
        payload = json.loads(path.read_text())
        # Still valid JSON, still version 2 -- but one value nudged.
        payload["entries"][0]["criteria"][0] += 1.0
        path.write_text(json.dumps(payload))
        with pytest.raises(CriteriaError, match="checksum"):
            load_criteria(Validator(small_suite()), path,
                          fallback_to_backup=False)

    def test_corrupt_main_file_rolls_back_to_backup(self, tmp_path):
        validator, nodes = trained_validator()
        path = tmp_path / "criteria.json"
        save_criteria(validator, path)   # no backup yet
        save_criteria(validator, path)   # previous file becomes .bak
        path.write_text(path.read_text()[:40])  # truncate mid-document

        fresh = Validator(small_suite(), runner=SuiteRunner(seed=0))
        loaded = load_criteria(fresh, path)
        assert loaded == len(validator.criteria)
        assert (fresh.validate(nodes).defective_nodes
                == validator.validate(nodes).defective_nodes)

    def test_corrupt_main_and_backup_raise(self, tmp_path):
        validator, _ = trained_validator()
        path = tmp_path / "criteria.json"
        save_criteria(validator, path)
        save_criteria(validator, path)
        path.write_text("garbage")
        (tmp_path / "criteria.json.bak").write_text("also garbage")
        with pytest.raises(CriteriaError):
            load_criteria(Validator(small_suite()), path)

    def test_version_1_payload_still_loads(self, tmp_path):
        import json

        from repro.core.persistence import criteria_payload

        validator, nodes = trained_validator()
        payload = criteria_payload(validator)
        legacy = {"version": 1, "entries": payload["entries"]}  # no checksum
        path = tmp_path / "criteria.json"
        path.write_text(json.dumps(legacy))

        fresh = Validator(small_suite(), runner=SuiteRunner(seed=0))
        loaded = load_criteria(fresh, path)
        assert loaded == len(validator.criteria)
