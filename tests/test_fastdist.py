"""Unit tests for the batched distance layer, caching and worker knobs."""

import numpy as np
import pytest

from repro.benchsuite.runner import SuiteRunner
from repro.core import _cmerge, fastdist
from repro.core.backend import pairwise_similarity_matrix
from repro.core.distance import (
    one_sided_similarity,
    pairwise_similarity_matrix_reference,
    similarity,
)
from repro.core.fastdist import (
    SortedSampleBatch,
    batch_gap_integrals,
    one_vs_many_similarities,
    pairwise_similarities,
)
from repro.core.parallel import process_map, resolve_workers
from repro.core.validator import Validator
from repro.exceptions import InvalidSampleError, ServiceError
from repro.service.pool import PoolConfig
from tests.test_validator import make_fleet, tiny_suite


class TestSortedSampleBatch:
    def test_rows_are_sorted_and_padded(self):
        batch = SortedSampleBatch.from_samples(
            [np.array([3.0, 1.0, 2.0]), np.array([5.0])]
        )
        assert batch.n == 2
        assert batch.width == 3
        assert np.array_equal(batch.row(0), [1.0, 2.0, 3.0])
        assert np.array_equal(batch.row(1), [5.0])
        assert list(batch.sizes) == [3, 1]
        assert batch.mins[1] == batch.maxs[1] == 5.0

    def test_take_preserves_rows(self):
        batch = SortedSampleBatch.from_samples(
            [np.array([1.0, 2.0]), np.array([3.0, 4.0]), np.array([5.0, 6.0])]
        )
        sub = batch.take(np.array([2, 0]))
        assert sub.n == 2
        assert np.array_equal(sub.row(0), [5.0, 6.0])
        assert np.array_equal(sub.row(1), [1.0, 2.0])

    def test_rejects_empty_and_nonfinite(self):
        with pytest.raises(InvalidSampleError):
            SortedSampleBatch.from_samples([np.array([])])
        with pytest.raises(InvalidSampleError):
            SortedSampleBatch.from_samples([np.array([1.0, np.nan])])


class TestDispatchPaths:
    """The three pairwise paths (C, NumPy, ragged) agree with the scalar."""

    def _fleet(self, seed=0, n=8, m=25):
        rng = np.random.default_rng(seed)
        return [rng.normal(100, 3, size=m) for _ in range(n)]

    def test_uniform_matches_reference(self):
        samples = self._fleet()
        got = pairwise_similarity_matrix(samples)
        want = pairwise_similarity_matrix_reference(samples)
        assert np.max(np.abs(got - want)) < 1e-9

    def test_numpy_path_matches_reference(self, monkeypatch):
        monkeypatch.setattr(
            fastdist, "_pairwise_integrals_uniform_c", lambda data: None
        )
        samples = self._fleet(seed=1)
        got = pairwise_similarity_matrix(samples)
        want = pairwise_similarity_matrix_reference(samples)
        assert np.max(np.abs(got - want)) < 1e-9

    def test_ragged_path_matches_reference(self):
        rng = np.random.default_rng(2)
        samples = [rng.normal(10, 1, size=k) for k in (5, 17, 1, 9, 30)]
        got = pairwise_similarity_matrix(samples)
        want = pairwise_similarity_matrix_reference(samples)
        assert np.max(np.abs(got - want)) < 1e-9

    def test_no_ckernel_env_disables_compiled_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
        assert _cmerge.load() is None
        assert not _cmerge.available()
        # Dispatch still produces correct results through the NumPy path.
        samples = self._fleet(seed=3)
        got = pairwise_similarity_matrix(samples)
        want = pairwise_similarity_matrix_reference(samples)
        assert np.max(np.abs(got - want)) < 1e-9

    def test_one_vs_many_directions(self):
        samples = self._fleet(seed=4)
        batch = SortedSampleBatch.from_samples(samples)
        ref = np.sort(samples[0])
        for direction, higher in ((1, True), (-1, False)):
            got = one_vs_many_similarities(
                batch, ref, signed_direction=direction, assume_sorted=True
            )
            want = [
                one_sided_similarity(s, ref, higher_is_better=higher)
                for s in samples
            ]
            assert np.max(np.abs(got - np.array(want))) < 1e-9

    def test_one_vs_many_chunked_matches_unchunked(self, monkeypatch):
        samples = self._fleet(seed=5, n=12, m=20)
        batch = SortedSampleBatch.from_samples(samples)
        ref = np.sort(np.concatenate(samples))
        plain = one_vs_many_similarities(batch, ref, assume_sorted=True)
        monkeypatch.setattr(fastdist, "_CHUNK_ELEMENTS", 64)
        chunked = one_vs_many_similarities(batch, ref, assume_sorted=True)
        assert np.array_equal(plain, chunked)

    def test_batch_rowwise_matches_scalar(self):
        samples = self._fleet(seed=6, n=6)
        batch = SortedSampleBatch.from_samples(samples)
        left = batch.take(np.arange(batch.n - 1))
        right = batch.take(np.arange(1, batch.n))
        got = 1.0 - batch_gap_integrals(left, right)
        want = [similarity(samples[i], samples[i + 1]) for i in range(5)]
        assert np.max(np.abs(got - np.array(want))) < 1e-9

    def test_pairwise_similarities_diag_is_zero_distance(self):
        batch = SortedSampleBatch.from_samples(self._fleet(seed=7, n=4))
        sims = pairwise_similarities(batch)
        assert np.allclose(np.diag(sims), 1.0)
        assert np.allclose(sims, sims.T)


class TestCriteriaCache:
    def test_cache_populated_and_reused(self):
        validator = Validator(tiny_suite(), runner=SuiteRunner(seed=1))
        fleet = make_fleet()
        validator.learn_criteria(fleet)
        validator.validate(fleet)
        key = ("unknown", "tiny-loopback", "bw")
        assert key in validator._criteria_cache
        cached_criteria, cached_sample = validator._criteria_cache[key]
        assert cached_criteria is validator.criteria[key]
        again = validator._criteria_reference(key, validator.criteria[key])
        assert again is cached_sample

    def test_relearn_invalidates_cache(self):
        validator = Validator(tiny_suite(), runner=SuiteRunner(seed=1))
        fleet = make_fleet()
        validator.learn_criteria(fleet)
        validator.validate(fleet)
        key = ("unknown", "tiny-loopback", "bw")
        stale_criteria, stale_sample = validator._criteria_cache[key]
        validator.learn_criteria(fleet)
        assert key not in validator._criteria_cache
        validator.validate(fleet)
        fresh_criteria, fresh_sample = validator._criteria_cache[key]
        assert fresh_criteria is validator.criteria[key]
        assert fresh_criteria is not stale_criteria
        assert fresh_sample is not stale_sample

    def test_check_results_matches_sequential_check_result(self):
        validator = Validator(tiny_suite(), runner=SuiteRunner(seed=3))
        fleet = make_fleet(n_healthy=10, defects=("ib_hca_degraded",))
        validator.learn_criteria(fleet)
        spec = validator.spec("tiny-loopback")
        results = [validator.runner.run(spec, node) for node in fleet]
        batched = validator.check_results(spec, results)
        sequential = [
            v for result in results
            for v in validator.check_result(spec, result)
        ]
        assert len(batched) == len(sequential)
        for got, want in zip(batched, sequential):
            assert got.node_id == want.node_id
            assert got.metric == want.metric
            assert got.similarity == pytest.approx(want.similarity)
            assert got.reason == want.reason


class TestWorkers:
    def test_resolve_workers_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(2) == 2

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3

    def test_resolve_workers_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(default=5) == 5

    def test_resolve_workers_rejects_bad_values(self, monkeypatch):
        with pytest.raises(ServiceError):
            resolve_workers(0)
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(ServiceError):
            resolve_workers()
        monkeypatch.setenv("REPRO_WORKERS", "-1")
        with pytest.raises(ServiceError):
            resolve_workers()

    def test_process_map_inline(self):
        assert process_map(abs, [-1, 2, -3], workers=1) == [1, 2, 3]

    def test_process_map_parallel(self):
        assert process_map(abs, [-1, 2, -3], workers=2) == [1, 2, 3]

    def test_pool_config_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert PoolConfig().max_workers == 2
        monkeypatch.delenv("REPRO_WORKERS")
        assert PoolConfig().max_workers == 8
        assert PoolConfig(max_workers=3).max_workers == 3

    def test_validator_parallel_learning_is_deterministic(self):
        fleet = make_fleet()
        reference = Validator(tiny_suite(), runner=SuiteRunner(seed=9))
        reference.learn_criteria(fleet)
        wide = Validator(tiny_suite(), runner=SuiteRunner(seed=9))
        wide.learn_criteria(fleet, workers=2)
        assert set(reference.criteria) == set(wide.criteria)
        for key, want in reference.criteria.items():
            got = wide.criteria[key]
            assert np.array_equal(got.criteria, want.criteria)
            assert got.higher_is_better == want.higher_is_better


class TestProfileFlag:
    def test_profile_dumps_stats(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.pstats"
        code = main([
            "--profile", "--profile-out", str(out),
            "traces", "--nodes", "4", "--hours", "24",
            "--incidents-out", str(tmp_path / "inc.jsonl"),
            "--allocations-out", str(tmp_path / "alloc.jsonl"),
        ])
        assert code == 0
        assert out.exists()
        err = capsys.readouterr().err
        assert "cumulative" in err
