"""The incremental criteria engine vs. the exact Algorithm 2 path.

Three layers of guarantees:

* **Agreement** -- on a fleet with separated healthy/defective
  populations, the sketch + landmark-coreset learn produces the same
  verdict set as the exact learn, and every per-window similarity
  (and the criteria itself) deviates from the exact/scalar value by
  less than the sketch's property-tested ``distance_bound``.
* **Delta stability** (hypothesis property) -- a delta re-learn over
  perturbed inputs matches a from-scratch exact learn on those same
  inputs: identical ``excluded_indices``/``defect_indices``, criteria
  within the bound.
* **State machine** -- cached short-circuit, exact floor, forced
  exact mode, and every structural fallback from delta to full; plus
  the service-level guarantee that a forced-bad approximation is
  journaled as ``criteria-rollback`` and pins the next learn to the
  exact path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import learn_criteria
from repro.core.distance import similarity
from repro.core.incremental import (
    CriteriaState,
    IncrementalConfig,
    learn_criteria_incremental,
)
from repro.core.sketch import distance_bound
from repro.exceptions import CriteriaError

ALPHA = 0.95

# Small coreset + low exact floor so tests exercise the sketch path at
# test-sized fleets.
CONFIG = IncrementalConfig(exact_below=16, n_candidates=64, n_landmarks=16)


def fleet_windows(n=300, defects=(5, 77, 150), steps=160, seed=0,
                  shift=0.8):
    rng = np.random.default_rng(seed)
    windows = [rng.normal(100.0, 1.0, steps) for _ in range(n)]
    for idx in defects:
        if idx < n:
            windows[idx] = rng.normal(100.0 * shift, 1.0, steps)
    return windows


class TestFullPathAgreement:
    def test_same_verdicts_as_exact(self):
        windows = fleet_windows()
        exact = learn_criteria(windows, ALPHA)
        approx, state = learn_criteria_incremental(windows, ALPHA,
                                                   config=CONFIG)
        assert state.path == "full"
        assert approx.defect_indices == exact.defect_indices
        assert approx.healthy_indices == exact.healthy_indices
        assert approx.excluded_indices == exact.excluded_indices

    def test_similarities_within_bound_of_scalar_oracle(self):
        windows = fleet_windows(n=120)
        approx, _ = learn_criteria_incremental(windows, ALPHA, config=CONFIG)
        bound = distance_bound(CONFIG.sketch_size)
        # The scalar oracle scored against the *approximate* criteria:
        # isolates the sketch error from any criteria drift.
        for idx in (0, 3, 5, 60, 77, 119):
            oracle = similarity(approx.criteria, windows[idx])
            assert abs(approx.similarities[idx] - oracle) <= bound

    def test_criteria_within_bound_of_exact(self):
        windows = fleet_windows()
        exact = learn_criteria(windows, ALPHA)
        approx, _ = learn_criteria_incremental(windows, ALPHA, config=CONFIG)
        assert similarity(np.sort(approx.criteria),
                          np.sort(np.asarray(exact.criteria))) \
            > 1.0 - distance_bound(CONFIG.sketch_size)

    def test_medoid_centroid_returns_member_window(self):
        windows = fleet_windows(n=120)
        result, _ = learn_criteria_incremental(windows, ALPHA,
                                               centroid="medoid",
                                               config=CONFIG)
        assert result.centroid_index is not None
        np.testing.assert_array_equal(
            result.criteria, np.sort(windows[result.centroid_index]))

    def test_dirty_windows_excluded_like_exact(self):
        from repro.core.backend import get_backend

        backend = get_backend("mask")
        windows = fleet_windows(n=100)
        windows[4] = np.full(160, np.nan)
        windows[9] = np.array([])
        with pytest.warns(RuntimeWarning):
            exact = learn_criteria(windows, ALPHA, backend=backend)
        with pytest.warns(RuntimeWarning):
            approx, _ = learn_criteria_incremental(windows, ALPHA,
                                                   backend=backend,
                                                   config=CONFIG)
        assert approx.excluded_indices == exact.excluded_indices == (4, 9)
        assert approx.defect_indices == exact.defect_indices

    def test_alpha_too_strict_raises(self):
        rng = np.random.default_rng(1)
        windows = [rng.normal(100.0 * (1 + i), 0.1, 64) for i in range(40)]
        with pytest.raises(CriteriaError):
            learn_criteria_incremental(windows, 0.999999, centroid="mean",
                                       config=IncrementalConfig(
                                           exact_below=4))


class TestStateMachine:
    def test_exact_floor(self):
        windows = fleet_windows(n=12, defects=(3,))
        result, state = learn_criteria_incremental(windows, ALPHA,
                                                   config=CONFIG)
        assert state.path == "exact" and state.exact
        assert result.defect_indices == (3,)

    def test_cached_short_circuit(self):
        windows = fleet_windows(n=60)
        _, state = learn_criteria_incremental(windows, ALPHA, config=CONFIG)
        result2, state2 = learn_criteria_incremental(windows, ALPHA,
                                                     config=CONFIG,
                                                     state=state)
        assert state2.path == "cached"
        assert result2 is state.result

    def test_forced_exact_mode(self):
        windows = fleet_windows(n=60)
        _, state = learn_criteria_incremental(windows, ALPHA, config=CONFIG)
        assert state.path == "full"
        # Same inputs, but mode="exact" must not serve the cached
        # approximate result -- this is the post-rollback path.
        result, state2 = learn_criteria_incremental(windows, ALPHA,
                                                    config=CONFIG,
                                                    state=state,
                                                    mode="exact")
        assert state2.path == "exact" and state2.exact
        exact = learn_criteria(windows, ALPHA)
        assert result.defect_indices == exact.defect_indices

    def test_delta_path_taken_for_small_changes(self):
        windows = fleet_windows()
        _, state = learn_criteria_incremental(windows, ALPHA, config=CONFIG)
        rng = np.random.default_rng(9)
        windows[10] = rng.normal(100.0, 1.0, 160)
        _, state2 = learn_criteria_incremental(windows, ALPHA, config=CONFIG,
                                               state=state)
        assert state2.path == "delta"
        assert state2.delta_steps == 1

    def test_delta_threshold_falls_back_to_full(self):
        windows = fleet_windows(n=100)
        _, state = learn_criteria_incremental(windows, ALPHA, config=CONFIG)
        rng = np.random.default_rng(10)
        for i in range(40):  # 40% > delta_threshold=0.25
            windows[i] = rng.normal(100.0, 1.0, 160)
        _, state2 = learn_criteria_incremental(windows, ALPHA, config=CONFIG,
                                               state=state)
        assert state2.path == "full"

    def test_telemetry_flip_falls_back_to_full(self):
        from repro.core.backend import get_backend

        backend = get_backend("mask")
        windows = fleet_windows(n=100)
        _, state = learn_criteria_incremental(windows, ALPHA,
                                              backend=backend, config=CONFIG)
        windows[7] = np.full(160, np.nan)  # usable -> unusable flip
        with pytest.warns(RuntimeWarning):
            result, state2 = learn_criteria_incremental(
                windows, ALPHA, backend=backend, config=CONFIG, state=state)
        assert state2.path == "full"
        assert 7 in result.excluded_indices

    def test_max_delta_steps_bounds_staleness(self):
        config = IncrementalConfig(exact_below=16, n_candidates=64,
                                   n_landmarks=16, max_delta_steps=2)
        windows = fleet_windows(n=100)
        _, state = learn_criteria_incremental(windows, ALPHA, config=config)
        rng = np.random.default_rng(11)
        paths = []
        for step in range(3):
            windows[step] = rng.normal(100.0, 1.0, 160)
            _, state = learn_criteria_incremental(windows, ALPHA,
                                                  config=config, state=state)
            paths.append(state.path)
        assert paths == ["delta", "delta", "full"]
        assert state.delta_steps == 0  # full learn resets the counter

    def test_grown_window_falls_back_to_full(self):
        # A changed row that outgrows the padded sketch batch cannot be
        # patched in place.
        config = IncrementalConfig(exact_below=16, n_candidates=32,
                                   n_landmarks=8, sketch_size=128)
        windows = fleet_windows(n=60, steps=64)  # sketches stored exactly
        _, state = learn_criteria_incremental(windows, ALPHA, config=config)
        windows[3] = np.random.default_rng(12).normal(100.0, 1.0, 100)
        _, state2 = learn_criteria_incremental(windows, ALPHA, config=config,
                                               state=state)
        assert state2.path == "full"

    def test_incompatible_params_ignore_state(self):
        windows = fleet_windows(n=60)
        _, state = learn_criteria_incremental(windows, ALPHA, config=CONFIG)
        _, state2 = learn_criteria_incremental(windows, 0.9, config=CONFIG,
                                               state=state)
        assert state2.path == "full"  # alpha changed: state unusable

    def test_unknown_mode_rejected(self):
        with pytest.raises(CriteriaError):
            learn_criteria_incremental([[1.0]], ALPHA, mode="bogus")

    def test_config_validation(self):
        for kwargs in ({"sketch_size": 1}, {"n_landmarks": 0},
                       {"n_candidates": 0}, {"delta_threshold": 1.5},
                       {"max_criteria_size": 1}):
            with pytest.raises(CriteriaError):
                IncrementalConfig(**kwargs)

    def test_exact_state_carries_no_sketches(self):
        windows = fleet_windows(n=8, defects=())
        _, state = learn_criteria_incremental(windows, ALPHA, config=CONFIG)
        assert state.exact
        with pytest.raises(CriteriaError):
            state.sketch_batch()


# ----------------------------------------------------------------------
# Delta-vs-exact stability (the satellite property test)
# ----------------------------------------------------------------------

perturbation = st.fixed_dictionaries({
    "seed": st.integers(0, 2**31 - 1),
    "n_redraw": st.integers(min_value=0, max_value=20),
    "heal": st.booleans(),     # one planted defect becomes healthy
    "break_one": st.booleans(),  # one healthy window becomes defective
})


class TestDeltaStability:
    @given(perturbation)
    @settings(max_examples=15, deadline=None)
    def test_delta_relearn_matches_fresh_exact_learn(self, p):
        """Exact learn vs. delta re-learn over the same inputs agree.

        ``excluded_indices`` and ``defect_indices`` must be identical,
        and the two criteria must be within the sketch distance bound
        of each other -- the engine's whole contract in one property.
        """
        windows = fleet_windows(n=260, defects=(5, 77, 150), seed=3)
        _, state = learn_criteria_incremental(windows, ALPHA, config=CONFIG)

        rng = np.random.default_rng(p["seed"])
        for idx in rng.choice(260, size=p["n_redraw"], replace=False):
            windows[idx] = rng.normal(100.0, 1.0, 160)
        if p["heal"]:
            windows[77] = rng.normal(100.0, 1.0, 160)
        if p["break_one"]:
            windows[30] = rng.normal(80.0, 1.0, 160)

        delta_result, delta_state = learn_criteria_incremental(
            windows, ALPHA, config=CONFIG, state=state)
        assert delta_state.path in ("delta", "cached")

        exact = learn_criteria(windows, ALPHA)
        assert delta_result.excluded_indices == exact.excluded_indices
        assert delta_result.defect_indices == exact.defect_indices
        assert similarity(np.sort(np.asarray(delta_result.criteria)),
                          np.sort(np.asarray(exact.criteria))) \
            > 1.0 - distance_bound(CONFIG.sketch_size)


# ----------------------------------------------------------------------
# Forced-bad approximation through the service rollout gate
# ----------------------------------------------------------------------

class TestApproximateRollback:
    def _build_service(self, tmp_path):
        from repro.benchsuite.suite import suite_by_name
        from repro.core.selector import Selector
        from repro.core.system import Anubis
        from repro.core.validator import Validator
        from repro.hardware.fleet import build_fleet
        from repro.quality import RolloutConfig
        from repro.service import PoolConfig, ServiceConfig, ValidationService
        from repro.simulation import analytic_coverage_table, suite_durations
        from repro.simulation.generator import generate_incident_trace
        from repro.survival import extract_status_samples
        from repro.survival.exponential import ExponentialModel
        from tests.test_quality_rollout import PoisoningRunner

        suite = (suite_by_name("ib-loopback"), suite_by_name("mem-bw"))
        fleet = build_fleet(8, seed=5)
        runner = PoisoningRunner(seed=9)
        # exact_below=2 forces even this 8-node fleet onto the
        # approximate sketch path.
        validator = Validator(suite, runner=runner,
                              incremental=IncrementalConfig(
                                  exact_below=2, n_candidates=8,
                                  n_landmarks=4))
        trace = generate_incident_trace(50, 800.0, seed=11)
        model = ExponentialModel().fit(extract_status_samples(trace))
        selector = Selector(model, analytic_coverage_table(suite),
                            suite_durations(suite), p0=0.05)
        config = ServiceConfig(pool=PoolConfig(max_workers=2),
                               rollout=RolloutConfig())
        service = ValidationService(Anubis(validator, selector), fleet.nodes,
                                    journal_dir=str(tmp_path), config=config)
        return service, fleet, runner

    def test_bad_approximation_rolled_back_and_journaled(self, tmp_path):
        service, fleet, runner = self._build_service(tmp_path)
        validator = service.anubis.validator

        decisions = service.learn_criteria(fleet.nodes)
        assert decisions and all(d.accepted for d in decisions)
        assert all(d.learn_path == "full" for d in decisions)
        before = dict(validator.criteria)

        runner.poisoning = True
        decisions = service.learn_criteria(fleet.nodes)
        assert decisions and all(not d.accepted for d in decisions)
        assert validator.criteria == before  # rolled back, object for object

        rollbacks = [r for r in service.store.replay()
                     if r.kind == "criteria-rollback"]
        assert rollbacks
        # The journal attributes each rollback to the approximate path
        # that produced the rejected candidate.
        assert all(r.payload["learn_path"] in ("full", "delta")
                   for r in rollbacks)

        # The tainted engine state is gone and the next learn for every
        # rolled-back key is pinned to the exact path.
        runner.poisoning = False
        decisions = service.learn_criteria(fleet.nodes)
        assert decisions and all(d.accepted for d in decisions)
        assert all(d.learn_path == "exact" for d in decisions)

    def test_criteria_learn_records_journaled(self, tmp_path):
        service, fleet, _runner = self._build_service(tmp_path)
        service.learn_criteria(fleet.nodes)
        learns = [r for r in service.store.replay()
                  if r.kind == "criteria-learn"]
        assert len(learns) == 1
        entries = learns[0].payload["learned"]
        assert entries and all(e["path"] == "full" for e in entries)
        assert all(e["seconds"] >= 0.0 for e in entries)
