"""Property tests: vectorized fastdist kernels are exact vs. the scalar
reference (Eq. 2-4), including the degenerate cases the scalar path has
to special-case (single values, all-identical samples, heavy ties,
negative values, unequal lengths, both one-sided orientations)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fastdist
from repro.core.backend import pairwise_similarity_matrix
from repro.core.distance import (
    one_sided_similarity,
    pairwise_similarity_matrix_reference,
    similarity,
)
from repro.core.fastdist import (
    SortedSampleBatch,
    one_vs_many_similarities,
)

TOL = 1e-9

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


def sample_strategy(min_size=1, max_size=40):
    """One sample; shrunk value pool so duplicates are common."""
    pool = st.one_of(
        finite,
        st.integers(min_value=-5, max_value=5).map(float),  # tie-heavy
    )
    return st.lists(pool, min_size=min_size, max_size=max_size).map(
        lambda xs: np.array(xs, dtype=float)
    )


uniform_fleet = st.integers(min_value=1, max_value=30).flatmap(
    lambda m: st.lists(sample_strategy(min_size=m, max_size=m),
                       min_size=2, max_size=7)
)

ragged_fleet = st.lists(sample_strategy(), min_size=2, max_size=7)


def _assert_pairwise_exact(samples):
    want = pairwise_similarity_matrix_reference(samples)
    got = pairwise_similarity_matrix(samples)
    assert np.max(np.abs(got - want)) < TOL


@given(uniform_fleet)
@settings(max_examples=60, deadline=None)
def test_uniform_pairwise_matches_scalar(samples):
    _assert_pairwise_exact(samples)


@given(uniform_fleet)
@settings(max_examples=40, deadline=None)
def test_numpy_abel_path_matches_scalar(samples):
    # Force the NumPy Abel-summation path even when the C kernel exists.
    batch = SortedSampleBatch.from_samples(samples)
    integrals = fastdist._pairwise_integrals_uniform(batch.data)
    got = 1.0 - fastdist._normalize(
        integrals,
        batch.mins[:, None], batch.maxs[:, None],
        batch.mins[None, :], batch.maxs[None, :],
    )
    np.fill_diagonal(got, 1.0)
    want = pairwise_similarity_matrix_reference(samples)
    assert np.max(np.abs(got - want)) < TOL


@given(ragged_fleet)
@settings(max_examples=60, deadline=None)
def test_ragged_pairwise_matches_scalar(samples):
    _assert_pairwise_exact(samples)


@given(st.lists(st.builds(np.full,
                          st.integers(min_value=1, max_value=20),
                          finite),
                min_size=2, max_size=6))
@settings(max_examples=40, deadline=None)
def test_all_identical_samples(samples):
    _assert_pairwise_exact(samples)


@given(st.lists(finite.map(lambda v: np.array([v])),
                min_size=2, max_size=6))
@settings(max_examples=40, deadline=None)
def test_single_value_samples(samples):
    _assert_pairwise_exact(samples)


@given(ragged_fleet, sample_strategy(), st.sampled_from([True, False]))
@settings(max_examples=60, deadline=None)
def test_one_vs_many_matches_one_sided_scalar(samples, reference, higher):
    batch = SortedSampleBatch.from_samples(samples)
    direction = 1 if higher else -1
    got = one_vs_many_similarities(
        batch, np.sort(reference), signed_direction=direction,
        assume_sorted=True,
    )
    want = np.array([
        one_sided_similarity(s, reference, higher_is_better=higher)
        for s in samples
    ])
    assert np.max(np.abs(got - want)) < TOL


@given(ragged_fleet, sample_strategy())
@settings(max_examples=60, deadline=None)
def test_one_vs_many_two_sided_matches_scalar(samples, reference):
    batch = SortedSampleBatch.from_samples(samples)
    got = one_vs_many_similarities(batch, np.sort(reference),
                                   assume_sorted=True)
    want = np.array([similarity(s, reference) for s in samples])
    assert np.max(np.abs(got - want)) < TOL


@given(uniform_fleet)
@settings(max_examples=40, deadline=None)
def test_pairwise_symmetry_and_bounds(samples):
    got = pairwise_similarity_matrix(samples)
    assert np.allclose(got, got.T)
    assert np.all(got >= -TOL)
    assert np.all(got <= 1.0 + TOL)
    assert np.allclose(np.diag(got), 1.0)
