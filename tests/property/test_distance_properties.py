"""Property-based tests for the distance/similarity metrics (Eq. 2-4)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.distance import (
    cdf_distance,
    one_sided_distance,
    similarity,
)

positive_samples = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=60),
    elements=st.floats(min_value=0.1, max_value=1e4, allow_nan=False,
                       allow_infinity=False),
)


@given(positive_samples)
@settings(max_examples=60, deadline=None)
def test_self_distance_is_zero(sample):
    assert cdf_distance(sample, sample) == 0.0


@given(positive_samples, positive_samples)
@settings(max_examples=60, deadline=None)
def test_distance_symmetric(a, b):
    assert cdf_distance(a, b) == cdf_distance(b, a)


@given(positive_samples, positive_samples)
@settings(max_examples=60, deadline=None)
def test_distance_bounded(a, b):
    d = cdf_distance(a, b)
    assert 0.0 <= d <= 1.0


@given(positive_samples, positive_samples,
       st.floats(min_value=0.01, max_value=1000.0))
@settings(max_examples=60, deadline=None)
def test_distance_scale_invariant(a, b, scale):
    d1 = cdf_distance(a, b)
    d2 = cdf_distance(a * scale, b * scale)
    assert abs(d1 - d2) < 1e-9


@given(positive_samples, positive_samples)
@settings(max_examples=60, deadline=None)
def test_one_sided_never_exceeds_symmetric(a, b):
    assert one_sided_distance(a, b) <= cdf_distance(a, b) + 1e-12


@given(positive_samples, positive_samples)
@settings(max_examples=60, deadline=None)
def test_one_sided_directions_sum_to_symmetric(a, b):
    """The two one-sided gaps partition the absolute gap."""
    up = one_sided_distance(a, b, higher_is_better=True)
    down = one_sided_distance(a, b, higher_is_better=False)
    assert abs((up + down) - cdf_distance(a, b)) < 1e-9


@given(positive_samples)
@settings(max_examples=60, deadline=None)
def test_similarity_complement(a):
    b = a * 0.9
    assert abs(similarity(a, b) - (1.0 - cdf_distance(a, b))) < 1e-12


@given(st.floats(min_value=0.1, max_value=1e4),
       st.floats(min_value=0.0, max_value=0.99))
@settings(max_examples=60, deadline=None)
def test_single_value_distance_is_relative_gap(value, gap):
    """For singletons, Eq. 2 degenerates to the relative regression."""
    lower = value * (1.0 - gap)
    d = cdf_distance([lower], [value])
    assert abs(d - gap) < 1e-9


@given(positive_samples, st.floats(min_value=0.5, max_value=0.99))
@settings(max_examples=60, deadline=None)
def test_uniform_degradation_detected_one_sided(sample, factor):
    """A uniformly slower sample is penalized by the one-sided filter."""
    degraded = sample * factor
    assert one_sided_distance(degraded, sample) > 0.0
    # And the healthy direction is free.
    assert one_sided_distance(sample, degraded) == 0.0
