"""Property tests: the non-finite policies of the fastdist kernels.

``nonfinite="mask"`` must be *exactly* equivalent to pre-cleaning the
inputs with ``np.isfinite`` and running the default reject path, for
both the pairwise batch (Eq. 2-3) and the one-vs-reference online
kernel (Eq. 4).  ``nonfinite="reject"`` must keep raising on any
NaN/Inf, so callers that have not opted into masking never silently
score dirty telemetry."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.distance import (
    one_sided_similarity,
    pairwise_similarity_matrix_reference,
    similarity,
)
from repro.core.fastdist import (
    SortedSampleBatch,
    one_vs_many_similarities,
    pairwise_similarities,
)
from repro.exceptions import InvalidSampleError

TOL = 1e-9

NON_FINITE = (np.nan, np.inf, -np.inf)

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


@st.composite
def dirty_sample(draw, min_finite=1, max_size=30):
    """A sample with >= min_finite finite values and 0+ NaN/Inf mixed in."""
    clean = draw(st.lists(finite, min_size=min_finite, max_size=max_size))
    junk = draw(st.lists(st.sampled_from(NON_FINITE), min_size=0, max_size=5))
    merged = clean + junk
    draw(st.randoms(use_true_random=False)).shuffle(merged)
    return np.array(merged, dtype=float)


dirty_fleet = st.lists(dirty_sample(), min_size=2, max_size=6)


def _cleaned(sample):
    return np.asarray(sample, dtype=float)[np.isfinite(sample)]


@given(dirty_fleet)
@settings(max_examples=60, deadline=None)
def test_masked_pairwise_matches_precleaned_scalar(samples):
    batch = SortedSampleBatch.from_samples(samples, nonfinite="mask")
    got = pairwise_similarities(batch)
    want = pairwise_similarity_matrix_reference(
        [_cleaned(s) for s in samples])
    assert np.max(np.abs(got - want)) < TOL


@given(dirty_fleet, dirty_sample())
@settings(max_examples=60, deadline=None)
def test_masked_one_vs_many_matches_precleaned_scalar(samples, reference):
    batch = SortedSampleBatch.from_samples(samples, nonfinite="mask")
    got = one_vs_many_similarities(batch, reference, nonfinite="mask")
    clean_ref = _cleaned(reference)
    want = np.array([similarity(_cleaned(s), clean_ref) for s in samples])
    assert np.max(np.abs(got - want)) < TOL


@given(dirty_fleet, dirty_sample(), st.sampled_from([True, False]))
@settings(max_examples=60, deadline=None)
def test_masked_one_sided_matches_precleaned_scalar(samples, reference,
                                                    higher):
    batch = SortedSampleBatch.from_samples(samples, nonfinite="mask")
    direction = 1 if higher else -1
    got = one_vs_many_similarities(batch, reference,
                                   signed_direction=direction,
                                   nonfinite="mask")
    clean_ref = _cleaned(reference)
    want = np.array([
        one_sided_similarity(_cleaned(s), clean_ref,
                             higher_is_better=higher)
        for s in samples
    ])
    assert np.max(np.abs(got - want)) < TOL


@given(dirty_fleet)
@settings(max_examples=40, deadline=None)
def test_reject_raises_on_any_non_finite(samples):
    assume(any(not np.isfinite(s).all() for s in samples))
    with pytest.raises(InvalidSampleError):
        SortedSampleBatch.from_samples(samples)


@given(dirty_fleet, st.sampled_from(NON_FINITE))
@settings(max_examples=40, deadline=None)
def test_reject_raises_on_dirty_reference(samples, junk):
    batch = SortedSampleBatch.from_samples(samples, nonfinite="mask")
    reference = np.array([1.0, 2.0, junk])
    with pytest.raises(InvalidSampleError):
        one_vs_many_similarities(batch, reference)


@given(st.lists(st.lists(st.sampled_from(NON_FINITE), min_size=1,
                         max_size=4).map(np.array),
                min_size=1, max_size=4))
@settings(max_examples=20, deadline=None)
def test_mask_still_rejects_entirely_non_finite_rows(samples):
    with pytest.raises(InvalidSampleError):
        SortedSampleBatch.from_samples(samples, nonfinite="mask")
