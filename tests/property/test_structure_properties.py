"""Property-based tests for structural invariants: fat-trees, ECDFs,
measurement model and repair accounting."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ecdf import Ecdf
from repro.netval.topo_aware import quick_scan_schedule, validate_quick_scan
from repro.simulation.repair import RepairSystem
from repro.topology.fattree import FatTree, FatTreeConfig


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=80))
@settings(max_examples=80, deadline=None)
def test_ecdf_monotone_and_bounded(values):
    ecdf = Ecdf.from_sample(values)
    xs = np.linspace(min(values) - 1.0, max(values) + 1.0, 50)
    fs = ecdf.evaluate(xs)
    assert np.all(np.diff(fs) >= -1e-15)
    assert fs[0] >= 0.0 and fs[-1] == 1.0


@given(st.integers(min_value=2, max_value=60),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_fattree_partitions(n_nodes, nodes_per_tor, tors_per_pod):
    tree = FatTree(FatTreeConfig(n_nodes=n_nodes, nodes_per_tor=nodes_per_tor,
                                 tors_per_pod=tors_per_pod))
    # Every node in exactly one ToR; every ToR in exactly one pod.
    seen = []
    for tor in range(tree.n_tors):
        seen.extend(tree.nodes_in_tor(tor))
    assert sorted(seen) == tree.nodes
    for pod in range(tree.n_pods):
        for tor in tree.tors_in_pod(pod):
            assert tree.pod_of_tor(tor) == pod
    # Hop distances are consistent with membership.
    for a in tree.nodes[: min(6, n_nodes)]:
        for b in tree.nodes[: min(6, n_nodes)]:
            if a == b:
                continue
            hop = tree.hop_distance(a, b)
            if tree.tor_of(a) == tree.tor_of(b):
                assert hop == 2
            elif tree.pod_of(a) == tree.pod_of(b):
                assert hop == 4
            else:
                assert hop == 6


@given(st.integers(min_value=2, max_value=60),
       st.integers(min_value=2, max_value=8),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_quick_scan_always_valid(n_nodes, nodes_per_tor, tors_per_pod):
    tree = FatTree(FatTreeConfig(n_nodes=n_nodes, nodes_per_tor=nodes_per_tor,
                                 tors_per_pod=tors_per_pod))
    rounds = quick_scan_schedule(tree)
    validate_quick_scan(tree, rounds)
    assert len(rounds) <= tree.tiers


@given(st.integers(min_value=0, max_value=5),
       st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                max_size=20))
@settings(max_examples=60, deadline=None)
def test_repair_system_times_move_forward(buffer_size, event_times):
    repair = RepairSystem(hot_buffer_size=buffer_size, swap_hours=1.0,
                          repair_hours=10.0)
    for now in sorted(event_times):
        outcome = repair.send_to_repair(now)
        assert outcome.available_at > now
    assert repair.swaps_served + repair.swaps_missed == len(event_times)


@given(st.integers(min_value=0, max_value=2 ** 31 - 1),
       st.floats(min_value=0.3, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_measurement_monotone_in_health(seed, health):
    """Lower component health never yields better throughput (in
    expectation-free terms: with identical RNG streams)."""
    from repro.benchsuite.base import run_benchmark
    from repro.benchsuite.suite import suite_by_name
    from repro.hardware.components import Component
    from repro.hardware.node import Node

    spec = suite_by_name("ib-loopback")
    healthy = Node(node_id="same")
    degraded = Node(node_id="same", health={Component.NIC: health})
    a = run_benchmark(spec, healthy, np.random.default_rng(seed))
    b = run_benchmark(spec, degraded, np.random.default_rng(seed))
    assert b.metrics["ib_write_bw_gbs"][0] <= a.metrics["ib_write_bw_gbs"][0] + 1e-9
