"""Property-based tests for Algorithm 1/2 invariants and the schedulers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import learn_criteria
from repro.core.selection import (
    CoverageTable,
    joint_incident_probability,
    select_benchmarks,
)
from repro.netval.pairs import round_robin_schedule, validate_schedule


# ---------------------------------------------------------------------------
# Algorithm 1
# ---------------------------------------------------------------------------
coverage_strategy = st.dictionaries(
    keys=st.sampled_from([f"b{i}" for i in range(6)]),
    values=st.sets(st.integers(min_value=0, max_value=15), max_size=8),
    min_size=1, max_size=6,
)


@given(coverage_strategy)
@settings(max_examples=80, deadline=None)
def test_coverage_monotone_in_subset(found):
    table = CoverageTable(found={k: set(v) for k, v in found.items()})
    names = table.benchmarks
    running = []
    previous = 0.0
    for name in names:
        running.append(name)
        current = table.coverage(running)
        assert current >= previous - 1e-12
        previous = current
    assert table.coverage(names) <= 1.0 + 1e-12


@given(coverage_strategy,
       st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=8),
       st.floats(min_value=0.0, max_value=0.5))
@settings(max_examples=80, deadline=None)
def test_selection_invariants(found, probs, p0):
    table = CoverageTable(found={k: set(v) for k, v in found.items()})
    durations = {name: 1.0 + i for i, name in enumerate(table.benchmarks)}
    result = select_benchmarks(probs, durations, table, p0)
    # Subset members are unique and known.
    assert len(set(result.subset)) == len(result.subset)
    assert set(result.subset) <= set(durations)
    # Residual probability formula holds.
    assert abs(result.residual_probability
               - result.initial_probability * (1.0 - result.coverage)) < 1e-9
    # Skipping only when already under the target.
    if result.skipped:
        assert result.initial_probability <= p0


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=0, max_size=10))
@settings(max_examples=80, deadline=None)
def test_joint_probability_bounds(probs):
    p = joint_incident_probability(probs)
    assert 0.0 <= p <= 1.0
    if probs:
        assert p >= max(probs) - 1e-12  # joint risk at least the worst node


# ---------------------------------------------------------------------------
# Algorithm 2
# ---------------------------------------------------------------------------
@given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=3),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_criteria_partition_and_threshold(n_healthy, n_defective, seed):
    rng = np.random.default_rng(seed)
    samples = [rng.normal(100.0, 0.5, 40) for _ in range(n_healthy)]
    samples += [rng.normal(70.0, 0.5, 40) for _ in range(n_defective)]
    result = learn_criteria(samples, 0.95, centroid="medoid")
    # Partition invariant.
    assert sorted(result.defect_indices + result.healthy_indices) == list(
        range(len(samples)))
    # Healthy samples satisfy the threshold against the criteria.
    from repro.core.distance import similarity
    for index in result.healthy_indices:
        assert similarity(result.criteria, samples[index]) > 0.95


# ---------------------------------------------------------------------------
# Circle-method schedule
# ---------------------------------------------------------------------------
@given(st.integers(min_value=2, max_value=40))
@settings(max_examples=40, deadline=None)
def test_round_robin_valid_for_any_n(n):
    endpoints = list(range(n))
    rounds = round_robin_schedule(endpoints)
    validate_schedule(endpoints, rounds)
    expected_rounds = n - 1 if n % 2 == 0 else n
    assert len(rounds) == expected_rounds
