"""Unit tests: the deterministic chaos harness (plan, wrappers,
install/uninstall)."""

from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.selector import NodeStatus
from repro.core.system import EventKind, ValidationEvent
from repro.exceptions import ChaosError, JournalError, ServiceError
from repro.service import (
    ChaosPlan,
    ChaosRunner,
    JournalStore,
    NodeState,
    QueuedEvent,
    SimulatedKill,
    install_chaos,
)
from repro.service.chaos import ChaosJournalStore, ChaosMonkey, poison_key


@dataclass(frozen=True)
class FakeSpec:
    name: str


@dataclass(frozen=True)
class FakeNode:
    node_id: str


class EchoRunner:
    """Plain runner the wrappers delegate to."""

    marker = "echo"

    def __init__(self):
        self.calls = []

    def run(self, spec, node):
        self.calls.append((node.node_id, spec.name))
        return f"result:{node.node_id}:{spec.name}"


def make_event(node_ids, kind=EventKind.JOB_ALLOCATION):
    nodes = tuple(FakeNode(n) for n in node_ids)
    statuses = tuple(
        NodeStatus(node_id=n, covariates=np.zeros(3)) for n in node_ids)
    return ValidationEvent(kind=kind, nodes=nodes, statuses=statuses,
                           duration_hours=24.0)


def make_monkey(plan):
    """A ChaosMonkey over a minimal stand-in service object."""
    service = SimpleNamespace(
        anubis=SimpleNamespace(validator=SimpleNamespace(runner=EchoRunner())),
        store=None, tick_hook=None, repair_hook=None)
    return ChaosMonkey(service, plan)


class TestChaosPlan:
    @pytest.mark.parametrize("kwargs", [
        {"executor_crash_rate": -0.1},
        {"executor_crash_rate": 1.5},
        {"journal_error_rate": 2.0},
        {"kill_rate": -1.0},
        {"tick_error_rate": 1.01},
        {"repair_failure_rate": -0.5},
        {"hang_seconds": -1.0},
        {"kill_after_appends": -1},
        {"broken_benchmark_crashes": -1},
    ])
    def test_invalid_plan_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            ChaosPlan(seed=0, **kwargs)

    def test_chance_is_deterministic_per_key(self):
        plan_a = ChaosPlan(seed=42)
        plan_b = ChaosPlan(seed=42)
        keys = [("executor-crash", f"n{i}", "bench", i) for i in range(64)]
        draws_a = [plan_a.chance(0.3, *key) for key in keys]
        draws_b = [plan_b.chance(0.3, *key) for key in keys]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)  # rate actually bites

    def test_chance_extremes(self):
        plan = ChaosPlan(seed=1)
        assert not plan.chance(0.0, "x")
        assert plan.chance(1.0, "x")

    def test_different_seeds_draw_differently(self):
        keys = [("k", i) for i in range(128)]
        a = [ChaosPlan(seed=1).chance(0.5, *key) for key in keys]
        b = [ChaosPlan(seed=2).chance(0.5, *key) for key in keys]
        assert a != b

    def test_poison_key_matches_coalescing_identity(self):
        event = make_event(["b", "a"])
        assert poison_key(event) == ("job-allocation", ("a", "b"))


class TestChaosRunner:
    def test_passthrough_without_faults(self):
        monkey = make_monkey(ChaosPlan(seed=0))
        inner = EchoRunner()
        runner = ChaosRunner(inner, monkey.plan, monkey)
        assert runner.run(FakeSpec("b"), FakeNode("n0")) == "result:n0:b"
        assert inner.calls == [("n0", "b")]
        assert runner.marker == "echo"  # __getattr__ delegation

    def test_crash_rate_one_always_raises(self):
        monkey = make_monkey(ChaosPlan(seed=0, executor_crash_rate=1.0))
        runner = ChaosRunner(EchoRunner(), monkey.plan, monkey)
        with pytest.raises(ChaosError, match="injected executor crash"):
            runner.run(FakeSpec("b"), FakeNode("n0"))
        assert monkey.injections["executor_crash"] == 1

    def test_hang_sleeps_then_fails_without_running(self):
        monkey = make_monkey(ChaosPlan(seed=0, executor_hang_rate=1.0,
                                       hang_seconds=0.0))
        inner = EchoRunner()
        runner = ChaosRunner(inner, monkey.plan, monkey)
        with pytest.raises(ChaosError, match="injected executor hang"):
            runner.run(FakeSpec("b"), FakeNode("n0"))
        # The hung execution never reaches the wrapped runner: a late
        # run would perturb its keyed measurement stream.
        assert inner.calls == []
        assert monkey.injections["executor_hang"] == 1

    def test_fault_nodes_scopes_injection(self):
        monkey = make_monkey(ChaosPlan(seed=0, executor_crash_rate=1.0,
                                       fault_nodes=frozenset({"bad"})))
        runner = ChaosRunner(EchoRunner(), monkey.plan, monkey)
        assert runner.run(FakeSpec("b"), FakeNode("ok")) == "result:ok:b"
        with pytest.raises(ChaosError):
            runner.run(FakeSpec("b"), FakeNode("bad"))

    def test_broken_benchmark_crashes_then_heals(self):
        monkey = make_monkey(ChaosPlan(
            seed=0, broken_benchmarks=frozenset({"bad-bench"}),
            broken_benchmark_crashes=3))
        runner = ChaosRunner(EchoRunner(), monkey.plan, monkey)
        for _ in range(3):
            with pytest.raises(ChaosError, match="harness regression"):
                runner.run(FakeSpec("bad-bench"), FakeNode("n0"))
        # Healed: the fourth execution (and others) pass through.
        assert runner.run(FakeSpec("bad-bench"),
                          FakeNode("n0")) == "result:n0:bad-bench"
        assert runner.run(FakeSpec("other"), FakeNode("n0")) == "result:n0:other"
        assert monkey.injections["broken_benchmark_crash"] == 3


class TestChaosJournalStore:
    def test_kill_after_appends_is_exact(self, tmp_path):
        monkey = make_monkey(ChaosPlan(seed=0, kill_after_appends=2))
        store = ChaosJournalStore(JournalStore(tmp_path), monkey.plan, monkey)
        assert store.append("a", {}) == 1
        assert store.append("b", {}) == 2
        with pytest.raises(SimulatedKill):
            store.append("c", {})
        # The kill happened *before* the write: two durable records.
        assert [r.kind for r in JournalStore(tmp_path).replay()] == ["a", "b"]
        assert monkey.injections["kill"] == 1

    def test_kill_after_zero_appends_dies_immediately(self, tmp_path):
        monkey = make_monkey(ChaosPlan(seed=0, kill_after_appends=0))
        store = ChaosJournalStore(JournalStore(tmp_path), monkey.plan, monkey)
        with pytest.raises(SimulatedKill):
            store.append("a", {})
        assert JournalStore(tmp_path).replay() == []

    def test_journal_error_rate_one_always_raises(self, tmp_path):
        monkey = make_monkey(ChaosPlan(seed=0, journal_error_rate=1.0))
        store = ChaosJournalStore(JournalStore(tmp_path), monkey.plan, monkey)
        with pytest.raises(JournalError, match="injected journal write"):
            store.append("a", {})
        assert monkey.injections["journal_error"] == 1

    def test_replay_and_attributes_pass_through(self, tmp_path):
        inner = JournalStore(tmp_path)
        inner.append("a", {"x": 1})
        store = ChaosJournalStore(inner, ChaosPlan(seed=0),
                                  make_monkey(ChaosPlan(seed=0)))
        assert [r.kind for r in store.replay()] == ["a"]
        assert store.path == inner.path


class TestInstallUninstall:
    def test_install_wraps_and_uninstall_restores(self, tmp_path):
        runner = EchoRunner()
        store = JournalStore(tmp_path)
        service = SimpleNamespace(
            anubis=SimpleNamespace(validator=SimpleNamespace(runner=runner)),
            store=store, tick_hook=None, repair_hook=None)
        monkey = install_chaos(service, ChaosPlan(seed=0))
        assert isinstance(service.anubis.validator.runner, ChaosRunner)
        assert isinstance(service.store, ChaosJournalStore)
        assert service.tick_hook == monkey.tick_hook
        assert service.repair_hook == monkey.repair_hook
        monkey.uninstall()
        assert service.anubis.validator.runner is runner
        assert service.store is store
        assert service.tick_hook is None and service.repair_hook is None

    def test_poison_event_always_fails_tick_hook(self):
        event = make_event(["a", "b"])
        monkey = make_monkey(ChaosPlan(
            seed=0, poison_event_keys=frozenset({poison_key(event)})))
        entry = QueuedEvent(event_id=1, event=event, priority=0.5)
        with pytest.raises(ChaosError, match="poison"):
            monkey.tick_hook(entry)
        assert monkey.injections["poison_tick"] == 1
        # Other events pass.
        other = QueuedEvent(event_id=2, event=make_event(["c"]), priority=0.5)
        monkey.tick_hook(other)

    def test_repair_hook_injects_at_rate_one(self):
        monkey = make_monkey(ChaosPlan(seed=0, repair_failure_rate=1.0))
        with pytest.raises(ChaosError, match="injected repair failure"):
            monkey.repair_hook("n0", NodeState.IN_REPAIR)
        assert monkey.injections["repair_failure"] == 1
