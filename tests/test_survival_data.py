"""Unit tests for status-sample extraction and the TBNI accuracy metric."""

import numpy as np
import pytest

from repro.simulation.traces import IncidentRecord, IncidentTrace
from repro.survival.data import STATUS_FEATURES, extract_status_samples
from repro.survival.metrics import tbni_accuracy


def two_node_trace():
    records = (
        IncidentRecord("node-0", 100.0, 110.0, "gpu"),
        IncidentRecord("node-0", 300.0, 330.0, "network"),
        IncidentRecord("node-1", 500.0, 520.0, "gpu"),
    )
    return IncidentTrace(records=records, horizon_hours=1000.0,
                         node_ids=("node-0", "node-1"))


class TestExtraction:
    def test_feature_schema(self):
        ds = extract_status_samples(two_node_trace(), snapshot_interval_hours=200.0)
        assert ds.feature_names == STATUS_FEATURES
        assert ds.covariates.shape[1] == len(STATUS_FEATURES)

    def test_first_snapshot_tbni(self):
        ds = extract_status_samples(two_node_trace(), snapshot_interval_hours=5000.0)
        # node-0's t=0 snapshot: TBNI = 100 h (first incident).
        first = np.flatnonzero((ds.covariates[:, 0] == 0.0) & (ds.events == 1.0))
        assert 100.0 in ds.durations[first]

    def test_snapshot_inside_incident_skipped(self):
        trace = IncidentTrace(
            records=(IncidentRecord("node-0", 90.0, 150.0, "gpu"),),
            horizon_hours=400.0, node_ids=("node-0",),
        )
        ds = extract_status_samples(trace, snapshot_interval_hours=100.0)
        # The t=100 snapshot falls inside the incident -> dropped; the
        # remaining snapshots are t=0 (event), t=150 resolution, t=200,
        # t=300 (censored).
        assert not np.any(np.isclose(ds.durations, 50.0) & (ds.events == 0))

    def test_censored_rows_present_by_default(self):
        ds = extract_status_samples(two_node_trace(), snapshot_interval_hours=200.0)
        assert np.any(ds.events == 0.0)

    def test_censored_excluded_when_requested(self):
        ds = extract_status_samples(two_node_trace(), snapshot_interval_hours=200.0,
                                    include_censored=False)
        assert np.all(ds.events == 1.0)

    def test_censored_horizon_convention(self):
        ds = extract_status_samples(two_node_trace(), snapshot_interval_hours=200.0,
                                    censored_tbni="horizon")
        censored = ds.durations[ds.events == 0.0]
        assert np.all(censored == 1000.0)

    def test_incident_count_covariate_grows(self):
        ds = extract_status_samples(two_node_trace(), snapshot_interval_hours=200.0)
        count_col = list(STATUS_FEATURES).index("incident_count")
        node0_late = ds.covariates[ds.covariates[:, count_col] == 2.0]
        assert node0_late.size > 0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            extract_status_samples(two_node_trace(), snapshot_interval_hours=0.0)

    def test_invalid_censor_mode_rejected(self):
        with pytest.raises(ValueError):
            extract_status_samples(two_node_trace(), censored_tbni="nope")

    def test_telemetry_attributes_appended(self):
        trace = IncidentTrace(
            records=(IncidentRecord("node-0", 10.0, 12.0, "gpu"),),
            horizon_hours=100.0, node_ids=("node-0",),
            node_attributes={"node-0": {"telemetry_ecc_rate": 1.5}},
        )
        ds = extract_status_samples(trace, snapshot_interval_hours=50.0)
        assert "telemetry_ecc_rate" in ds.feature_names
        assert np.all(ds.feature("telemetry_ecc_rate") == 1.5)


class TestTbniAccuracy:
    def test_perfect_prediction(self):
        assert tbni_accuracy([100.0], [100.0]) == pytest.approx(1.0)

    def test_capping(self):
        # Both sides capped at the horizon -> perfect despite huge raw values.
        assert tbni_accuracy([9999.0], [5000.0]) == pytest.approx(1.0)

    def test_worst_case_zero(self):
        assert tbni_accuracy([0.0], [2400.0]) == pytest.approx(0.0)

    def test_average_over_samples(self):
        acc = tbni_accuracy([0.0, 2400.0], [2400.0, 2400.0])
        assert acc == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tbni_accuracy([1.0, 2.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tbni_accuracy([], [])
