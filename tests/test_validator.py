"""Unit tests for the Validator: criteria learning and defect filtering."""

import numpy as np
import pytest

from repro.benchsuite.base import (
    BenchmarkKind,
    BenchmarkResult,
    BenchmarkSpec,
    E2eProfile,
    MetricSpec,
    Phase,
)
from repro.benchsuite.runner import SuiteRunner
from repro.core.validator import ValidationReport, Validator, Violation
from repro.exceptions import CriteriaError
from repro.hardware.components import Component, defect_mode
from repro.hardware.node import Node


def tiny_suite():
    """Two benchmarks: a NIC micro and a CNN end-to-end."""
    micro = BenchmarkSpec(
        name="tiny-loopback", kind=BenchmarkKind.MICRO, phase=Phase.SINGLE_NODE,
        duration_minutes=2.0, sensitivity={Component.NIC: 1.0},
        metrics=(MetricSpec(name="bw", unit="GB/s", base_value=25.0,
                            noise_cv=0.001, run_cv=0.0005, node_cv=0.0005),),
    )
    e2e = BenchmarkSpec(
        name="tiny-resnet", kind=BenchmarkKind.E2E, phase=Phase.SINGLE_NODE,
        duration_minutes=5.0,
        sensitivity={Component.E2E_CNN_PATH: 1.0, Component.GPU_COMPUTE: 0.5},
        metrics=(MetricSpec(name="throughput", unit="samples/s", base_value=2900.0,
                            noise_cv=0.008, run_cv=0.003, node_cv=0.003,
                            series_length=160),),
        e2e_profile=E2eProfile(warmup_steps=24, period=16),
    )
    return (micro, e2e)


def make_fleet(n_healthy=12, defects=()):
    rng = np.random.default_rng(0)
    nodes = [Node(node_id=f"h-{i}") for i in range(n_healthy)]
    for index, mode_name in enumerate(defects):
        node = Node(node_id=f"d-{index}")
        node.apply_defect(defect_mode(mode_name), rng)
        nodes.append(node)
    return nodes


class TestCriteriaLearning:
    def test_learn_creates_criteria_per_metric(self):
        validator = Validator(tiny_suite(), runner=SuiteRunner(seed=1))
        validator.learn_criteria(make_fleet())
        assert ("unknown", "tiny-loopback", "bw") in validator.criteria
        assert ("unknown", "tiny-resnet", "throughput") in validator.criteria

    def test_check_without_criteria_raises(self):
        validator = Validator(tiny_suite())
        result = BenchmarkResult(benchmark="tiny-loopback", node_id="x",
                                 metrics={"bw": np.array([25.0])})
        with pytest.raises(CriteriaError):
            validator.check_result(validator.spec("tiny-loopback"), result)

    def test_unknown_benchmark_lookup(self):
        validator = Validator(tiny_suite())
        with pytest.raises(KeyError):
            validator.spec("nope")

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            Validator(())


class TestValidation:
    def test_healthy_fleet_mostly_passes(self):
        validator = Validator(tiny_suite(), runner=SuiteRunner(seed=2))
        fleet = make_fleet(n_healthy=16)
        validator.learn_criteria(fleet)
        report = validator.validate(fleet)
        assert len(report.defective_nodes) <= 1  # allow one unlucky node

    def test_nic_defect_caught_by_loopback_only(self):
        validator = Validator(tiny_suite(), runner=SuiteRunner(seed=3))
        fleet = make_fleet(n_healthy=14, defects=("ib_hca_degraded",))
        validator.learn_criteria(fleet[:14])
        report = validator.validate(fleet)
        assert "d-0" in report.defective_nodes
        benchmarks = {v.benchmark for v in report.violations if v.node_id == "d-0"}
        assert "tiny-loopback" in benchmarks

    def test_cnn_path_defect_caught_by_e2e_only(self):
        validator = Validator(tiny_suite(), runner=SuiteRunner(seed=4))
        fleet = make_fleet(n_healthy=14, defects=("cnn_path_regression",))
        validator.learn_criteria(fleet[:14])
        report = validator.validate(fleet)
        benchmarks = {v.benchmark for v in report.violations if v.node_id == "d-0"}
        assert benchmarks == {"tiny-resnet"}

    def test_subset_validation_runs_only_selected(self):
        validator = Validator(tiny_suite(), runner=SuiteRunner(seed=5))
        fleet = make_fleet()
        validator.learn_criteria(fleet)
        report = validator.validate(fleet, benchmarks=["tiny-loopback"])
        assert report.benchmarks_run == ["tiny-loopback"]

    def test_execution_failure_flags_node(self):
        validator = Validator(tiny_suite(), runner=SuiteRunner(seed=6))
        fleet = make_fleet()
        validator.learn_criteria(fleet)
        bad = BenchmarkResult(benchmark="tiny-loopback", node_id="crash",
                              metrics={"bw": np.array([])})
        violations = validator.check_result(validator.spec("tiny-loopback"), bad)
        assert len(violations) == 1
        assert "execution-failure" in violations[0].reason

    def test_nan_result_flags_node(self):
        validator = Validator(tiny_suite(), runner=SuiteRunner(seed=7))
        fleet = make_fleet()
        validator.learn_criteria(fleet)
        bad = BenchmarkResult(benchmark="tiny-loopback", node_id="hang",
                              metrics={"bw": np.array([float("nan")])})
        violations = validator.check_result(validator.spec("tiny-loopback"), bad)
        assert violations and violations[0].similarity == 0.0


class TestValidationReport:
    def test_defective_nodes_deduplicated_in_order(self):
        report = ValidationReport(validated_nodes=["a", "b"])
        report.violations = [
            Violation("b", "x", "m", 0.5),
            Violation("a", "x", "m", 0.5),
            Violation("b", "y", "m", 0.4),
        ]
        assert report.defective_nodes == ["b", "a"]

    def test_healthy_nodes_complement(self):
        report = ValidationReport(validated_nodes=["a", "b", "c"])
        report.violations = [Violation("b", "x", "m", 0.5)]
        assert report.healthy_nodes == ["a", "c"]

    def test_violations_by_benchmark(self):
        report = ValidationReport(validated_nodes=["a", "b"])
        report.violations = [
            Violation("a", "x", "m", 0.5),
            Violation("b", "x", "m", 0.5),
            Violation("a", "y", "m", 0.4),
        ]
        grouped = report.violations_by_benchmark()
        assert grouped == {"x": {"a", "b"}, "y": {"a"}}
