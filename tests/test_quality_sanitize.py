"""Telemetry sanitization: schemas, the fault taxonomy, ingestion wiring."""

import numpy as np
import pytest

from repro.benchsuite.base import BenchmarkResult
from repro.benchsuite.faults import FaultInjectingRunner
from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import full_suite, suite_by_name
from repro.core.validator import Validator
from repro.exceptions import ReproError
from repro.hardware.node import Node
from repro.quality import (
    FAULT_NON_FINITE,
    FAULT_OUT_OF_RANGE,
    FAULT_TRUNCATED,
    FAULT_UNIT_SCALE,
    MetricSchema,
    Sanitizer,
    TelemetryLedger,
    sanitize_window,
    schemas_for_suite,
)


def _schema(**kwargs):
    defaults = dict(benchmark="b", metric="m", lower=1.0, upper=1000.0,
                    min_samples=4)
    defaults.update(kwargs)
    return MetricSchema(**defaults)


class TestMetricSchema:
    def test_bounds_must_be_ordered(self):
        with pytest.raises(ReproError):
            MetricSchema(benchmark="b", metric="m", lower=10.0, upper=1.0)

    def test_min_samples_floor(self):
        with pytest.raises(ReproError):
            MetricSchema(benchmark="b", metric="m", min_samples=0)

    def test_unit_scale_factor_must_exceed_one(self):
        with pytest.raises(ReproError):
            MetricSchema(benchmark="b", metric="m", unit_scale_factor=1.0)

    def test_suite_schemas_cover_every_metric(self):
        suite = full_suite()
        schemas = schemas_for_suite(suite)
        expected = {(spec.name, m.name) for spec in suite for m in spec.metrics}
        assert set(schemas) == expected

    def test_suite_schemas_bracket_base_value(self):
        suite = (suite_by_name("mem-bw"),)
        schemas = schemas_for_suite(suite, span_factor=50.0)
        for spec in suite:
            for metric in spec.metrics:
                schema = schemas[(spec.name, metric.name)]
                assert schema.lower == pytest.approx(metric.base_value / 50.0)
                assert schema.upper == pytest.approx(metric.base_value * 50.0)
                assert schema.lower <= metric.base_value <= schema.upper


class TestSanitizeWindow:
    def test_clean_window_untouched(self):
        values = np.array([10.0, 20.0, 30.0, 40.0])
        window = sanitize_window(values, _schema(), node_id="n0",
                                 benchmark="b", metric="m")
        assert not window.excluded
        assert window.records == ()
        np.testing.assert_array_equal(window.values, values)

    def test_empty_window_passes_through_as_crash(self):
        window = sanitize_window(np.array([]), _schema(), node_id="n0",
                                 benchmark="b", metric="m")
        assert not window.excluded
        assert window.values.size == 0
        assert window.records == ()

    def test_non_finite_values_dropped_and_recorded(self):
        values = np.array([10.0, np.nan, 30.0, np.inf, 40.0, 50.0])
        window = sanitize_window(values, _schema(), node_id="n0",
                                 benchmark="b", metric="m")
        assert not window.excluded
        np.testing.assert_array_equal(window.values, [10.0, 30.0, 40.0, 50.0])
        (record,) = window.records
        assert record.fault == FAULT_NON_FINITE
        assert record.count == 2

    def test_all_non_finite_flows_on_empty_as_hang(self):
        window = sanitize_window(np.full(8, np.nan), _schema(min_samples=1),
                                 node_id="n0", benchmark="b", metric="m")
        assert not window.excluded
        assert window.values.size == 0
        assert window.records[0].fault == FAULT_NON_FINITE

    def test_unit_scale_glitch_quarantines_whole_window(self):
        values = np.array([10.0, 11.0, 12.0, 13.0]) * 1000.0
        window = sanitize_window(values, _schema(), node_id="n0",
                                 benchmark="b", metric="m")
        assert window.excluded
        assert window.records[0].fault == FAULT_UNIT_SCALE
        # Raw values preserved for forensics.
        np.testing.assert_array_equal(window.values, values)

    def test_out_of_range_values_dropped_pointwise(self):
        values = np.array([10.0, -5.0, 30.0, 1e7, 40.0, 50.0])
        window = sanitize_window(values, _schema(), node_id="n0",
                                 benchmark="b", metric="m")
        assert not window.excluded
        np.testing.assert_array_equal(window.values, [10.0, 30.0, 40.0, 50.0])
        (record,) = window.records
        assert record.fault == FAULT_OUT_OF_RANGE
        assert record.count == 2

    def test_truncated_window_quarantined(self):
        values = np.array([10.0, 20.0])  # below min_samples=4
        window = sanitize_window(values, _schema(), node_id="n0",
                                 benchmark="b", metric="m")
        assert window.excluded
        assert window.records[-1].fault == FAULT_TRUNCATED

    def test_degraded_but_plausible_window_survives(self):
        # A genuinely slow node (4x degradation) stays inside the
        # plausible range: sanitization must not launder real defects.
        values = np.full(6, 25.0)  # healthy ~100, schema upper 1000
        window = sanitize_window(values, _schema(), node_id="n0",
                                 benchmark="b", metric="m")
        assert not window.excluded
        assert window.records == ()


class TestLedger:
    def test_counters_accumulate(self):
        ledger = TelemetryLedger()
        sch = _schema()
        for node in ("n0", "n1"):
            window = sanitize_window(np.array([np.nan, 10.0, 20.0, 30.0, 40.0]),
                                     sch, node_id=node, benchmark="b",
                                     metric="m")
            for record in window.records:
                ledger.record(record)
        summary = ledger.summary()
        assert summary["by_fault"] == {FAULT_NON_FINITE: 2}
        assert summary["values_quarantined"] == 2
        assert summary["by_node"] == {"n0": 1, "n1": 1}
        assert FAULT_NON_FINITE in ledger.format_table()

    def test_record_trail_is_bounded(self):
        ledger = TelemetryLedger(max_records=4)
        sch = _schema()
        for i in range(10):
            window = sanitize_window(np.array([np.nan, 10.0, 20.0, 30.0, 40.0]),
                                     sch, node_id=f"n{i}", benchmark="b",
                                     metric="m")
            ledger.record(window.records[0])
        assert len(ledger.records) == 4
        assert ledger.summary()["values_quarantined"] == 10


class TestSanitizerIntegration:
    def test_runner_sanitizes_results(self):
        suite = (suite_by_name("mem-bw"),)
        sanitizer = Sanitizer.for_suite(suite)
        runner = FaultInjectingRunner(seed=0, telemetry_scale_rate=1.0,
                                      sanitizer=sanitizer)
        result = runner.run(suite[0], Node(node_id="n0"))
        assert set(result.quarantined) == {m.name for m in suite[0].metrics}
        assert sanitizer.ledger.summary()["by_fault"][FAULT_UNIT_SCALE] > 0

    def test_clean_run_identical_through_sanitizer(self):
        suite = (suite_by_name("mem-bw"),)
        spec = suite[0]
        node = Node(node_id="n0")
        bare = SuiteRunner(seed=7).run(spec, node)
        sanitized = SuiteRunner(seed=7,
                                sanitizer=Sanitizer.for_suite(suite)).run(
            spec, node)
        assert sanitized.quarantined == ()
        for name in bare.metrics:
            np.testing.assert_array_equal(bare.metrics[name],
                                          sanitized.metrics[name])

    def test_metrics_without_schema_pass_through(self):
        sanitizer = Sanitizer({})
        result = BenchmarkResult(benchmark="b", node_id="n0",
                                 metrics={"m": np.array([np.nan])})
        out = sanitizer.sanitize_result(None, result)
        assert np.isnan(out.metrics["m"][0])
        assert out.quarantined == ()

    def test_quarantined_metric_yields_no_verdict(self):
        suite = (suite_by_name("mem-bw"),)
        spec = suite[0]
        nodes = [Node(node_id=f"n{i}") for i in range(6)]
        validator = Validator(suite, runner=SuiteRunner(seed=1))
        validator.learn_criteria(nodes)
        clean = validator.runner.run(spec, nodes[0])
        quarantined = BenchmarkResult(
            benchmark=spec.name, node_id=nodes[0].node_id,
            metrics={name: series * 1000.0
                     for name, series in clean.metrics.items()},
            quarantined=tuple(clean.metrics))
        violations = validator.check_result(spec, quarantined)
        assert violations == []

    def test_pool_applies_service_sanitizer_once(self):
        from repro.service.pool import PoolConfig, ValidationPool

        suite = (suite_by_name("mem-bw"),)
        sanitizer = Sanitizer.for_suite(suite)
        runner = FaultInjectingRunner(seed=0, telemetry_scale_rate=1.0)
        pool = ValidationPool(PoolConfig(max_workers=2), sanitizer=sanitizer)
        sweep = pool.run_benchmarks(suite, [Node(node_id="n0")], runner)
        (run,) = sweep.runs
        assert run.ok
        assert set(run.result.quarantined) == {m.name for m in suite[0].metrics}

    def test_pool_defers_to_runner_sanitizer(self):
        from repro.service.pool import PoolConfig, ValidationPool

        suite = (suite_by_name("mem-bw"),)
        runner_ledger = TelemetryLedger()
        runner = FaultInjectingRunner(
            seed=0, telemetry_scale_rate=1.0,
            sanitizer=Sanitizer.for_suite(suite, ledger=runner_ledger))
        pool_ledger = TelemetryLedger()
        pool = ValidationPool(
            PoolConfig(max_workers=2),
            sanitizer=Sanitizer.for_suite(suite, ledger=pool_ledger))
        pool.run_benchmarks(suite, [Node(node_id="n0")], runner)
        assert runner_ledger.summary()["windows_quarantined"] > 0
        assert pool_ledger.summary()["windows_quarantined"] == 0


class TestSanitizeExactlyOnce:
    """Regression: a window must never be schema-checked or quarantined
    twice.  The runner and the pool used to both sanitize; the
    ``sanitized`` provenance flag now makes the second crossing a no-op."""

    def test_resanitizing_a_result_is_a_noop(self):
        suite = (suite_by_name("mem-bw"),)
        spec = suite[0]
        ledger = TelemetryLedger()
        sanitizer = Sanitizer.for_suite(suite, ledger=ledger)
        runner = FaultInjectingRunner(seed=0, telemetry_nan_rate=1.0)
        result = runner.run(spec, Node(node_id="n0"))

        once = sanitizer.sanitize_result(spec, result)
        counts_after_one = ledger.summary()["values_quarantined"]
        assert counts_after_one > 0
        assert all(w.sanitized for w in once.windows)

        twice = sanitizer.sanitize_result(spec, once)
        assert ledger.summary()["values_quarantined"] == counts_after_one
        for before, after in zip(once.windows, twice.windows):
            assert after is before  # untouched, not merely equal

    def test_quarantine_verdict_not_issued_twice(self):
        suite = (suite_by_name("mem-bw"),)
        spec = suite[0]
        ledger = TelemetryLedger()
        sanitizer = Sanitizer.for_suite(suite, ledger=ledger)
        runner = FaultInjectingRunner(seed=0, telemetry_scale_rate=1.0)
        result = runner.run(spec, Node(node_id="n0"))

        once = sanitizer.sanitize_result(spec, result)
        windows_once = ledger.summary()["windows_quarantined"]
        assert windows_once > 0
        sanitizer.sanitize_result(spec, once)
        assert ledger.summary()["windows_quarantined"] == windows_once
        for window in once.windows:
            assert window.quarantined
            assert window.faults.count(FAULT_UNIT_SCALE) == 1

    def test_runner_plus_pool_sanitize_once_end_to_end(self):
        from repro.service.pool import PoolConfig, ValidationPool

        suite = (suite_by_name("mem-bw"),)
        shared = TelemetryLedger()
        runner = FaultInjectingRunner(
            seed=0, telemetry_scale_rate=1.0,
            sanitizer=Sanitizer.for_suite(suite, ledger=shared))
        pool = ValidationPool(
            PoolConfig(max_workers=2),
            sanitizer=Sanitizer.for_suite(suite, ledger=shared))
        sweep = pool.run_benchmarks(suite, [Node(node_id="n0")], runner)
        (run,) = sweep.runs
        # One quarantine verdict per metric window, despite two
        # sanitizers in the path sharing one ledger.
        assert shared.summary()["windows_quarantined"] == len(
            suite[0].metrics)
        for window in run.result.windows:
            assert window.sanitized
            assert window.faults.count(FAULT_UNIT_SCALE) == 1
