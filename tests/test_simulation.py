"""Unit tests for the repair system, policies, coverage bootstrap and the
cluster simulator."""

import numpy as np
import pytest

from repro.benchsuite.suite import full_suite, suite_by_name
from repro.core.selection import CoverageTable
from repro.exceptions import SimulationError
from repro.hardware.components import DEFECT_CATALOG, defect_mode
from repro.hardware.degradation import WearModel
from repro.simulation.cluster import ClusterSimulator, SimulationConfig
from repro.simulation.coverage import (
    analytic_coverage_table,
    detection_map,
    detects,
    expected_shift,
)
from repro.simulation.generator import generate_allocation_trace
from repro.simulation.metrics import (
    build_policies,
    job_time_to_failure_curve,
    run_policy_comparison,
    suite_durations,
)
from repro.simulation.policies import (
    AbsencePolicy,
    FullSetPolicy,
    NodeView,
    SelectorPolicy,
)
from repro.simulation.repair import RepairSystem


class TestRepairSystem:
    def test_fast_swap_when_stocked(self):
        repair = RepairSystem(hot_buffer_size=2, swap_hours=1.0, repair_hours=36.0)
        outcome = repair.send_to_repair(10.0)
        assert outcome.swapped
        assert outcome.available_at == 11.0

    def test_slow_path_when_empty(self):
        repair = RepairSystem(hot_buffer_size=1, swap_hours=1.0, repair_hours=36.0)
        repair.send_to_repair(0.0)
        outcome = repair.send_to_repair(0.0)
        assert not outcome.swapped
        assert outcome.available_at == 36.0

    def test_repairs_restock_buffer(self):
        repair = RepairSystem(hot_buffer_size=1, swap_hours=1.0, repair_hours=10.0)
        repair.send_to_repair(0.0)
        assert repair.available_spares(5.0) == 0
        assert repair.available_spares(10.0) == 1

    def test_stats_counted(self):
        repair = RepairSystem(hot_buffer_size=1)
        repair.send_to_repair(0.0)
        repair.send_to_repair(0.0)
        assert repair.swaps_served == 1
        assert repair.swaps_missed == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            RepairSystem(hot_buffer_size=-1)
        with pytest.raises(SimulationError):
            RepairSystem(swap_hours=0.0)


class TestCoverageBootstrap:
    def test_expected_shift_of_dominant_defect(self):
        spec = suite_by_name("ib-loopback")
        mode = defect_mode("ib_hca_degraded")
        assert expected_shift(spec, mode) == pytest.approx(0.28)

    def test_insensitive_benchmark_zero_shift(self):
        spec = suite_by_name("disk-fio")
        mode = defect_mode("ib_hca_degraded")
        assert expected_shift(spec, mode) == 0.0

    def test_detects_threshold_semantics(self):
        spec = suite_by_name("ib-loopback")
        mode = defect_mode("ib_hca_degraded")
        assert detects(spec, mode, alpha=0.95)
        assert not detects(spec, mode, alpha=0.5)

    def test_full_set_detects_every_mode(self):
        detectors = detection_map(full_suite())
        for mode in DEFECT_CATALOG:
            assert detectors[mode.name], f"{mode.name} undetectable"

    def test_coverage_table_full_set_is_one(self):
        table = analytic_coverage_table(full_suite())
        assert table.coverage(table.benchmarks) == pytest.approx(1.0)

    def test_coverage_proportional_to_rates(self):
        table = analytic_coverage_table(full_suite())
        # ib-loopback covers the dominant HCA mode: large share.
        assert table.coverage(["ib-loopback"]) > 0.3

    def test_invalid_reference_rejected(self):
        with pytest.raises(ValueError):
            analytic_coverage_table(full_suite(), n_reference=0)


class TestPolicies:
    def test_absence_never_validates(self):
        decision = AbsencePolicy().decide([], 10.0)
        assert decision.benchmarks is None
        assert not decision.validates

    def test_full_set_runs_everything(self):
        durations = suite_durations()
        decision = FullSetPolicy(durations).decide([], 10.0)
        assert set(decision.benchmarks) == set(durations)
        assert decision.validation_hours == pytest.approx(
            sum(durations.values()) / 60.0)

    def test_selector_skips_fresh_nodes(self):
        policy = SelectorPolicy(suite_durations(),
                                analytic_coverage_table(full_suite()),
                                WearModel(base_mtbi_hours=100.0), p0=0.05)
        fresh = [NodeView("n0", hours_since_clean=0.5, incident_count=0)]
        decision = policy.decide(fresh, 10.0)
        assert decision.benchmarks == ()
        assert not decision.validates

    def test_selector_validates_stale_nodes(self):
        policy = SelectorPolicy(suite_durations(),
                                analytic_coverage_table(full_suite()),
                                WearModel(base_mtbi_hours=100.0), p0=0.05)
        stale = [NodeView("n0", hours_since_clean=400.0, incident_count=3)]
        decision = policy.decide(stale, 10.0)
        assert decision.validates
        assert decision.validation_hours > 0.0

    def test_selector_subset_cheaper_than_full(self):
        durations = suite_durations()
        policy = SelectorPolicy(durations, analytic_coverage_table(full_suite()),
                                WearModel(base_mtbi_hours=100.0), p0=0.10)
        stale = [NodeView("n0", hours_since_clean=200.0, incident_count=1)]
        decision = policy.decide(stale, 10.0)
        assert decision.validation_hours < sum(durations.values()) / 60.0

    def test_selector_invalid_p0(self):
        with pytest.raises(ValueError):
            SelectorPolicy(suite_durations(), CoverageTable(), WearModel(), p0=1.0)

    def test_node_probability_monotone_in_exposure(self):
        policy = SelectorPolicy(suite_durations(),
                                analytic_coverage_table(full_suite()),
                                WearModel(base_mtbi_hours=100.0))
        p_low = policy.node_probability(NodeView("a", 1.0, 0), 10.0)
        p_high = policy.node_probability(NodeView("a", 500.0, 0), 10.0)
        assert p_high > p_low


def _small_sim(policy_name, seed=0, **config_kwargs):
    config = SimulationConfig(n_nodes=16, horizon_hours=240.0, seed=seed,
                              **config_kwargs)
    trace = generate_allocation_trace(240.0, jobs_per_hour=1.0,
                                      max_job_nodes=4,
                                      mean_duration_hours=12.0, seed=seed + 1)
    policy = build_policies(config)[policy_name]
    return ClusterSimulator(config, policy, trace).run()


class TestClusterSimulator:
    def test_ideal_run_has_no_incidents(self):
        result = _small_sim("ideal")
        assert result.average_incidents == 0.0
        assert result.jobs_interrupted == 0

    def test_absence_suffers_incidents(self):
        result = _small_sim("absence")
        assert result.average_incidents > 1.0
        assert result.average_validation_hours == 0.0

    def test_full_set_validates_and_reduces_incidents(self):
        absence = _small_sim("absence")
        full = _small_sim("full-set")
        assert full.average_validation_hours > 0.0
        assert full.average_incidents < absence.average_incidents

    def test_selector_cheaper_than_full_set(self):
        full = _small_sim("full-set")
        selector = _small_sim("selector")
        assert (selector.average_validation_hours
                < full.average_validation_hours)

    def test_hours_accounting_bounded_by_horizon(self):
        result = _small_sim("selector")
        for node in result.nodes:
            total = node.up_hours + node.validation_hours + node.repair_hours
            assert total <= result.config.horizon_hours + 1e-6

    def test_daily_utilization_series_shape(self):
        result = _small_sim("full-set")
        series = result.daily_utilization()
        assert series.shape == (10,)  # 240 h = 10 days
        assert np.all(series >= 0.0) and np.all(series <= 1.0)

    def test_deterministic_given_seed(self):
        a = _small_sim("selector", seed=3)
        b = _small_sim("selector", seed=3)
        assert a.average_utilization == b.average_utilization
        assert a.jobs_completed == b.jobs_completed

    def test_mtbi_floors_at_one_incident(self):
        result = _small_sim("ideal")
        for node in result.nodes:
            assert node.mtbi() == node.up_hours

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            SimulationConfig(n_nodes=0)


class TestComparisonHelpers:
    def test_policy_comparison_table_rows(self):
        config = SimulationConfig(n_nodes=12, horizon_hours=120.0, seed=1)
        trace = generate_allocation_trace(120.0, jobs_per_hour=1.0,
                                          max_job_nodes=4,
                                          mean_duration_hours=8.0, seed=2)
        comparison = run_policy_comparison(config, trace)
        rows = comparison.table4_rows()
        assert [name for name, _, _ in rows] == ["absence", "full-set", "selector"]
        utilization = comparison.utilization_row()
        assert set(utilization) == {"absence", "full-set", "selector", "ideal"}

    def test_job_ttf_curve(self):
        curve = job_time_to_failure_curve(100.0, node_counts=(1, 10))
        assert curve[10] == pytest.approx(10.0)
        with pytest.raises(ValueError):
            job_time_to_failure_curve(0.0)
