"""Unit tests: the risk-prioritized, coalescing event queue."""

from dataclasses import dataclass

import numpy as np

from repro.core.selector import NodeStatus
from repro.core.system import EventKind, ValidationEvent
from repro.service import EventQueue


@dataclass(frozen=True)
class FakeNode:
    node_id: str


def make_event(node_ids, kind=EventKind.JOB_ALLOCATION, duration=24.0):
    nodes = tuple(FakeNode(n) for n in node_ids)
    statuses = tuple(
        NodeStatus(node_id=n, covariates=np.zeros(3)) for n in node_ids)
    return ValidationEvent(kind=kind, nodes=nodes, statuses=statuses,
                           duration_hours=duration)


class TestPriorityOrdering:
    def test_highest_priority_pops_first(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.1)
        queue.push(make_event(["b"]), 0.9)
        queue.push(make_event(["c"]), 0.5)
        order = [queue.pop().event.nodes[0].node_id for _ in range(3)]
        assert order == ["b", "c", "a"]
        assert queue.pop() is None

    def test_fifo_within_equal_priority(self):
        queue = EventQueue()
        for name in ("a", "b", "c"):
            queue.push(make_event([name]), 0.5)
        order = [queue.pop().event.nodes[0].node_id for _ in range(3)]
        assert order == ["a", "b", "c"]

    def test_pending_is_pop_order_without_consuming(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.2)
        queue.push(make_event(["b"]), 0.8)
        assert [e.priority for e in queue.pending()] == [0.8, 0.2]
        assert len(queue) == 2


class TestCoalescing:
    def test_same_kind_and_nodeset_coalesces(self):
        queue = EventQueue()
        first, created = queue.push(make_event(["a", "b"]), 0.3)
        second, created2 = queue.push(make_event(["b", "a"]), 0.2)
        assert created and not created2
        assert second is first
        assert len(queue) == 1
        assert first.coalesced == 1
        assert queue.coalesced_total == 1

    def test_different_kind_does_not_coalesce(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.3)
        queue.push(make_event(["a"], kind=EventKind.PERIODIC), 0.3)
        assert len(queue) == 2

    def test_coalescing_keeps_max_priority_and_duration(self):
        queue = EventQueue()
        entry, _ = queue.push(make_event(["a"], duration=12.0), 0.3)
        queue.push(make_event(["a"], duration=48.0), 0.1)
        assert entry.priority == 0.3
        assert entry.event.duration_hours == 48.0
        queue.push(make_event(["a"], duration=6.0), 0.7)
        assert entry.priority == 0.7
        assert entry.event.duration_hours == 48.0

    def test_priority_raise_reorders_queue(self):
        queue = EventQueue()
        queue.push(make_event(["low"]), 0.2)
        queue.push(make_event(["high"]), 0.5)
        # Coalesced duplicate raises "low" above "high".
        queue.push(make_event(["low"]), 0.9)
        popped = [queue.pop().event.nodes[0].node_id for _ in range(2)]
        assert popped == ["low", "high"]
        # The stale heap tuple for "low" must not pop a second copy.
        assert queue.pop() is None

    def test_popped_entry_no_longer_coalesces(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.3)
        queue.pop()
        _, created = queue.push(make_event(["a"]), 0.3)
        assert created
        assert len(queue) == 1


class TestEventIds:
    def test_ids_are_monotonic(self):
        queue = EventQueue()
        first, _ = queue.push(make_event(["a"]), 0.1)
        second, _ = queue.push(make_event(["b"]), 0.1)
        assert second.event_id > first.event_id

    def test_reserve_ids_skips_past_journaled_ids(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.1, event_id=7)
        queue.reserve_ids(7)
        entry, _ = queue.push(make_event(["b"]), 0.1)
        assert entry.event_id == 8

    def test_last_event_id_tracks_high_water_mark(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.1)
        queue.push(make_event(["b"]), 0.1)
        assert queue.last_event_id == 2
        queue.reserve_ids(9)
        assert queue.last_event_id == 9
        entry, _ = queue.push(make_event(["c"]), 0.1)
        assert entry.event_id == 10 and queue.last_event_id == 10


class TestRequeueAndRemove:
    def test_requeue_keeps_identity_and_attempts(self):
        queue = EventQueue()
        entry, _ = queue.push(make_event(["a"]), 0.6)
        popped = queue.pop()
        popped.attempts = 2
        queue.requeue(popped)
        again = queue.pop()
        assert again is popped
        assert again.event_id == entry.event_id and again.attempts == 2
        assert queue.pop() is None

    def test_requeue_merges_into_fresh_pending_duplicate(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.9)
        popped = queue.pop()
        popped.attempts = 2
        # A fresh duplicate was submitted while the entry was being
        # processed; the pending entry survives the merge.
        fresh, created = queue.push(make_event(["a"]), 0.3)
        assert created
        merged = queue.requeue(popped)
        assert merged is fresh
        assert merged.attempts == 2            # inherits the failures
        assert merged.priority == 0.9          # and the higher priority
        assert len(queue) == 1
        assert queue.pop() is fresh and queue.pop() is None

    def test_remove_withdraws_pending_entry(self):
        queue = EventQueue()
        entry, _ = queue.push(make_event(["a"]), 0.5)
        assert queue.remove(entry)
        assert len(queue) == 0
        assert queue.pop() is None             # stale heap tuple discarded
        assert not queue.remove(entry)         # already gone

    def test_removed_key_accepts_fresh_entry(self):
        queue = EventQueue()
        entry, _ = queue.push(make_event(["a"]), 0.5)
        queue.remove(entry)
        fresh, created = queue.push(make_event(["a"]), 0.5)
        assert created and fresh is not entry
        assert queue.pop() is fresh


class TestDeadLetters:
    def test_dead_letter_parks_popped_entry(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.5)
        entry = queue.pop()
        entry.attempts = 3
        letter = queue.dead_letter(entry, "ChaosError: poison")
        assert queue.dead_letters() == [letter]
        assert letter.event_id == entry.event_id
        assert letter.reason == "ChaosError: poison"
        assert len(queue) == 0 and queue.pop() is None

    def test_dead_letters_accumulate_in_order(self):
        queue = EventQueue()
        for name in ("a", "b"):
            queue.push(make_event([name]), 0.5)
            queue.dead_letter(queue.pop(), f"poison-{name}")
        assert [dl.reason for dl in queue.dead_letters()] == [
            "poison-a", "poison-b"]

    def test_dead_lettered_key_accepts_fresh_entry(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.5)
        queue.dead_letter(queue.pop(), "poison")
        fresh, created = queue.push(make_event(["a"]), 0.5)
        assert created
        assert queue.pop() is fresh


class TestEdgeCases:
    def test_empty_node_set_events_coalesce(self):
        queue = EventQueue()
        first, created = queue.push(make_event([], kind=EventKind.PERIODIC),
                                    0.2)
        second, created2 = queue.push(make_event([], kind=EventKind.PERIODIC),
                                      0.4)
        assert created and not created2
        assert second is first and first.priority == 0.4
        assert len(queue) == 1

    def test_duplicate_submit_pops_exactly_once(self):
        queue = EventQueue()
        queue.push(make_event(["a", "b"]), 0.5)
        _, created = queue.push(make_event(["a", "b"]), 0.5)
        assert not created
        assert queue.pop() is not None
        assert queue.pop() is None
