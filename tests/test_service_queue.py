"""Unit tests: the risk-prioritized, coalescing event queue."""

from dataclasses import dataclass

import numpy as np

from repro.core.selector import NodeStatus
from repro.core.system import EventKind, ValidationEvent
from repro.service import EventQueue


@dataclass(frozen=True)
class FakeNode:
    node_id: str


def make_event(node_ids, kind=EventKind.JOB_ALLOCATION, duration=24.0):
    nodes = tuple(FakeNode(n) for n in node_ids)
    statuses = tuple(
        NodeStatus(node_id=n, covariates=np.zeros(3)) for n in node_ids)
    return ValidationEvent(kind=kind, nodes=nodes, statuses=statuses,
                           duration_hours=duration)


class TestPriorityOrdering:
    def test_highest_priority_pops_first(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.1)
        queue.push(make_event(["b"]), 0.9)
        queue.push(make_event(["c"]), 0.5)
        order = [queue.pop().event.nodes[0].node_id for _ in range(3)]
        assert order == ["b", "c", "a"]
        assert queue.pop() is None

    def test_fifo_within_equal_priority(self):
        queue = EventQueue()
        for name in ("a", "b", "c"):
            queue.push(make_event([name]), 0.5)
        order = [queue.pop().event.nodes[0].node_id for _ in range(3)]
        assert order == ["a", "b", "c"]

    def test_pending_is_pop_order_without_consuming(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.2)
        queue.push(make_event(["b"]), 0.8)
        assert [e.priority for e in queue.pending()] == [0.8, 0.2]
        assert len(queue) == 2


class TestCoalescing:
    def test_same_kind_and_nodeset_coalesces(self):
        queue = EventQueue()
        first, created = queue.push(make_event(["a", "b"]), 0.3)
        second, created2 = queue.push(make_event(["b", "a"]), 0.2)
        assert created and not created2
        assert second is first
        assert len(queue) == 1
        assert first.coalesced == 1
        assert queue.coalesced_total == 1

    def test_different_kind_does_not_coalesce(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.3)
        queue.push(make_event(["a"], kind=EventKind.PERIODIC), 0.3)
        assert len(queue) == 2

    def test_coalescing_keeps_max_priority_and_duration(self):
        queue = EventQueue()
        entry, _ = queue.push(make_event(["a"], duration=12.0), 0.3)
        queue.push(make_event(["a"], duration=48.0), 0.1)
        assert entry.priority == 0.3
        assert entry.event.duration_hours == 48.0
        queue.push(make_event(["a"], duration=6.0), 0.7)
        assert entry.priority == 0.7
        assert entry.event.duration_hours == 48.0

    def test_priority_raise_reorders_queue(self):
        queue = EventQueue()
        queue.push(make_event(["low"]), 0.2)
        queue.push(make_event(["high"]), 0.5)
        # Coalesced duplicate raises "low" above "high".
        queue.push(make_event(["low"]), 0.9)
        popped = [queue.pop().event.nodes[0].node_id for _ in range(2)]
        assert popped == ["low", "high"]
        # The stale heap tuple for "low" must not pop a second copy.
        assert queue.pop() is None

    def test_popped_entry_no_longer_coalesces(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.3)
        queue.pop()
        _, created = queue.push(make_event(["a"]), 0.3)
        assert created
        assert len(queue) == 1


class TestEventIds:
    def test_ids_are_monotonic(self):
        queue = EventQueue()
        first, _ = queue.push(make_event(["a"]), 0.1)
        second, _ = queue.push(make_event(["b"]), 0.1)
        assert second.event_id > first.event_id

    def test_reserve_ids_skips_past_journaled_ids(self):
        queue = EventQueue()
        queue.push(make_event(["a"]), 0.1, event_id=7)
        queue.reserve_ids(7)
        entry, _ = queue.push(make_event(["b"]), 0.1)
        assert entry.event_id == 8
