"""Unit tests for trace records, persistence and the trace generators."""

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.hardware.components import IncidentCategory
from repro.hardware.degradation import WearModel
from repro.simulation.generator import (
    CATEGORY_COMPONENTS,
    TTR_SEGMENTS,
    generate_allocation_trace,
    generate_incident_trace,
    sample_time_to_resolve,
)
from repro.simulation.traces import (
    AllocationRecord,
    AllocationTrace,
    IncidentRecord,
    IncidentTrace,
)


class TestRecords:
    def test_incident_duration(self):
        record = IncidentRecord("n0", 10.0, 16.0, "gpu")
        assert record.duration_hours == 6.0

    def test_incident_end_before_start_rejected(self):
        with pytest.raises(TraceError):
            IncidentRecord("n0", 10.0, 5.0, "gpu")

    def test_allocation_validation(self):
        with pytest.raises(TraceError):
            AllocationRecord("j0", 0.0, 0, 1.0)
        with pytest.raises(TraceError):
            AllocationRecord("j0", 0.0, 1, 0.0)


class TestIncidentTrace:
    def test_records_sorted_by_start(self):
        trace = IncidentTrace(
            records=(IncidentRecord("b", 20.0, 21.0, "gpu"),
                     IncidentRecord("a", 10.0, 11.0, "gpu")),
            horizon_hours=100.0,
        )
        assert trace.records[0].node_id == "a"

    def test_node_ids_inferred(self):
        trace = IncidentTrace(
            records=(IncidentRecord("x", 1.0, 2.0, "gpu"),),
            horizon_hours=10.0,
        )
        assert trace.node_ids == ("x",)

    def test_incident_beyond_horizon_rejected(self):
        with pytest.raises(TraceError):
            IncidentTrace(records=(IncidentRecord("x", 20.0, 21.0, "gpu"),),
                          horizon_hours=10.0)

    def test_category_and_component_counts(self):
        trace = IncidentTrace(
            records=(IncidentRecord("x", 1.0, 2.0, "gpu", "gpu_sm"),
                     IncidentRecord("x", 3.0, 4.0, "gpu", "gpu_sm"),
                     IncidentRecord("y", 5.0, 6.0, "network", "ib_link")),
            horizon_hours=10.0,
        )
        assert trace.category_counts() == {"gpu": 2, "network": 1}
        assert trace.component_counts()["gpu_sm"] == 2

    def test_round_trip_json(self, tmp_path):
        trace = generate_incident_trace(10, 500.0, seed=1)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = IncidentTrace.load(path)
        assert loaded.records == trace.records
        assert loaded.node_attributes == trace.node_attributes

    def test_load_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(TraceError):
            IncidentTrace.load(path)


class TestAllocationTrace:
    def test_round_trip_json(self, tmp_path):
        trace = generate_allocation_trace(100.0, seed=2)
        path = tmp_path / "alloc.json"
        trace.save(path)
        loaded = AllocationTrace.load(path)
        assert loaded.records == trace.records

    def test_sorted_by_submit(self):
        trace = AllocationTrace(
            records=(AllocationRecord("b", 5.0, 1, 1.0),
                     AllocationRecord("a", 1.0, 1, 1.0)),
            horizon_hours=10.0,
        )
        assert trace.records[0].job_id == "a"


class TestTtrMixture:
    def test_segment_probabilities_sum_to_one(self):
        assert sum(seg[2] for seg in TTR_SEGMENTS) == pytest.approx(1.0)

    def test_figure2_tail_shares(self):
        # P(> 1 day) = 38.1%, P(> 2 weeks) = 10.3%.
        over_day = sum(p for lo, hi, p in TTR_SEGMENTS if lo >= 24.0)
        over_2wk = sum(p for lo, hi, p in TTR_SEGMENTS if lo >= 336.0)
        assert over_day == pytest.approx(0.381)
        assert over_2wk == pytest.approx(0.103)

    def test_sampled_durations_in_range(self):
        rng = np.random.default_rng(3)
        for _ in range(200):
            value = sample_time_to_resolve(rng)
            assert 0.25 <= value <= 720.0

    def test_empirical_tail_matches(self):
        rng = np.random.default_rng(4)
        values = np.array([sample_time_to_resolve(rng) for _ in range(6000)])
        assert np.mean(values > 24.0) == pytest.approx(0.381, abs=0.03)
        assert np.mean(values > 336.0) == pytest.approx(0.103, abs=0.02)


class TestIncidentGenerator:
    def test_deterministic_given_seed(self):
        a = generate_incident_trace(20, 500.0, seed=5)
        b = generate_incident_trace(20, 500.0, seed=5)
        assert a.records == b.records

    def test_every_category_has_component_labels(self):
        for category in IncidentCategory:
            assert CATEGORY_COMPONENTS[category]

    def test_components_match_category_table(self):
        trace = generate_incident_trace(50, 2000.0, seed=6)
        for record in trace.records:
            category = IncidentCategory(record.category)
            assert record.component in CATEGORY_COMPONENTS[category]

    def test_wear_shortens_gaps(self):
        wear = WearModel(base_mtbi_hours=100.0)
        trace = generate_incident_trace(400, 4000.0, wear=wear,
                                        frailty_sigma=0.0, seed=7)
        from repro.simulation.metrics import mean_time_between_ith_incidents
        gaps = mean_time_between_ith_incidents(trace, max_index=8)
        assert gaps[0] > gaps[5]

    def test_telemetry_correlates_with_incident_count(self):
        trace = generate_incident_trace(300, 2400.0, frailty_sigma=1.2, seed=8)
        counts = np.array([len(trace.for_node(n)) for n in trace.node_ids])
        ecc = np.array([trace.node_attributes[n]["telemetry_ecc_rate"]
                        for n in trace.node_ids])
        correlation = np.corrcoef(counts, ecc)[0, 1]
        assert correlation > 0.3

    def test_telemetry_disabled(self):
        trace = generate_incident_trace(5, 100.0, telemetry=False, seed=9)
        assert trace.node_attributes == {}

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            generate_incident_trace(0, 100.0)
        with pytest.raises(ValueError):
            generate_incident_trace(10, 100.0, gap_shape=0.0)


class TestAllocationGenerator:
    def test_sizes_are_powers_of_two(self):
        trace = generate_allocation_trace(300.0, max_job_nodes=32, seed=10)
        sizes = {r.n_nodes for r in trace.records}
        assert sizes <= {1, 2, 4, 8, 16, 32}

    def test_small_jobs_dominate(self):
        trace = generate_allocation_trace(2000.0, seed=11)
        sizes = np.array([r.n_nodes for r in trace.records])
        assert np.median(sizes) <= 2

    def test_mean_duration_close_to_requested(self):
        trace = generate_allocation_trace(5000.0, mean_duration_hours=10.0,
                                          seed=12)
        durations = np.array([r.duration_hours for r in trace.records])
        assert durations.mean() == pytest.approx(10.0, rel=0.25)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            generate_allocation_trace(0.0)
