"""Integration tests: service journal -> report, facade hook, CLI."""

import json

import numpy as np
import pytest

from repro.analytics import JournalReader, build_report, kv_table, markdown_table
from repro.analytics.report import render_json, render_markdown
from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import full_suite
from repro.cli import main
from repro.core.selector import NodeStatus, Selector
from repro.core.system import Anubis, EventKind, ValidationEvent
from repro.core.validator import Validator
from repro.hardware.fleet import build_fleet
from repro.service import ServiceConfig, ValidationService
from repro.simulation import analytic_coverage_table, suite_durations
from repro.simulation.generator import generate_incident_trace
from repro.survival import extract_status_samples
from repro.survival.exponential import ExponentialModel


@pytest.fixture(scope="module")
def serviced_journal(tmp_path_factory):
    """A real journal: small fleet, a few events, one service run."""
    journal = tmp_path_factory.mktemp("analytics") / "journal"
    fleet = build_fleet(8, seed=5)
    suite = full_suite()
    validator = Validator(suite, runner=SuiteRunner(seed=5))
    validator.learn_criteria(fleet.nodes[:4])
    trace = generate_incident_trace(50, 2400.0, seed=6)
    dataset = extract_status_samples(trace)
    selector = Selector(ExponentialModel().fit(dataset),
                        analytic_coverage_table(suite),
                        suite_durations(suite), p0=0.10)
    anubis = Anubis(validator, selector)
    service = ValidationService(anubis, fleet.nodes, journal_dir=journal,
                                config=ServiceConfig())
    rng = np.random.default_rng(7)
    for i in range(6):
        picks = rng.choice(8, size=2, replace=False)
        members = tuple(fleet.nodes[int(p)] for p in picks)
        statuses = tuple(
            NodeStatus(node_id=node.node_id,
                       covariates=dataset.covariates[
                           int(rng.integers(0, len(dataset)))])
            for node in members)
        service.submit(ValidationEvent(
            kind=(EventKind.INCIDENT_REPORTED if i % 3 == 0
                  else EventKind.JOB_ALLOCATION),
            nodes=members, statuses=statuses, duration_hours=24.0))
    service.drain()
    return journal, anubis


class TestJournalToReport:
    def test_report_covers_the_run(self, serviced_journal):
        journal, _anubis = serviced_journal
        records = JournalReader(journal).read_all()
        report = build_report(records, fleet_size=8)
        assert report["service"]["events_completed"] == 6
        assert report["journal"]["by_kind"]["event-enqueued"] >= 1
        # The control plane journaled provenance for validated events.
        assert report["sanitization"]["windows_total"] > 0
        assert report["availability"]["fleet_size"] == 8

    def test_two_replays_are_byte_identical(self, serviced_journal):
        journal, _anubis = serviced_journal
        one = build_report(JournalReader(journal).read_all(), fleet_size=8)
        two = build_report(JournalReader(journal).read_all(), fleet_size=8)
        assert render_json(one) == render_json(two)
        assert render_markdown(one) == render_markdown(two)

    def test_duration_hours_feeds_mtbi(self, serviced_journal):
        journal, _anubis = serviced_journal
        report = build_report(JournalReader(journal).read_all())
        assert report["mtbi"]["node_hours_observed"] > 0


class TestFacadeHook:
    def test_fleet_report_from_records(self, serviced_journal):
        journal, anubis = serviced_journal
        records = JournalReader(journal).read_all()
        report = anubis.fleet_report(records)
        assert report == build_report(records)

    def test_fleet_report_from_history(self, serviced_journal):
        _journal, anubis = serviced_journal
        report = anubis.fleet_report()
        assert report["service"]["events_completed"] == len(anubis.history)
        assert "pipeline" in report
        assert "## Measurement pipeline" in render_markdown(report)


class TestReportCLI:
    def test_json_snapshot(self, serviced_journal, capsys):
        journal, _anubis = serviced_journal
        assert main(["report", "--journal", str(journal),
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["service"]["events_completed"] == 6

    def test_markdown_snapshot_and_out_file(self, serviced_journal,
                                            capsys, tmp_path):
        journal, _anubis = serviced_journal
        out = tmp_path / "report.md"
        assert main(["report", "--journal", str(journal),
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert printed == out.read_text()
        assert printed.startswith("# Fleet validation report")

    def test_byte_identical_cli_replays(self, serviced_journal, capsys):
        journal, _anubis = serviced_journal
        main(["report", "--journal", str(journal), "--format", "json"])
        first = capsys.readouterr().out
        main(["report", "--journal", str(journal), "--format", "json"])
        assert capsys.readouterr().out == first

    def test_follow_mode_bounded_by_max_polls(self, serviced_journal,
                                              capsys):
        journal, _anubis = serviced_journal
        assert main(["report", "--journal", str(journal), "--follow",
                     "--max-polls", "1", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["service"]["events_completed"] == 6

    def test_empty_journal_still_reports(self, tmp_path, capsys):
        assert main(["report", "--journal", str(tmp_path / "none"),
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["journal"]["records"] == 0

    def test_invalid_interval_rejected(self, tmp_path, capsys):
        assert main(["report", "--journal", str(tmp_path),
                     "--interval", "0"]) == 2


class TestSharedFormatters:
    def test_kv_table_alignment_and_floats(self):
        table = kv_table({"alpha": 0.5, "count": 3})
        assert table.splitlines() == ["alpha                    0.5000",
                                      "count                    3"]

    def test_kv_table_header_and_width(self):
        table = kv_table([("non-finite", 2)], key_width=20,
                         header=("fault class", "windows"))
        assert table.splitlines()[0] == "fault class          windows"
        assert table.splitlines()[1] == "non-finite           2"

    def test_markdown_table_shape(self):
        table = markdown_table(("a", "b"), [(1, 2.5), ("x", None)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].count("|") == 3
        assert "2.5000" in lines[2]
        assert "-" in lines[3]

    def test_service_metrics_table_routes_through_kv_table(self):
        from repro.service.controlplane import ServiceMetrics
        table = ServiceMetrics(events_submitted=2).format_table()
        assert "events_submitted         2" in table
        assert "defect_rate              0.0000" in table

    def test_ledger_table_routes_through_kv_table(self):
        from repro.quality.sanitize import TelemetryLedger
        table = TelemetryLedger().format_table()
        assert table.splitlines()[0].startswith("fault class")
        assert "values quarantined" in table
