"""Unit tests: the enforced node lifecycle state machine and the
flap damper."""

import pytest

from repro.exceptions import LifecycleError, ServiceError
from repro.service import (
    LEGAL_TRANSITIONS,
    FlapDamper,
    NodeLifecycle,
    NodeState,
)


class TestNodeLifecycle:
    def test_unseen_nodes_are_healthy(self):
        lifecycle = NodeLifecycle()
        assert lifecycle.state("node-x") is NodeState.HEALTHY
        assert lifecycle.states() == {}

    def test_full_quarantine_cycle(self):
        lifecycle = NodeLifecycle()
        for state in (NodeState.SCHEDULED, NodeState.VALIDATING,
                      NodeState.QUARANTINED, NodeState.IN_REPAIR,
                      NodeState.RETURNING, NodeState.HEALTHY):
            lifecycle.transition("n1", state)
        assert lifecycle.state("n1") is NodeState.HEALTHY
        assert [t.new for t in lifecycle.transitions][-1] is NodeState.HEALTHY

    def test_skip_path(self):
        lifecycle = NodeLifecycle()
        lifecycle.transition("n1", NodeState.SCHEDULED)
        lifecycle.transition("n1", NodeState.HEALTHY, reason="selector-skip")
        assert lifecycle.state("n1") is NodeState.HEALTHY

    def test_returning_can_be_rescheduled(self):
        lifecycle = NodeLifecycle()
        for state in (NodeState.SCHEDULED, NodeState.VALIDATING,
                      NodeState.QUARANTINED, NodeState.IN_REPAIR,
                      NodeState.RETURNING):
            lifecycle.transition("n1", state)
        lifecycle.transition("n1", NodeState.SCHEDULED)
        assert lifecycle.state("n1") is NodeState.SCHEDULED

    @pytest.mark.parametrize("bad", [
        NodeState.VALIDATING,   # healthy cannot jump straight to validating
        NodeState.QUARANTINED,  # nor to quarantine
        NodeState.IN_REPAIR,
        NodeState.RETURNING,
    ])
    def test_illegal_from_healthy(self, bad):
        lifecycle = NodeLifecycle()
        with pytest.raises(LifecycleError):
            lifecycle.transition("n1", bad)

    def test_illegal_transition_does_not_mutate(self):
        lifecycle = NodeLifecycle()
        lifecycle.transition("n1", NodeState.SCHEDULED)
        with pytest.raises(LifecycleError):
            lifecycle.transition("n1", NodeState.IN_REPAIR)
        assert lifecycle.state("n1") is NodeState.SCHEDULED
        assert len(lifecycle.transitions) == 1

    def test_transitions_are_sequence_numbered(self):
        lifecycle = NodeLifecycle()
        lifecycle.transition("a", NodeState.SCHEDULED)
        lifecycle.transition("b", NodeState.SCHEDULED)
        lifecycle.transition("a", NodeState.VALIDATING)
        assert [t.seq for t in lifecycle.transitions] == [1, 2, 3]
        assert lifecycle.transitions[2].node_id == "a"

    def test_counts_and_nodes_in(self):
        lifecycle = NodeLifecycle()
        lifecycle.transition("a", NodeState.SCHEDULED)
        lifecycle.transition("b", NodeState.SCHEDULED)
        lifecycle.transition("b", NodeState.VALIDATING)
        counts = lifecycle.counts()
        assert counts["scheduled"] == 1
        assert counts["validating"] == 1
        assert counts["healthy"] == 0  # untouched nodes are implicit
        assert lifecycle.nodes_in(NodeState.SCHEDULED) == ["a"]
        assert lifecycle.nodes_in(NodeState.VALIDATING) == ["b"]

    def test_legal_transitions_cover_every_state(self):
        assert set(LEGAL_TRANSITIONS) == set(NodeState)
        # Every state can eventually reach HEALTHY again.
        reachable = {NodeState.HEALTHY}
        frontier = [NodeState.HEALTHY]
        while frontier:
            state = frontier.pop()
            for src, targets in LEGAL_TRANSITIONS.items():
                if state in targets and src not in reachable:
                    reachable.add(src)
                    frontier.append(src)
        assert reachable == set(NodeState)

    def test_every_illegal_edge_raises(self):
        """Exhaustive sweep: every (state, state) pair outside the
        legal graph raises and leaves the node untouched."""
        for old in NodeState:
            for new in NodeState:
                if new in LEGAL_TRANSITIONS[old]:
                    continue
                lifecycle = NodeLifecycle()
                if old is not NodeState.HEALTHY:
                    lifecycle.transition("n", old, force=True)
                with pytest.raises(LifecycleError):
                    lifecycle.transition("n", new)
                assert lifecycle.state("n") is old

    def test_illegal_error_names_states_and_reason(self):
        lifecycle = NodeLifecycle()
        with pytest.raises(LifecycleError,
                           match="healthy -> in-repair.*why-not"):
            lifecycle.transition("n1", NodeState.IN_REPAIR, reason="why-not")

    def test_self_transition_is_illegal(self):
        lifecycle = NodeLifecycle()
        with pytest.raises(LifecycleError):
            lifecycle.transition("n1", NodeState.HEALTHY)


class TestForceAndRestore:
    def test_forced_transition_applies_and_is_marked(self):
        lifecycle = NodeLifecycle()
        applied = lifecycle.transition("n1", NodeState.QUARANTINED,
                                       force=True)
        assert applied.forced
        assert applied.old is NodeState.HEALTHY  # the actual old state
        assert lifecycle.state("n1") is NodeState.QUARANTINED

    def test_forced_legal_transition_is_not_marked(self):
        lifecycle = NodeLifecycle()
        applied = lifecycle.transition("n1", NodeState.SCHEDULED, force=True)
        assert not applied.forced

    def test_restore_installs_snapshot_without_transitions(self):
        lifecycle = NodeLifecycle()
        lifecycle.restore({"a": NodeState.QUARANTINED,
                           "b": NodeState.VALIDATING})
        assert lifecycle.state("a") is NodeState.QUARANTINED
        assert lifecycle.state("b") is NodeState.VALIDATING
        assert lifecycle.transitions == []
        # Restored states are live: legality is enforced from them.
        lifecycle.transition("a", NodeState.IN_REPAIR)
        with pytest.raises(LifecycleError):
            lifecycle.transition("b", NodeState.IN_REPAIR)


class TestFlapDamper:
    def test_holddown_grows_exponentially_and_caps(self):
        damper = FlapDamper(base_holddown_ticks=2, multiplier=2.0,
                            max_holddown_ticks=10)
        assert [damper.holddown_for(k) for k in (1, 2, 3, 4)] == [2, 4, 8, 10]

    def test_quarantines_arm_growing_holddowns(self):
        damper = FlapDamper(base_holddown_ticks=1, multiplier=2.0,
                            max_holddown_ticks=64)
        assert damper.record_quarantine("n") == 1
        assert damper.record_quarantine("n") == 2
        assert damper.record_quarantine("n") == 4
        assert damper.flap_count("n") == 3

    def test_ready_after_holddown_ticks(self):
        damper = FlapDamper(base_holddown_ticks=2, multiplier=2.0)
        damper.record_quarantine("n")
        assert not damper.ready("n")
        damper.tick()
        assert not damper.ready("n")
        damper.tick()
        assert damper.ready("n")

    def test_unknown_node_is_ready(self):
        assert FlapDamper().ready("never-seen")

    def test_forgiveness_resets_flap_count(self):
        damper = FlapDamper(base_holddown_ticks=1, multiplier=2.0,
                            forgive_after_ticks=5)
        damper.record_quarantine("n")
        damper.record_quarantine("n")
        assert damper.flap_count("n") == 2
        for _ in range(5):
            damper.tick()
        # Quiet for the forgiveness window: counted as a first flap.
        assert damper.record_quarantine("n") == 1

    def test_no_forgiveness_inside_window(self):
        damper = FlapDamper(base_holddown_ticks=1, multiplier=2.0,
                            forgive_after_ticks=5)
        damper.record_quarantine("n")
        damper.tick()
        assert damper.record_quarantine("n") == 2

    def test_arm_and_release(self):
        damper = FlapDamper(base_holddown_ticks=3, multiplier=2.0)
        damper.record_quarantine("n")
        damper.tick()
        damper.tick()
        assert damper.holddown_remaining("n") == 1
        assert damper.arm("n") == 3     # recovery re-arms in full
        assert damper.holddown_remaining("n") == 3
        damper.release("n")
        assert damper.ready("n")

    def test_arm_without_history_uses_first_flap(self):
        damper = FlapDamper(base_holddown_ticks=2, multiplier=2.0)
        assert damper.arm("n") == 2

    def test_snapshot_round_trip(self):
        damper = FlapDamper()
        damper.record_quarantine("a")
        damper.record_quarantine("a")
        damper.record_quarantine("b")
        restored = FlapDamper()
        restored.restore(damper.flap_counts())
        assert restored.flap_count("a") == 2
        assert restored.flap_count("b") == 1
        assert restored.flap_counts() == {"a": 2, "b": 1}

    @pytest.mark.parametrize("kwargs", [
        {"base_holddown_ticks": 0},
        {"multiplier": 0.5},
        {"base_holddown_ticks": 4, "max_holddown_ticks": 2},
        {"forgive_after_ticks": 0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            FlapDamper(**kwargs)
