"""Unit tests: the enforced node lifecycle state machine."""

import pytest

from repro.exceptions import LifecycleError
from repro.service import LEGAL_TRANSITIONS, NodeLifecycle, NodeState


class TestNodeLifecycle:
    def test_unseen_nodes_are_healthy(self):
        lifecycle = NodeLifecycle()
        assert lifecycle.state("node-x") is NodeState.HEALTHY
        assert lifecycle.states() == {}

    def test_full_quarantine_cycle(self):
        lifecycle = NodeLifecycle()
        for state in (NodeState.SCHEDULED, NodeState.VALIDATING,
                      NodeState.QUARANTINED, NodeState.IN_REPAIR,
                      NodeState.RETURNING, NodeState.HEALTHY):
            lifecycle.transition("n1", state)
        assert lifecycle.state("n1") is NodeState.HEALTHY
        assert [t.new for t in lifecycle.transitions][-1] is NodeState.HEALTHY

    def test_skip_path(self):
        lifecycle = NodeLifecycle()
        lifecycle.transition("n1", NodeState.SCHEDULED)
        lifecycle.transition("n1", NodeState.HEALTHY, reason="selector-skip")
        assert lifecycle.state("n1") is NodeState.HEALTHY

    def test_returning_can_be_rescheduled(self):
        lifecycle = NodeLifecycle()
        for state in (NodeState.SCHEDULED, NodeState.VALIDATING,
                      NodeState.QUARANTINED, NodeState.IN_REPAIR,
                      NodeState.RETURNING):
            lifecycle.transition("n1", state)
        lifecycle.transition("n1", NodeState.SCHEDULED)
        assert lifecycle.state("n1") is NodeState.SCHEDULED

    @pytest.mark.parametrize("bad", [
        NodeState.VALIDATING,   # healthy cannot jump straight to validating
        NodeState.QUARANTINED,  # nor to quarantine
        NodeState.IN_REPAIR,
        NodeState.RETURNING,
    ])
    def test_illegal_from_healthy(self, bad):
        lifecycle = NodeLifecycle()
        with pytest.raises(LifecycleError):
            lifecycle.transition("n1", bad)

    def test_illegal_transition_does_not_mutate(self):
        lifecycle = NodeLifecycle()
        lifecycle.transition("n1", NodeState.SCHEDULED)
        with pytest.raises(LifecycleError):
            lifecycle.transition("n1", NodeState.IN_REPAIR)
        assert lifecycle.state("n1") is NodeState.SCHEDULED
        assert len(lifecycle.transitions) == 1

    def test_transitions_are_sequence_numbered(self):
        lifecycle = NodeLifecycle()
        lifecycle.transition("a", NodeState.SCHEDULED)
        lifecycle.transition("b", NodeState.SCHEDULED)
        lifecycle.transition("a", NodeState.VALIDATING)
        assert [t.seq for t in lifecycle.transitions] == [1, 2, 3]
        assert lifecycle.transitions[2].node_id == "a"

    def test_counts_and_nodes_in(self):
        lifecycle = NodeLifecycle()
        lifecycle.transition("a", NodeState.SCHEDULED)
        lifecycle.transition("b", NodeState.SCHEDULED)
        lifecycle.transition("b", NodeState.VALIDATING)
        counts = lifecycle.counts()
        assert counts["scheduled"] == 1
        assert counts["validating"] == 1
        assert counts["healthy"] == 0  # untouched nodes are implicit
        assert lifecycle.nodes_in(NodeState.SCHEDULED) == ["a"]
        assert lifecycle.nodes_in(NodeState.VALIDATING) == ["b"]

    def test_legal_transitions_cover_every_state(self):
        assert set(LEGAL_TRANSITIONS) == set(NodeState)
        # Every state can eventually reach HEALTHY again.
        reachable = {NodeState.HEALTHY}
        frontier = [NodeState.HEALTHY]
        while frontier:
            state = frontier.pop()
            for src, targets in LEGAL_TRANSITIONS.items():
                if state in targets and src not in reachable:
                    reachable.add(src)
                    frontier.append(src)
        assert reachable == set(NodeState)
