"""SKU as a first-class provenance axis: heterogeneous-fleet criteria.

Covers the (sku, benchmark, metric) keying spine end to end: mixed
fleet construction, per-SKU measurement envelopes, the cross-SKU
isolation invariant (every verdict's criteria provenance equals the
window's SKU; crossing namespaces raises
:class:`~repro.exceptions.SkuMismatchError`), per-SKU guarded-rollout
isolation (a bad H100 candidate rolls back without touching A100
namespaces), and schema-version migration (pre-SKU payloads replay
into the ``"unknown"`` bucket).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchsuite.base import BenchmarkResult, measure_metric
from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import suite_by_name
from repro.core.measurement import SCHEMA_VERSION, MeasurementBatch, MetricWindow
from repro.core.persistence import (
    apply_criteria_payload,
    criteria_payload,
    load_criteria,
    save_criteria,
)
from repro.core.selector import Selector
from repro.core.system import Anubis
from repro.core.validator import Validator
from repro.exceptions import CriteriaError, SkuMismatchError
from repro.hardware import (
    DEFAULT_SKU,
    SKU_REGISTRY,
    GpuSpec,
    Node,
    build_fleet,
    gpu_spec,
    performance_factor,
)
from repro.hardware.components import defect_mode
from repro.quality import RolloutConfig
from repro.quality.sanitize import Sanitizer
from repro.service import PoolConfig, ServiceConfig, ValidationService
from repro.simulation import analytic_coverage_table, suite_durations
from repro.simulation.generator import generate_incident_trace
from repro.survival import extract_status_samples
from repro.survival.exponential import ExponentialModel

MIX = {"A100": 0.5, "H100": 0.3, "MI250X": 0.2}


def small_suite():
    return (suite_by_name("ib-loopback"), suite_by_name("mem-bw"))


class TestSkuRegistry:
    def test_default_sku_is_neutral_envelope(self):
        spec = SKU_REGISTRY[DEFAULT_SKU]
        assert spec.performance_factor == 1.0
        assert spec.defect_scale == 1.0

    def test_unregistered_sku_falls_back_to_neutral(self):
        spec = gpu_spec("does-not-exist")
        assert isinstance(spec, GpuSpec)
        assert spec.performance_factor == 1.0
        assert performance_factor("does-not-exist") == 1.0

    def test_registered_classes_have_distinct_envelopes(self):
        assert SKU_REGISTRY["H100"].performance_factor > 1.0
        assert SKU_REGISTRY["MI250X"].memory_banks != \
            SKU_REGISTRY["A100"].memory_banks


class TestMixedFleetConstruction:
    def test_sku_mix_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1.0"):
            build_fleet(16, seed=0, sku_mix={"A100": 0.5, "H100": 0.4})

    def test_sku_mix_rejects_negative_fraction(self):
        with pytest.raises(ValueError):
            build_fleet(16, seed=0, sku_mix={"A100": 1.2, "H100": -0.2})

    def test_sku_mix_rejects_empty(self):
        with pytest.raises(ValueError):
            build_fleet(16, seed=0, sku_mix={})

    def test_homogeneous_fleet_defaults_to_default_sku(self):
        fleet = build_fleet(8, seed=3)
        assert all(node.sku == DEFAULT_SKU for node in fleet.nodes)
        assert fleet.sku_counts() == {DEFAULT_SKU: 8}

    def test_mix_composition_roughly_matches_fractions(self):
        fleet = build_fleet(300, seed=7, sku_mix=MIX)
        counts = fleet.sku_counts()
        assert set(counts) <= set(MIX)
        for sku, fraction in MIX.items():
            assert counts.get(sku, 0) == pytest.approx(
                300 * fraction, rel=0.35)

    def test_mix_is_seed_deterministic(self):
        first = build_fleet(64, seed=11, sku_mix=MIX)
        second = build_fleet(64, seed=11, sku_mix=MIX)
        assert [n.sku for n in first.nodes] == [n.sku for n in second.nodes]

    def test_hand_built_node_defaults_to_unknown(self):
        assert Node(node_id="x").sku == "unknown"


class TestSkuMeasurementEnvelope:
    def test_faster_sku_measures_higher_throughput(self):
        spec = suite_by_name("mem-bw")
        metric = spec.metrics[0]
        assert metric.higher_is_better
        a100 = measure_metric(spec, metric, Node(node_id="n", sku="A100"),
                              np.random.default_rng(0))
        h100 = measure_metric(spec, metric, Node(node_id="n", sku="H100"),
                              np.random.default_rng(0))
        ratio = float(np.mean(h100) / np.mean(a100))
        assert ratio == pytest.approx(
            SKU_REGISTRY["H100"].performance_factor, rel=0.05)

    def test_run_benchmark_stamps_node_sku(self):
        runner = SuiteRunner(seed=1)
        result = runner.run(suite_by_name("mem-bw"),
                            Node(node_id="n", sku="MI250X"))
        assert result.sku == "MI250X"
        assert all(w.sku == "MI250X" for w in result.windows)


class TestMeasurementSchemaMigration:
    def test_schema_version_is_two(self):
        assert SCHEMA_VERSION == 2

    def test_window_round_trip_preserves_sku(self):
        window = MetricWindow(node_id="n", benchmark="b", metric="m",
                              values=np.arange(4.0), sku="H100")
        assert MetricWindow.from_payload(window.to_payload()).sku == "H100"

    def test_v1_window_payload_loads_with_unknown_sku(self):
        window = MetricWindow(node_id="n", benchmark="b", metric="m",
                              values=np.arange(4.0), sku="H100")
        payload = window.to_payload()
        del payload["sku"]
        payload["schema_version"] = 1
        restored = MetricWindow.from_payload(payload)
        assert restored.sku == "unknown"
        np.testing.assert_array_equal(restored.values, window.values)

    def test_v1_batch_payload_loads_with_unknown_sku(self):
        batch = MeasurementBatch(
            benchmark="b", metric="m",
            windows=(MetricWindow(node_id="n", benchmark="b", metric="m",
                                  values=np.arange(3.0), sku="A100"),),
            sku="A100")
        payload = batch.to_payload()
        del payload["sku"]
        payload["schema_version"] = 1
        for window_payload in payload["windows"]:
            del window_payload["sku"]
            window_payload["schema_version"] = 1
        restored = MeasurementBatch.from_payload(payload)
        assert restored.sku == "unknown"
        assert restored.windows[0].sku == "unknown"

    def test_batch_rejects_mixed_sku_windows(self):
        windows = (
            MetricWindow(node_id="a", benchmark="b", metric="m",
                         values=np.arange(3.0), sku="A100"),
            MetricWindow(node_id="h", benchmark="b", metric="m",
                         values=np.arange(3.0), sku="H100"),
        )
        with pytest.raises(SkuMismatchError):
            MeasurementBatch(benchmark="b", metric="m", windows=windows,
                             sku="A100")


def mixed_fleet(n=18, seed=0, defects=()):
    fleet = build_fleet(n, seed=seed, sku_mix=MIX)
    rng = np.random.default_rng(seed + 1)
    # Worsen a few nodes so validation produces violations to inspect.
    for index, mode_name in enumerate(defects):
        fleet.nodes[index].apply_defect(defect_mode(mode_name), rng)
    return fleet


class TestCrossSkuIsolation:
    def test_criteria_learned_per_sku_namespace(self):
        fleet = mixed_fleet(n=24, seed=2)
        validator = Validator(small_suite(), runner=SuiteRunner(seed=2))
        validator.learn_criteria(fleet.nodes)
        skus_learned = {key[0] for key in validator.criteria}
        assert skus_learned == set(fleet.sku_counts())
        for key, criteria in validator.criteria.items():
            assert criteria.sku == key[0]

    @given(st.integers(min_value=0, max_value=6))
    @settings(max_examples=7, deadline=None)
    def test_verdict_provenance_matches_window_sku(self, seed):
        """Isolation invariant: on any mixed fleet, every violation's
        criteria-provenance SKU equals the violating node's SKU."""
        fleet = mixed_fleet(n=18, seed=seed,
                            defects=("ib_hca_degraded", "dram_latency"))
        node_sku = {node.node_id: node.sku for node in fleet.nodes}
        validator = Validator(small_suite(), runner=SuiteRunner(seed=seed))
        validator.learn_criteria(fleet.nodes)
        report = validator.validate(fleet.nodes)
        for violation in report.violations:
            assert violation.sku == node_sku[violation.node_id]

    def test_forced_cross_sku_scoring_raises(self):
        """Criteria mis-filed under another SKU's namespace must fail
        loudly, not silently score foreign hardware."""
        fleet = mixed_fleet(n=24, seed=4)
        validator = Validator(small_suite(), runner=SuiteRunner(seed=4))
        validator.learn_criteria(fleet.nodes)
        (sku_a, sku_b) = sorted({key[0] for key in validator.criteria})[:2]
        for key in list(validator.criteria):
            if key[0] == sku_a:
                # Overwrite namespace A's entries with namespace B's
                # criteria objects -- provenance now disagrees with
                # the dict key.
                donor = (sku_b,) + key[1:]
                validator.criteria[key] = validator.criteria[donor]
        spec = small_suite()[0]
        nodes = [n for n in fleet.nodes if n.sku == sku_a]
        runner = SuiteRunner(seed=4)
        results = [runner.run(spec, n) for n in nodes]
        with pytest.raises(SkuMismatchError):
            validator.check_results(spec, results)

    def test_missing_namespace_is_criteria_error(self):
        fleet = mixed_fleet(n=24, seed=5)
        validator = Validator(small_suite(), runner=SuiteRunner(seed=5))
        only_a100 = [n for n in fleet.nodes if n.sku == "A100"]
        validator.learn_criteria(only_a100)
        spec = small_suite()[0]
        h100 = [n for n in fleet.nodes if n.sku == "H100"]
        runner = SuiteRunner(seed=5)
        results = [runner.run(spec, n) for n in h100]
        with pytest.raises(CriteriaError, match="H100"):
            validator.check_results(spec, results)


class SkuPoisoningRunner(SuiteRunner):
    """Poisons measurements from one hardware class only."""

    def __init__(self, target_sku: str, factor=3.0, **kwargs):
        super().__init__(**kwargs)
        self.target_sku = target_sku
        self.factor = factor
        self.poisoning = False

    def _execute(self, spec, node):
        result = super()._execute(spec, node)
        if not self.poisoning or node.sku != self.target_sku:
            return result
        return BenchmarkResult(
            benchmark=result.benchmark, node_id=result.node_id,
            metrics={name: series * self.factor
                     for name, series in result.metrics.items()},
            sku=result.sku)


class TestPerSkuRolloutIsolation:
    def test_bad_h100_candidate_leaves_a100_untouched(self):
        suite = small_suite()
        fleet = build_fleet(16, seed=6,
                            sku_mix={"A100": 0.5, "H100": 0.5})
        runner = SkuPoisoningRunner("H100", seed=9)
        validator = Validator(suite, runner=runner)
        trace = generate_incident_trace(50, 800.0, seed=11)
        model = ExponentialModel().fit(extract_status_samples(trace))
        selector = Selector(model, analytic_coverage_table(suite),
                            suite_durations(suite), p0=0.05)
        config = ServiceConfig(pool=PoolConfig(max_workers=2),
                               rollout=RolloutConfig())
        service = ValidationService(Anubis(validator, selector), fleet.nodes,
                                    config=config)

        service.learn_criteria(fleet.nodes)
        before = dict(validator.criteria)
        assert {key[0] for key in before} == {"A100", "H100"}

        runner.poisoning = True
        decisions = service.learn_criteria(fleet.nodes)
        by_sku = {}
        for decision in decisions:
            by_sku.setdefault(decision.sku, []).append(decision)
        assert all(not d.accepted for d in by_sku["H100"])
        assert all(d.accepted for d in by_sku["A100"])
        # H100 namespaces rolled back to the trusted criteria, object
        # for object; A100 namespaces re-learned (honest refresh).
        for key, criteria in validator.criteria.items():
            if key[0] == "H100":
                assert criteria is before[key]
            else:
                assert criteria is not before[key]


class TestPersistenceNamespaces:
    def _trained(self, seed=8):
        fleet = mixed_fleet(n=24, seed=seed)
        validator = Validator(small_suite(), runner=SuiteRunner(seed=seed))
        validator.learn_criteria(fleet.nodes)
        return validator

    def test_round_trip_preserves_namespaces(self, tmp_path):
        validator = self._trained()
        path = tmp_path / "criteria.json"
        save_criteria(validator, path)
        fresh = Validator(small_suite())
        load_criteria(fresh, path)
        assert set(fresh.criteria) == set(validator.criteria)
        for key, restored in fresh.criteria.items():
            assert restored.sku == key[0]

    def test_pre_sku_payload_restores_into_unknown(self):
        validator = self._trained()
        payload = criteria_payload(validator)
        # Strip the SKU axis and drop to the pre-SKU format version,
        # keeping one entry per (benchmark, metric) as a v2 file would.
        legacy_entries = {}
        for entry in payload["entries"]:
            entry = dict(entry)
            del entry["sku"]
            legacy_entries[(entry["benchmark"], entry["metric"])] = entry
        import json
        import zlib
        entries = list(legacy_entries.values())
        canonical = json.dumps(entries, sort_keys=True,
                               separators=(",", ":"))
        legacy = {"version": 2, "entries": entries,
                  "checksum": zlib.crc32(canonical.encode())}
        fresh = Validator(small_suite())
        loaded = apply_criteria_payload(fresh, legacy, source="<legacy>")
        assert loaded == len(entries)
        assert {key[0] for key in fresh.criteria} == {"unknown"}


class TestPerSkuSanitization:
    def test_sku_schema_governs_when_registered(self):
        suite = small_suite()
        sanitizer = Sanitizer.for_suite(suite, skus=("A100", "H100"))
        spec = suite[0]
        metric = spec.metrics[0]
        sku_schema = sanitizer.schema_for(spec.name, metric.name, "H100")
        fallback = sanitizer.schema_for(spec.name, metric.name, "unknown")
        assert sku_schema.sku == "H100"
        assert fallback.sku == "unknown"
        factor = SKU_REGISTRY["H100"].performance_factor
        if metric.higher_is_better:
            assert sku_schema.upper == pytest.approx(fallback.upper * factor)
        else:
            assert sku_schema.upper == pytest.approx(fallback.upper / factor)

    def test_unlisted_sku_falls_back_to_class_agnostic(self):
        suite = small_suite()
        sanitizer = Sanitizer.for_suite(suite, skus=("A100",))
        spec = suite[0]
        metric = spec.metrics[0]
        schema = sanitizer.schema_for(spec.name, metric.name, "MI250X")
        assert schema is not None
        assert schema.sku == "unknown"
