"""Unit tests for the simulator's evolving-coverage loop (§3.1)."""


from repro.core.selection import CoverageTable
from repro.simulation.cluster import ClusterSimulator, SimulationConfig
from repro.simulation.generator import generate_allocation_trace
from repro.simulation.metrics import suite_durations
from repro.simulation.policies import AbsencePolicy, SelectorPolicy


def _setup(evolve, coverage=None, seed=5):
    config = SimulationConfig(n_nodes=16, horizon_hours=360.0, seed=seed)
    trace = generate_allocation_trace(360.0, jobs_per_hour=1.0,
                                      max_job_nodes=4,
                                      mean_duration_hours=12.0, seed=seed + 1)
    coverage = coverage if coverage is not None else CoverageTable()
    policy = SelectorPolicy(suite_durations(), coverage, config.wear_model(),
                            p0=0.02)
    simulator = ClusterSimulator(config, policy, trace,
                                 evolve_coverage=evolve)
    return simulator, coverage


class TestEvolvingCoverage:
    def test_cold_table_grows_when_evolving(self):
        simulator, coverage = _setup(evolve=True)
        simulator.run()
        assert len(coverage.all_defects()) > 0

    def test_cold_table_frozen_without_flag(self):
        simulator, coverage = _setup(evolve=False)
        simulator.run()
        assert len(coverage.all_defects()) == 0

    def test_frozen_cold_start_never_validates(self):
        simulator, _ = _setup(evolve=False)
        result = simulator.run()
        assert result.average_validation_hours == 0.0

    def test_evolving_selector_starts_validating(self):
        simulator, _ = _setup(evolve=True)
        result = simulator.run()
        assert result.average_validation_hours > 0.0

    def test_evolving_reduces_incidents_vs_frozen(self):
        evolving, _ = _setup(evolve=True)
        frozen, _ = _setup(evolve=False)
        assert (evolving.run().average_incidents
                < frozen.run().average_incidents)

    def test_credited_defects_have_real_detectors(self):
        simulator, coverage = _setup(evolve=True)
        simulator.run()
        for benchmark, defects in coverage.found.items():
            for mode, _sequence in defects:
                assert benchmark in simulator.detectors[mode]

    def test_policies_without_coverage_are_safe(self):
        config = SimulationConfig(n_nodes=8, horizon_hours=120.0, seed=3)
        trace = generate_allocation_trace(120.0, jobs_per_hour=1.0,
                                          max_job_nodes=2,
                                          mean_duration_hours=8.0, seed=4)
        simulator = ClusterSimulator(config, AbsencePolicy(), trace,
                                     evolve_coverage=True)
        result = simulator.run()  # must not crash on a coverage-less policy
        assert result.policy == "absence"
