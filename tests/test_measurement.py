"""Unit tests for the typed measurement spine (windows, batches, stats)."""

import numpy as np
import pytest

from repro.benchsuite.base import BenchmarkResult
from repro.core.measurement import (
    NONFINITE_MASK,
    NONFINITE_REJECT,
    SCHEMA_VERSION,
    MeasurementBatch,
    MetricWindow,
    PipelineStats,
)
from repro.exceptions import InvalidSampleError


def window(node="n1", values=(1.0, 2.0, 3.0), **kwargs):
    return MetricWindow(node_id=node, benchmark="bench", metric="m",
                        values=np.asarray(values, dtype=float), **kwargs)


class TestMetricWindow:
    def test_values_coerced_to_float_1d(self):
        w = MetricWindow(node_id="n", benchmark="b", metric="m",
                         values=[[1, 2], [3, 4]])
        assert w.values.dtype == float
        assert w.values.tolist() == [1.0, 2.0, 3.0, 4.0]
        assert w.n == 4

    def test_born_raw(self):
        w = window()
        assert not w.sanitized
        assert not w.quarantined
        assert w.faults == ()
        assert w.schema_version == SCHEMA_VERSION

    def test_sample_is_strict(self):
        assert window(values=(1.0, 2.0)).sample().tolist() == [1.0, 2.0]
        with pytest.raises(InvalidSampleError):
            window(values=(1.0, np.nan)).sample()
        with pytest.raises(InvalidSampleError):
            window(values=()).sample()

    def test_with_values_keeps_provenance(self):
        w = window(higher_is_better=False).mark_sanitized(faults=("x",))
        sliced = w.with_values([9.0])
        assert sliced.values.tolist() == [9.0]
        assert sliced.node_id == w.node_id
        assert not sliced.higher_is_better
        assert sliced.sanitized
        assert sliced.faults == ("x",)

    def test_mark_sanitized_cleans_values(self):
        w = window().mark_sanitized(values=[1.0, 2.0],
                                    faults=("non-finite",))
        assert w.sanitized
        assert not w.quarantined
        assert w.values.tolist() == [1.0, 2.0]
        assert w.faults == ("non-finite",)

    def test_mark_sanitized_quarantine_keeps_raw_values(self):
        raw = window(values=(1e5, 2e5))
        q = raw.mark_sanitized(quarantined=True, faults=("unit-scale",))
        assert q.quarantined
        np.testing.assert_array_equal(q.values, raw.values)

    def test_payload_round_trip(self):
        w = window(higher_is_better=False).mark_sanitized(
            quarantined=True, faults=("unit-scale",))
        rebuilt = MetricWindow.from_payload(w.to_payload())
        np.testing.assert_array_equal(rebuilt.values, w.values)
        assert rebuilt.higher_is_better == w.higher_is_better
        assert rebuilt.sanitized and rebuilt.quarantined
        assert rebuilt.faults == w.faults

    def test_malformed_payload_raises(self):
        with pytest.raises(ValueError, match="malformed window payload"):
            MetricWindow.from_payload({"node_id": "n"})

    def test_future_schema_version_rejected(self):
        payload = window().to_payload()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            MetricWindow.from_payload(payload)


class TestMeasurementBatch:
    def make_batch(self, *, sanitize=False, quarantine_last=False):
        windows = [window(node=f"n{i}", values=100.0 + np.arange(4.0))
                   for i in range(3)]
        if sanitize:
            windows = [w.mark_sanitized() for w in windows[:-1]] + [
                windows[-1].mark_sanitized(
                    quarantined=quarantine_last,
                    faults=("truncated-window",) if quarantine_last else ())
            ]
        return MeasurementBatch(benchmark="bench", metric="m",
                                windows=tuple(windows))

    def test_rejects_foreign_windows(self):
        stray = MetricWindow(node_id="n", benchmark="other", metric="m",
                             values=[1.0])
        with pytest.raises(ValueError, match="does not belong"):
            MeasurementBatch(benchmark="bench", metric="m",
                             windows=(stray,))

    def test_node_ids_in_order(self):
        assert self.make_batch().node_ids == ("n0", "n1", "n2")

    def test_policy_follows_sanitization_provenance(self):
        assert self.make_batch().nonfinite_policy == NONFINITE_MASK
        assert (self.make_batch(sanitize=True).nonfinite_policy
                == NONFINITE_REJECT)

    def test_empty_batch_is_not_sanitized(self):
        empty = MeasurementBatch(benchmark="bench", metric="m", windows=())
        assert not empty.sanitized
        assert empty.nonfinite_policy == NONFINITE_MASK

    def test_quarantined_windows_are_not_scoreable(self):
        batch = self.make_batch(sanitize=True, quarantine_last=True)
        assert batch.quarantined_nodes == ("n2",)
        assert [w.node_id for w in batch.scoreable()] == ["n0", "n1"]
        assert len(batch.samples()) == 2

    def test_from_results_collects_matching_metric(self):
        results = [
            BenchmarkResult("bench", "a", metrics={"m": np.ones(3)}),
            BenchmarkResult("bench", "b", metrics={"other": np.ones(3)}),
            BenchmarkResult("bench", "c", metrics={"m": np.ones(3)}),
        ]
        batch = MeasurementBatch.from_results(results, benchmark="bench",
                                              metric="m")
        assert batch.node_ids == ("a", "c")

    def test_payload_round_trip(self):
        batch = self.make_batch(sanitize=True, quarantine_last=True)
        rebuilt = MeasurementBatch.from_payload(batch.to_payload())
        assert rebuilt.node_ids == batch.node_ids
        assert rebuilt.quarantined_nodes == batch.quarantined_nodes
        assert rebuilt.nonfinite_policy == batch.nonfinite_policy


class TestPipelineStats:
    def test_record_and_snapshot(self):
        stats = PipelineStats()
        stats.record("score", count=3, seconds=0.5)
        stats.record("score", seconds=0.25)
        stats.record("learn")
        snap = stats.snapshot()
        assert snap["score"]["count"] == 4.0
        assert snap["score"]["seconds"] == pytest.approx(0.75)
        assert list(snap) == ["learn", "score"]  # sorted

    def test_timed_context_counts_once(self):
        stats = PipelineStats()
        with stats.timed("execute"):
            pass
        snap = stats.snapshot()
        assert snap["execute"]["count"] == 1.0
        assert snap["execute"]["seconds"] >= 0.0

    def test_timed_records_on_exception(self):
        stats = PipelineStats()
        with pytest.raises(RuntimeError):
            with stats.timed("execute"):
                raise RuntimeError("boom")
        assert stats.snapshot()["execute"]["count"] == 1.0

    def test_merge_combines_and_leaves_sources_alone(self):
        a, b = PipelineStats(), PipelineStats()
        a.record("execute", count=2, seconds=1.0)
        b.record("execute", count=1, seconds=0.5)
        b.record("sanitize", count=4)
        merged = a.merge(b)
        assert merged.snapshot()["execute"] == {"count": 3.0, "seconds": 1.5}
        assert merged.snapshot()["sanitize"]["count"] == 4.0
        assert a.snapshot()["execute"]["count"] == 2.0

    def test_merge_with_none(self):
        a = PipelineStats()
        a.record("learn")
        assert a.merge(None).snapshot()["learn"]["count"] == 1.0
