"""Contamination-resistant learning: non-finite policies, trimmed
medoid aggregation, and the fleet-wide-abort regression."""

import warnings

import numpy as np
import pytest

from repro.benchsuite.base import BenchmarkResult
from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import suite_by_name
from repro.core.backend import get_backend, pairwise_similarity_matrix
from repro.core.criteria import learn_criteria, medoid_index
from repro.core.ecdf import as_sample
from repro.core.fastdist import SortedSampleBatch
from repro.core.validator import Validator
from repro.exceptions import CriteriaError, InvalidSampleError
from repro.hardware.node import Node


def healthy_fleet(n=10, base=100.0, seed=0):
    rng = np.random.default_rng(seed)
    return [base * (1.0 + 0.02 * rng.standard_normal(24)) for _ in range(n)]


class TestAsSamplePolicies:
    def test_reject_is_the_default(self):
        with pytest.raises(InvalidSampleError):
            as_sample([1.0, np.nan])

    def test_mask_drops_non_finite(self):
        out = as_sample([1.0, np.nan, 2.0, np.inf, -np.inf, 3.0],
                        nonfinite="mask")
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_mask_of_entirely_non_finite_rejected(self):
        with pytest.raises(InvalidSampleError, match="entirely non-finite"):
            as_sample([np.nan, np.inf], nonfinite="mask")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            as_sample([1.0], nonfinite="ignore")

    def test_batch_masks_before_padding(self):
        # +inf padding must never be confused with an observed +inf:
        # masking happens first, so the observed inf is gone and the
        # padded row still scores like its finite part.
        dirty = [np.array([1.0, 2.0, np.inf]), np.array([1.0, 2.0])]
        batch = SortedSampleBatch.from_samples(dirty, nonfinite="mask")
        clean = SortedSampleBatch.from_samples(
            [np.array([1.0, 2.0]), np.array([1.0, 2.0])])
        np.testing.assert_array_equal(batch.data, clean.data)
        np.testing.assert_array_equal(batch.sizes, clean.sizes)


class TestTrimmedMedoid:
    def test_zero_trim_matches_plain_medoid(self):
        samples = healthy_fleet()
        sim = pairwise_similarity_matrix(samples)
        active = np.ones(len(samples), dtype=bool)
        assert medoid_index(sim, active) == medoid_index(sim, active,
                                                         trim_fraction=0.0)

    def test_trim_fraction_ignores_planted_outliers(self):
        # Breakdown point: with trim t = floor(f * (k - 1)), up to t
        # adversarial windows cannot drag the medoid off the healthy
        # cluster.  Plant 2 of 12 poisoned windows and trim for them.
        samples = healthy_fleet(n=10) + [np.full(24, 1e5), np.full(24, 2e5)]
        sim = pairwise_similarity_matrix(samples)
        active = np.ones(len(samples), dtype=bool)
        trimmed = medoid_index(sim, active, trim_fraction=0.2)
        assert trimmed < 10

    def test_contamination_budget_shapes_learning(self):
        samples = healthy_fleet(n=10) + [np.full(24, 1e5), np.full(24, 2e5)]
        learned = learn_criteria(samples, 0.95, centroid="medoid",
                                 contamination=0.2)
        assert learned.centroid_index < 10
        assert {10, 11} <= set(learned.defect_indices)

    def test_invalid_contamination_rejected(self):
        samples = healthy_fleet(n=4)
        for bad in (-0.1, 0.5, 1.0):
            with pytest.raises(CriteriaError):
                learn_criteria(samples, 0.95, contamination=bad)


class TestNonFiniteLearning:
    def test_masked_learning_matches_clean_learning(self):
        clean = healthy_fleet()
        dirty = [s.copy() for s in clean]
        dirty[3] = np.concatenate([dirty[3], [np.nan, np.inf]])
        a = learn_criteria(clean, 0.95)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            b = learn_criteria(dirty, 0.95, backend=get_backend("mask"))
        np.testing.assert_allclose(np.sort(a.criteria), np.sort(b.criteria))

    def test_masking_warns(self):
        dirty = healthy_fleet()
        dirty[0][0] = np.nan
        with pytest.warns(RuntimeWarning, match="non-finite"):
            learn_criteria(dirty, 0.95, backend=get_backend("mask"))

    def test_fully_dead_window_excluded_not_fatal(self):
        samples = healthy_fleet() + [np.full(24, np.nan)]
        with pytest.warns(RuntimeWarning):
            learned = learn_criteria(samples, 0.95,
                                     backend=get_backend("mask"))
        assert learned.excluded_indices == (len(samples) - 1,)
        assert learned.similarities[-1] == 0.0

    def test_reject_policy_still_raises(self):
        samples = healthy_fleet()
        samples[0][0] = np.nan
        with pytest.raises(InvalidSampleError):
            learn_criteria(samples, 0.95, backend=get_backend("reject"))


class TestFleetWideAbortRegression:
    """Regression (the dirty-telemetry bug this PR fixes): one node's
    non-finite sample used to be able to abort, or silently shrink,
    fleet-wide criteria learning."""

    SUITE = (suite_by_name("mem-bw"),)

    def _results(self, n=8, seed=0):
        runner = SuiteRunner(seed=seed)
        spec = self.SUITE[0]
        return spec, {f"n{i}": runner.run(spec, Node(node_id=f"n{i}"))
                      for i in range(n)}

    def test_one_nan_node_does_not_abort_learning(self):
        spec, results = self._results()
        poisoned = results["n0"]
        results["n0"] = BenchmarkResult(
            benchmark=poisoned.benchmark, node_id=poisoned.node_id,
            metrics={name: np.full_like(series, np.nan, dtype=float)
                     for name, series in poisoned.metrics.items()})
        validator = Validator(self.SUITE)
        validator.learn_criteria_from_results(spec, results)
        assert all(("unknown", spec.name, m.name) in validator.criteria
                   for m in spec.metrics)

    def test_partial_nan_window_still_contributes(self):
        # Multi-sample window with one NaN: the finite part must stay
        # in the learning set (mask), not drop the whole node.
        spec = suite_by_name("gemm-flops")
        runner = SuiteRunner(seed=1)
        results = {f"n{i}": runner.run(spec, Node(node_id=f"n{i}"))
                   for i in range(8)}
        target = results["n3"]
        dirty_metrics = {}
        for name, series in target.metrics.items():
            series = np.asarray(series, dtype=float).copy()
            if series.size > 1:
                series[0] = np.nan
            dirty_metrics[name] = series
        results["n3"] = BenchmarkResult(benchmark=target.benchmark,
                                        node_id=target.node_id,
                                        metrics=dirty_metrics)
        validator = Validator((spec,))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            validator.learn_criteria_from_results(spec, results)
        for metric in spec.metrics:
            learning = validator.criteria[("unknown", spec.name, metric.name)].learning
            # All 8 windows entered learning; none were excluded.
            assert len(learning.similarities) == 8
            assert learning.excluded_indices == ()

    def test_quarantined_metric_skipped_for_learning(self):
        spec, results = self._results()
        scaled = results["n0"]
        results["n0"] = BenchmarkResult(
            benchmark=scaled.benchmark, node_id=scaled.node_id,
            metrics={name: np.asarray(series, dtype=float) * 1000.0
                     for name, series in scaled.metrics.items()},
            quarantined=tuple(scaled.metrics))
        validator = Validator(self.SUITE)
        validator.learn_criteria_from_results(spec, results)
        for metric in spec.metrics:
            learning = validator.criteria[("unknown", spec.name, metric.name)].learning
            assert len(learning.similarities) == 7
