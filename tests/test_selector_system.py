"""Unit tests for the Selector and the Anubis system facade."""

import numpy as np
import pytest

from repro.benchsuite.base import (
    BenchmarkKind,
    BenchmarkSpec,
    MetricSpec,
    Phase,
)
from repro.benchsuite.runner import SuiteRunner
from repro.core.selection import CoverageTable
from repro.core.selector import NodeStatus, Selector
from repro.core.system import Anubis, EventKind, ValidationEvent
from repro.core.validator import Validator
from repro.hardware.components import Component, defect_mode
from repro.hardware.node import Node
from repro.survival.base import SurvivalDataset
from repro.survival.exponential import ExponentialModel


def _fitted_model(rate=0.01, seed=0):
    rng = np.random.default_rng(seed)
    n = 200
    ds = SurvivalDataset(
        covariates=rng.uniform(0, 1, (n, 3)),
        durations=rng.exponential(1.0 / rate, n),
        events=np.ones(n),
        feature_names=("a", "b", "c"),
    )
    return ExponentialModel().fit(ds)


def _coverage():
    table = CoverageTable()
    table.record("fast-wide", {f"d{i}" for i in range(8)})
    table.record("slow-narrow", {"d0", "d99"})
    return table


def _statuses(n):
    return [NodeStatus(node_id=f"n{i}", covariates=np.zeros(3)) for i in range(n)]


class TestSelector:
    durations = {"fast-wide": 5.0, "slow-narrow": 60.0}

    def make(self, p0=0.10, rate=0.01):
        return Selector(_fitted_model(rate=rate), _coverage(), self.durations,
                        p0=p0)

    def test_invalid_p0_rejected(self):
        with pytest.raises(ValueError):
            Selector(_fitted_model(), _coverage(), self.durations, p0=1.0)

    def test_empty_durations_rejected(self):
        with pytest.raises(ValueError):
            Selector(_fitted_model(), _coverage(), {})

    def test_incident_probabilities_shape(self):
        selector = self.make()
        probs = selector.incident_probabilities(_statuses(4), 24.0)
        assert probs.shape == (4,)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            self.make().incident_probabilities(_statuses(1), 0.0)

    def test_short_job_skips_validation(self):
        selector = self.make(p0=0.20, rate=0.001)
        result = selector.select_for_event(_statuses(1), 1.0)
        assert result.skipped

    def test_long_job_selects_subset(self):
        selector = self.make(p0=0.05, rate=0.01)
        result = selector.select_for_event(_statuses(8), 200.0)
        assert not result.skipped
        assert "fast-wide" in result.subset  # best coverage per minute

    def test_regular_validation_flags_risky_nodes(self):
        selector = self.make(p0=0.05, rate=0.01)
        due = selector.nodes_due_for_regular_validation(_statuses(3),
                                                        lookahead_hours=100.0)
        assert len(due) == 3  # exponential risk over 100 h >> 0.05

    def test_record_validation_updates_coverage(self):
        selector = self.make()
        from repro.core.validator import ValidationReport, Violation
        report = ValidationReport(validated_nodes=["n1"],
                                  benchmarks_run=["fast-wide"])
        report.violations = [Violation("n1", "fast-wide", "m", 0.5)]
        before = len(selector.coverage.found["fast-wide"])
        selector.record_validation(report)
        assert len(selector.coverage.found["fast-wide"]) == before + 1


def _tiny_suite():
    return (
        BenchmarkSpec(
            name="fast-wide", kind=BenchmarkKind.MICRO, phase=Phase.SINGLE_NODE,
            duration_minutes=5.0, sensitivity={Component.NIC: 1.0},
            metrics=(MetricSpec(name="bw", unit="GB/s", base_value=25.0,
                                noise_cv=0.001, run_cv=0.0005, node_cv=0.0005),),
        ),
        BenchmarkSpec(
            name="slow-narrow", kind=BenchmarkKind.MICRO, phase=Phase.SINGLE_NODE,
            duration_minutes=60.0, sensitivity={Component.DISK: 1.0},
            metrics=(MetricSpec(name="iops", unit="kIOPS", base_value=650.0,
                                noise_cv=0.005, run_cv=0.002, node_cv=0.002),),
        ),
    )


class TestAnubis:
    def make_system(self, p0=0.10, rate=0.01, seed=0):
        validator = Validator(_tiny_suite(), runner=SuiteRunner(seed=seed))
        healthy = [Node(node_id=f"h{i}") for i in range(10)]
        validator.learn_criteria(healthy)
        selector = Selector(_fitted_model(rate=rate), _coverage(),
                            {"fast-wide": 5.0, "slow-narrow": 60.0}, p0=p0)
        return Anubis(validator, selector), healthy

    def test_node_added_runs_full_set(self):
        system, healthy = self.make_system()
        event = ValidationEvent(kind=EventKind.NODE_ADDED,
                                nodes=tuple(healthy[:2]),
                                statuses=tuple(_statuses(2)))
        outcome = system.handle(event)
        assert not outcome.skipped
        assert set(outcome.report.benchmarks_run) == {"fast-wide", "slow-narrow"}

    def test_job_allocation_can_skip(self):
        system, healthy = self.make_system(p0=0.5, rate=0.0001)
        event = ValidationEvent(kind=EventKind.JOB_ALLOCATION,
                                nodes=tuple(healthy[:2]),
                                statuses=tuple(_statuses(2)),
                                duration_hours=1.0)
        outcome = system.handle(event)
        assert outcome.skipped
        assert outcome.selection is not None and outcome.selection.skipped

    def test_job_allocation_validates_risky_nodes(self):
        system, healthy = self.make_system(p0=0.01, rate=0.05)
        rng = np.random.default_rng(5)
        bad = Node(node_id="bad")
        bad.apply_defect(defect_mode("ib_hca_degraded"), rng)
        event = ValidationEvent(kind=EventKind.JOB_ALLOCATION,
                                nodes=(healthy[0], bad),
                                statuses=tuple(_statuses(2)),
                                duration_hours=100.0)
        outcome = system.handle(event)
        assert not outcome.skipped
        assert "bad" in outcome.defective_node_ids

    def test_incident_event_always_validates(self):
        system, healthy = self.make_system(p0=0.9, rate=0.00001)
        event = ValidationEvent(kind=EventKind.INCIDENT_REPORTED,
                                nodes=(healthy[0],),
                                statuses=tuple(_statuses(1)))
        outcome = system.handle(event)
        assert not outcome.skipped

    def test_history_accumulates(self):
        system, healthy = self.make_system()
        event = ValidationEvent(kind=EventKind.NODE_ADDED,
                                nodes=(healthy[0],),
                                statuses=tuple(_statuses(1)))
        system.handle(event)
        system.handle(event)
        assert len(system.history) == 2

    def test_mismatched_event_rejected(self):
        with pytest.raises(ValueError):
            ValidationEvent(kind=EventKind.NODE_ADDED,
                            nodes=(Node(node_id="x"),),
                            statuses=tuple(_statuses(2)))

    def test_history_is_bounded(self):
        system, healthy = self.make_system()
        system.history = type(system.history)(maxlen=3)
        event = ValidationEvent(kind=EventKind.NODE_ADDED,
                                nodes=(healthy[0],),
                                statuses=tuple(_statuses(1)))
        for _ in range(5):
            system.handle(event)
        assert len(system.history) == 3
        # Aggregate counters survive eviction.
        assert system.history_summary()["events"] == 5

    def test_history_limit_constructor_arg(self):
        validator = Validator(_tiny_suite(), runner=SuiteRunner(seed=0))
        selector = Selector(_fitted_model(rate=0.01), _coverage(),
                            {"fast-wide": 5.0, "slow-narrow": 60.0})
        bounded = Anubis(validator, selector, history_limit=2)
        assert bounded.history.maxlen == 2
        unbounded = Anubis(validator, selector, history_limit=None)
        assert unbounded.history.maxlen is None

    def test_history_summary_counts_by_kind(self):
        system, healthy = self.make_system(p0=0.5, rate=0.0001)
        full = ValidationEvent(kind=EventKind.NODE_ADDED,
                               nodes=(healthy[0],),
                               statuses=tuple(_statuses(1)))
        skippable = ValidationEvent(kind=EventKind.JOB_ALLOCATION,
                                    nodes=(healthy[1],),
                                    statuses=tuple(_statuses(1)),
                                    duration_hours=1.0)
        system.handle(full)
        system.handle(skippable)
        summary = system.history_summary()
        assert summary["events"] == 2
        assert summary["validated"] == 1
        assert summary["skipped"] == 1
        assert summary["by_kind"]["node-added"] == 1
        assert summary["by_kind"]["job-allocation"] == 1

    def test_plan_then_record_matches_handle(self):
        system, healthy = self.make_system()
        event = ValidationEvent(kind=EventKind.NODE_ADDED,
                                nodes=(healthy[0],),
                                statuses=tuple(_statuses(1)))
        plan = system.plan(event)
        assert plan.validates
        assert plan.selection is None  # full-set kinds bypass the Selector
        handled = system.handle(event)
        assert not handled.skipped
        assert system.history_summary()["events"] == 1  # plan alone records nothing
