"""Telemetry-level fault injection: corruption shapes, keyed-stream
determinism, and rate validation."""

import numpy as np
import pytest

from repro.benchsuite.faults import FaultInjectingRunner
from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import full_suite, suite_by_name
from repro.hardware.node import Node
from repro.simulation.dirty import dirty_runner


def multi_sample_spec():
    """A spec whose metrics have multi-sample windows (needed so the
    truncate/duplicate shapes are observable)."""
    return suite_by_name("ib-loopback")


def clean_and_dirty(kind_rate, seed=3, spec=None, **kwargs):
    spec = spec or multi_sample_spec()
    node = Node(node_id="n0")
    clean = SuiteRunner(seed=seed).run(spec, node)
    runner = FaultInjectingRunner(seed=seed, **{kind_rate: 1.0}, **kwargs)
    dirty = runner.run(spec, node)
    return clean, dirty, runner


class TestCorruptionShapes:
    def test_nan_fault_injects_non_finite_pointwise(self):
        clean, dirty, runner = clean_and_dirty("telemetry_nan_rate")
        assert runner.injected and runner.injected[0][2] == "telemetry-nan"
        for name, series in dirty.metrics.items():
            series = np.asarray(series, dtype=float)
            bad = ~np.isfinite(series)
            assert bad.any()
            # Only some entries corrupted on multi-sample windows; the
            # finite remainder still matches the clean execution.
            reference = np.asarray(clean.metrics[name], dtype=float)
            if series.size > 1:
                assert bad.sum() < series.size
                np.testing.assert_array_equal(series[~bad], reference[~bad])

    def test_truncate_fault_cuts_window_short(self):
        clean, dirty, _ = clean_and_dirty("telemetry_truncate_rate")
        for name, series in dirty.metrics.items():
            reference = np.asarray(clean.metrics[name], dtype=float)
            if reference.size == 1:
                continue
            assert series.size < reference.size
            np.testing.assert_array_equal(series, reference[:series.size])

    def test_scale_fault_multiplies_whole_window(self):
        clean, dirty, _ = clean_and_dirty("telemetry_scale_rate",
                                          unit_scale_factor=1000.0)
        for name, series in dirty.metrics.items():
            reference = np.asarray(clean.metrics[name], dtype=float)
            np.testing.assert_allclose(series, reference * 1000.0)

    def test_duplicate_fault_replays_prefix(self):
        clean, dirty, _ = clean_and_dirty("telemetry_duplicate_rate")
        for name, series in dirty.metrics.items():
            reference = np.asarray(clean.metrics[name], dtype=float)
            assert series.size > reference.size
            np.testing.assert_array_equal(series[:reference.size], reference)
            extra = series[reference.size:]
            np.testing.assert_array_equal(extra, reference[:extra.size])

    def test_execution_fault_takes_precedence(self):
        spec = multi_sample_spec()
        runner = FaultInjectingRunner(seed=0, crash_rate=1.0,
                                      telemetry_scale_rate=1.0)
        result = runner.run(spec, Node(node_id="n0"))
        kinds = {kind for _, _, kind in runner.injected}
        assert kinds == {"crash"}
        assert all(np.asarray(v).size == 0 for v in result.metrics.values())


class TestDeterminism:
    NODES = [Node(node_id=f"n{i}") for i in range(24)]

    def _sweep(self, runner, nodes, spec):
        return [runner.run(spec, node) for node in nodes]

    def test_same_seed_same_faults_and_telemetry(self):
        spec = multi_sample_spec()
        a = FaultInjectingRunner(seed=5, telemetry_nan_rate=0.2,
                                 telemetry_scale_rate=0.2)
        b = FaultInjectingRunner(seed=5, telemetry_nan_rate=0.2,
                                 telemetry_scale_rate=0.2)
        results_a = self._sweep(a, self.NODES, spec)
        results_b = self._sweep(b, self.NODES, spec)
        assert a.injected == b.injected
        for ra, rb in zip(results_a, results_b):
            for name in ra.metrics:
                np.testing.assert_array_equal(ra.metrics[name],
                                              rb.metrics[name])

    def test_injection_is_order_independent(self):
        spec = multi_sample_spec()
        forward = FaultInjectingRunner(seed=5, telemetry_nan_rate=0.3,
                                       telemetry_duplicate_rate=0.3)
        backward = FaultInjectingRunner(seed=5, telemetry_nan_rate=0.3,
                                        telemetry_duplicate_rate=0.3)
        self._sweep(forward, self.NODES, spec)
        self._sweep(backward, list(reversed(self.NODES)), spec)
        assert sorted(forward.injected) == sorted(backward.injected)

    def test_different_seed_different_lottery(self):
        spec = multi_sample_spec()
        a = FaultInjectingRunner(seed=5, telemetry_nan_rate=0.3)
        b = FaultInjectingRunner(seed=6, telemetry_nan_rate=0.3)
        self._sweep(a, self.NODES, spec)
        self._sweep(b, self.NODES, spec)
        assert a.injected != b.injected

    def test_all_fault_kinds_reachable(self):
        # With all four rates live, a big enough sweep draws each kind.
        runner = dirty_runner(contamination=0.8, seed=1)
        for spec in full_suite():
            for node in self.NODES:
                runner.run(spec, node)
        kinds = {kind for _, _, kind in runner.injected}
        assert kinds == {"telemetry-nan", "telemetry-truncate",
                         "telemetry-scale", "telemetry-duplicate"}

    def test_fault_nodes_scoping(self):
        spec = multi_sample_spec()
        runner = FaultInjectingRunner(seed=0, telemetry_nan_rate=1.0,
                                      fault_nodes={"n0"})
        runner.run(spec, Node(node_id="n0"))
        runner.run(spec, Node(node_id="n1"))
        assert {node for node, _, _ in runner.injected} == {"n0"}


class TestRateValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultInjectingRunner(telemetry_nan_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjectingRunner(telemetry_scale_rate=-0.1)

    def test_telemetry_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            FaultInjectingRunner(telemetry_nan_rate=0.6,
                                 telemetry_truncate_rate=0.6)

    def test_unit_scale_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            FaultInjectingRunner(telemetry_scale_rate=0.1,
                                 unit_scale_factor=1.0)

    def test_dirty_runner_contamination_bounds(self):
        from repro.exceptions import ReproError
        with pytest.raises(ReproError):
            dirty_runner(contamination=1.2)
