"""Unit tests: the append-only JSONL journal and event serialization."""

import json
import logging
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.selector import NodeStatus
from repro.core.system import EventKind, ValidationEvent
from repro.exceptions import JournalError
from repro.service import JournalStore, event_from_payload, event_to_payload


@dataclass(frozen=True)
class FakeNode:
    node_id: str


def make_event(node_ids, kind=EventKind.JOB_ALLOCATION):
    nodes = tuple(FakeNode(n) for n in node_ids)
    statuses = tuple(
        NodeStatus(node_id=n, covariates=np.arange(3, dtype=float))
        for n in node_ids)
    return ValidationEvent(kind=kind, nodes=nodes, statuses=statuses,
                           duration_hours=36.0)


class TestEventSerialization:
    def test_round_trip(self):
        event = make_event(["n1", "n2"], kind=EventKind.INCIDENT_REPORTED)
        index = {"n1": FakeNode("n1"), "n2": FakeNode("n2")}
        rebuilt = event_from_payload(event_to_payload(event), index)
        assert rebuilt.kind is EventKind.INCIDENT_REPORTED
        assert [n.node_id for n in rebuilt.nodes] == ["n1", "n2"]
        assert rebuilt.duration_hours == 36.0
        for status, original in zip(rebuilt.statuses, event.statuses):
            np.testing.assert_array_equal(status.covariates,
                                          original.covariates)

    def test_payload_is_json_serializable(self):
        payload = event_to_payload(make_event(["n1"]))
        assert json.loads(json.dumps(payload)) == payload

    def test_unknown_node_raises(self):
        event = make_event(["n1"])
        with pytest.raises(JournalError, match="unknown node"):
            event_from_payload(event_to_payload(event), {})

    def test_malformed_payload_raises(self):
        with pytest.raises(JournalError, match="malformed"):
            event_from_payload({"kind": "job-allocation"}, {})


class TestJournalStore:
    def test_append_and_replay(self, tmp_path):
        store = JournalStore(tmp_path)
        store.append("alpha", {"x": 1})
        store.append("beta", {"y": [1, 2]})
        records = store.replay()
        assert [(r.seq, r.kind) for r in records] == [(1, "alpha"), (2, "beta")]
        assert records[1].payload == {"y": [1, 2]}

    def test_sequence_continues_across_restart(self, tmp_path):
        JournalStore(tmp_path).append("alpha", {})
        reopened = JournalStore(tmp_path)
        assert reopened.next_seq == 2
        assert reopened.append("beta", {}) == 2

    def test_empty_directory_replays_nothing(self, tmp_path):
        assert JournalStore(tmp_path).replay() == []

    def test_truncated_last_line_is_skipped_with_warning(self, tmp_path,
                                                         caplog):
        store = JournalStore(tmp_path)
        store.append("alpha", {"x": 1})
        store.append("beta", {"x": 2})
        # Simulate a crash mid-append: chop the final line in half.
        text = store.path.read_text()
        store.path.write_text(text[:len(text) - 12])
        with caplog.at_level(logging.WARNING):
            records = JournalStore(tmp_path).replay()
        assert [r.kind for r in records] == ["alpha"]
        assert any("corrupted journal line" in r.message
                   for r in caplog.records)

    def test_corrupt_middle_line_is_skipped(self, tmp_path, caplog):
        store = JournalStore(tmp_path)
        store.append("alpha", {})
        with store.path.open("a") as handle:
            handle.write("{not json at all\n")
        store.append("beta", {})
        with caplog.at_level(logging.WARNING):
            records = JournalStore(tmp_path).replay()
        assert [r.kind for r in records] == ["alpha", "beta"]

    def test_wrong_shape_line_is_skipped(self, tmp_path, caplog):
        store = JournalStore(tmp_path)
        with store.path.open("a") as handle:
            handle.write(json.dumps({"seq": 1}) + "\n")  # missing fields
        with caplog.at_level(logging.WARNING):
            assert JournalStore(tmp_path).replay() == []
        assert any("corrupted journal line" in r.message
                   for r in caplog.records)

    def test_seq_recovery_ignores_corrupt_tail(self, tmp_path):
        store = JournalStore(tmp_path)
        store.append("alpha", {})
        with store.path.open("a") as handle:
            handle.write('{"seq": 99, "kind": "beta"')  # truncated
        reopened = JournalStore(tmp_path)
        assert reopened.next_seq == 2
