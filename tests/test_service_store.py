"""Unit tests: the append-only JSONL journal and event serialization."""

import json
import logging
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.measurement import (
    NONFINITE_MASK,
    NONFINITE_REJECT,
    MeasurementBatch,
    MetricWindow,
)
from repro.core.selector import NodeStatus
from repro.core.system import EventKind, ValidationEvent
from repro.exceptions import JournalError
from repro.service import JournalStore, event_from_payload, event_to_payload
from repro.service.store import record_crc


@dataclass(frozen=True)
class FakeNode:
    node_id: str


def make_event(node_ids, kind=EventKind.JOB_ALLOCATION):
    nodes = tuple(FakeNode(n) for n in node_ids)
    statuses = tuple(
        NodeStatus(node_id=n, covariates=np.arange(3, dtype=float))
        for n in node_ids)
    return ValidationEvent(kind=kind, nodes=nodes, statuses=statuses,
                           duration_hours=36.0)


class TestEventSerialization:
    def test_round_trip(self):
        event = make_event(["n1", "n2"], kind=EventKind.INCIDENT_REPORTED)
        index = {"n1": FakeNode("n1"), "n2": FakeNode("n2")}
        rebuilt = event_from_payload(event_to_payload(event), index)
        assert rebuilt.kind is EventKind.INCIDENT_REPORTED
        assert [n.node_id for n in rebuilt.nodes] == ["n1", "n2"]
        assert rebuilt.duration_hours == 36.0
        for status, original in zip(rebuilt.statuses, event.statuses):
            np.testing.assert_array_equal(status.covariates,
                                          original.covariates)

    def test_payload_is_json_serializable(self):
        payload = event_to_payload(make_event(["n1"]))
        assert json.loads(json.dumps(payload)) == payload

    def test_unknown_node_raises(self):
        event = make_event(["n1"])
        with pytest.raises(JournalError, match="unknown node"):
            event_from_payload(event_to_payload(event), {})

    def test_malformed_payload_raises(self):
        with pytest.raises(JournalError, match="malformed"):
            event_from_payload({"kind": "job-allocation"}, {})


class TestMeasurementBatchJournalRoundTrip:
    """A provenance batch journaled by the service must survive a
    process kill byte-identically: values, polarity, sanitization and
    quarantine state all come back off the journal, not out of band."""

    def make_batch(self):
        clean = MetricWindow(
            node_id="n1", benchmark="mem-bw", metric="bandwidth",
            values=np.array([101.0, 99.5, 100.2]), higher_is_better=True,
        ).mark_sanitized()
        dirty = MetricWindow(
            node_id="n2", benchmark="mem-bw", metric="bandwidth",
            values=np.array([1.0e5, 2.0e5]), higher_is_better=True,
        ).mark_sanitized(quarantined=True, faults=("unit-scale",))
        return MeasurementBatch(benchmark="mem-bw", metric="bandwidth",
                                windows=(clean, dirty))

    def test_provenance_survives_simulated_kill(self, tmp_path):
        batch = self.make_batch()
        store = JournalStore(tmp_path)
        store.append("measurement-batch", batch.to_payload())
        del store  # simulated kill: only the journal file survives

        recovered = JournalStore(tmp_path).replay()
        assert [r.kind for r in recovered] == ["measurement-batch"]
        rebuilt = MeasurementBatch.from_payload(recovered[0].payload)

        assert rebuilt.benchmark == batch.benchmark
        assert rebuilt.metric == batch.metric
        assert rebuilt.node_ids == ("n1", "n2")
        assert rebuilt.sanitized
        assert rebuilt.quarantined_nodes == ("n2",)
        assert rebuilt.nonfinite_policy == NONFINITE_REJECT
        for rebuilt_w, original_w in zip(rebuilt.windows, batch.windows):
            np.testing.assert_array_equal(rebuilt_w.values,
                                          original_w.values)
            assert rebuilt_w.higher_is_better == original_w.higher_is_better
            assert rebuilt_w.sanitized == original_w.sanitized
            assert rebuilt_w.quarantined == original_w.quarantined
            assert rebuilt_w.faults == original_w.faults
            assert rebuilt_w.schema_version == original_w.schema_version

    def test_raw_batch_round_trips_with_mask_policy(self, tmp_path):
        raw = MetricWindow(node_id="n1", benchmark="b", metric="m",
                           values=np.array([1.0, 2.0]))
        batch = MeasurementBatch(benchmark="b", metric="m", windows=(raw,))
        store = JournalStore(tmp_path)
        store.append("measurement-batch", batch.to_payload())
        rebuilt = MeasurementBatch.from_payload(
            JournalStore(tmp_path).replay()[0].payload)
        assert not rebuilt.sanitized
        assert rebuilt.nonfinite_policy == NONFINITE_MASK

    def test_payload_is_json_round_trippable(self):
        payload = self.make_batch().to_payload()
        assert json.loads(json.dumps(payload)) == payload

    def test_malformed_batch_payload_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            MeasurementBatch.from_payload({"benchmark": "b"})


class TestJournalStore:
    def test_append_and_replay(self, tmp_path):
        store = JournalStore(tmp_path)
        store.append("alpha", {"x": 1})
        store.append("beta", {"y": [1, 2]})
        records = store.replay()
        assert [(r.seq, r.kind) for r in records] == [(1, "alpha"), (2, "beta")]
        assert records[1].payload == {"y": [1, 2]}

    def test_sequence_continues_across_restart(self, tmp_path):
        JournalStore(tmp_path).append("alpha", {})
        reopened = JournalStore(tmp_path)
        assert reopened.next_seq == 2
        assert reopened.append("beta", {}) == 2

    def test_empty_directory_replays_nothing(self, tmp_path):
        assert JournalStore(tmp_path).replay() == []

    def test_truncated_last_line_is_skipped_with_warning(self, tmp_path,
                                                         caplog):
        store = JournalStore(tmp_path)
        store.append("alpha", {"x": 1})
        store.append("beta", {"x": 2})
        # Simulate a crash mid-append: chop the final line in half.
        text = store.path.read_text()
        store.path.write_text(text[:len(text) - 12])
        with caplog.at_level(logging.WARNING):
            records = JournalStore(tmp_path).replay()
        assert [r.kind for r in records] == ["alpha"]
        assert any("corrupted journal line" in r.message
                   for r in caplog.records)

    def test_corrupt_middle_line_is_skipped(self, tmp_path, caplog):
        store = JournalStore(tmp_path)
        store.append("alpha", {})
        with store.path.open("a") as handle:
            handle.write("{not json at all\n")
        store.append("beta", {})
        with caplog.at_level(logging.WARNING):
            records = JournalStore(tmp_path).replay()
        assert [r.kind for r in records] == ["alpha", "beta"]

    def test_wrong_shape_line_is_skipped(self, tmp_path, caplog):
        store = JournalStore(tmp_path)
        with store.path.open("a") as handle:
            handle.write(json.dumps({"seq": 1}) + "\n")  # missing fields
        with caplog.at_level(logging.WARNING):
            assert JournalStore(tmp_path).replay() == []
        assert any("corrupted journal line" in r.message
                   for r in caplog.records)

    def test_seq_recovery_ignores_corrupt_tail(self, tmp_path):
        store = JournalStore(tmp_path)
        store.append("alpha", {})
        with store.path.open("a") as handle:
            handle.write('{"seq": 99, "kind": "beta"')  # truncated
        reopened = JournalStore(tmp_path)
        assert reopened.next_seq == 2


class TestChecksums:
    def test_every_record_carries_a_crc(self, tmp_path):
        store = JournalStore(tmp_path)
        store.append("alpha", {"x": 1})
        raw = json.loads(store.path.read_text())
        assert raw["crc"] == record_crc(1, "alpha", {"x": 1})

    def test_decodable_but_corrupted_line_is_skipped(self, tmp_path, caplog):
        """Bit rot that still parses as JSON: without the checksum this
        record would silently replay with the wrong payload."""
        store = JournalStore(tmp_path)
        store.append("alpha", {"x": 1})
        store.append("beta", {"x": 2})
        lines = store.path.read_text().splitlines()
        lines[0] = lines[0].replace('"x": 1', '"x": 7')  # still valid JSON
        store.path.write_text("\n".join(lines) + "\n")
        reopened = JournalStore(tmp_path)
        with caplog.at_level(logging.WARNING):
            records = reopened.replay()
        assert [r.kind for r in records] == ["beta"]
        assert reopened.corrupt_records == 1
        assert any("checksum-mismatched" in r.message for r in caplog.records)

    def test_pre_checksum_records_still_replay(self, tmp_path):
        store = JournalStore(tmp_path)
        with store.path.open("a") as handle:
            handle.write(json.dumps({"seq": 1, "kind": "legacy",
                                     "payload": {"x": 1}}) + "\n")
        records = JournalStore(tmp_path).replay()
        assert [(r.seq, r.kind, r.payload)
                for r in records] == [(1, "legacy", {"x": 1})]

    def test_crc_is_format_independent(self):
        assert (record_crc(1, "k", {"a": 1, "b": 2})
                == record_crc(1, "k", {"b": 2, "a": 1}))
        assert record_crc(1, "k", {"a": 1}) != record_crc(2, "k", {"a": 1})


class TestFsync:
    def test_append_returns_seq_on_both_paths(self, tmp_path):
        buffered = JournalStore(tmp_path / "buffered", fsync=False)
        durable = JournalStore(tmp_path / "durable", fsync=True)
        assert buffered.append("alpha", {"x": 1}) == 1
        assert durable.append("alpha", {"x": 1}) == 1
        assert buffered.append("beta", {}) == 2
        assert durable.append("beta", {}) == 2
        assert ([r.kind for r in buffered.replay()]
                == [r.kind for r in durable.replay()]
                == ["alpha", "beta"])

    def test_per_append_override(self, tmp_path):
        store = JournalStore(tmp_path, fsync=False)
        assert store.append("alpha", {}, fsync=True) == 1
        assert store.append("beta", {}, fsync=False) == 2
        assert len(store.replay()) == 2

    def test_append_failure_raises_and_preserves_seq(self, tmp_path):
        store = JournalStore(tmp_path)
        store.append("alpha", {})
        store.path.unlink()
        store.path.mkdir()  # opening the "file" for append now fails
        with pytest.raises(JournalError, match="cannot append"):
            store.append("beta", {})
        assert store.next_seq == 2  # the failed append burned no seq


class TestRewrite:
    def test_rewrite_replaces_journal_and_restarts_seqs(self, tmp_path):
        store = JournalStore(tmp_path)
        for i in range(10):
            store.append("noise", {"i": i})
        count = store.rewrite([("snapshot", {"s": 1}),
                               ("event-enqueued", {"event_id": 4})])
        assert count == 2
        records = store.replay()
        assert [(r.seq, r.kind) for r in records] == [
            (1, "snapshot"), (2, "event-enqueued")]
        assert store.next_seq == 3

    def test_rewrite_leaves_no_temp_file(self, tmp_path):
        store = JournalStore(tmp_path)
        store.append("alpha", {})
        store.rewrite([("snapshot", {})])
        assert [p.name for p in tmp_path.iterdir()] == ["journal.jsonl"]

    def test_rewritten_records_are_checksummed(self, tmp_path):
        store = JournalStore(tmp_path)
        store.rewrite([("snapshot", {"s": 1})])
        raw = json.loads(store.path.read_text())
        assert raw["crc"] == record_crc(1, "snapshot", {"s": 1})

    def test_reopened_store_continues_after_rewrite(self, tmp_path):
        store = JournalStore(tmp_path)
        for i in range(5):
            store.append("noise", {"i": i})
        store.rewrite([("snapshot", {})])
        reopened = JournalStore(tmp_path)
        assert reopened.append("fresh", {}) == 2
