"""Unit tests for the Appendix A networking-validation schedulers."""

import pytest

from repro.exceptions import SchedulingError
from repro.netval.pairs import round_robin_schedule, validate_schedule
from repro.netval.topo_aware import quick_scan_schedule, validate_quick_scan
from repro.topology.fattree import FatTree, FatTreeConfig


class TestRoundRobin:
    def test_even_n_has_n_minus_one_rounds(self):
        rounds = round_robin_schedule(range(8))
        assert len(rounds) == 7
        assert all(len(r) == 4 for r in rounds)

    def test_odd_n_has_n_rounds_with_bye(self):
        rounds = round_robin_schedule(range(7))
        assert len(rounds) == 7
        assert all(len(r) == 3 for r in rounds)

    def test_covers_all_pairs_exactly_once(self):
        endpoints = list(range(10))
        rounds = round_robin_schedule(endpoints)
        validate_schedule(endpoints, rounds)  # raises on violation

    def test_odd_covers_all_pairs(self):
        endpoints = list(range(9))
        validate_schedule(endpoints, round_robin_schedule(endpoints))

    def test_two_endpoints(self):
        rounds = round_robin_schedule(["a", "b"])
        assert rounds == [[("a", "b")]]

    def test_arbitrary_labels(self):
        endpoints = ["nic-a", "nic-b", "nic-c", "nic-d"]
        validate_schedule(endpoints, round_robin_schedule(endpoints))

    def test_duplicate_endpoints_rejected(self):
        with pytest.raises(SchedulingError):
            round_robin_schedule([1, 1, 2])

    def test_single_endpoint_rejected(self):
        with pytest.raises(SchedulingError):
            round_robin_schedule([1])


class TestValidateSchedule:
    def test_detects_missing_pair(self):
        with pytest.raises(SchedulingError):
            validate_schedule([1, 2, 3, 4], [[(1, 2), (3, 4)]])

    def test_detects_reuse_within_round(self):
        with pytest.raises(SchedulingError):
            validate_schedule([1, 2, 3], [[(1, 2), (1, 3)], [(2, 3)]])

    def test_detects_duplicate_pair(self):
        with pytest.raises(SchedulingError):
            validate_schedule([1, 2], [[(1, 2)], [(2, 1)]])

    def test_detects_degenerate_pair(self):
        with pytest.raises(SchedulingError):
            validate_schedule([1, 2], [[(1, 1)]])


class TestQuickScan:
    def tree(self, n_nodes=24):
        return FatTree(FatTreeConfig(n_nodes=n_nodes, nodes_per_tor=4,
                                     tors_per_pod=3))

    def test_three_tier_tree_has_three_rounds(self):
        rounds = quick_scan_schedule(self.tree())
        assert set(rounds) == {2, 4, 6}

    def test_rounds_are_valid(self):
        tree = self.tree()
        validate_quick_scan(tree, quick_scan_schedule(tree))

    def test_round_count_independent_of_scale(self):
        small = quick_scan_schedule(self.tree(24))
        big = quick_scan_schedule(FatTree(FatTreeConfig(
            n_nodes=96, nodes_per_tor=4, tors_per_pod=3)))
        assert set(small) == set(big)  # O(1) rounds regardless of nodes

    def test_hop2_round_covers_every_node(self):
        tree = self.tree()
        rounds = quick_scan_schedule(tree)
        used = {n for pair in rounds[2] for n in pair}
        assert used == set(tree.nodes)  # 4 nodes/ToR pair up fully

    def test_single_pod_tree_has_no_hop6(self):
        tree = FatTree(FatTreeConfig(n_nodes=8, nodes_per_tor=4, tors_per_pod=2))
        rounds = quick_scan_schedule(tree)
        assert 6 not in rounds
        assert set(rounds) <= {2, 4}

    def test_validator_catches_wrong_hop(self):
        tree = self.tree()
        with pytest.raises(SchedulingError):
            validate_quick_scan(tree, {4: [(0, 1)]})  # (0,1) is 2 hops

    def test_validator_catches_node_reuse(self):
        tree = self.tree()
        with pytest.raises(SchedulingError):
            validate_quick_scan(tree, {2: [(0, 1), (1, 2)]})

    def test_tiny_topology_rejected(self):
        tree = FatTree(FatTreeConfig(n_nodes=1, nodes_per_tor=4))
        with pytest.raises(SchedulingError):
            quick_scan_schedule(tree)
