"""Unit tests for the hardware substrate: components, GPU memory, nodes,
degradation and fleets."""

import numpy as np
import pytest

from repro.hardware.components import (
    COMPONENT_CATEGORY,
    DEFECT_CATALOG,
    Component,
    IncidentCategory,
    defect_mode,
)
from repro.hardware.degradation import WearModel
from repro.hardware.fleet import Fleet, build_fleet
from repro.hardware.gpu import GpuMemory, row_remap_regression_probability
from repro.hardware.node import Node


class TestDefectCatalog:
    def test_every_component_has_a_category(self):
        for component in Component:
            assert component in COMPONENT_CATEGORY

    def test_catalog_rates_are_probabilities(self):
        for mode in DEFECT_CATALOG:
            assert 0.0 < mode.rate < 1.0

    def test_catalog_healths_degrade(self):
        for mode in DEFECT_CATALOG:
            for health in mode.components.values():
                assert 0.0 < health < 1.0

    def test_lookup_by_name(self):
        assert defect_mode("ib_hca_degraded").category is IncidentCategory.NETWORK
        with pytest.raises(KeyError):
            defect_mode("nope")

    def test_sampled_health_jitter_bounded(self):
        rng = np.random.default_rng(0)
        mode = defect_mode("pcie_downgrade")
        for _ in range(50):
            sampled = mode.sampled_health(rng)
            for value in sampled.values():
                assert 0.05 <= value <= 1.0


class TestGpuMemory:
    def test_remap_absorbs_errors(self):
        memory = GpuMemory(banks=2, spare_rows_per_bank=2)
        assert memory.record_correctable_error(0)
        assert memory.total_remapped == 1
        assert memory.uncorrectable == 0

    def test_exhausted_bank_goes_uncorrectable(self):
        memory = GpuMemory(banks=1, spare_rows_per_bank=1)
        assert memory.record_correctable_error(0)
        assert not memory.record_correctable_error(0)
        assert memory.uncorrectable == 1

    def test_spare_rows_left(self):
        memory = GpuMemory(banks=2, spare_rows_per_bank=3)
        memory.record_correctable_error(0)
        assert memory.spare_rows_left == 5

    def test_bank_bounds_checked(self):
        memory = GpuMemory(banks=2)
        with pytest.raises(IndexError):
            memory.record_correctable_error(2)

    def test_inject_errors_counts_remapped(self):
        rng = np.random.default_rng(1)
        memory = GpuMemory(banks=4, spare_rows_per_bank=2)
        remapped = memory.inject_errors(5, rng)
        assert remapped <= 5
        assert memory.total_remapped == remapped

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GpuMemory(banks=0)

    def test_table1_regression_model(self):
        assert row_remap_regression_probability(0) == 0.0
        assert row_remap_regression_probability(5) == pytest.approx(0.056)
        assert row_remap_regression_probability(11) == pytest.approx(0.833)

    def test_regression_probability_from_state(self):
        memory = GpuMemory(banks=4, spare_rows_per_bank=8)
        rng = np.random.default_rng(2)
        memory.inject_errors(12, rng)
        assert memory.regression_probability() == pytest.approx(0.833)


class TestNode:
    def test_fresh_node_is_healthy(self):
        node = Node(node_id="n0")
        assert not node.is_defective
        assert node.performance_multiplier({Component.NIC: 1.0}) == 1.0

    def test_apply_defect_reduces_multiplier(self):
        rng = np.random.default_rng(3)
        node = Node(node_id="n0")
        node.apply_defect(defect_mode("ib_hca_degraded"), rng)
        assert node.is_defective
        assert node.performance_multiplier({Component.NIC: 1.0}) < 0.9

    def test_insensitive_benchmark_unaffected(self):
        rng = np.random.default_rng(4)
        node = Node(node_id="n0")
        node.apply_defect(defect_mode("disk_slow"), rng)
        assert node.performance_multiplier({Component.NIC: 1.0}) == 1.0

    def test_sensitivity_exponent_softens_impact(self):
        node = Node(node_id="n0", health={Component.NIC: 0.5})
        strong = node.performance_multiplier({Component.NIC: 1.0})
        weak = node.performance_multiplier({Component.NIC: 0.1})
        assert weak > strong

    def test_repair_restores_health(self):
        rng = np.random.default_rng(5)
        node = Node(node_id="n0")
        node.apply_defect(defect_mode("pcie_downgrade"), rng)
        node.gpu_memory.inject_errors(3, rng)
        node.repair()
        assert not node.is_defective
        assert node.gpu_memory.total_remapped == 0

    def test_invalid_health_rejected(self):
        with pytest.raises(ValueError):
            Node(node_id="n0", health={Component.NIC: 0.0})


class TestWearModel:
    def test_default_gamma_matches_figure4(self):
        wear = WearModel()
        ratio = (wear.mean_time_between_incidents(0)
                 / wear.mean_time_between_incidents(19))
        assert ratio == pytest.approx(719.4 / 151.7, rel=1e-6)

    def test_rate_monotonically_increases(self):
        wear = WearModel()
        rates = [wear.incident_rate(i) for i in range(10)]
        assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_category_weights_normalized(self):
        wear = WearModel()
        assert sum(wear.category_weights.values()) == pytest.approx(1.0)

    def test_sampling_reproducible(self):
        wear = WearModel()
        a = wear.sample_time_to_incident(2, np.random.default_rng(7))
        b = wear.sample_time_to_incident(2, np.random.default_rng(7))
        assert a == b

    def test_job_ttf_scales_inversely_with_nodes(self):
        wear = WearModel()
        assert wear.job_time_to_failure(10, 0) == pytest.approx(
            wear.job_time_to_failure(1, 0) / 10.0
        )
        with pytest.raises(ValueError):
            wear.job_time_to_failure(0, 0)

    def test_invalid_base_rejected(self):
        with pytest.raises(ValueError):
            WearModel(base_mtbi_hours=0.0)


class TestFleet:
    def test_build_fleet_size_and_ids_unique(self):
        fleet = build_fleet(50, seed=0)
        assert len(fleet) == 50
        assert len({n.node_id for n in fleet}) == 50

    def test_defect_scale_zero_gives_clean_fleet(self):
        fleet = build_fleet(100, seed=1, defect_scale=0.0, hbm_error_rate=0.0)
        assert fleet.defect_ratio == 0.0

    def test_defect_ratio_near_catalog_rates(self):
        fleet = build_fleet(3000, seed=2)
        # Catalog union is ~11%; allow generous sampling slack.
        assert 0.06 < fleet.defect_ratio < 0.18

    def test_get_by_id(self):
        fleet = build_fleet(10, seed=3)
        node = fleet.get(fleet.nodes[4].node_id)
        assert node is fleet.nodes[4]
        with pytest.raises(KeyError):
            fleet.get("missing")

    def test_duplicate_ids_rejected(self):
        node = Node(node_id="dup")
        with pytest.raises(ValueError):
            Fleet(nodes=[node, Node(node_id="dup")])

    def test_defect_counts_histogram(self):
        fleet = build_fleet(2000, seed=4)
        counts = fleet.defect_counts()
        assert counts  # something injected
        assert all(count > 0 for count in counts.values())

    def test_deterministic_given_seed(self):
        a = build_fleet(100, seed=5)
        b = build_fleet(100, seed=5)
        assert [n.defects for n in a] == [n.defects for n in b]

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            build_fleet(0)
        with pytest.raises(ValueError):
            build_fleet(10, defect_scale=-1.0)
