"""Unit tests for Algorithm 2 criteria learning."""

import numpy as np
import pytest

from repro.core.backend import pairwise_similarity_matrix
from repro.core.criteria import CriteriaResult, learn_criteria, medoid_index
from repro.core.distance import similarity
from repro.exceptions import CriteriaError


def _population(rng, n_healthy=20, n_defective=3, shift=0.8, steps=150):
    healthy = [rng.normal(100.0, 1.0, steps) for _ in range(n_healthy)]
    defective = [rng.normal(100.0 * shift, 1.0, steps) for _ in range(n_defective)]
    return healthy, defective


class TestMedoidIndex:
    def test_medoid_of_singleton(self):
        sims = pairwise_similarity_matrix([[1.0]])
        assert medoid_index(sims, np.array([0])) == 0

    def test_medoid_is_central_sample(self):
        samples = [[100.0], [101.0], [99.0], [150.0]]
        sims = pairwise_similarity_matrix(samples)
        # 100 is closest to everything on average.
        assert medoid_index(sims, np.arange(4)) == 0

    def test_empty_active_set_rejected(self):
        sims = pairwise_similarity_matrix([[1.0], [2.0]])
        with pytest.raises(CriteriaError):
            medoid_index(sims, np.array([], dtype=int))


class TestLearnCriteria:
    def test_excludes_planted_defects(self):
        rng = np.random.default_rng(0)
        healthy, defective = _population(rng)
        result = learn_criteria(healthy + defective, 0.95)
        assert set(result.defect_indices) == {20, 21, 22}

    def test_healthy_only_population_keeps_everything(self):
        rng = np.random.default_rng(1)
        healthy, _ = _population(rng, n_defective=0)
        result = learn_criteria(healthy, 0.95)
        assert result.defect_indices == ()
        assert len(result.healthy_indices) == 20

    def test_criteria_is_similar_to_healthy_samples(self):
        rng = np.random.default_rng(2)
        healthy, defective = _population(rng)
        result = learn_criteria(healthy + defective, 0.95)
        for sample in healthy:
            assert similarity(result.criteria, sample) > 0.95

    def test_medoid_centroid_returns_member_sample(self):
        rng = np.random.default_rng(3)
        healthy, _ = _population(rng, n_defective=0)
        result = learn_criteria(healthy, 0.95, centroid="medoid")
        assert result.centroid_index is not None
        assert np.array_equal(result.criteria,
                              np.sort(healthy[result.centroid_index]))

    def test_mean_centroid_pools_samples(self):
        rng = np.random.default_rng(4)
        healthy, _ = _population(rng, n_healthy=5, n_defective=0, steps=20)
        result = learn_criteria(healthy, 0.9, centroid="mean")
        assert result.centroid_index is None
        assert result.criteria.size == 5 * 20

    def test_hybrid_pools_only_survivors(self):
        rng = np.random.default_rng(5)
        healthy, defective = _population(rng, n_healthy=10, steps=50)
        result = learn_criteria(healthy + defective, 0.95, centroid="hybrid")
        assert result.centroid_index is None
        assert result.criteria.size == len(result.healthy_indices) * 50

    def test_single_sample_is_its_own_criteria(self):
        result = learn_criteria([[5.0, 6.0]], 0.95)
        assert result.defect_indices == ()
        assert result.criteria.tolist() == [5.0, 6.0]

    def test_alpha_validation(self):
        with pytest.raises(CriteriaError):
            learn_criteria([[1.0]], 1.0)
        with pytest.raises(CriteriaError):
            learn_criteria([[1.0]], -0.1)

    def test_unknown_centroid_rejected(self):
        with pytest.raises(CriteriaError):
            learn_criteria([[1.0]], 0.9, centroid="mode")

    def test_empty_input_rejected(self):
        with pytest.raises(CriteriaError):
            learn_criteria([], 0.9)

    def test_all_divergent_samples_collapse_to_one_survivor(self):
        # Samples so spread that nothing stays within alpha of any
        # centroid: everything except the final medoid is excluded
        # (self-similarity is always 1, so the centroid survives).
        samples = [[1.0], [10.0], [100.0], [1000.0]]
        result = learn_criteria(samples, 0.99)
        assert len(result.healthy_indices) == 1
        assert len(result.defect_indices) == 3

    def test_defect_ratio(self):
        rng = np.random.default_rng(6)
        healthy, defective = _population(rng, n_healthy=18, n_defective=2)
        result = learn_criteria(healthy + defective, 0.95)
        assert result.defect_ratio == pytest.approx(0.1)

    def test_result_type(self):
        result = learn_criteria([[1.0], [1.0]], 0.9)
        assert isinstance(result, CriteriaResult)
        assert result.alpha == 0.9

    def test_single_value_samples(self):
        samples = [[100.0], [100.5], [99.5], [70.0]]
        result = learn_criteria(samples, 0.95)
        assert result.defect_indices == (3,)


class _CountingBackend:
    """Delegating backend proxy that counts kernel entry points."""

    def __init__(self, inner):
        self._inner = inner
        self.pairwise_calls = 0
        self.one_vs_many_calls = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def pairwise_similarities(self, batch):
        self.pairwise_calls += 1
        return self._inner.pairwise_similarities(batch)

    def one_vs_many_similarities(self, *args, **kwargs):
        self.one_vs_many_calls += 1
        return self._inner.one_vs_many_similarities(*args, **kwargs)


class TestKernelCallReuse:
    """The pairwise matrix is computed once, not once per iteration."""

    @staticmethod
    def _cascading_fleet():
        # Three tiers (healthy / shoulder / far) tuned so exclusion
        # cascades: the far tier falls first, re-centering then drops
        # the shoulder -- a genuinely multi-iteration learn.
        rng = np.random.default_rng(0)
        return ([rng.normal(100.0, 1.0, 120) for _ in range(12)]
                + [rng.normal(97.0, 1.0, 120) for _ in range(8)]
                + [rng.normal(90.0, 1.0, 120) for _ in range(4)])

    def test_medoid_learn_builds_matrix_exactly_once(self):
        from repro.core.backend import default_backend

        backend = _CountingBackend(default_backend())
        result = learn_criteria(self._cascading_fleet(), 0.95,
                                backend=backend)
        assert result.iterations >= 2  # the regression needs >1 iteration
        assert backend.pairwise_calls == 1
        # Medoid iterations re-score via matrix rows, not fresh kernels.
        assert backend.one_vs_many_calls == 0

    def test_hybrid_learn_builds_matrix_exactly_once(self):
        from repro.core.backend import default_backend

        backend = _CountingBackend(default_backend())
        result = learn_criteria(self._cascading_fleet(), 0.95,
                                centroid="hybrid", backend=backend)
        assert result.iterations >= 2
        assert backend.pairwise_calls == 1


class TestQuarantineWarningOrigin:
    """``stacklevel`` points the quarantine warning at the caller."""

    def test_warning_blames_this_file_not_the_library(self):
        import warnings

        from repro.core.backend import get_backend

        samples = [[1.0, 2.0, 3.0], [1.1, 2.1, 3.1], [np.nan, np.nan]]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            learn_criteria(samples, 0.9, backend=get_backend("mask"))
        quarantine = [w for w in caught
                      if issubclass(w.category, RuntimeWarning)
                      and "unusable telemetry" in str(w.message)]
        assert len(quarantine) == 1
        assert quarantine[0].filename == __file__

    def test_incremental_warning_blames_this_file(self):
        import warnings

        from repro.core.backend import get_backend
        from repro.core.incremental import (
            IncrementalConfig,
            learn_criteria_incremental,
        )

        rng = np.random.default_rng(0)
        samples = [rng.normal(100.0, 1.0, 40) for _ in range(30)]
        samples[3] = np.full(40, np.nan)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            learn_criteria_incremental(
                samples, 0.95, backend=get_backend("mask"),
                config=IncrementalConfig(exact_below=4))
        quarantine = [w for w in caught
                      if issubclass(w.category, RuntimeWarning)
                      and "unusable telemetry" in str(w.message)]
        assert len(quarantine) == 1
        assert quarantine[0].filename == __file__
