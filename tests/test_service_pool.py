"""Unit tests: the parallel validation pool (timeouts, retries,
sequential equivalence)."""

import threading
import time
from dataclasses import dataclass

import pytest

from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import full_suite
from repro.core.validator import Validator
from repro.exceptions import ServiceError
from repro.hardware.fleet import build_fleet
from repro.service import PoolConfig, ValidationPool


@dataclass(frozen=True)
class FakeSpec:
    name: str


@dataclass(frozen=True)
class FakeNode:
    node_id: str


class ScriptedRunner:
    """Fake runner: fails / hangs per (node, benchmark) as scripted."""

    def __init__(self, *, fail_times=None, hang=None, hang_seconds=5.0):
        self.fail_times = dict(fail_times or {})  # cell -> failures left
        self.hang = set(hang or ())
        self.hang_seconds = hang_seconds
        self.calls = []
        self._lock = threading.Lock()

    def run(self, spec, node):
        cell = (node.node_id, spec.name)
        with self._lock:
            self.calls.append(cell)
            failures_left = self.fail_times.get(cell, 0)
            if failures_left > 0:
                self.fail_times[cell] = failures_left - 1
        if failures_left > 0:
            raise RuntimeError(f"transient fault on {cell}")
        if cell in self.hang:
            time.sleep(self.hang_seconds)
        return f"result:{node.node_id}:{spec.name}"


SPECS = [FakeSpec("bench-a"), FakeSpec("bench-b")]
NODES = [FakeNode(f"n{i}") for i in range(4)]


def fast_config(**overrides):
    defaults = dict(max_workers=4, benchmark_timeout_seconds=0.25,
                    max_attempts=3, backoff_base_seconds=0.0,
                    poll_interval_seconds=0.01)
    defaults.update(overrides)
    return PoolConfig(**defaults)


class TestPoolConfig:
    def test_backoff_schedule(self):
        config = PoolConfig(backoff_base_seconds=0.1, backoff_multiplier=3.0)
        assert config.backoff_seconds(1) == 0.0
        assert config.backoff_seconds(2) == pytest.approx(0.1)
        assert config.backoff_seconds(3) == pytest.approx(0.3)
        assert config.backoff_seconds(4) == pytest.approx(0.9)

    @pytest.mark.parametrize("kwargs", [
        {"max_workers": 0},
        {"max_attempts": 0},
        {"backoff_base_seconds": -1.0},
        {"backoff_multiplier": 0.5},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            PoolConfig(**kwargs)


class TestRunBenchmarks:
    def test_all_cells_succeed(self):
        runner = ScriptedRunner()
        sweep = ValidationPool(fast_config()).run_benchmarks(
            SPECS, NODES, runner)
        assert len(sweep.runs) == len(SPECS) * len(NODES)
        for run in sweep.runs:
            assert run.ok and run.attempts == 1 and not run.timed_out
            assert run.result == f"result:{run.node_id}:{run.benchmark}"
        assert sweep.failed_runs == []

    def test_transient_failure_is_retried(self):
        runner = ScriptedRunner(fail_times={("n0", "bench-a"): 2})
        sweep = ValidationPool(fast_config()).run_benchmarks(
            SPECS, NODES, runner)
        run = sweep.run_for("n0", "bench-a")
        assert run.ok and run.attempts == 3

    def test_exhausted_retries_recorded_not_raised(self):
        runner = ScriptedRunner(fail_times={("n0", "bench-a"): 99})
        sweep = ValidationPool(fast_config(max_attempts=2)).run_benchmarks(
            SPECS, NODES, runner)
        run = sweep.run_for("n0", "bench-a")
        assert not run.ok and run.attempts == 2
        assert "transient fault" in run.error
        assert sweep.failed_node_ids == ["n0"]

    def test_crash_isolation(self):
        runner = ScriptedRunner(fail_times={("n1", "bench-b"): 99})
        sweep = ValidationPool(fast_config(max_attempts=1)).run_benchmarks(
            SPECS, NODES, runner)
        others = [r for r in sweep.runs
                  if (r.node_id, r.benchmark) != ("n1", "bench-b")]
        assert all(r.ok for r in others)

    def test_hang_times_out_and_sweep_completes(self):
        runner = ScriptedRunner(hang={("n2", "bench-a")}, hang_seconds=5.0)
        start = time.monotonic()
        sweep = ValidationPool(fast_config(max_attempts=1)).run_benchmarks(
            SPECS, NODES, runner)
        elapsed = time.monotonic() - start
        hung = sweep.run_for("n2", "bench-a")
        assert hung.timed_out and not hung.ok
        assert "timeout" in hung.error
        assert elapsed < 4.0  # did not wait out the 5 s hang
        others = [r for r in sweep.runs
                  if (r.node_id, r.benchmark) != ("n2", "bench-a")]
        assert all(r.ok for r in others)


@pytest.fixture(scope="module")
def parallel_vs_sequential():
    """Two validators with identical criteria: one driven sequentially,
    one through the pool."""
    fleet = build_fleet(16, seed=3)
    suite = full_suite()
    sequential = Validator(suite, runner=SuiteRunner(seed=7))
    parallel = Validator(suite, runner=SuiteRunner(seed=7))
    sequential.learn_criteria(fleet.nodes[:8])
    parallel.learn_criteria(fleet.nodes[:8])
    return fleet, sequential, parallel


def violation_tuples(report, node_ids=None):
    return [(v.node_id, v.benchmark, v.metric, v.similarity, v.reason)
            for v in report.violations
            if node_ids is None or v.node_id in node_ids]


class TestSequentialEquivalence:
    def test_parallel_report_is_bit_identical(self, parallel_vs_sequential):
        fleet, sequential, parallel = parallel_vs_sequential
        expected = sequential.validate(fleet.nodes)
        pool = ValidationPool(PoolConfig(max_workers=8,
                                         benchmark_timeout_seconds=None))
        actual, sweeps = pool.validate(parallel, fleet.nodes)
        assert actual.validated_nodes == expected.validated_nodes
        assert actual.benchmarks_run == expected.benchmarks_run
        assert violation_tuples(actual) == violation_tuples(expected)
        assert actual.defective_nodes == expected.defective_nodes
        assert sweeps and all(not s.failed_runs for s in sweeps)


class HangingSuiteRunner(SuiteRunner):
    """Real runner that hangs on one (node, benchmark) cell."""

    def __init__(self, hang_node, hang_benchmark, hang_seconds=5.0, **kwargs):
        super().__init__(**kwargs)
        self.hang_node = hang_node
        self.hang_benchmark = hang_benchmark
        self.hang_seconds = hang_seconds

    def run(self, spec, node):
        if (node.node_id == self.hang_node
                and spec.name == self.hang_benchmark):
            time.sleep(self.hang_seconds)
        return super().run(spec, node)


class TestHangingBenchmarkSweep:
    def test_sixteen_node_sweep_survives_one_hung_node(self):
        """Acceptance flow: inject a hang into a 16-node sweep; the
        sweep completes, the hung node is flagged, and every healthy
        node's results are bit-identical to the sequential engine's."""
        fleet = build_fleet(16, seed=3)
        suite = full_suite()
        hang_node = fleet.nodes[12].node_id

        sequential = Validator(suite, runner=SuiteRunner(seed=7))
        sequential.learn_criteria(fleet.nodes[:8])
        expected = sequential.validate(fleet.nodes)

        hung_runner = HangingSuiteRunner(hang_node, suite[0].name,
                                         hang_seconds=5.0, seed=7)
        parallel = Validator(suite, runner=hung_runner)
        parallel.learn_criteria(fleet.nodes[:8])
        pool = ValidationPool(PoolConfig(
            max_workers=8, benchmark_timeout_seconds=0.5, max_attempts=1,
            poll_interval_seconds=0.01))
        start = time.monotonic()
        actual, _sweeps = pool.validate(parallel, fleet.nodes)
        assert time.monotonic() - start < 30.0  # sweep completed

        assert hang_node in actual.defective_nodes
        hung_violations = [v for v in actual.violations
                           if v.node_id == hang_node]
        assert any("execution-failure" in v.reason for v in hung_violations)

        healthy = (set(expected.validated_nodes)
                   - set(expected.defective_nodes)
                   - set(actual.defective_nodes))
        assert len(healthy) >= 8
        assert (violation_tuples(actual, healthy)
                == violation_tuples(expected, healthy))
