"""Unit tests: the parallel validation pool (timeouts, retries,
sequential equivalence)."""

import threading
import time
from dataclasses import dataclass

import pytest

from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import full_suite
from repro.core.validator import Validator
from repro.exceptions import ServiceError
from repro.hardware.fleet import build_fleet
from repro.service import (
    BreakerState,
    CircuitBreaker,
    PoolConfig,
    ValidationPool,
)


@dataclass(frozen=True)
class FakeSpec:
    name: str


@dataclass(frozen=True)
class FakeNode:
    node_id: str


class ScriptedRunner:
    """Fake runner: fails / hangs per (node, benchmark) as scripted."""

    def __init__(self, *, fail_times=None, hang=None, hang_seconds=5.0):
        self.fail_times = dict(fail_times or {})  # cell -> failures left
        self.hang = set(hang or ())
        self.hang_seconds = hang_seconds
        self.calls = []
        self._lock = threading.Lock()

    def run(self, spec, node):
        cell = (node.node_id, spec.name)
        with self._lock:
            self.calls.append(cell)
            failures_left = self.fail_times.get(cell, 0)
            if failures_left > 0:
                self.fail_times[cell] = failures_left - 1
        if failures_left > 0:
            raise RuntimeError(f"transient fault on {cell}")
        if cell in self.hang:
            time.sleep(self.hang_seconds)
        return f"result:{node.node_id}:{spec.name}"


SPECS = [FakeSpec("bench-a"), FakeSpec("bench-b")]
NODES = [FakeNode(f"n{i}") for i in range(4)]


def fast_config(**overrides):
    defaults = dict(max_workers=4, benchmark_timeout_seconds=0.25,
                    max_attempts=3, backoff_base_seconds=0.0,
                    poll_interval_seconds=0.01)
    defaults.update(overrides)
    return PoolConfig(**defaults)


class TestPoolConfig:
    def test_backoff_schedule(self):
        config = PoolConfig(backoff_base_seconds=0.1, backoff_multiplier=3.0)
        assert config.backoff_seconds(1) == 0.0
        assert config.backoff_seconds(2) == pytest.approx(0.1)
        assert config.backoff_seconds(3) == pytest.approx(0.3)
        assert config.backoff_seconds(4) == pytest.approx(0.9)

    @pytest.mark.parametrize("kwargs", [
        {"max_workers": 0},
        {"max_attempts": 0},
        {"backoff_base_seconds": -1.0},
        {"backoff_multiplier": 0.5},
        {"poll_interval_seconds": 0.0},
        {"poll_interval_seconds": -0.01},
        {"sweep_timeout_seconds": 1.0, "benchmark_timeout_seconds": 2.0},
        {"breaker_failure_threshold": 0},
        {"breaker_cooldown_sweeps": 0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            PoolConfig(**kwargs)

    def test_sweep_timeout_at_least_benchmark_timeout_accepted(self):
        config = PoolConfig(benchmark_timeout_seconds=2.0,
                            sweep_timeout_seconds=2.0)
        assert config.sweep_timeout_seconds == 2.0


class TestRunBenchmarks:
    def test_all_cells_succeed(self):
        runner = ScriptedRunner()
        sweep = ValidationPool(fast_config()).run_benchmarks(
            SPECS, NODES, runner)
        assert len(sweep.runs) == len(SPECS) * len(NODES)
        for run in sweep.runs:
            assert run.ok and run.attempts == 1 and not run.timed_out
            assert run.result == f"result:{run.node_id}:{run.benchmark}"
        assert sweep.failed_runs == []

    def test_transient_failure_is_retried(self):
        runner = ScriptedRunner(fail_times={("n0", "bench-a"): 2})
        sweep = ValidationPool(fast_config()).run_benchmarks(
            SPECS, NODES, runner)
        run = sweep.run_for("n0", "bench-a")
        assert run.ok and run.attempts == 3

    def test_exhausted_retries_recorded_not_raised(self):
        runner = ScriptedRunner(fail_times={("n0", "bench-a"): 99})
        sweep = ValidationPool(fast_config(max_attempts=2)).run_benchmarks(
            SPECS, NODES, runner)
        run = sweep.run_for("n0", "bench-a")
        assert not run.ok and run.attempts == 2
        assert "transient fault" in run.error
        assert sweep.failed_node_ids == ["n0"]

    def test_crash_isolation(self):
        runner = ScriptedRunner(fail_times={("n1", "bench-b"): 99})
        sweep = ValidationPool(fast_config(max_attempts=1)).run_benchmarks(
            SPECS, NODES, runner)
        others = [r for r in sweep.runs
                  if (r.node_id, r.benchmark) != ("n1", "bench-b")]
        assert all(r.ok for r in others)

    def test_hang_times_out_and_sweep_completes(self):
        runner = ScriptedRunner(hang={("n2", "bench-a")}, hang_seconds=5.0)
        start = time.monotonic()
        sweep = ValidationPool(fast_config(max_attempts=1)).run_benchmarks(
            SPECS, NODES, runner)
        elapsed = time.monotonic() - start
        hung = sweep.run_for("n2", "bench-a")
        assert hung.timed_out and not hung.ok
        assert "timeout" in hung.error
        assert elapsed < 4.0  # did not wait out the 5 s hang
        others = [r for r in sweep.runs
                  if (r.node_id, r.benchmark) != ("n2", "bench-a")]
        assert all(r.ok for r in others)


class TestCircuitBreaker:
    def test_exact_transition_sequence(self):
        """CLOSED -(2 failures)-> OPEN -(cooldown)-> HALF_OPEN
        -(probe fails)-> OPEN -(cooldown)-> HALF_OPEN -(probe ok)->
        CLOSED, with the exact reasons in order."""
        breaker = CircuitBreaker("b", failure_threshold=2, cooldown_sweeps=1)
        assert breaker.before_sweep() == "run"
        breaker.record(True)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.before_sweep() == "run"
        breaker.record(True)
        assert breaker.state is BreakerState.OPEN
        assert breaker.before_sweep() == "probe"   # cooldown of 1 elapsed
        breaker.record(True)
        assert breaker.state is BreakerState.OPEN
        assert breaker.before_sweep() == "probe"
        breaker.record(False)
        assert breaker.state is BreakerState.CLOSED
        assert [(t.old.value, t.new.value, t.reason)
                for t in breaker.transitions] == [
            ("closed", "open", "failure-threshold"),
            ("open", "half-open", "cooldown-elapsed"),
            ("half-open", "open", "probe-failed"),
            ("open", "half-open", "cooldown-elapsed"),
            ("half-open", "closed", "probe-succeeded"),
        ]

    def test_open_breaker_skips_for_cooldown_sweeps(self):
        breaker = CircuitBreaker("b", failure_threshold=1, cooldown_sweeps=3)
        assert breaker.before_sweep() == "run"
        breaker.record(True)
        assert breaker.state is BreakerState.OPEN
        assert breaker.before_sweep() == "skip"
        assert breaker.before_sweep() == "skip"
        assert breaker.before_sweep() == "probe"

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker("b", failure_threshold=2, cooldown_sweeps=1)
        breaker.record(True)
        breaker.record(False)
        breaker.record(True)
        assert breaker.state is BreakerState.CLOSED

    def breaker_pool(self, **overrides):
        return ValidationPool(fast_config(
            max_attempts=1, breaker_failure_threshold=2,
            breaker_cooldown_sweeps=1, **overrides))

    def all_a_cells_fail(self):
        return ScriptedRunner(fail_times={
            (node.node_id, "bench-a"): 99 for node in NODES})

    def test_fleet_wide_failure_opens_and_probes(self):
        pool = self.breaker_pool()
        runner = self.all_a_cells_fail()

        # Two fleet-wide failing sweeps open bench-a's breaker; bench-b
        # (passing everywhere) stays closed.
        for _ in range(2):
            sweep = pool.run_benchmarks(SPECS, NODES, runner)
            assert all(not sweep.run_for(n.node_id, "bench-a").ok
                       for n in NODES)
        assert pool.breakers["bench-a"].state is BreakerState.OPEN
        assert pool.breakers["bench-b"].state is BreakerState.CLOSED

        # Next sweep half-opens: one probe cell executes (and fails),
        # every other bench-a cell is short-circuited, bench-b runs.
        sweep = pool.run_benchmarks(SPECS, NODES, runner)
        probe = sweep.run_for(NODES[0].node_id, "bench-a")
        assert not probe.ok and not probe.short_circuited
        short = sweep.short_circuited_runs
        assert {(r.node_id, r.benchmark) for r in short} == {
            (n.node_id, "bench-a") for n in NODES[1:]}
        assert all(r.error == "circuit-open" for r in short)
        assert short[0] not in sweep.failed_runs
        assert pool.breakers["bench-a"].state is BreakerState.OPEN

        # Heal the benchmark: the next probe succeeds and closes the
        # breaker; the sweep after runs everything again.
        runner.fail_times.clear()
        sweep = pool.run_benchmarks(SPECS, NODES, runner)
        assert sweep.run_for(NODES[0].node_id, "bench-a").ok
        assert pool.breakers["bench-a"].state is BreakerState.CLOSED
        sweep = pool.run_benchmarks(SPECS, NODES, runner)
        assert all(r.ok for r in sweep.runs)

    def test_single_node_failure_is_not_fleet_wide(self):
        pool = self.breaker_pool()
        runner = ScriptedRunner(fail_times={("n0", "bench-a"): 99})
        for _ in range(3):
            pool.run_benchmarks(SPECS, NODES, runner)
        assert pool.breakers["bench-a"].state is BreakerState.CLOSED

    def test_breakers_disabled_by_default(self):
        pool = ValidationPool(fast_config(max_attempts=1))
        pool.run_benchmarks(SPECS, NODES, self.all_a_cells_fail())
        assert pool.breakers == {}
        assert pool.breaker_for("bench-a") is None

    def test_breaker_transitions_grouped_by_benchmark(self):
        pool = self.breaker_pool()
        runner = ScriptedRunner(fail_times={
            (node.node_id, spec.name): 99
            for node in NODES for spec in SPECS})
        for _ in range(2):
            pool.run_benchmarks(SPECS, NODES, runner)
        transitions = pool.breaker_transitions()
        assert [t.benchmark for t in transitions] == ["bench-a", "bench-b"]
        assert all(t.new is BreakerState.OPEN for t in transitions)


class TestShortCircuitedValidate:
    def test_open_breaker_produces_no_violations(self):
        """A benchmark broken fleet-wide trips its breaker; the next
        validate() short-circuits it with no violations and drops it
        from benchmarks_run -- the breaker exists so a harness
        regression cannot quarantine the fleet."""
        fleet = build_fleet(6, seed=3)
        suite = full_suite()
        broken = suite[0].name

        class BrokenBenchmarkRunner(SuiteRunner):
            def __init__(self, **kwargs):
                super().__init__(**kwargs)
                self.healed = True  # healthy while criteria are learned

            def run(self, spec, node):
                if spec.name == broken and not self.healed:
                    raise RuntimeError("harness regression")
                return super().run(spec, node)

        runner = BrokenBenchmarkRunner(seed=7)
        validator = Validator(suite, runner=runner)
        validator.learn_criteria(fleet.nodes[:4])
        runner.healed = False  # the regression ships
        pool = ValidationPool(PoolConfig(
            max_workers=4, benchmark_timeout_seconds=None, max_attempts=1,
            poll_interval_seconds=0.01, breaker_failure_threshold=1,
            breaker_cooldown_sweeps=1))

        # Sweep 1: the broken benchmark fails fleet-wide -- executed
        # cells still yield execution-failure violations -- and the
        # breaker opens.
        report, _ = pool.validate(validator, fleet.nodes, [broken])
        assert all(v.benchmark == broken for v in report.violations)
        assert pool.breakers[broken].state is BreakerState.OPEN

        # Sweep 2 (still broken, half-open probe fails): only the
        # probe cell may produce violations; short-circuited cells
        # produce none, and the never-executed benchmark would be
        # dropped from benchmarks_run if nothing ran.
        report, sweeps = pool.validate(validator, fleet.nodes, [broken])
        violating = {v.node_id for v in report.violations}
        assert violating <= {fleet.nodes[0].node_id}
        assert len(sweeps[0].short_circuited_runs) == len(fleet.nodes) - 1


@pytest.fixture(scope="module")
def parallel_vs_sequential():
    """Two validators with identical criteria: one driven sequentially,
    one through the pool."""
    fleet = build_fleet(16, seed=3)
    suite = full_suite()
    sequential = Validator(suite, runner=SuiteRunner(seed=7))
    parallel = Validator(suite, runner=SuiteRunner(seed=7))
    sequential.learn_criteria(fleet.nodes[:8])
    parallel.learn_criteria(fleet.nodes[:8])
    return fleet, sequential, parallel


def violation_tuples(report, node_ids=None):
    return [(v.node_id, v.benchmark, v.metric, v.similarity, v.reason)
            for v in report.violations
            if node_ids is None or v.node_id in node_ids]


class TestSequentialEquivalence:
    def test_parallel_report_is_bit_identical(self, parallel_vs_sequential):
        fleet, sequential, parallel = parallel_vs_sequential
        expected = sequential.validate(fleet.nodes)
        pool = ValidationPool(PoolConfig(max_workers=8,
                                         benchmark_timeout_seconds=None))
        actual, sweeps = pool.validate(parallel, fleet.nodes)
        assert actual.validated_nodes == expected.validated_nodes
        assert actual.benchmarks_run == expected.benchmarks_run
        assert violation_tuples(actual) == violation_tuples(expected)
        assert actual.defective_nodes == expected.defective_nodes
        assert sweeps and all(not s.failed_runs for s in sweeps)


class HangingSuiteRunner(SuiteRunner):
    """Real runner that hangs on one (node, benchmark) cell."""

    def __init__(self, hang_node, hang_benchmark, hang_seconds=5.0, **kwargs):
        super().__init__(**kwargs)
        self.hang_node = hang_node
        self.hang_benchmark = hang_benchmark
        self.hang_seconds = hang_seconds

    def run(self, spec, node):
        if (node.node_id == self.hang_node
                and spec.name == self.hang_benchmark):
            time.sleep(self.hang_seconds)
        return super().run(spec, node)


class TestHangingBenchmarkSweep:
    def test_sixteen_node_sweep_survives_one_hung_node(self):
        """Acceptance flow: inject a hang into a 16-node sweep; the
        sweep completes, the hung node is flagged, and every healthy
        node's results are bit-identical to the sequential engine's."""
        fleet = build_fleet(16, seed=3)
        suite = full_suite()
        hang_node = fleet.nodes[12].node_id

        sequential = Validator(suite, runner=SuiteRunner(seed=7))
        sequential.learn_criteria(fleet.nodes[:8])
        expected = sequential.validate(fleet.nodes)

        hung_runner = HangingSuiteRunner(hang_node, suite[0].name,
                                         hang_seconds=5.0, seed=7)
        parallel = Validator(suite, runner=hung_runner)
        parallel.learn_criteria(fleet.nodes[:8])
        pool = ValidationPool(PoolConfig(
            max_workers=8, benchmark_timeout_seconds=0.5, max_attempts=1,
            poll_interval_seconds=0.01))
        start = time.monotonic()
        actual, _sweeps = pool.validate(parallel, fleet.nodes)
        assert time.monotonic() - start < 30.0  # sweep completed

        assert hang_node in actual.defective_nodes
        hung_violations = [v for v in actual.violations
                           if v.node_id == hang_node]
        assert any("execution-failure" in v.reason for v in hung_violations)

        healthy = (set(expected.validated_nodes)
                   - set(expected.defective_nodes)
                   - set(actual.defective_nodes))
        assert len(healthy) >= 8
        assert (violation_tuples(actual, healthy)
                == violation_tuples(expected, healthy))
