"""Unit tests for the repeatability metrics."""

import numpy as np
import pytest

from repro.core.repeatability import criteria_repeatability, pairwise_repeatability
from repro.exceptions import InvalidSampleError


class TestPairwiseRepeatability:
    def test_identical_samples_score_one(self):
        sample = [100.0, 101.0, 99.0]
        assert pairwise_repeatability([sample, sample, sample]) == pytest.approx(1.0)

    def test_two_identical_single_values(self):
        assert pairwise_repeatability([[5.0], [5.0]]) == pytest.approx(1.0)

    def test_lower_variance_higher_repeatability(self):
        rng = np.random.default_rng(0)
        tight = [100.0 * (1 + 0.001 * rng.standard_normal(100)) for _ in range(6)]
        loose = [100.0 * (1 + 0.05 * rng.standard_normal(100)) for _ in range(6)]
        assert pairwise_repeatability(tight) > pairwise_repeatability(loose)

    def test_needs_two_samples(self):
        with pytest.raises(InvalidSampleError):
            pairwise_repeatability([[1.0]])

    def test_in_unit_interval(self):
        rng = np.random.default_rng(1)
        samples = [rng.uniform(50, 150, 30) for _ in range(5)]
        value = pairwise_repeatability(samples)
        assert 0.0 <= value <= 1.0


class TestCriteriaRepeatability:
    def test_against_self(self):
        sample = [10.0, 11.0]
        assert criteria_repeatability([sample], sample) == pytest.approx(1.0)

    def test_mean_over_samples(self):
        criteria = [100.0]
        value = criteria_repeatability([[100.0], [90.0]], criteria)
        assert value == pytest.approx((1.0 + 0.9) / 2.0)

    def test_empty_rejected(self):
        with pytest.raises(InvalidSampleError):
            criteria_repeatability([], [1.0])
