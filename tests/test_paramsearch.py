"""Unit tests for Appendix B benchmark-parameter searching."""

import numpy as np
import pytest

from repro.core.paramsearch import (
    estimate_period,
    search_window,
    seasonal_decompose,
    tune_window_across_nodes,
)
from repro.exceptions import BenchmarkError


def synthetic_series(n=2000, period=48, warmup=100, noise=0.005, seed=0,
                     amplitude=0.02):
    """Throughput series: warm-up ramp + seasonal cycle + noise."""
    rng = np.random.default_rng(seed)
    steps = np.arange(n)
    ramp = 1.0 - 0.35 * np.exp(-3.0 * steps / warmup)
    seasonal = 1.0 + amplitude * np.sin(2 * np.pi * steps / period)
    return 1000.0 * ramp * seasonal * (1.0 + noise * rng.standard_normal(n))


class TestSeasonalDecompose:
    def test_recovers_seasonal_amplitude(self):
        series = synthetic_series(noise=0.0005)
        decomposition = seasonal_decompose(series, 48)
        seasonal_range = np.ptp(decomposition.seasonal[:48])
        assert seasonal_range == pytest.approx(0.04, rel=0.15)

    def test_residuals_centered_on_one(self):
        series = synthetic_series(noise=0.002)
        decomposition = seasonal_decompose(series, 48)
        resid = decomposition.resid[np.isfinite(decomposition.resid)]
        assert resid.mean() == pytest.approx(1.0, abs=0.01)

    def test_trend_follows_ramp(self):
        series = synthetic_series(noise=0.0)
        trend = seasonal_decompose(series, 48).trend
        valid = np.isfinite(trend)
        assert trend[valid][0] < trend[valid][-1]

    def test_bad_period_rejected(self):
        with pytest.raises(BenchmarkError):
            seasonal_decompose([1.0] * 100, 1)
        with pytest.raises(BenchmarkError):
            seasonal_decompose([1.0] * 10, 8)

    def test_components_multiply_back(self):
        series = synthetic_series(noise=0.001)
        d = seasonal_decompose(series, 48)
        valid = np.isfinite(d.trend)
        reconstructed = d.trend[valid] * d.seasonal[valid] * d.resid[valid]
        assert np.allclose(reconstructed, series[valid], rtol=1e-9)


class TestEstimatePeriod:
    def test_finds_true_period(self):
        series = synthetic_series(noise=0.002, amplitude=0.03)
        period = estimate_period(series)
        assert abs(period - 48) <= 9  # peak or near-harmonic is acceptable

    def test_different_period(self):
        series = synthetic_series(period=64, noise=0.002, amplitude=0.03)
        period = estimate_period(series)
        assert abs(period - 64) <= 12

    def test_short_series_rejected(self):
        with pytest.raises(BenchmarkError):
            estimate_period([1.0] * 10)

    def test_constant_series_returns_min_period(self):
        assert estimate_period([5.0] * 200) == 8


class TestSearchWindow:
    def test_window_skips_warmup(self):
        series = synthetic_series(warmup=150, noise=0.003)
        window = search_window(series, 0.95, period=48, min_similar_cycles=8)
        # The first cycle is deep in the ramp; the window must not
        # start at step zero.
        assert window.warmup >= 48

    def test_window_is_self_similar(self):
        from repro.core.distance import similarity
        series = synthetic_series(noise=0.003)
        window = search_window(series, 0.95, period=48, min_similar_cycles=8)
        kept = window.apply(np.asarray(series))
        halves = np.array_split(kept, 2)
        assert similarity(halves[0], halves[1]) > 0.95

    def test_fallback_for_erratic_series(self):
        rng = np.random.default_rng(1)
        series = 100.0 * np.exp(rng.standard_normal(400))
        window = search_window(series, 0.99, period=40)
        assert window.warmup == 200  # second-half fallback
        assert window.measure == 200

    def test_too_short_series_rejected(self):
        with pytest.raises(BenchmarkError):
            search_window([1.0] * 30, 0.95, period=40)


class TestTuneAcrossNodes:
    def test_tuned_window_saves_steps(self):
        node_series = {f"n{i}": synthetic_series(seed=i, noise=0.003)
                       for i in range(4)}
        window = tune_window_across_nodes(node_series, 0.95,
                                          min_similar_cycles=8)
        assert window.total_steps < 2000

    def test_tuned_window_keeps_repeatability(self):
        from repro.core.repeatability import pairwise_repeatability
        node_series = {f"n{i}": synthetic_series(seed=i, noise=0.003)
                       for i in range(4)}
        window = tune_window_across_nodes(node_series, 0.95,
                                          min_similar_cycles=8)
        windowed = [window.apply(np.asarray(s)) for s in node_series.values()]
        full = [np.asarray(s)[200:] for s in node_series.values()]
        assert (pairwise_repeatability(windowed)
                >= pairwise_repeatability(full) - 0.01)

    def test_single_node_rejected(self):
        with pytest.raises(BenchmarkError):
            tune_window_across_nodes({"n0": synthetic_series()}, 0.95)
