"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_screen_defaults(self):
        args = build_parser().parse_args(["screen"])
        assert args.nodes == 120
        assert args.alpha == 0.95

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--days", "7"])
        assert args.days == 7
        assert args.p0 == 0.02

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.nodes == 64
        assert args.events == 200
        assert args.journal is None
        assert args.workers == 8


class TestCommands:
    def test_screen_small_fleet(self, capsys, tmp_path):
        criteria_path = tmp_path / "criteria.json"
        code = main(["screen", "--nodes", "24", "--learn-on", "12",
                     "--seed", "3", "--save-criteria", str(criteria_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "total:" in out
        assert criteria_path.exists()

    def test_screen_invalid_learn_on(self, capsys):
        assert main(["screen", "--nodes", "10", "--learn-on", "50"]) == 2

    def test_traces_round_trip(self, capsys, tmp_path):
        incidents = tmp_path / "incidents.json"
        allocations = tmp_path / "allocations.json"
        code = main(["traces", "--nodes", "20", "--hours", "400",
                     "--incidents-out", str(incidents),
                     "--allocations-out", str(allocations)])
        assert code == 0
        from repro.simulation.traces import AllocationTrace, IncidentTrace
        assert len(IncidentTrace.load(incidents)) > 0
        assert len(AllocationTrace.load(allocations)) > 0

    def test_simulate_tiny(self, capsys):
        code = main(["simulate", "--nodes", "8", "--days", "3", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        for policy in ("absence", "full-set", "selector", "ideal"):
            assert policy in out

    def test_serve_small_fleet(self, capsys, tmp_path):
        journal_dir = tmp_path / "journal"
        code = main(["serve", "--nodes", "8", "--events", "12",
                     "--learn-on", "4", "--workers", "4",
                     "--journal", str(journal_dir), "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "defect_rate" in out
        assert "queue_latency_mean_s" in out
        assert "lifecycle:" in out
        assert (journal_dir / "journal.jsonl").exists()

    def test_serve_invalid_learn_on(self, capsys):
        assert main(["serve", "--nodes", "4", "--learn-on", "50"]) == 2

    def test_serve_invalid_events(self, capsys):
        assert main(["serve", "--nodes", "8", "--learn-on", "4",
                     "--events", "0"]) == 2

    def test_serve_incremental_criteria(self, capsys, tmp_path):
        journal_dir = tmp_path / "journal"
        code = main(["serve", "--nodes", "8", "--events", "10",
                     "--learn-on", "4", "--workers", "2",
                     "--incremental-criteria",
                     "--journal", str(journal_dir), "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        # The re-learn walked the rollout gate and the per-path learn
        # stages surfaced in the pipeline table.
        assert "rollout gate:" in out
        assert "learn-" in out
        # The journal carries the criteria-learn record, so the
        # analytics report sees the learn stages too.
        from repro.service.store import JournalStore, RecordKind
        kinds = [r.kind for r in JournalStore(str(journal_dir)).replay()]
        assert RecordKind.CRITERIA_LEARN in kinds
        # And the journal-driven SLO report renders the per-path learn
        # stages in its measurement-pipeline table.
        assert main(["report", "--journal", str(journal_dir)]) == 0
        report_out = capsys.readouterr().out
        assert "learn-" in report_out
