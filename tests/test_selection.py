"""Unit tests for Algorithm 1 benchmark selection and coverage."""

import pytest

from repro.core.selection import (
    CoverageTable,
    joint_incident_probability,
    select_benchmarks,
    select_benchmarks_exhaustive,
)


def make_coverage():
    """Three benchmarks with overlapping historical defects.

    b1 found {m1, m2} (C = 0.4), b2 found {m2, m3, m4} (C = 0.6),
    b3 found {m5} (C = 0.2); the full set found 5 defects.
    """
    table = CoverageTable()
    table.record("b1", {"m1", "m2"})
    table.record("b2", {"m2", "m3", "m4"})
    table.record("b3", {"m5"})
    return table


class TestCoverageTable:
    def test_total_defects_is_union(self):
        assert make_coverage().all_defects() == {"m1", "m2", "m3", "m4", "m5"}

    def test_overlapping_subset_coverage(self):
        # The paper's worked example: overlapping defects counted once.
        table = make_coverage()
        assert table.coverage(["b1", "b2"]) == pytest.approx(0.8)

    def test_single_benchmark_coverage(self):
        table = make_coverage()
        assert table.coverage(["b1"]) == pytest.approx(0.4)
        assert table.coverage(["b2"]) == pytest.approx(0.6)

    def test_full_set_coverage_is_one(self):
        table = make_coverage()
        assert table.coverage(["b1", "b2", "b3"]) == pytest.approx(1.0)

    def test_empty_subset_zero(self):
        assert make_coverage().coverage([]) == 0.0

    def test_no_history_zero(self):
        assert CoverageTable().coverage(["b1"]) == 0.0

    def test_unknown_benchmark_contributes_nothing(self):
        table = make_coverage()
        assert table.coverage(["nope"]) == 0.0

    def test_ensure_benchmark_registers_empty(self):
        table = CoverageTable()
        table.ensure_benchmark("b9")
        assert "b9" in table.benchmarks

    def test_record_merges(self):
        table = CoverageTable()
        table.record("b1", {"x"})
        table.record("b1", {"y"})
        assert table.found["b1"] == {"x", "y"}


class TestJointProbability:
    def test_empty_is_zero(self):
        assert joint_incident_probability([]) == 0.0

    def test_single_node(self):
        assert joint_incident_probability([0.3]) == pytest.approx(0.3)

    def test_two_independent_nodes(self):
        assert joint_incident_probability([0.5, 0.5]) == pytest.approx(0.75)

    def test_clipped_to_unit_interval(self):
        assert joint_incident_probability([1.5]) == pytest.approx(1.0)


class TestSelectBenchmarks:
    durations = {"b1": 10.0, "b2": 30.0, "b3": 5.0}

    def test_skip_when_probability_low(self):
        result = select_benchmarks([0.01], self.durations, make_coverage(), p0=0.10)
        assert result.skipped
        assert result.subset == ()
        assert result.total_time_minutes == 0.0

    def test_selects_until_residual_below_target(self):
        result = select_benchmarks([0.9], self.durations, make_coverage(), p0=0.2)
        assert not result.skipped
        assert result.residual_probability <= 0.2 or set(result.subset) == {
            "b1", "b2", "b3"}

    def test_greedy_prefers_probability_decrement_per_minute(self):
        # b1: 0.4 coverage / 10 min = 0.04; b2: 0.6 / 30 = 0.02;
        # b3: 0.2 / 5 = 0.04.  With ties b1-or-b3 first, b2 must not be
        # the first pick.
        result = select_benchmarks([0.9], self.durations, make_coverage(), p0=0.0)
        assert result.subset[0] in ("b1", "b3")

    def test_full_set_when_target_unreachable(self):
        result = select_benchmarks([1.0], self.durations, make_coverage(), p0=0.0)
        assert set(result.subset) == {"b1", "b2", "b3"}
        assert result.coverage == pytest.approx(1.0)

    def test_residual_probability_formula(self):
        result = select_benchmarks([0.5], self.durations, make_coverage(), p0=0.05)
        assert result.residual_probability == pytest.approx(
            result.initial_probability * (1.0 - result.coverage)
        )

    def test_negative_p0_rejected(self):
        with pytest.raises(ValueError):
            select_benchmarks([0.5], self.durations, make_coverage(), p0=-0.1)

    def test_total_time_is_sum_of_selected(self):
        result = select_benchmarks([0.9], self.durations, make_coverage(), p0=0.0)
        assert result.total_time_minutes == pytest.approx(
            sum(self.durations[n] for n in result.subset)
        )


class TestExhaustiveSelection:
    durations = {"b1": 10.0, "b2": 30.0, "b3": 5.0}

    def test_matches_or_beats_greedy_time(self):
        coverage = make_coverage()
        for p0 in (0.0, 0.1, 0.3, 0.5):
            greedy = select_benchmarks([0.9], self.durations, coverage, p0=p0)
            optimal = select_benchmarks_exhaustive([0.9], self.durations,
                                                   coverage, p0=p0)
            if (greedy.residual_probability <= p0
                    and optimal.residual_probability <= p0):
                assert optimal.total_time_minutes <= greedy.total_time_minutes

    def test_skip_when_below_target(self):
        result = select_benchmarks_exhaustive([0.01], self.durations,
                                              make_coverage(), p0=0.5)
        assert result.skipped

    def test_too_many_candidates_rejected(self):
        table = CoverageTable()
        durations = {}
        for i in range(21):
            table.record(f"b{i}", {f"m{i}"})
            durations[f"b{i}"] = 1.0
        with pytest.raises(ValueError):
            select_benchmarks_exhaustive([0.9], durations, table, p0=0.1)
