"""Dirty-telemetry soak (``-m soak``): the ISSUE acceptance scenario.

A fleet is validated under 10% telemetry contamination spanning all
four fault classes (NaN bursts, truncated windows, unit-scale
glitches, duplicated samples).  With sanitization at ingestion:

* criteria learning completes without error;
* the false-eviction rate of healthy nodes stays bounded relative to
  a clean control run;
* a deliberately poisoned criteria update is rejected by the guarded
  rollout and the previous criteria stays active.

Marked ``soak`` so tier-1 stays fast; CI runs it as a separate job.
"""

import numpy as np
import pytest

from repro.benchsuite.base import BenchmarkResult
from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import suite_by_name
from repro.core.selector import Selector
from repro.core.system import Anubis
from repro.core.validator import Validator
from repro.hardware.fleet import build_fleet
from repro.hardware.node import Node
from repro.quality import RolloutConfig, Sanitizer
from repro.service import PoolConfig, ServiceConfig, ValidationService
from repro.simulation import analytic_coverage_table, suite_durations
from repro.simulation.dirty import dirty_runner
from repro.simulation.generator import generate_incident_trace
from repro.survival import extract_status_samples
from repro.survival.exponential import ExponentialModel

pytestmark = pytest.mark.soak

CONTAMINATION = 0.10
FLEET_SIZE = 24

# Multi-sample benchmarks: the sanitizer can mask and quarantine inside
# a window instead of losing the whole measurement.
SUITE = (suite_by_name("gpu-burn"), suite_by_name("matmul-allreduce-overlap"))


def fleet_nodes(n=FLEET_SIZE):
    return [Node(node_id=f"n{i:04d}") for i in range(n)]


@pytest.fixture(scope="module")
def soak():
    """One contaminated validation campaign, shared by the assertions."""
    nodes = fleet_nodes()

    clean_validator = Validator(SUITE, runner=SuiteRunner(seed=11))
    clean_validator.learn_criteria(nodes)
    clean_report = clean_validator.validate(nodes)

    sanitizer = Sanitizer.for_suite(SUITE)
    dirty_validator = Validator(
        SUITE,
        runner=dirty_runner(contamination=CONTAMINATION, seed=11,
                            sanitizer=sanitizer),
        contamination=CONTAMINATION,
    )
    dirty_validator.learn_criteria(nodes)
    dirty_report = dirty_validator.validate(nodes)

    return {
        "nodes": nodes,
        "sanitizer": sanitizer,
        "dirty_validator": dirty_validator,
        "clean_evicted": set(clean_report.defective_nodes),
        "dirty_evicted": set(dirty_report.defective_nodes),
    }


class TestContaminatedCampaign:
    def test_learning_completes_under_contamination(self, soak):
        criteria = soak["dirty_validator"].criteria
        expected = {(spec.name, m.name) for spec in SUITE
                    for m in spec.metrics}
        assert set(criteria) == expected

    def test_faults_were_actually_injected(self, soak):
        summary = soak["sanitizer"].ledger.summary()
        injected = {kind for _, _, kind
                    in soak["dirty_validator"].runner.injected}
        assert injected  # the contamination lottery fired
        assert (summary["values_quarantined"] > 0
                or summary["windows_quarantined"] > 0)

    def test_false_eviction_rate_bounded(self, soak):
        false_evictions = soak["dirty_evicted"] - soak["clean_evicted"]
        # 10% contamination must not translate into fleet-scale false
        # evictions: dirty telemetry indicts the pipeline, not the
        # node.  Allow a small residue for windows degraded enough
        # (e.g. heavily truncated) to drift past the filter.
        assert len(false_evictions) <= max(2, FLEET_SIZE // 10)

    def test_no_mass_eviction(self, soak):
        assert len(soak["dirty_evicted"]) < FLEET_SIZE // 2


class PoisoningRunner(SuiteRunner):
    """Coherent fleet-wide skew, togglable -- the rollout adversary."""

    def __init__(self, factor=3.0, **kwargs):
        super().__init__(**kwargs)
        self.factor = factor
        self.poisoning = False

    def _execute(self, spec, node):
        result = super()._execute(spec, node)
        if not self.poisoning:
            return result
        return BenchmarkResult(
            benchmark=result.benchmark, node_id=result.node_id,
            metrics={name: series * self.factor
                     for name, series in result.metrics.items()})


class TestGuardedRolloutSoak:
    def test_poisoned_update_rejected_previous_criteria_active(self):
        runner = PoisoningRunner(seed=23)
        validator = Validator(SUITE, runner=runner)
        trace = generate_incident_trace(50, 800.0, seed=29)
        model = ExponentialModel().fit(extract_status_samples(trace))
        selector = Selector(model, analytic_coverage_table(SUITE),
                            suite_durations(SUITE), p0=0.05)
        service = ValidationService(
            Anubis(validator, selector), build_fleet(12, seed=31).nodes,
            config=ServiceConfig(pool=PoolConfig(max_workers=2),
                                 rollout=RolloutConfig()))
        nodes = fleet_nodes(12)

        bootstrap = service.learn_criteria(nodes)
        assert bootstrap and all(d.accepted for d in bootstrap)
        active = {key: np.asarray(c.criteria, dtype=float).copy()
                  for key, c in validator.criteria.items()}

        runner.poisoning = True
        decisions = service.learn_criteria(nodes)
        assert decisions and all(not d.accepted for d in decisions)
        for key, criteria in validator.criteria.items():
            np.testing.assert_array_equal(
                np.asarray(criteria.criteria, dtype=float), active[key])
