"""Integration: networking validation over a degraded fat-tree (Fig 3 +
Appendix A flows)."""

import numpy as np

from repro.benchsuite.multinode import run_all_pair_scan
from repro.hardware.node import Node
from repro.netval.pairs import round_robin_schedule, validate_schedule
from repro.netval.topo_aware import quick_scan_schedule, validate_quick_scan
from repro.topology.congestion import allreduce_pair_bandwidths
from repro.topology.fattree import FatTree, FatTreeConfig


def paper_testbed():
    """24 nodes / 6 ToRs / 2 pods with 25% redundant uplinks."""
    return FatTree(FatTreeConfig(n_nodes=24, nodes_per_tor=4, tors_per_pod=3,
                                 uplinks_per_tor=20, redundant_uplinks=4))


def cross_tor_pairs(tree):
    """Node-disjoint 2-node pairs that all cross ToR boundaries."""
    pairs = []
    for tor in range(0, tree.n_tors, 2):
        left = tree.nodes_in_tor(tor)
        right = tree.nodes_in_tor(tor + 1)
        pairs.extend(zip(left, right))
    return pairs


class TestFigure3Phenomenon:
    def test_bimodal_cdf_under_redundancy_loss(self):
        tree = paper_testbed()
        pairs = cross_tor_pairs(tree)
        rng = np.random.default_rng(0)
        healthy = sorted(p.bandwidth_gbps for p in
                         allreduce_pair_bandwidths(tree, pairs, rng=rng))
        tree.fail_uplinks(0, 3)
        tree.fail_uplinks(3, 3)
        degraded = sorted(p.bandwidth_gbps for p in
                          allreduce_pair_bandwidths(tree, pairs, rng=rng))
        # Healthy: tight CDF.  Degraded: a low mode appears.
        assert (max(healthy) - min(healthy)) / np.mean(healthy) < 0.05
        assert min(degraded) < 0.97 * min(healthy)
        assert max(degraded) > 0.99 * min(healthy)  # unaffected pairs intact

    def test_repairing_all_involved_tors_restores_bandwidth(self):
        tree = paper_testbed()
        pairs = cross_tor_pairs(tree)
        tree.fail_uplinks(0, 3)
        tree.fail_uplinks(3, 3)
        tree.repair_uplinks(0, 1)  # back to >= 50% of the redundancy
        tree.repair_uplinks(3, 1)
        results = allreduce_pair_bandwidths(tree, pairs, noise_cv=0.0)
        assert all(not r.congested for r in results)


class TestAppendixAFlow:
    def test_full_scan_detects_degraded_endpoint(self):
        tree = paper_testbed()
        rng = np.random.default_rng(1)
        nodes = [Node(node_id=f"n{i}") for i in range(24)]
        from repro.hardware.components import defect_mode
        nodes[7].apply_defect(defect_mode("ib_hca_degraded"), rng)
        scan = run_all_pair_scan(tree, nodes, rng)
        medians = scan.node_median_bandwidth
        worst = min(medians, key=medians.get)
        assert worst == 7

    def test_full_scan_round_count_linear(self):
        rounds = round_robin_schedule(list(range(24)))
        assert len(rounds) == 23
        validate_schedule(list(range(24)), rounds)

    def test_quick_scan_constant_rounds(self):
        small = paper_testbed()
        big = FatTree(FatTreeConfig(n_nodes=96, nodes_per_tor=4,
                                    tors_per_pod=3))
        rounds_small = quick_scan_schedule(small)
        rounds_big = quick_scan_schedule(big)
        validate_quick_scan(small, rounds_small)
        validate_quick_scan(big, rounds_big)
        assert len(rounds_small) == len(rounds_big) == 3
