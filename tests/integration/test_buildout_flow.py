"""Integration: the cluster build-out flow (criteria -> screening).

Mirrors the paper's deployment story at miniature scale: build a fleet
with injected gray failures, learn criteria from a sample of nodes with
the full benchmark set, then screen the whole fleet and check that the
Validator finds the planted defects without drowning in false
positives.
"""

import pytest

from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import full_suite
from repro.core.validator import Validator
from repro.hardware.fleet import build_fleet
from repro.simulation.coverage import detection_map


@pytest.fixture(scope="module")
def screening():
    fleet = build_fleet(150, seed=42)
    validator = Validator(full_suite(), runner=SuiteRunner(seed=7), alpha=0.95)
    validator.learn_criteria(fleet.nodes[:80])
    report = validator.validate(fleet.nodes)
    return fleet, validator, report


class TestBuildOutScreening:
    def test_all_detectable_defects_found(self, screening):
        fleet, validator, report = screening
        detectors = detection_map(full_suite())
        flagged = set(report.defective_nodes)
        for node in fleet.defective_nodes:
            detectable = any(detectors.get(mode) for mode in node.defects)
            if detectable:
                assert node.node_id in flagged, (
                    f"{node.node_id} with {node.defects} escaped screening"
                )

    def test_false_positive_rate_bounded(self, screening):
        fleet, validator, report = screening
        truth = {n.node_id for n in fleet.defective_nodes}
        false_positives = set(report.defective_nodes) - truth
        assert len(false_positives) / len(fleet) < 0.08

    def test_defect_attribution_matches_components(self, screening):
        fleet, validator, report = screening
        detectors = detection_map(full_suite())
        by_benchmark = report.violations_by_benchmark()
        # Every NIC-degraded node must be flagged by ib-loopback
        # specifically (the paper's component attribution story).
        for node in fleet.defective_nodes:
            if node.defects == ["ib_hca_degraded"]:
                assert node.node_id in by_benchmark.get("ib-loopback", set())

    def test_criteria_learned_for_every_metric(self, screening):
        _, validator, _ = screening
        expected = sum(len(s.metrics) for s in full_suite())
        assert len(validator.criteria) == expected

    def test_repeatability_of_effective_benchmarks(self, screening):
        """Healthy-node pairwise repeatability (the paper's §3.4
        definition) stays above the 97.5% floor of Table 6."""
        from repro.core.repeatability import pairwise_repeatability

        fleet, validator, report = screening
        flagged = set(report.defective_nodes)
        healthy_nodes = [n for n in fleet.nodes if n.node_id not in flagged][:25]
        runner = SuiteRunner(seed=99)
        for name in ("ib-loopback", "gemm-flops", "bert-models"):
            spec = validator.spec(name)
            metric = spec.metrics[0]
            samples = [runner.run(spec, node).sample(metric.name)
                       for node in healthy_nodes]
            assert pairwise_repeatability(samples) > 0.975
