"""Integration: the durable control plane (kill-and-restart recovery,
hang quarantine, end-to-end draining).

The acceptance bar for the service layer: kill a service mid-stream,
start a fresh one (fresh Validator, fresh Selector) on the same
journal directory, and get back identical lifecycle states, queue
contents and learned criteria -- then finish the remaining work.
"""

import time

import numpy as np
import pytest

from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import full_suite
from repro.core.persistence import criteria_payload
from repro.core.selector import NodeStatus, Selector
from repro.core.system import Anubis, EventKind, ValidationEvent
from repro.core.validator import Validator
from repro.exceptions import ServiceError
from repro.hardware.fleet import build_fleet
from repro.service import (
    NodeState,
    PoolConfig,
    ServiceConfig,
    ValidationService,
)
from repro.simulation import analytic_coverage_table, suite_durations
from repro.simulation.generator import generate_incident_trace
from repro.survival import extract_status_samples
from repro.survival.exponential import ExponentialModel

SUITE = full_suite()
FAST_POOL = PoolConfig(max_workers=4, benchmark_timeout_seconds=2.0,
                       max_attempts=1, backoff_base_seconds=0.0,
                       poll_interval_seconds=0.01)


class FailingRunner(SuiteRunner):
    """Real runner that crashes on every benchmark of one node."""

    def __init__(self, broken_node, **kwargs):
        super().__init__(**kwargs)
        self.broken_node = broken_node

    def run(self, spec, node):
        if node.node_id == self.broken_node:
            raise RuntimeError("simulated hardware fault")
        return super().run(spec, node)


class HangingRunner(SuiteRunner):
    """Real runner that hangs on one (node, benchmark) cell.

    Hanging a single cell keeps the test fast: an abandoned execution
    still occupies its worker thread until the sleep returns, so
    hanging every cell of a node would serially exhaust the pool.
    """

    def __init__(self, hung_node, hung_benchmark, hang_seconds=10.0,
                 **kwargs):
        super().__init__(**kwargs)
        self.hung_node = hung_node
        self.hung_benchmark = hung_benchmark
        self.hang_seconds = hang_seconds

    def run(self, spec, node):
        if (node.node_id == self.hung_node
                and spec.name == self.hung_benchmark):
            time.sleep(self.hang_seconds)
        return super().run(spec, node)


@pytest.fixture(scope="module")
def fleet():
    return build_fleet(12, seed=5)


@pytest.fixture(scope="module")
def risk_model():
    trace = generate_incident_trace(50, 800.0, seed=11)
    dataset = extract_status_samples(trace)
    return ExponentialModel().fit(dataset), dataset


def build_service(fleet, risk_model, journal_dir, *, runner=None,
                  learn=True):
    """A complete service stack with its own (fresh) policy objects."""
    model, _dataset = risk_model
    validator = Validator(SUITE, runner=runner or SuiteRunner(seed=9))
    if learn:
        validator.learn_criteria(fleet.nodes[:6])
    selector = Selector(model, analytic_coverage_table(SUITE),
                        suite_durations(SUITE), p0=0.05)
    anubis = Anubis(validator, selector)
    return ValidationService(anubis, fleet.nodes, journal_dir=journal_dir,
                             config=ServiceConfig(pool=FAST_POOL))


def make_event(fleet, dataset, node_indices, kind, duration=24.0):
    nodes = tuple(fleet.nodes[i] for i in node_indices)
    statuses = tuple(
        NodeStatus(node_id=node.node_id,
                   covariates=dataset.covariates[i % len(dataset)])
        for i, node in enumerate(nodes))
    return ValidationEvent(kind=kind, nodes=nodes, statuses=statuses,
                           duration_hours=duration)


def queue_digest(service):
    return [
        (entry.event_id, entry.priority, entry.event.kind.value,
         tuple(sorted(n.node_id for n in entry.event.nodes)),
         entry.event.duration_hours)
        for entry in service.queue.pending()
    ]


class TestKillAndRestart:
    def test_recovery_is_exact(self, fleet, risk_model, tmp_path):
        _model, dataset = risk_model
        journal = tmp_path / "journal"
        service = build_service(fleet, risk_model, journal)

        # A burst of events: an incident (jumps the queue), two
        # allocations (one duplicated, so it coalesces).
        service.submit(make_event(fleet, dataset, [0, 1, 2],
                                  EventKind.JOB_ALLOCATION, duration=12.0))
        service.submit(make_event(fleet, dataset, [3],
                                  EventKind.INCIDENT_REPORTED))
        service.submit(make_event(fleet, dataset, [4, 5],
                                  EventKind.JOB_ALLOCATION, duration=8.0))
        service.submit(make_event(fleet, dataset, [0, 1, 2],
                                  EventKind.JOB_ALLOCATION, duration=30.0))
        assert service.metrics.events_coalesced == 1
        assert len(service.queue) == 3

        # Process the two riskiest events, then "kill" the process.
        assert service.tick() is not None
        assert service.tick() is not None
        assert len(service.queue) == 1

        recovered = build_service(fleet, risk_model, journal, learn=False)
        assert recovered.lifecycle.states() == service.lifecycle.states()
        assert queue_digest(recovered) == queue_digest(service)
        assert (criteria_payload(recovered.anubis.validator)
                == criteria_payload(service.anubis.validator))
        for key in ("events_processed", "policy_skips", "validations_run",
                    "nodes_validated", "nodes_quarantined"):
            assert (getattr(recovered.metrics, key)
                    == getattr(service.metrics, key)), key

        # The recovered service finishes the remaining work.
        results = recovered.drain()
        assert len(recovered.queue) == 0
        assert not any(
            recovered.lifecycle.nodes_in(state)
            for state in (NodeState.SCHEDULED, NodeState.VALIDATING,
                          NodeState.QUARANTINED, NodeState.IN_REPAIR,
                          NodeState.RETURNING))
        assert recovered.metrics.events_processed >= 3 + len(results) - 1

    def test_recovery_survives_truncated_tail(self, fleet, risk_model,
                                              tmp_path):
        _model, dataset = risk_model
        journal = tmp_path / "journal"
        service = build_service(fleet, risk_model, journal)
        service.submit(make_event(fleet, dataset, [0, 1],
                                  EventKind.JOB_ALLOCATION))
        service.tick()
        # Crash mid-append: the final journal line is half-written.
        text = service.store.path.read_text()
        service.store.path.write_text(text[:len(text) - 20])

        recovered = build_service(fleet, risk_model, journal, learn=False)
        assert recovered.metrics.events_processed <= 1
        recovered.drain()

    def test_restart_continues_event_ids(self, fleet, risk_model, tmp_path):
        _model, dataset = risk_model
        journal = tmp_path / "journal"
        service = build_service(fleet, risk_model, journal)
        first = service.submit(make_event(fleet, dataset, [0],
                                          EventKind.JOB_ALLOCATION))
        recovered = build_service(fleet, risk_model, journal, learn=False)
        fresh = recovered.submit(make_event(fleet, dataset, [1],
                                            EventKind.JOB_ALLOCATION))
        assert fresh.event_id > first.event_id


class TestQuarantineFlow:
    def test_broken_node_is_quarantined_then_repaired(self, fleet,
                                                      risk_model, tmp_path):
        _model, dataset = risk_model
        broken = fleet.nodes[7].node_id
        service = build_service(fleet, risk_model, tmp_path / "journal",
                                runner=FailingRunner(broken, seed=9))
        service.submit(make_event(fleet, dataset, [6, 7, 8],
                                  EventKind.INCIDENT_REPORTED))
        result = service.tick()
        assert broken in result.quarantined
        assert service.lifecycle.state(broken) is NodeState.QUARANTINED
        # Drain walks the repair pipeline back to healthy.
        service.drain()
        assert service.lifecycle.state(broken) is NodeState.HEALTHY

    def test_hung_node_sweep_completes_and_quarantines(self, fleet,
                                                       risk_model, tmp_path):
        _model, dataset = risk_model
        hung = fleet.nodes[9].node_id
        service = build_service(
            fleet, risk_model, None,
            runner=HangingRunner(hung, SUITE[0].name, hang_seconds=10.0,
                                 seed=9))
        service.submit(make_event(fleet, dataset, list(range(12)),
                                  EventKind.NODE_ADDED))
        start = time.monotonic()
        result = service.tick()
        assert time.monotonic() - start < 8.0  # did not wait out the hang
        assert hung in result.quarantined
        others = [n.node_id for n in fleet.nodes if n.node_id != hung]
        assert all(
            service.lifecycle.state(n) in (NodeState.HEALTHY,
                                           NodeState.QUARANTINED)
            for n in others)


class TestServiceGuards:
    def test_submit_rejects_foreign_nodes(self, fleet, risk_model, tmp_path):
        service = build_service(fleet, risk_model, None)
        # Same Node type, but an id the 12-node service fleet lacks.
        stranger = build_fleet(14, seed=5).nodes[13]
        assert stranger.node_id not in service.fleet_index
        event = ValidationEvent(
            kind=EventKind.JOB_ALLOCATION, nodes=(stranger,),
            statuses=(NodeStatus(node_id=stranger.node_id,
                                 covariates=np.zeros(3)),))
        with pytest.raises(ServiceError, match="outside the service fleet"):
            service.submit(event)

    def test_tick_on_empty_queue_returns_none(self, fleet, risk_model):
        service = build_service(fleet, risk_model, None)
        assert service.tick() is None
