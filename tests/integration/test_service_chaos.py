"""Integration: the control plane under injected chaos.

Three escalating acceptance bars for the hardened service layer:

* **robustness** -- poison events dead-letter (and recover from the
  journal), failed submits roll back, flapping nodes are held down,
  compaction preserves state across a restart;
* **kill-at-every-prefix** -- a simulated ``kill -9`` between *every*
  pair of operational journal records, each followed by a chaos-free
  restart that must recover a consistent state and finish the work;
* **seeded chaos soak** -- hundreds of ticks under every fault kind at
  once, deterministic under its seed (two runs, identical digests),
  converging to a drained queue, a healthy fleet and the poison
  events parked in the dead-letter queue -- plus an exact circuit
  breaker open/half-open/close lifecycle under a chaos-injected
  benchmark regression.
"""

from collections import Counter

import numpy as np
import pytest

from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import suite_by_name
from repro.core.selector import NodeStatus, Selector
from repro.core.system import Anubis, EventKind, ValidationEvent
from repro.core.validator import Validator
from repro.exceptions import JournalError
from repro.hardware.fleet import build_fleet
from repro.service import (
    BreakerState,
    ChaosPlan,
    JournalStore,
    NodeState,
    PoolConfig,
    ServiceConfig,
    SimulatedKill,
    ValidationService,
    install_chaos,
)
from repro.service.chaos import poison_key
from repro.simulation import analytic_coverage_table, suite_durations
from repro.simulation.generator import generate_incident_trace
from repro.survival import extract_status_samples
from repro.survival.exponential import ExponentialModel

SUITE = (suite_by_name("ib-loopback"), suite_by_name("mem-bw"))
FAST_POOL = PoolConfig(max_workers=4, benchmark_timeout_seconds=0.5,
                       max_attempts=1, backoff_base_seconds=0.0,
                       poll_interval_seconds=0.005)
BUSY_STATES = (NodeState.SCHEDULED, NodeState.VALIDATING,
               NodeState.QUARANTINED, NodeState.IN_REPAIR,
               NodeState.RETURNING)
#: Integer metric counters every digest/restart comparison uses.
METRIC_FIELDS = ("events_processed", "policy_skips", "validations_run",
                 "nodes_validated", "nodes_quarantined", "tick_failures",
                 "events_dead_lettered", "repair_failures")


class FailingRunner(SuiteRunner):
    """Real runner that crashes on every benchmark of one node."""

    def __init__(self, broken_node, **kwargs):
        super().__init__(**kwargs)
        self.broken_node = broken_node

    def run(self, spec, node):
        if node.node_id == self.broken_node:
            raise RuntimeError("simulated hardware fault")
        return super().run(spec, node)


@pytest.fixture(scope="module")
def fleet():
    return build_fleet(12, seed=5)


@pytest.fixture(scope="module")
def risk_model():
    trace = generate_incident_trace(50, 800.0, seed=11)
    dataset = extract_status_samples(trace)
    return ExponentialModel().fit(dataset), dataset


def build_service(fleet, risk_model, journal_dir, *, runner=None, learn=True,
                  config=None):
    """A complete service stack with its own (fresh) policy objects."""
    model, _dataset = risk_model
    validator = Validator(SUITE, runner=runner or SuiteRunner(seed=9))
    if learn:
        validator.learn_criteria(fleet.nodes[:6])
    selector = Selector(model, analytic_coverage_table(SUITE),
                        suite_durations(SUITE), p0=0.05)
    anubis = Anubis(validator, selector)
    return ValidationService(
        anubis, fleet.nodes, journal_dir=journal_dir,
        config=config or ServiceConfig(pool=FAST_POOL))


def make_event(fleet, dataset, node_indices, kind, duration=24.0):
    nodes = tuple(fleet.nodes[i] for i in node_indices)
    statuses = tuple(
        NodeStatus(node_id=node.node_id,
                   covariates=dataset.covariates[i % len(dataset)])
        for i, node in enumerate(nodes))
    return ValidationEvent(kind=kind, nodes=nodes, statuses=statuses,
                           duration_hours=duration)


def busy_nodes(service):
    return [node_id for state in BUSY_STATES
            for node_id in service.lifecycle.nodes_in(state)]


class TestControlPlaneRobustness:
    def test_poison_event_dead_letters_and_recovers(self, fleet, risk_model,
                                                    tmp_path):
        _model, dataset = risk_model
        journal = tmp_path / "journal"
        service = build_service(
            fleet, risk_model, journal,
            config=ServiceConfig(pool=FAST_POOL, max_event_attempts=2))
        poison = make_event(fleet, dataset, [0, 1], EventKind.JOB_ALLOCATION)
        monkey = install_chaos(service, ChaosPlan(
            seed=0, poison_event_keys=frozenset({poison_key(poison)})))
        service.submit(poison)

        # First failed tick: re-queued with one burned attempt, nodes
        # released.
        first = service.tick()
        assert first.failed and "poison" in first.error
        requeued = [e for e in service.queue.pending()
                    if poison_key(e.event) == poison_key(poison)]
        assert requeued[0].attempts == 1
        assert service.lifecycle.state(fleet.nodes[0].node_id) \
            is NodeState.HEALTHY

        service.submit(make_event(fleet, dataset, [2],
                                  EventKind.INCIDENT_REPORTED))
        results = service.drain()
        assert service.metrics.events_dead_lettered == 1
        assert service.metrics.tick_failures == 2
        letters = service.dead_letters()
        assert [poison_key(l.entry.event) for l in letters] \
            == [poison_key(poison)]
        assert letters[0].entry.attempts == 2
        assert "poison" in letters[0].reason
        # The healthy event still processed; nothing is stuck.
        assert any(not r.failed for r in results)
        assert busy_nodes(service) == []
        monkey.uninstall()

        # The dead letter survives a restart via the journal.
        recovered = build_service(
            fleet, risk_model, journal, learn=False,
            config=ServiceConfig(pool=FAST_POOL, max_event_attempts=2))
        assert [(l.entry.event_id, l.entry.attempts, l.reason)
                for l in recovered.dead_letters()] \
            == [(letters[0].entry.event_id, 2, letters[0].reason)]
        assert len(recovered.queue) == 0
        assert recovered.metrics.events_dead_lettered == 1

    def test_submit_rolls_back_on_journal_fault(self, fleet, risk_model,
                                                tmp_path):
        _model, dataset = risk_model
        service = build_service(fleet, risk_model, tmp_path / "journal")
        monkey = install_chaos(service, ChaosPlan(seed=0,
                                                  journal_error_rate=1.0))
        event = make_event(fleet, dataset, [0, 1], EventKind.JOB_ALLOCATION)
        with pytest.raises(JournalError, match="injected journal write"):
            service.submit(event)
        # Rolled back completely: not queued, not counted, not scheduled.
        assert len(service.queue) == 0
        assert service.metrics.events_submitted == 0
        assert service.lifecycle.states() == {}
        monkey.uninstall()
        assert {r.kind for r in service.store.replay()} \
            == {"criteria-snapshot", "pipeline-stats"}

        # The same event is accepted once the journal heals.
        service.submit(event)
        assert len(service.queue) == 1
        assert service.metrics.events_submitted == 1

    def test_flapping_node_is_held_down_exponentially(self, fleet,
                                                      risk_model, tmp_path):
        _model, dataset = risk_model
        broken = fleet.nodes[7].node_id
        config = ServiceConfig(pool=FAST_POOL, flap_base_holddown_ticks=3,
                               flap_multiplier=2.0,
                               flap_max_holddown_ticks=32)
        service = build_service(fleet, risk_model, tmp_path / "journal",
                                runner=FailingRunner(broken, seed=9),
                                config=config)
        incident = make_event(fleet, dataset, [7], EventKind.INCIDENT_REPORTED)
        service.submit(incident)
        assert broken in service.tick().quarantined
        # Held down for base_holddown_ticks=3 ticks before repair starts.
        for _ in range(2):
            service.tick()
            assert service.lifecycle.state(broken) is NodeState.QUARANTINED
        service.tick()
        assert service.lifecycle.state(broken) is NodeState.IN_REPAIR
        service.drain()
        assert service.lifecycle.state(broken) is NodeState.HEALTHY

        # A second quarantine doubles the hold-down.
        service.submit(incident)
        service.tick()
        assert service.lifecycle.state(broken) is NodeState.QUARANTINED
        assert service.damper.flap_count(broken) == 2
        assert service.damper.holddown_remaining(broken) == 6
        for _ in range(5):
            service.tick()
            assert service.lifecycle.state(broken) is NodeState.QUARANTINED
        service.drain()
        assert service.lifecycle.state(broken) is NodeState.HEALTHY

    def test_compaction_preserves_state_across_restart(self, fleet,
                                                       risk_model, tmp_path):
        _model, dataset = risk_model
        journal = tmp_path / "journal"
        config = ServiceConfig(pool=FAST_POOL, compact_every=2,
                               snapshot_every=1000)
        service = build_service(fleet, risk_model, journal, config=config)
        for i in range(5):
            service.submit(make_event(fleet, dataset, [i, i + 1],
                                      EventKind.JOB_ALLOCATION,
                                      duration=8.0 + i))
        service.drain()
        last_id = service.queue.last_event_id
        assert service.metrics.journal_compactions >= 2
        # The journal was rewritten: it now *starts* at the snapshot.
        records = JournalStore(journal).replay()
        assert records[0].kind == "criteria-snapshot"
        assert records[1].kind == "state-snapshot"

        recovered = build_service(fleet, risk_model, journal, learn=False,
                                  config=config)
        assert recovered.lifecycle.states() == service.lifecycle.states()
        for name in METRIC_FIELDS:
            assert (getattr(recovered.metrics, name)
                    == getattr(service.metrics, name)), name
        assert len(recovered.queue) == 0
        # Event ids keep climbing: the snapshot carried the high-water
        # mark, so a recycled id cannot alias an old journal record.
        fresh = recovered.submit(make_event(fleet, dataset, [9],
                                            EventKind.JOB_ALLOCATION))
        assert fresh.event_id > last_id


class TestKillAtEveryPrefix:
    """Crash-safety as a property: kill the service before every
    single operational journal append, restart chaos-free, and demand
    a consistent recovery plus a finished workload."""

    def _events(self, fleet, dataset):
        return [
            make_event(fleet, dataset, [0, 1, 2], EventKind.JOB_ALLOCATION,
                       duration=12.0),
            make_event(fleet, dataset, [3], EventKind.INCIDENT_REPORTED),
            make_event(fleet, dataset, [4, 5], EventKind.JOB_ALLOCATION,
                       duration=8.0),
        ]

    def test_restart_from_every_journal_prefix(self, fleet, risk_model,
                                               tmp_path):
        _model, dataset = risk_model
        events = self._events(fleet, dataset)

        # Uninterrupted baseline: counts the operational appends and
        # pins down the converged end state.
        baseline = build_service(fleet, risk_model, tmp_path / "baseline")
        install_chaos(baseline, ChaosPlan(seed=0))  # inert: counts appends
        for event in events:
            baseline.submit(event)
        baseline.drain()
        total_appends = baseline.store.appends
        assert total_appends > 10
        assert busy_nodes(baseline) == []
        baseline_processed = baseline.metrics.events_processed

        for cut in range(total_appends):
            journal = tmp_path / f"kill-{cut}"
            service = build_service(fleet, risk_model, journal)
            install_chaos(service, ChaosPlan(seed=0, kill_after_appends=cut))
            killed = False
            try:
                for event in events:
                    service.submit(event)
                service.drain()
            except SimulatedKill:
                killed = True
            assert killed, f"cut={cut} never reached append {cut + 1}"

            # What the journal promises: every accepted-but-unfinished
            # event must come back, and nothing else.
            records = JournalStore(journal).replay()
            enqueued = {r.payload["event_id"] for r in records
                        if r.kind == "event-enqueued"}
            finished = {r.payload["event_id"] for r in records
                        if r.kind in ("event-completed",
                                      "event-dead-lettered")}

            recovered = build_service(fleet, risk_model, journal, learn=False)
            assert recovered.anubis.validator.criteria  # snapshot replayed
            assert ({e.event_id for e in recovered.queue.pending()}
                    == enqueued - finished), f"cut={cut}"
            # No node is stuck mid-validation, and every scheduled
            # node is still covered by a pending event.
            assert recovered.lifecycle.nodes_in(NodeState.VALIDATING) == [], \
                f"cut={cut}"
            covered = {node.node_id for e in recovered.queue.pending()
                       for node in e.event.nodes}
            assert set(recovered.lifecycle.nodes_in(NodeState.SCHEDULED)) \
                <= covered, f"cut={cut}"

            # Replay is idempotent: a second recovery over the journal
            # (which now also holds the first recovery's healing
            # records) lands in the identical state.
            twin = build_service(fleet, risk_model, journal, learn=False)
            assert twin.lifecycle.states() == recovered.lifecycle.states(), \
                f"cut={cut}"
            assert ([(e.event_id, e.priority, e.attempts)
                     for e in twin.queue.pending()]
                    == [(e.event_id, e.priority, e.attempts)
                        for e in recovered.queue.pending()]), f"cut={cut}"

            # The restarted service finishes the whole workload
            # (resubmission coalesces into surviving entries).
            for event in events:
                recovered.submit(event)
            recovered.drain()
            assert len(recovered.queue) == 0, f"cut={cut}"
            assert recovered.dead_letters() == [], f"cut={cut}"
            assert busy_nodes(recovered) == [], f"cut={cut}"
            assert (recovered.metrics.events_processed
                    >= baseline_processed), f"cut={cut}"


SOAK_SEED = 1129
SOAK_TICK_FLOOR = 220
SOAK_CONFIG = ServiceConfig(pool=FAST_POOL, snapshot_every=50,
                            max_event_attempts=3, compact_every=25,
                            flap_base_holddown_ticks=1, flap_multiplier=2.0,
                            flap_max_holddown_ticks=4)


def soak_plan(seed):
    return ChaosPlan(
        seed=seed,
        executor_crash_rate=0.05,
        executor_hang_rate=0.02,
        hang_seconds=1.5,          # well past the 0.5 s benchmark timeout
        journal_error_rate=0.02,
        kill_rate=0.01,
        tick_error_rate=0.05,
        repair_failure_rate=0.2,
        poison_event_keys=frozenset(SOAK_POISON_KEYS),
    )


def soak_events(fleet, dataset):
    """A deterministic 50-event storm over nodes 0-8, plus two poison
    events on nodes 9-11 (kept disjoint so no random event shares a
    poison key)."""
    rng = np.random.default_rng(424242)
    kinds = ([EventKind.JOB_ALLOCATION] * 6
             + [EventKind.INCIDENT_REPORTED] * 3
             + [EventKind.NODE_ADDED])
    events = []
    for _ in range(48):
        kind = kinds[int(rng.integers(len(kinds)))]
        size = int(rng.integers(1, 4))
        indices = sorted(int(i) for i in rng.choice(9, size=size,
                                                    replace=False))
        events.append(make_event(fleet, dataset, indices, kind,
                                 duration=float(rng.uniform(4.0, 48.0))))
    events.insert(10, make_event(fleet, dataset, [9, 10],
                                 EventKind.JOB_ALLOCATION, duration=12.0))
    events.insert(30, make_event(fleet, dataset, [11],
                                 EventKind.INCIDENT_REPORTED, duration=6.0))
    return events


SOAK_POISON_KEYS = (
    ("job-allocation", ("node-0009", "node-0010")),
    ("incident-reported", ("node-0011",)),
)


def drive_soak(service, events, state):
    """Submit-and-tick until the storm is fully absorbed.

    Resumable: ``state`` carries the submission cursor across
    simulated kills.  A submit the journal rejects is retried a few
    times (fresh appends redraw the fault), then counted as dropped;
    a submit interrupted by a kill is *not* advanced past, so the
    event is retried after the restart (at-least-once from the
    client's side too)."""
    guard = 0
    while True:
        guard += 1
        assert guard < 5000, "soak failed to converge"
        if state["submitted"] < len(events):
            event = events[state["submitted"]]
            for _ in range(5):
                try:
                    service.submit(event)
                    break
                except JournalError:
                    continue
            else:
                state["dropped"] += 1
            state["submitted"] += 1
        service.tick()
        state["ticks"] += 1
        if (state["submitted"] >= len(events) and len(service.queue) == 0
                and not busy_nodes(service)):
            break
    while state["ticks"] < SOAK_TICK_FLOOR:
        service.tick()  # empty ticks: no appends, so no further kills
        state["ticks"] += 1


def run_soak(fleet, risk_model, journal):
    _model, dataset = risk_model
    events = soak_events(fleet, dataset)
    state = {"submitted": 0, "ticks": 0, "dropped": 0, "restarts": 0}
    injections = Counter()
    service = build_service(fleet, risk_model, journal, config=SOAK_CONFIG)
    monkey = install_chaos(service, soak_plan(SOAK_SEED))
    while True:
        try:
            drive_soak(service, events, state)
            break
        except SimulatedKill:
            injections.update(monkey.injections)
            state["restarts"] += 1
            assert state["restarts"] < 40, "soak kill-looped"
            service = build_service(fleet, risk_model, journal, learn=False,
                                    config=SOAK_CONFIG)
            # Shift the seed per incarnation: the append counter
            # restarts at zero, and an unshifted plan would
            # deterministically re-kill at the same append forever.
            monkey = install_chaos(service,
                                   soak_plan(SOAK_SEED + state["restarts"]))
    injections.update(monkey.injections)
    return service, injections, state


def soak_digest(service, injections, state):
    """Everything the soak asserts on, minus wall-clock measurements."""
    return {
        "states": sorted((node_id, node_state.value) for node_id, node_state
                         in service.lifecycle.states().items()),
        "metrics": {name: getattr(service.metrics, name)
                    for name in METRIC_FIELDS},
        "dead_letters": sorted(
            (letter.entry.event_id, letter.entry.attempts,
             poison_key(letter.entry.event))
            for letter in service.dead_letters()),
        "injections": sorted(injections.items()),
        "state": dict(state),
    }


class TestChaosSoak:
    def test_soak_converges_and_is_deterministic(self, fleet, risk_model,
                                                 tmp_path):
        service, injections, state = run_soak(fleet, risk_model,
                                              tmp_path / "run-a")
        digest = soak_digest(service, injections, state)

        assert state["ticks"] >= 200
        assert state["restarts"] >= 1  # kills actually interrupted the run
        # Every fault kind fired at least once: the storm was real.
        for kind in ("executor_crash", "executor_hang", "journal_error",
                     "kill", "tick_error", "repair_failure", "poison_tick"):
            assert injections[kind] >= 1, kind
        # ... and was absorbed: queue drained, fleet healthy, poison
        # parked rather than retried forever.
        assert len(service.queue) == 0
        assert busy_nodes(service) == []
        assert set(SOAK_POISON_KEYS) <= {
            poison_key(letter.entry.event)
            for letter in service.dead_letters()}
        # Each poison event burned all its attempts before parking
        # (counted via injections: the per-incarnation metrics counter
        # resets on restarts that precede a compaction snapshot).
        assert injections["poison_tick"] >= 6  # 2 poisons x 3 attempts

        # Same seed, fresh journal: byte-identical digest.
        replay_service, replay_injections, replay_state = run_soak(
            fleet, risk_model, tmp_path / "run-b")
        assert soak_digest(replay_service, replay_injections,
                           replay_state) == digest

    def test_breaker_lifecycle_under_injected_regression(self, fleet,
                                                         risk_model,
                                                         tmp_path):
        """A chaos-broken benchmark drives one breaker through its
        exact open -> half-open -> open -> half-open -> closed arc."""
        _model, dataset = risk_model
        pool = PoolConfig(max_workers=4, benchmark_timeout_seconds=0.5,
                          max_attempts=1, backoff_base_seconds=0.0,
                          poll_interval_seconds=0.005,
                          breaker_failure_threshold=2,
                          breaker_cooldown_sweeps=1)
        service = build_service(fleet, risk_model, tmp_path / "journal",
                                config=ServiceConfig(pool=pool))
        monkey = install_chaos(service, ChaosPlan(
            seed=0, broken_benchmarks=frozenset({"mem-bw"}),
            broken_benchmark_crashes=3))
        # Four single-node incidents: each tick is one full-validation
        # sweep, so the broken benchmark fails fleet-wide 3 times
        # (sweeps 1-3), then heals into the sweep-4 probe.
        for i in range(4):
            service.submit(make_event(fleet, dataset, [i],
                                      EventKind.INCIDENT_REPORTED))
            result = service.tick()
            assert not result.failed

        assert monkey.injections["broken_benchmark_crash"] == 3
        breaker = service.pool.breakers["mem-bw"]
        assert [(t.old, t.new, t.reason) for t in breaker.transitions] == [
            (BreakerState.CLOSED, BreakerState.OPEN, "failure-threshold"),
            (BreakerState.OPEN, BreakerState.HALF_OPEN, "cooldown-elapsed"),
            (BreakerState.HALF_OPEN, BreakerState.OPEN, "probe-failed"),
            (BreakerState.OPEN, BreakerState.HALF_OPEN, "cooldown-elapsed"),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED, "probe-succeeded"),
        ]
        assert breaker.state is BreakerState.CLOSED
        # The healthy benchmark's breaker never moved.
        assert service.pool.breakers["ib-loopback"].transitions == []
        # The crashes quarantined their nodes; the probe's survivor
        # stayed healthy; drain repairs the rest.
        assert service.lifecycle.state(fleet.nodes[3].node_id) \
            is NodeState.HEALTHY
        service.drain()
        assert busy_nodes(service) == []
        monkey.uninstall()
