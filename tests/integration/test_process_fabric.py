"""The process-isolated shard fabric under real OS-level faults.

Everything the thread fabric proves against :class:`SimulatedKill`,
proven here against the operating system: workers are genuine child
processes, ``kill -9`` is a genuine ``SIGKILL`` between two journal
appends (injected by the worker against itself via
:class:`ProcessChaosPlan`), hangs are genuine ``SIGSTOP`` freezes,
and graceful drain is a genuine ``SIGTERM`` against a live
``python -m repro serve`` parent.

The acceptance invariant throughout: **zero events lost, zero events
duplicated** -- every part the parent delivered lands in exactly one
shard journal and completes exactly once, no matter where a child
died.  Tier-1 runs a sampled kill-prefix sweep plus the signal
scenarios; the exhaustive every-prefix sweep and the mixed-fault
storm are ``-m soak``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import suite_by_name
from repro.core.persistence import save_criteria
from repro.core.selector import NodeStatus
from repro.core.system import EventKind, ValidationEvent
from repro.core.validator import Validator
from repro.hardware.fleet import build_fleet
from repro.service import (
    PARENT_ORIGIN,
    ProcessChaosPlan,
    ProcessFabric,
    SupervisorConfig,
)
from repro.service.shard import HashRing, ShardState
from repro.service.store import JournalStore, RecordKind

SUITE_NAMES = ["ib-loopback", "mem-bw"]
FLEET_SIZE = 12
FLEET_SEED = 5
SHARDS = 2
POOL = {"max_workers": 2, "benchmark_timeout_seconds": 2.0,
        "max_attempts": 1, "backoff_base_seconds": 0.0,
        "poll_interval_seconds": 0.005}


@pytest.fixture(scope="module")
def fleet():
    return build_fleet(FLEET_SIZE, seed=FLEET_SEED)


@pytest.fixture(scope="module")
def criteria_path(tmp_path_factory, fleet):
    """Criteria learned once and persisted; every worker loads them
    instead of paying the learn cost per spawn."""
    suite = tuple(suite_by_name(name) for name in SUITE_NAMES)
    validator = Validator(suite, runner=SuiteRunner(seed=9))
    validator.learn_criteria(fleet.nodes[:6])
    path = tmp_path_factory.mktemp("criteria") / "criteria.json"
    save_criteria(validator, path)
    return path


def builder_args(criteria_path) -> dict:
    return {"fleet_size": FLEET_SIZE, "fleet_seed": FLEET_SEED,
            "suite": SUITE_NAMES, "runner_seed": 9,
            "criteria_path": str(criteria_path), "pool": POOL}


def make_fabric(root, criteria_path, *, chaos=None, shards=SHARDS,
                **kwargs) -> ProcessFabric:
    kwargs.setdefault("status_deadline_seconds", 30.0)
    kwargs.setdefault("tick_deadline_seconds", 60.0)
    kwargs.setdefault("spawn_deadline_seconds", 120.0)
    return ProcessFabric(
        builder="repro.service.procfabric:default_builder",
        builder_args=builder_args(criteria_path),
        journal_root=root,
        config=SupervisorConfig(shard_count=shards),
        chaos=chaos, **kwargs)


def make_events(fleet, count, *, width=2, seed=0):
    """``count`` events over distinct node sets, so no two coalesce
    and per-event accounting is exact."""
    rng = np.random.default_rng(seed)
    events = []
    for _ in range(count):
        picks = rng.choice(FLEET_SIZE, size=width, replace=False)
        members = tuple(fleet.nodes[int(p)] for p in picks)
        statuses = tuple(NodeStatus(node_id=n.node_id,
                                    covariates=np.zeros(3))
                         for n in members)
        events.append(ValidationEvent(kind=EventKind.JOB_ALLOCATION,
                                      nodes=members, statuses=statuses,
                                      duration_hours=24.0 + len(events)))
    # Distinct (kind, node-set) keys are what make "exactly once"
    # checkable; a duplicate key would legitimately coalesce.
    keys = [frozenset(n.node_id for n in e.nodes) for e in events]
    assert len(set(keys)) == len(keys)
    return events


def expected_parts(events, *, shards=SHARDS):
    """The (shard, node-set) parts a healthy fabric would create."""
    ring = HashRing(shards, virtual_nodes=SupervisorConfig().virtual_nodes)
    parts = set()
    for event in events:
        groups = {}
        for node in event.nodes:
            groups.setdefault(ring.owner(node.node_id), []).append(
                node.node_id)
        for index, ids in groups.items():
            parts.add((index, frozenset(ids)))
    return parts


def journal_accounting(root, *, shards=SHARDS):
    """Reduce every shard journal to enqueue/complete/origin facts."""
    facts = {"parts": set(), "origins": [], "completed": {},
             "enqueued": {}, "restarts": 0, "sealed": {}}
    for index in range(shards):
        directory = Path(root) / f"shard-{index:02d}"
        records = list(JournalStore(directory).replay())
        enq, done = {}, set()
        last_kind = None
        for record in records:
            last_kind = record.kind
            if record.kind == RecordKind.EVENT_ENQUEUED:
                nodes = frozenset(record.payload["event"]["nodes"])
                enq[int(record.payload["event_id"])] = nodes
                facts["parts"].add((index, nodes))
                origin = record.payload.get("origin")
                if origin is not None:
                    facts["origins"].append(tuple(origin))
            elif record.kind == RecordKind.EVENT_COMPLETED:
                done.add(int(record.payload["event_id"]))
            elif record.kind == RecordKind.PROC_RESTART:
                facts["restarts"] += 1
        facts["enqueued"][index] = enq
        facts["completed"][index] = done
        facts["sealed"][index] = last_kind == RecordKind.FABRIC_DRAIN
    return facts


def assert_exactly_once(root, events, *, shards=SHARDS):
    facts = journal_accounting(root, shards=shards)
    # Every expected part enqueued in exactly its owner's journal, and
    # nothing else: no losses, no cross-shard duplicates.
    assert facts["parts"] == expected_parts(events, shards=shards)
    # Every enqueued event completed, every completion has an enqueue.
    for index in range(shards):
        assert set(facts["enqueued"][index]) == facts["completed"][index]
    # Each delivery origin accepted at most once across the fabric.
    assert len(facts["origins"]) == len(set(facts["origins"]))
    assert all(origin[0] == PARENT_ORIGIN for origin in facts["origins"])
    return facts


class TestProcessFabricBasics:
    def test_submit_drain_shutdown_exactly_once(self, tmp_path, fleet,
                                                criteria_path):
        events = make_events(fleet, 4, seed=1)
        fabric = make_fabric(tmp_path / "j", criteria_path)
        try:
            for event in events:
                fabric.submit(event)
            results = fabric.drain(max_ticks=300)
            assert len(results) == len(expected_parts(events))
        finally:
            sealed = fabric.shutdown()
        assert all(sealed.values())
        facts = assert_exactly_once(tmp_path / "j", events)
        # Graceful shutdown leaves every journal sealed with the
        # fabric-drain marker as its final record.
        assert all(facts["sealed"].values())
        assert fabric.metrics.worker_spawns == SHARDS
        assert fabric.metrics.worker_deaths == 0

    def test_shutdown_is_idempotent(self, tmp_path, criteria_path):
        fabric = make_fabric(tmp_path / "j", criteria_path)
        first = fabric.shutdown()
        assert all(first.values())
        assert fabric.shutdown() == {}

    def test_summary_reports_live_workers(self, tmp_path, criteria_path):
        fabric = make_fabric(tmp_path / "j", criteria_path)
        try:
            summary = fabric.summary()
            assert summary["worker_spawns"] == SHARDS
            for entry in summary["shards"].values():
                assert entry["state"] == "running"
                assert entry["pid"] is not None
                assert entry["queue_depth"] == 0
        finally:
            fabric.shutdown()


class TestExternalSigkill:
    """A kill the worker does NOT inject itself: the test SIGKILLs a
    live child PID mid-run, exactly as an OOM killer would."""

    def test_killed_worker_restarts_without_loss(self, tmp_path, fleet,
                                                 criteria_path):
        events = make_events(fleet, 5, seed=2)
        fabric = make_fabric(tmp_path / "j", criteria_path)
        try:
            for event in events:
                fabric.submit(event)
            victim = fabric.workers[0]
            os.kill(victim.proc.pid, signal.SIGKILL)
            results = fabric.drain(max_ticks=300)
            assert len(results) == len(expected_parts(events))
            assert fabric.metrics.worker_deaths == 1
            assert fabric.metrics.worker_restarts == 1
            assert victim.incarnation == 1
            assert victim.state is ShardState.RUNNING
        finally:
            fabric.shutdown()
        facts = assert_exactly_once(tmp_path / "j", events)
        assert facts["restarts"] == 1


class TestDegradeWithLostAck:
    """Regression: a part durably journaled by a shard whose delivery
    ACK was lost must fail over under its ORIGINAL parent origin when
    the shard degrades.  The bug was two deliveries to the sibling --
    one from the failover under ``(shard, event_id)``, one from the
    undelivered-retry path under ``(-1, n)`` -- whose differing
    origins defeated the worker's dedupe."""

    def test_parked_delivery_not_duplicated_on_degrade(
            self, tmp_path, fleet, criteria_path):
        root = tmp_path / "j"
        fabric = make_fabric(root, criteria_path)
        try:
            groups = {}
            for node in fleet.nodes:
                groups.setdefault(fabric.route(node.node_id),
                                  []).append(node)
            victim, members = max(groups.items(),
                                  key=lambda kv: len(kv[1]))
            nodes = tuple(members[:2])
            statuses = tuple(NodeStatus(node_id=n.node_id,
                                        covariates=np.zeros(3))
                             for n in nodes)
            event = ValidationEvent(kind=EventKind.JOB_ALLOCATION,
                                    nodes=nodes, statuses=statuses,
                                    duration_hours=24.0)
            replies = fabric.submit(event)
            assert replies[victim]["ok"]
            # Simulate the lost ACK: the part sits in the victim's
            # journal, but the parent still believes it undelivered.
            origin = (PARENT_ORIGIN, fabric._origin_seq)
            fabric._undelivered[origin] = {"target": victim,
                                           "event": event.to_payload()}
            handle = fabric.workers[victim]
            handle.restarts = fabric.config.max_shard_restarts
            os.kill(handle.proc.pid, signal.SIGKILL)
            results = fabric.drain(max_ticks=300)
            assert handle.state is ShardState.DEGRADED
            assert origin not in fabric._undelivered
            assert fabric.metrics.events_failed_over == 1
            assert len(results) == 1
        finally:
            fabric.shutdown()
        sibling = next(i for i in range(SHARDS) if i != victim)
        records = list(JournalStore(Path(root) / f"shard-{sibling:02d}")
                       .replay())
        part = frozenset(n.node_id for n in nodes)
        enqueues = [r for r in records
                    if r.kind == RecordKind.EVENT_ENQUEUED
                    and frozenset(r.payload["event"]["nodes"]) == part]
        assert len(enqueues) == 1
        assert tuple(enqueues[0].payload["origin"]) == origin
        # The retry path must not have delivered a second copy: a
        # duplicate while the first is still queued shows up as a
        # coalesce rather than a second enqueue.
        assert not [r for r in records
                    if r.kind == RecordKind.EVENT_COALESCED]
        handoffs = [r for r in JournalStore(
                        Path(root) / f"shard-{victim:02d}").replay()
                    if r.kind == RecordKind.SHARD_HANDOFF]
        assert len(handoffs) == 1
        assert tuple(handoffs[0].payload["origin"]) == origin


def run_kill_prefix(root, fleet, criteria_path, cut: int, shard: int):
    """One fabric run where ``shard`` SIGKILLs itself before its
    journal append number ``cut``."""
    events = make_events(fleet, 4, seed=3)
    plan = ProcessChaosPlan(seed=7, target_shards=(shard,),
                            kill_after_appends=cut - 1)
    fabric = make_fabric(root, criteria_path, chaos=plan)
    try:
        for event in events:
            fabric.submit(event)
        results = fabric.drain(max_ticks=300)
        assert len(results) == len(expected_parts(events))
    finally:
        fabric.shutdown()
    facts = assert_exactly_once(root, events)
    return fabric, facts


def baseline_appends(tmp_path, fleet, criteria_path, shard: int) -> int:
    """Journal length of ``shard`` after one healthy run -- the space
    of possible kill points."""
    events = make_events(fleet, 4, seed=3)
    fabric = make_fabric(tmp_path / "baseline", criteria_path)
    try:
        for event in events:
            fabric.submit(event)
        fabric.drain(max_ticks=300)
    finally:
        fabric.shutdown()
    store = JournalStore(Path(tmp_path / "baseline")
                         / f"shard-{shard:02d}")
    return len(list(store.replay()))


class TestKillNineAtSampledPrefixes:
    """Tier-1 sampling of the every-prefix property: SIGKILL the child
    before journal appends spread across the run.  The exhaustive
    sweep is the soak twin below."""

    def test_sampled_prefix_kills_lose_nothing(self, tmp_path, fleet,
                                               criteria_path):
        total = baseline_appends(tmp_path, fleet, criteria_path, 0)
        assert total >= 4
        cuts = sorted({1, 2, total // 2, total})
        for cut in cuts:
            fabric, facts = run_kill_prefix(
                tmp_path / f"cut-{cut:03d}", fleet, criteria_path,
                cut, shard=0)
            # A kill during the run is observed as a worker death and
            # drives a journaled restart; a kill landing on the very
            # last append (the shutdown seal itself) kills a worker
            # the supervisor is done with -- the only trace is the
            # missing drain marker, and no event was at risk.
            killed_mid_run = fabric.metrics.worker_deaths >= 1
            killed_at_seal = not facts["sealed"][0]
            assert killed_mid_run or killed_at_seal, f"cut {cut}"
            if killed_mid_run:
                assert facts["restarts"] >= 1, f"cut {cut}"


@pytest.mark.soak
class TestKillNineAtEveryPrefixSoak:
    def test_every_prefix_both_shards(self, tmp_path, fleet,
                                      criteria_path):
        for shard in range(SHARDS):
            total = baseline_appends(tmp_path / f"s{shard}", fleet,
                                     criteria_path, shard)
            for cut in range(1, total + 1):
                run_kill_prefix(
                    tmp_path / f"s{shard}" / f"cut-{cut:03d}",
                    fleet, criteria_path, cut, shard=shard)


class TestSigstopHang:
    def test_frozen_worker_trips_deadline_and_restarts(self, tmp_path,
                                                       fleet,
                                                       criteria_path):
        events = make_events(fleet, 4, seed=4)
        plan = ProcessChaosPlan(seed=5, target_shards=(0,),
                                stop_before_ticks=1)
        fabric = make_fabric(tmp_path / "j", criteria_path, chaos=plan,
                             status_deadline_seconds=20.0,
                             tick_deadline_seconds=5.0)
        try:
            for event in events:
                fabric.submit(event)
            results = fabric.drain(max_ticks=300)
            assert len(results) == len(expected_parts(events))
            # The freeze is invisible to PID liveness; only the RPC
            # deadline can have caught it.
            assert fabric.metrics.rpc_timeouts >= 1
            assert fabric.metrics.worker_deaths >= 1
            assert fabric.metrics.worker_restarts >= 1
        finally:
            fabric.shutdown()
        assert_exactly_once(tmp_path / "j", events)


@pytest.mark.soak
class TestProcessChaosStormSoak:
    """Mixed probabilistic SIGKILL/SIGSTOP storm; accounting must
    still balance, shard by shard, whatever fired."""

    def test_storm_accounting_balances(self, tmp_path, fleet,
                                       criteria_path):
        events = make_events(fleet, 10, seed=6)
        plan = ProcessChaosPlan(seed=13, kill_rate=0.02, stop_rate=0.01)
        fabric = make_fabric(tmp_path / "j", criteria_path, chaos=plan,
                             tick_deadline_seconds=10.0)
        try:
            for event in events:
                fabric.submit(event)
            fabric.drain(max_ticks=2000)
        finally:
            fabric.shutdown()
        facts = journal_accounting(tmp_path / "j")
        for index in range(SHARDS):
            assert set(facts["enqueued"][index]) == facts[
                "completed"][index]
        assert len(facts["origins"]) == len(set(facts["origins"]))


def wait_for(predicate, *, timeout=180.0, interval=0.25):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def journal_has_enqueue(path: Path) -> bool:
    if not path.exists():
        return False
    try:
        text = path.read_text()
    except OSError:
        return False
    return '"kind": "event-enqueued"' in text


def last_kind(directory: Path) -> str | None:
    records = list(JournalStore(directory).replay())
    return records[-1].kind if records else None


def spawn_serve(tmp_path, *extra):
    env = os.environ.copy()
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    argv = [sys.executable, "-m", "repro", "serve", "--nodes", "8",
            "--events", "300", "--learn-on", "3", "--workers", "2",
            "--seed", "1", *extra]
    return subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)


class TestServeGracefulDrain:
    """Satellite: SIGTERM against a live ``repro serve`` must drain,
    seal and fsync the journal, and exit 0 -- in both modes."""

    def test_sigterm_seals_thread_serve(self, tmp_path):
        journal = tmp_path / "journal"
        proc = spawn_serve(tmp_path, "--journal", str(journal))
        try:
            # The enqueue loop runs strictly after the drain handlers
            # are installed, so one enqueued record means SIGTERM now
            # lands in the graceful path (the kill-during-drain case).
            assert wait_for(lambda: journal_has_enqueue(
                journal / "journal.jsonl")), "serve never started enqueuing"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "journal sealed" in out
        records = list(JournalStore(journal).replay())
        assert records[-1].kind == RecordKind.FABRIC_DRAIN
        assert records[-1].payload["reason"] == f"signal-{signal.SIGTERM}"

    def test_sigterm_drains_process_serve(self, tmp_path):
        journal = tmp_path / "journal"
        proc = spawn_serve(tmp_path, "--journal", str(journal),
                           "--processes", "--shards", "2")
        try:
            assert wait_for(
                lambda: any(journal_has_enqueue(
                    journal / f"shard-{i:02d}" / "journal.jsonl")
                    for i in range(2)),
                timeout=240.0), "workers never started enqueuing"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=240)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "drained" in out
        for index in range(2):
            directory = journal / f"shard-{index:02d}"
            assert last_kind(directory) == RecordKind.FABRIC_DRAIN, (
                f"shard {index} journal not sealed:\n{out}")
        # No orphaned workers: every child was reaped by the parent.
        remaining = subprocess.run(
            ["pgrep", "-f", "repro.service.procfabric"],
            capture_output=True, text=True)
        assert remaining.returncode != 0, remaining.stdout
