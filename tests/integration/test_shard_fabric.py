"""Integration: the supervised shard fabric under faults.

The acceptance bars for the failure-domain layer, mirroring the
single-service chaos suite one level up:

* **routing + isolation** -- events split along consistent-hash
  ownership, each part processed by its owning shard's own control
  plane over its own journal;
* **backpressure** -- a bounded queue sheds the lowest-risk entries,
  journaled as ``load-shed`` and exact across restart;
* **supervision** -- a hung shard trips the watchdog, restarts with
  backoff, and escalates to DEGRADED with journaled handoff of its
  pending work to live siblings;
* **handoff exactly-once** -- a simulated process kill at *every*
  append prefix of the failover sequence (including between the
  handoff record and the sibling's enqueue record) recovers to the
  event pending exactly once fleet-wide: neither dropped nor
  duplicated;
* **blast radius (soak)** -- seeded shard-level chaos aimed at one
  shard restarts/degrades only that shard while sibling shards stay
  clean, and every accepted event is accounted for.
"""

from collections import Counter

import pytest

from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import suite_by_name
from repro.core.selector import NodeStatus, Selector
from repro.core.system import Anubis, EventKind, ValidationEvent
from repro.core.validator import Validator
from repro.hardware.fleet import build_fleet
from repro.service import (
    JournalStore,
    NodeState,
    PoolConfig,
    ServiceConfig,
    ShardChaosPlan,
    ShardState,
    ShardSupervisor,
    SimulatedKill,
    SupervisorConfig,
    ValidationService,
    install_shard_chaos,
)
from repro.simulation import analytic_coverage_table, suite_durations
from repro.simulation.generator import generate_incident_trace
from repro.survival import extract_status_samples
from repro.survival.exponential import ExponentialModel

SUITE = (suite_by_name("ib-loopback"), suite_by_name("mem-bw"))
FAST_POOL = PoolConfig(max_workers=4, benchmark_timeout_seconds=2.0,
                       max_attempts=1, backoff_base_seconds=0.0,
                       poll_interval_seconds=0.005)


@pytest.fixture(scope="module")
def fleet():
    return build_fleet(12, seed=5)


@pytest.fixture(scope="module")
def risk_model():
    trace = generate_incident_trace(50, 800.0, seed=11)
    dataset = extract_status_samples(trace)
    return ExponentialModel().fit(dataset), dataset


def make_factory(fleet, risk_model):
    model, _dataset = risk_model

    def factory():
        validator = Validator(SUITE, runner=SuiteRunner(seed=9))
        validator.learn_criteria(fleet.nodes[:6])
        selector = Selector(model, analytic_coverage_table(SUITE),
                            suite_durations(SUITE), p0=0.05)
        return Anubis(validator, selector)

    return factory


def build_supervisor(fleet, risk_model, journal_root, *, shards=3,
                     max_queue_depth=None, **overrides):
    config = SupervisorConfig(
        shard_count=shards,
        service=ServiceConfig(pool=FAST_POOL,
                              max_queue_depth=max_queue_depth),
        **overrides)
    return ShardSupervisor(make_factory(fleet, risk_model), fleet.nodes,
                           journal_root=journal_root, config=config)


def make_event(fleet, dataset, node_indices, kind, duration=24.0):
    nodes = tuple(fleet.nodes[i] for i in node_indices)
    statuses = tuple(
        NodeStatus(node_id=node.node_id,
                   covariates=dataset.covariates[i % len(dataset)])
        for i, node in enumerate(nodes))
    return ValidationEvent(kind=kind, nodes=nodes, statuses=statuses,
                           duration_hours=duration)


def owned_indices(supervisor, fleet, shard_index):
    """Fleet indexes of the nodes one shard owns."""
    owned = supervisor.shards[shard_index].node_ids
    return [i for i, node in enumerate(fleet.nodes)
            if node.node_id in owned]


def pending_keys(supervisor) -> Counter:
    """(kind, node set) multiset of every pending entry fleet-wide."""
    keys: Counter = Counter()
    for shard in supervisor.shards:
        for entry in shard.service.queue.pending():
            keys[(entry.event.kind.value,
                  tuple(sorted(n.node_id for n in entry.event.nodes)))] += 1
    return keys


def event_key(event) -> tuple:
    return (event.kind.value,
            tuple(sorted(n.node_id for n in event.nodes)))


class TestFabricRouting:
    def test_submit_splits_along_ownership_and_drains(self, fleet,
                                                      risk_model, tmp_path):
        _model, dataset = risk_model
        supervisor = build_supervisor(fleet, risk_model, tmp_path / "fabric")
        event = make_event(fleet, dataset, list(range(12)),
                           EventKind.INCIDENT_REPORTED)
        accepted = supervisor.submit(event)
        # Every part's nodes sit inside the accepting shard's domain.
        assert len(accepted) >= 2  # 12 nodes over 3 shards must split
        for index, entry in accepted.items():
            part_nodes = {n.node_id for n in entry.event.nodes}
            assert part_nodes <= supervisor.shards[index].node_ids
        covered = {n.node_id for entry in accepted.values()
                   for n in entry.event.nodes}
        assert covered == {n.node_id for n in fleet.nodes}

        supervisor.drain()
        assert supervisor.quiescent()
        processed = sum(s.service.metrics.events_processed
                        for s in supervisor.shards)
        assert processed == len(accepted)
        for shard in supervisor.shards:
            assert shard.state is ShardState.RUNNING
            assert shard.restarts == 0
        assert supervisor.metrics.watchdog_trips == 0

    def test_each_shard_owns_a_separate_journal(self, fleet, risk_model,
                                                tmp_path):
        root = tmp_path / "journals"
        supervisor = build_supervisor(fleet, risk_model, root)
        dirs = sorted(p.name for p in root.iterdir())
        assert dirs == ["shard-00", "shard-01", "shard-02"]
        for shard in supervisor.shards:
            assert shard.service.store is not None
            assert shard.service.store.directory == root / f"shard-{shard.index:02d}"

    def test_route_falls_through_degraded_shard(self, fleet, risk_model,
                                                tmp_path):
        supervisor = build_supervisor(fleet, risk_model, tmp_path / "route")
        victim = supervisor.shards[0]
        node_id = sorted(victim.node_ids)[0]
        assert supervisor.route(node_id) == 0
        victim.state = ShardState.DEGRADED
        rerouted = supervisor.route(node_id)
        assert rerouted in (1, 2)
        # Nodes the siblings already owned do not move.
        for sibling in supervisor.shards[1:]:
            for owned in sibling.node_ids:
                assert supervisor.route(owned) == sibling.index


class TestLoadShedding:
    def build_service(self, fleet, risk_model, journal_dir, *, depth):
        factory = make_factory(fleet, risk_model)
        return ValidationService(
            factory(), fleet.nodes, journal_dir=journal_dir,
            config=ServiceConfig(pool=FAST_POOL, max_queue_depth=depth))

    def test_overload_sheds_journaled_and_releases_nodes(self, fleet,
                                                         risk_model,
                                                         tmp_path):
        _model, dataset = risk_model
        journal = tmp_path / "shed"
        service = self.build_service(fleet, risk_model, journal, depth=2)
        for index in range(4):
            service.submit(make_event(fleet, dataset, [index],
                                      EventKind.JOB_ALLOCATION))
        assert len(service.queue) == 2
        assert service.metrics.events_shed == 2

        records = JournalStore(journal).replay()
        shed = [r for r in records if r.kind == "load-shed"]
        assert len(shed) == 2
        assert all(r.payload["reason"] == "queue-full" for r in shed)

        # A shed entry's nodes go back to HEALTHY -- shedding must not
        # leave nodes parked in SCHEDULED with nothing pending for them.
        scheduled = set(service.lifecycle.nodes_in(NodeState.SCHEDULED))
        covered = {n.node_id for e in service.queue.pending()
                   for n in e.event.nodes}
        assert scheduled <= covered

        service.drain()
        assert service.metrics.events_processed == 2

    def test_shed_state_is_exact_across_restart(self, fleet, risk_model,
                                                tmp_path):
        _model, dataset = risk_model
        journal = tmp_path / "shed-restart"
        service = self.build_service(fleet, risk_model, journal, depth=2)
        for index in range(5):
            service.submit(make_event(fleet, dataset, [index],
                                      EventKind.JOB_ALLOCATION))
        pending_before = sorted(e.event_id for e in service.queue.pending())

        factory = make_factory(fleet, risk_model)
        recovered = ValidationService(
            factory(), fleet.nodes, journal_dir=journal,
            config=ServiceConfig(pool=FAST_POOL, max_queue_depth=2))
        assert recovered.metrics.events_shed == 3
        assert (sorted(e.event_id for e in recovered.queue.pending())
                == pending_before)
        recovered.drain()
        assert len(recovered.queue) == 0


class TestWatchdogAndRestart:
    def test_hung_shard_trips_watchdog_and_restarts(self, fleet, risk_model,
                                                    tmp_path):
        _model, dataset = risk_model
        supervisor = build_supervisor(
            fleet, risk_model, tmp_path / "watchdog", shards=2,
            watchdog_stall_ticks=2, restart_backoff_base_ticks=1)
        indices = owned_indices(supervisor, fleet, 0)
        supervisor.submit(make_event(fleet, dataset, indices[:1],
                                     EventKind.INCIDENT_REPORTED))

        supervisor.tick_filter = lambda shard: shard.index != 0
        for _ in range(10):
            supervisor.tick()
            if supervisor.shards[0].state is ShardState.RESTARTING:
                break
        shard = supervisor.shards[0]
        assert shard.state is ShardState.RESTARTING
        assert supervisor.metrics.watchdog_trips == 1
        # Restart scheduled within the backoff bound for restart #1.
        bound = supervisor.config.backoff_ticks(shard.restarts)
        assert shard.restart_due_tick <= supervisor.tick_index + bound

        supervisor.tick_filter = None
        supervisor.drain()
        assert shard.state is ShardState.RUNNING
        assert supervisor.metrics.shard_restarts == 1
        assert shard.service.metrics.events_processed == 1
        # Blast radius: the sibling never restarted.
        assert supervisor.shards[1].restarts == 0

    def test_waiting_shard_is_not_blamed_as_stalled(self, fleet, risk_model,
                                                    tmp_path):
        """A shard that merely loses the cross-shard priority race has
        flat progress but must not trip the watchdog."""
        _model, dataset = risk_model
        supervisor = build_supervisor(fleet, risk_model, tmp_path / "fair",
                                      shards=3, watchdog_stall_ticks=2)
        for shard_index in range(3):
            indices = owned_indices(supervisor, fleet, shard_index)
            for i in indices:
                supervisor.submit(make_event(fleet, dataset, [i],
                                             EventKind.INCIDENT_REPORTED))
        supervisor.drain()
        assert supervisor.metrics.watchdog_trips == 0
        assert supervisor.metrics.shard_restarts == 0


class TestDegradationAndFailover:
    def test_repeatedly_hung_shard_degrades_and_hands_off(self, fleet,
                                                          risk_model,
                                                          tmp_path):
        _model, dataset = risk_model
        root = tmp_path / "degrade"
        supervisor = build_supervisor(
            fleet, risk_model, root, shards=3, watchdog_stall_ticks=1,
            restart_backoff_base_ticks=1, max_shard_restarts=1)
        indices = owned_indices(supervisor, fleet, 0)
        event = make_event(fleet, dataset, indices[:1],
                           EventKind.INCIDENT_REPORTED)
        supervisor.submit(event)

        supervisor.tick_filter = lambda shard: shard.index != 0
        for _ in range(20):
            supervisor.tick()
            if supervisor.shards[0].state is ShardState.DEGRADED:
                break
        shard = supervisor.shards[0]
        assert shard.state is ShardState.DEGRADED
        assert supervisor.metrics.shards_degraded == 1
        assert supervisor.metrics.events_failed_over == 1

        # The handoff is durable on both sides: a shard-handoff record
        # in the source journal, an origin-marked enqueue in a sibling.
        source = JournalStore(root / "shard-00").replay()
        handoffs = [r for r in source if r.kind == "shard-handoff"]
        assert len(handoffs) == 1
        target_index = handoffs[0].payload["to_shard"]
        assert target_index in (1, 2)
        target = JournalStore(root / f"shard-{target_index:02d}").replay()
        origins = [r.payload.get("origin") for r in target
                   if r.kind == "event-enqueued"
                   and r.payload.get("origin") is not None]
        assert origins == [[0, handoffs[0].payload["event_id"]]]

        supervisor.tick_filter = None
        supervisor.drain()
        # The sibling completed the degraded shard's work.
        assert (supervisor.shards[target_index]
                .service.metrics.events_processed >= 1)
        for sibling in supervisor.shards[1:]:
            assert sibling.restarts == 0
        # New work for the degraded shard's nodes routes around it.
        resubmitted = supervisor.submit(event)
        assert 0 not in resubmitted
        supervisor.drain()


class _PrefixKiller:
    """Journal wrapper killing the whole process after N more appends.

    The budget list is shared across every shard's wrapper so the cut
    point sweeps the *global* append sequence of the failover -- the
    handoff record in the source journal and the enqueue/transition
    records in the target journal are all candidate kill points.
    """

    def __init__(self, store, budget: list):
        self._store = store
        self._budget = budget

    def append(self, kind, payload, fsync=None):
        if self._budget[0] <= 0:
            raise SimulatedKill("prefix kill before journal append")
        self._budget[0] -= 1
        return self._store.append(kind, payload, fsync=fsync)

    def __getattr__(self, name):
        return getattr(self._store, name)


class TestCrossShardHandoffKillAtEveryPrefix:
    """Satellite 4: kill the process at every append prefix of a
    degradation failover -- including between the handoff record and
    the sibling's enqueue record -- and demand recovery to the events
    pending exactly once fleet-wide (no drop, no duplicate)."""

    def _run_failover(self, fleet, risk_model, root, *, budget):
        """Submit two shard-0 events, then degrade shard 0 with every
        journal wrapped by a shared-budget killer.  Returns the events
        and whether the kill fired."""
        _model, dataset = risk_model
        supervisor = build_supervisor(
            fleet, risk_model, root, shards=3, max_shard_restarts=1)
        indices = owned_indices(supervisor, fleet, 0)
        assert len(indices) >= 2, "fixture fleet must give shard 0 two nodes"
        events = [make_event(fleet, dataset, [indices[0]],
                             EventKind.INCIDENT_REPORTED),
                  make_event(fleet, dataset, [indices[1]],
                             EventKind.INCIDENT_REPORTED)]
        for event in events:
            supervisor.submit(event)
        for shard in supervisor.shards:
            shard.service.store = _PrefixKiller(shard.service.store, budget)
        shard0 = supervisor.shards[0]
        shard0.restarts = supervisor.config.max_shard_restarts
        killed = False
        try:
            supervisor._declare_unhealthy(shard0, reason="induced")
        except SimulatedKill:
            killed = True
        return events, killed

    def _assert_exactly_once(self, fleet, risk_model, root, events, cut):
        recovered = build_supervisor(fleet, risk_model, root, shards=3)
        keys = pending_keys(recovered)
        for event in events:
            assert keys[event_key(event)] == 1, \
                f"cut={cut}: event not pending exactly once: {keys}"
        recovered.drain()
        assert recovered.quiescent()

        # Journal-level exactly-once: each event completed once across
        # the whole fabric, and no origin was enqueued twice.
        completions: Counter = Counter()
        origins: Counter = Counter()
        for index in range(3):
            for record in JournalStore(root / f"shard-{index:02d}").replay():
                if record.kind == "event-completed":
                    completions[tuple(sorted(
                        record.payload["validated_nodes"]))] += 1
                elif (record.kind == "event-enqueued"
                      and record.payload.get("origin") is not None):
                    origins[tuple(record.payload["origin"])] += 1
        for event in events:
            nodes = tuple(sorted(n.node_id for n in event.nodes))
            assert completions[nodes] == 1, f"cut={cut}"
        assert all(count == 1 for count in origins.values()), f"cut={cut}"

    def test_kill_at_every_failover_prefix(self, fleet, risk_model,
                                           tmp_path):
        # Uninterrupted baseline counts the failover's appends.
        budget = [10_000]
        events, killed = self._run_failover(
            fleet, risk_model, tmp_path / "baseline", budget=budget)
        assert not killed
        total_appends = 10_000 - budget[0]
        assert total_appends >= 4  # 2x handoff + 2x delivery at minimum
        self._assert_exactly_once(fleet, risk_model, tmp_path / "baseline",
                                  events, cut="baseline")

        for cut in range(total_appends):
            root = tmp_path / f"kill-{cut}"
            events, killed = self._run_failover(fleet, risk_model, root,
                                                budget=[cut])
            assert killed, f"cut={cut} never reached append {cut + 1}"
            self._assert_exactly_once(fleet, risk_model, root, events, cut)

    def test_handoff_journaled_but_undelivered_is_reconciled(self, fleet,
                                                             risk_model,
                                                             tmp_path):
        """The narrowest window, pinned explicitly: the handoff record
        is durable but the process dies before the sibling's enqueue.
        Startup reconciliation must re-deliver exactly once."""
        _model, dataset = risk_model
        root = tmp_path / "window"
        supervisor = build_supervisor(fleet, risk_model, root, shards=3)
        index = owned_indices(supervisor, fleet, 0)[0]
        event = make_event(fleet, dataset, [index],
                           EventKind.INCIDENT_REPORTED)
        supervisor.submit(event)
        shard0 = supervisor.shards[0]
        entry = shard0.service.queue.pop()
        shard0.service.record_handoff(entry, to_shard=1)
        # "Kill": the delivery never happens; a fresh supervisor over
        # the same journals reconciles at startup.
        recovered = build_supervisor(fleet, risk_model, root, shards=3)
        assert recovered.metrics.handoffs_reconciled == 1
        keys = pending_keys(recovered)
        assert keys[event_key(event)] == 1
        pending = recovered.shards[1].service.queue.pending()
        assert [e.origin for e in pending] == [(0, entry.event_id)]
        recovered.drain()

        # And a second recovery does NOT deliver it again.
        twin = build_supervisor(fleet, risk_model, root, shards=3)
        assert twin.metrics.handoffs_reconciled == 0
        assert pending_keys(twin)[event_key(event)] == 0


SOAK_SEED = 2203


@pytest.mark.soak
class TestShardChaosSoak:
    """Fleet-scale blast-radius containment under seeded shard chaos."""

    def test_blast_radius_containment(self, fleet, risk_model, tmp_path):
        _model, dataset = risk_model
        root = tmp_path / "soak"
        supervisor = build_supervisor(
            fleet, risk_model, root, shards=3, watchdog_stall_ticks=2,
            restart_backoff_base_ticks=1, max_shard_restarts=2,
            max_queue_depth=8)
        monkey = install_shard_chaos(supervisor, ShardChaosPlan(
            seed=SOAK_SEED,
            target_shards=frozenset({0}),
            crash_rate=0.25,
            hang_rate=0.10,
            heartbeat_loss_rate=0.10,
            journal_error_rate=0.03,
            journal_corrupt_rate=0.05,
        ))

        import numpy as np

        from repro.exceptions import ServiceError
        rng = np.random.default_rng(SOAK_SEED)
        submitted = 0
        rejected = 0
        for step in range(120):
            count = int(rng.integers(1, 4))
            indices = rng.choice(12, size=count, replace=False)
            event = make_event(fleet, dataset, [int(i) for i in indices],
                               EventKind.INCIDENT_REPORTED)
            try:
                supervisor.submit(event)
                submitted += 1
            except ServiceError:
                rejected += 1  # journal fault rejected the enqueue
            supervisor.tick()
        assert sum(monkey.injections.values()) > 0, "chaos never fired"
        assert supervisor.metrics.shard_restarts >= 1

        # Containment while chaos was live: only the target shard was
        # ever restarted or degraded; siblings stayed clean.
        for sibling in supervisor.shards[1:]:
            assert sibling.restarts == 0
            assert sibling.state is ShardState.RUNNING
            assert sibling.service.dead_letters() == []

        monkey.uninstall()
        supervisor.tick_filter = None
        supervisor.heartbeat_filter = None
        supervisor.on_restart = None

        # Chaos-free rebuild over the same journals: every durably
        # accepted event must be recovered and finished -- nothing
        # silently lost to the faults.
        recovered = build_supervisor(
            fleet, risk_model, root, shards=3, watchdog_stall_ticks=2,
            restart_backoff_base_ticks=1, max_shard_restarts=2,
            max_queue_depth=8)
        recovered.drain()
        assert recovered.quiescent()
        for shard in recovered.shards:
            assert len(shard.service.queue) == 0

        # Journal accounting, per shard: every enqueued event id ends
        # completed, dead-lettered, shed or handed off.
        for index in range(3):
            reader_records = JournalStore(
                root / f"shard-{index:02d}").replay()
            enqueued = {r.payload["event_id"] for r in reader_records
                        if r.kind == "event-enqueued"}
            resolved = {r.payload["event_id"] for r in reader_records
                        if r.kind in ("event-completed",
                                      "event-dead-lettered", "load-shed",
                                      "shard-handoff")}
            assert enqueued <= resolved, f"shard {index} lost events"

        # Sibling journals were never corrupted (the corruption fault
        # was scoped to shard 0).
        from repro.analytics import JournalReader
        for index in (1, 2):
            reader = JournalReader(root / f"shard-{index:02d}")
            reader.read_all()
            assert reader.health()["corrupt_lines"] == 0

        # Every node converges back to HEALTHY.
        for shard in recovered.shards:
            for state in (NodeState.SCHEDULED, NodeState.VALIDATING,
                          NodeState.QUARANTINED, NodeState.IN_REPAIR,
                          NodeState.RETURNING):
                assert shard.service.lifecycle.nodes_in(state) == []
