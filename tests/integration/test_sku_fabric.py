"""Mixed-fleet chaos soak: shard handoff preserves SKU routing.

With :attr:`SupervisorConfig.sku_affinity` the shard fabric routes by
hardware class instead of node id -- one class per shard, so a class's
criteria namespace lives (and fails over) as a unit.  These soaks
prove the two halves of that contract on a 3-SKU fleet:

* **affinity** -- every node of one SKU routes to the same shard, and
  the assignment is stable across a supervisor rebuild over the same
  journal root (restart cannot silently re-shuffle classes);
* **handoff** -- when the shard owning one class degrades under
  chaos, the *whole class* fails over to the same live sibling, the
  sibling completes the work (it holds the full criteria namespace
  map), and no sibling shard is restarted or degraded in the process.
"""

from collections import Counter

import numpy as np
import pytest

from repro.benchsuite.runner import SuiteRunner
from repro.benchsuite.suite import suite_by_name
from repro.core.selector import NodeStatus, Selector
from repro.core.system import Anubis, EventKind, ValidationEvent
from repro.core.validator import Validator
from repro.hardware.fleet import build_fleet
from repro.service import (
    JournalStore,
    PoolConfig,
    ServiceConfig,
    ShardChaosPlan,
    ShardState,
    ShardSupervisor,
    SupervisorConfig,
    install_shard_chaos,
)
from repro.simulation import analytic_coverage_table, suite_durations
from repro.simulation.generator import generate_incident_trace
from repro.survival import extract_status_samples
from repro.survival.exponential import ExponentialModel

SUITE = (suite_by_name("ib-loopback"), suite_by_name("mem-bw"))
FAST_POOL = PoolConfig(max_workers=4, benchmark_timeout_seconds=2.0,
                       max_attempts=1, backoff_base_seconds=0.0,
                       poll_interval_seconds=0.005)
MIX = {"A100": 0.5, "H100": 0.25, "MI250X": 0.25}
SOAK_SEED = 4177


@pytest.fixture(scope="module")
def fleet():
    fleet = build_fleet(16, seed=2, sku_mix=MIX)
    # The soak needs every class present with enough nodes to learn
    # per-SKU criteria from.
    assert all(count >= 2 for count in fleet.sku_counts().values())
    return fleet


@pytest.fixture(scope="module")
def risk_model():
    trace = generate_incident_trace(50, 800.0, seed=13)
    dataset = extract_status_samples(trace)
    return ExponentialModel().fit(dataset), dataset


def make_factory(fleet, risk_model):
    model, _dataset = risk_model

    def factory():
        validator = Validator(SUITE, runner=SuiteRunner(seed=9))
        validator.learn_criteria(fleet.nodes)
        selector = Selector(model, analytic_coverage_table(SUITE),
                            suite_durations(SUITE), p0=0.05)
        return Anubis(validator, selector)

    return factory


def build_supervisor(fleet, risk_model, journal_root, **overrides):
    config = SupervisorConfig(
        shard_count=3, sku_affinity=True,
        service=ServiceConfig(pool=FAST_POOL),
        **overrides)
    return ShardSupervisor(make_factory(fleet, risk_model), fleet.nodes,
                           journal_root=journal_root, config=config)


def make_event(fleet, dataset, node_indices, duration=24.0):
    nodes = tuple(fleet.nodes[i] for i in node_indices)
    statuses = tuple(
        NodeStatus(node_id=node.node_id,
                   covariates=dataset.covariates[i % len(dataset)])
        for i, node in enumerate(nodes))
    return ValidationEvent(kind=EventKind.INCIDENT_REPORTED, nodes=nodes,
                           statuses=statuses, duration_hours=duration)


def routes_by_sku(supervisor, fleet) -> dict[str, set[int]]:
    """SKU -> the set of shards its nodes currently route to."""
    routes: dict[str, set[int]] = {}
    for node in fleet.nodes:
        routes.setdefault(node.sku, set()).add(
            supervisor.route(node.node_id))
    return routes


@pytest.mark.soak
class TestSkuAffinityRouting:
    def test_each_sku_routes_to_one_shard(self, fleet, risk_model,
                                          tmp_path):
        supervisor = build_supervisor(fleet, risk_model, tmp_path / "aff")
        routes = routes_by_sku(supervisor, fleet)
        assert set(routes) == set(fleet.sku_counts())
        for sku, shards in routes.items():
            assert len(shards) == 1, f"{sku} split across shards {shards}"

    def test_affinity_is_stable_across_rebuild(self, fleet, risk_model,
                                               tmp_path):
        root = tmp_path / "stable"
        first = routes_by_sku(
            build_supervisor(fleet, risk_model, root), fleet)
        second = routes_by_sku(
            build_supervisor(fleet, risk_model, root), fleet)
        assert first == second


@pytest.mark.soak
class TestSkuHandoffSoak:
    def test_handoff_preserves_sku_routing(self, fleet, risk_model,
                                           tmp_path):
        _model, dataset = risk_model
        root = tmp_path / "soak"
        supervisor = build_supervisor(
            fleet, risk_model, root, watchdog_stall_ticks=1,
            restart_backoff_base_ticks=1, max_shard_restarts=1)
        before = routes_by_sku(supervisor, fleet)
        # Aim the chaos at the shard owning H100 (crashes exhaust its
        # restart budget so the watchdog degrades it).
        (target_shard,) = before["H100"]
        monkey = install_shard_chaos(supervisor, ShardChaosPlan(
            seed=SOAK_SEED,
            target_shards=frozenset({target_shard}),
            crash_rate=0.30,
            hang_rate=0.15,
            heartbeat_loss_rate=0.10,
        ))

        h100_indices = [i for i, node in enumerate(fleet.nodes)
                        if node.sku == "H100"]
        rng = np.random.default_rng(SOAK_SEED)
        for _ in range(60):
            if supervisor.shards[target_shard].state is ShardState.DEGRADED:
                break
            index = int(rng.choice(h100_indices))
            supervisor.submit(make_event(fleet, dataset, [index]))
            supervisor.tick()
        assert sum(monkey.injections.values()) > 0, "chaos never fired"
        assert supervisor.shards[target_shard].state is ShardState.DEGRADED

        # The whole class failed over together: every H100 node now
        # routes to one and the same live sibling.
        after = routes_by_sku(supervisor, fleet)
        (fallback,) = after["H100"]
        assert fallback != target_shard
        assert supervisor.shards[fallback].state is ShardState.RUNNING
        # Classes on other shards never moved.  (The hash ring may
        # co-locate two classes on one shard; a co-located class
        # fails over with H100, which is the affinity contract --
        # classes move whole or not at all.)
        for sku in after:
            if before[sku] != {target_shard}:
                assert after[sku] == before[sku], f"{sku} was re-routed"
            else:
                assert len(after[sku]) == 1
                assert after[sku] != {target_shard}

        # Blast radius: no sibling restarted or degraded.
        for shard in supervisor.shards:
            if shard.index != target_shard:
                assert shard.restarts == 0
                assert shard.state is ShardState.RUNNING

        monkey.uninstall()
        supervisor.tick_filter = None
        supervisor.heartbeat_filter = None
        supervisor.on_restart = None
        supervisor.drain()

        # The sibling actually completed H100 work -- it holds the
        # H100 criteria namespace, so a handed-off event validates
        # instead of dying on missing criteria.
        assert (supervisor.shards[fallback]
                .service.metrics.events_processed >= 1)
        for shard in supervisor.shards:
            assert shard.service.dead_letters() == []

        # New H100 work routes straight to the sibling.
        resubmitted = supervisor.submit(
            make_event(fleet, dataset, h100_indices[:1]))
        assert list(resubmitted) == [fallback]
        supervisor.drain()

        # Journal accounting fleet-wide: every enqueued event ends
        # completed, shed, dead-lettered or handed off.
        totals: Counter = Counter()
        for index in range(3):
            for record in JournalStore(root / f"shard-{index:02d}").replay():
                totals[record.kind] += 1
        assert totals["event-enqueued"] >= 1
        resolved = (totals["event-completed"] + totals["load-shed"]
                    + totals["event-dead-lettered"] + totals["shard-handoff"])
        assert resolved >= totals["event-enqueued"]
