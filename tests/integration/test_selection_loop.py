"""Integration: the Selector/Validator event loop and the simulation's
headline ordering (miniature Figure 8 / Table 4)."""

import pytest

from repro.simulation.cluster import SimulationConfig
from repro.simulation.generator import generate_allocation_trace
from repro.simulation.metrics import run_policy_comparison


@pytest.fixture(scope="module")
def comparison():
    config = SimulationConfig(n_nodes=32, horizon_hours=480.0, seed=11)
    trace = generate_allocation_trace(480.0, jobs_per_hour=1.4,
                                      max_job_nodes=8,
                                      mean_duration_hours=18.0, seed=12)
    return run_policy_comparison(config, trace, p0=0.02)


class TestPolicyOrdering:
    def test_utilization_ordering(self, comparison):
        utilization = comparison.utilization_row()
        assert utilization["ideal"] > utilization["selector"]
        assert utilization["selector"] > utilization["full-set"]
        assert utilization["selector"] > utilization["absence"]

    def test_mtbi_ordering(self, comparison):
        results = comparison.results
        assert results["selector"].mtbi_hours > 5.0 * results["absence"].mtbi_hours
        assert results["full-set"].mtbi_hours > 5.0 * results["absence"].mtbi_hours

    def test_selector_saves_validation_time(self, comparison):
        results = comparison.results
        saving = 1.0 - (results["selector"].average_validation_hours
                        / results["full-set"].average_validation_hours)
        assert saving > 0.5

    def test_validation_reduces_incidents(self, comparison):
        results = comparison.results
        assert (results["selector"].average_incidents
                < 0.5 * results["absence"].average_incidents)

    def test_selector_actually_skips(self, comparison):
        selector = comparison.results["selector"]
        assert selector.validations_skipped > 0
        assert selector.validations_run > 0

    def test_table4_rows_well_formed(self, comparison):
        rows = comparison.table4_rows()
        names = [row[0] for row in rows]
        assert names == ["absence", "full-set", "selector"]
        absence_row = rows[0]
        assert absence_row[1] == 0.0  # no validation time


class TestSurvivalPipeline:
    def test_cox_time_beats_global_exponential(self):
        """Miniature Table 3: the covariate-aware model wins."""
        from repro.hardware.degradation import WearModel
        from repro.simulation.generator import generate_incident_trace
        from repro.survival.coxtime import CoxTimeModel
        from repro.survival.data import extract_status_samples
        from repro.survival.exponential import ExponentialModel
        from repro.survival.metrics import evaluate_model

        wear = WearModel(base_mtbi_hours=5000.0)
        trace = generate_incident_trace(150, 2400.0, wear=wear,
                                        frailty_sigma=1.4, gap_shape=3.0,
                                        seed=21)
        fit_ds = extract_status_samples(trace, snapshot_interval_hours=96.0)
        score_ds = extract_status_samples(trace, snapshot_interval_hours=96.0,
                                          censored_tbni="horizon")
        train, _ = fit_ds.split(0.8, seed=0)
        _, test = score_ds.split(0.8, seed=0)

        exponential = ExponentialModel().fit(train)
        cox = CoxTimeModel(hidden=(32, 32), epochs=30, n_controls=4,
                           learning_rate=0.01, seed=0).fit(train)
        acc_exp = evaluate_model(exponential, test, events_only=False)
        acc_cox = evaluate_model(cox, test, events_only=False)
        assert acc_cox > acc_exp + 0.02
