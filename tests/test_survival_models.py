"""Unit tests for the survival models (exponential baselines, Cox-Time)."""

import numpy as np
import pytest

from repro.exceptions import ModelNotFittedError
from repro.survival.base import SurvivalDataset
from repro.survival.coxtime import CoxTimeModel
from repro.survival.exponential import (
    ExponentialModel,
    ExponentialPerHour,
    ExponentialPerIncidentCount,
)


def exponential_dataset(rate=0.01, n=400, seed=0, feature_names=("up_time",
                                                                 "incident_count")):
    rng = np.random.default_rng(seed)
    durations = rng.exponential(1.0 / rate, size=n)
    covariates = np.column_stack([
        rng.uniform(0, 1000, n),
        rng.integers(0, 5, n).astype(float),
    ])
    return SurvivalDataset(covariates=covariates, durations=durations,
                           events=np.ones(n), feature_names=feature_names)


class TestSurvivalDataset:
    def test_misaligned_shapes_rejected(self):
        with pytest.raises(ValueError):
            SurvivalDataset(covariates=np.zeros((3, 2)), durations=[1.0, 2.0],
                            events=[1.0, 1.0])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            SurvivalDataset(covariates=np.zeros((1, 1)), durations=[-1.0],
                            events=[1.0])

    def test_split_is_partition(self):
        ds = exponential_dataset(n=100)
        train, test = ds.split(0.8, seed=1)
        assert len(train) == 80
        assert len(test) == 20

    def test_feature_lookup(self):
        ds = exponential_dataset(n=10)
        assert ds.feature("up_time").shape == (10,)
        with pytest.raises(KeyError):
            ds.feature("nope")

    def test_take_subset(self):
        ds = exponential_dataset(n=10)
        sub = ds.take([0, 2, 4])
        assert len(sub) == 3


class TestExponentialModel:
    def test_recovers_rate(self):
        ds = exponential_dataset(rate=0.01, n=2000)
        model = ExponentialModel().fit(ds)
        assert model.rate_ == pytest.approx(0.01, rel=0.1)

    def test_survival_function_shape(self):
        ds = exponential_dataset(n=50)
        model = ExponentialModel().fit(ds)
        surv = model.survival_function(ds.covariates[:5], np.array([0.0, 100.0]))
        assert surv.shape == (5, 2)
        assert np.allclose(surv[:, 0], 1.0)

    def test_expected_tbni_matches_mean(self):
        ds = exponential_dataset(rate=0.01, n=2000)
        model = ExponentialModel().fit(ds)
        # E[min(T, 2400)] for Exp(0.01) = 100 * (1 - exp(-24)) ~= 100.
        tbni = model.expected_tbni(ds.covariates[:1])
        assert tbni[0] == pytest.approx(100.0, rel=0.15)

    def test_median_is_ln2_over_rate(self):
        ds = exponential_dataset(rate=0.01, n=2000)
        model = ExponentialModel().fit(ds)
        median = model.median_tbni(ds.covariates[:1])
        assert median[0] == pytest.approx(np.log(2) / model.rate_, rel=0.10)

    def test_unfitted_raises(self):
        with pytest.raises(ModelNotFittedError):
            ExponentialModel().expected_tbni(np.zeros((1, 2)))

    def test_incident_probability_monotone_in_time(self):
        ds = exponential_dataset(n=100)
        model = ExponentialModel().fit(ds)
        p_short = model.incident_probability(ds.covariates[:1], 10.0)
        p_long = model.incident_probability(ds.covariates[:1], 1000.0)
        assert p_short[0] < p_long[0]


class TestGroupedExponential:
    def test_per_count_learns_group_rates(self):
        rng = np.random.default_rng(2)
        n = 3000
        counts = rng.integers(0, 2, n).astype(float)
        rates = np.where(counts == 0, 0.001, 0.05)
        durations = rng.exponential(1.0 / rates)
        ds = SurvivalDataset(
            covariates=np.column_stack([np.zeros(n), counts]),
            durations=durations, events=np.ones(n),
            feature_names=("up_time", "incident_count"),
        )
        model = ExponentialPerIncidentCount().fit(ds)
        assert model.rates_[0] == pytest.approx(0.001, rel=0.2)
        assert model.rates_[1] == pytest.approx(0.05, rel=0.2)

    def test_per_count_missing_feature_rejected(self):
        ds = exponential_dataset(feature_names=("a", "b"))
        with pytest.raises(KeyError):
            ExponentialPerIncidentCount().fit(ds)

    def test_unseen_group_falls_back_to_global(self):
        ds = exponential_dataset(n=200)
        model = ExponentialPerIncidentCount().fit(ds)
        covariate = np.array([[0.0, 19.0]])  # count never seen
        surv = model.survival_function(covariate, np.array([100.0]))
        assert 0.0 < surv[0, 0] < 1.0

    def test_per_hour_bucketing(self):
        model = ExponentialPerHour(bucket_hours=100.0)
        assert model._group_key(250.0) == 2
        assert model._group_key(0.0) == 0

    def test_per_hour_invalid_bucket(self):
        with pytest.raises(ValueError):
            ExponentialPerHour(bucket_hours=0.0)


class TestCoxTime:
    def test_learns_covariate_dependent_hazard(self):
        # Two populations with 10x different rates, flagged by one
        # binary covariate: Cox-Time must separate their TBNI.
        rng = np.random.default_rng(3)
        n = 2000
        flag = rng.integers(0, 2, n).astype(float)
        rates = np.where(flag == 0, 0.002, 0.02)
        durations = rng.exponential(1.0 / rates)
        ds = SurvivalDataset(
            covariates=np.column_stack([flag, rng.standard_normal(n)]),
            durations=durations, events=np.ones(n),
            feature_names=("flag", "noise"),
        )
        model = CoxTimeModel(hidden=(16,), epochs=15, seed=0).fit(ds)
        healthy = model.expected_tbni(np.array([[0.0, 0.0]]))[0]
        lemon = model.expected_tbni(np.array([[1.0, 0.0]]))[0]
        assert healthy > 2.0 * lemon

    def test_survival_function_monotone_decreasing(self):
        ds = exponential_dataset(n=500, seed=4)
        model = CoxTimeModel(hidden=(8,), epochs=5, seed=1).fit(ds)
        times = np.linspace(0.0, 2400.0, 20)
        surv = model.survival_function(ds.covariates[:3], times)
        assert np.all(np.diff(surv, axis=1) <= 1e-12)
        assert np.all(surv <= 1.0) and np.all(surv >= 0.0)

    def test_no_events_rejected(self):
        ds = SurvivalDataset(covariates=np.zeros((5, 2)),
                             durations=np.ones(5), events=np.zeros(5))
        with pytest.raises(ValueError):
            CoxTimeModel(epochs=1).fit(ds)

    def test_loss_decreases(self):
        ds = exponential_dataset(n=1000, seed=5)
        model = CoxTimeModel(hidden=(16,), epochs=10, seed=2).fit(ds)
        assert model.loss_history_[-1] <= model.loss_history_[0]

    def test_unfitted_raises(self):
        with pytest.raises(ModelNotFittedError):
            CoxTimeModel().survival_function(np.zeros((1, 2)), np.array([1.0]))
