"""repro: a reproduction of SuperBench/ANUBIS (USENIX ATC 2024).

Proactive validation for cloud AI infrastructure: a comprehensive
benchmark set, a Validator that learns clear-cut criteria over
benchmark-result distributions, and a Selector that trades validation
time against incident coverage.  Hardware fleets, fat-tree fabrics and
production traces are simulated (see DESIGN.md for the substitution
map); everything the paper's algorithms consume is preserved.

Quick start::

    from repro import build_fleet, full_suite, Validator

    fleet = build_fleet(64, seed=7)
    validator = Validator(full_suite())
    validator.learn_criteria(fleet.nodes)
    report = validator.validate(fleet.nodes)
    print(report.defective_nodes)

Subpackages
-----------
``repro.core``
    Validator, Selector, criteria (Algorithm 2), benchmark selection
    (Algorithm 1), parameter search (Appendix B), system facade.
``repro.benchsuite``
    The Table 2 benchmark set and the synthetic measurement model.
``repro.survival``
    Cox-Time and exponential incident-probability models (Table 3).
``repro.hardware``
    Node / component / defect-catalog substrate, HBM row remapping.
``repro.topology``
    Fat-tree fabric with redundant ToR uplinks and congestion.
``repro.netval``
    Appendix A networking-validation schedulers.
``repro.simulation``
    Traces, policies, repair system, 30-day cluster simulator.
``repro.analysis``
    LOF / One-Class SVM / IQR / k-means baselines.
``repro.workloads``
    Cluster workload mix and representative model zoo.
``repro.service``
    Durable, parallel validation control plane: prioritized event
    queue, thread-pool executor, node lifecycle, JSONL journal.
"""

from repro.benchsuite import SuiteRunner, full_suite, suite_by_name
from repro.core import (
    Anubis,
    CoverageTable,
    NodeStatus,
    SelectionResult,
    Selector,
    ValidationEvent,
    ValidationReport,
    Validator,
    cdf_distance,
    learn_criteria,
    one_sided_similarity,
    pairwise_repeatability,
    select_benchmarks,
    similarity,
)
from repro.hardware import Fleet, Node, WearModel, build_fleet
from repro.service import (
    NodeState,
    PoolConfig,
    ServiceConfig,
    ValidationPool,
    ValidationService,
)
from repro.simulation import (
    ClusterSimulator,
    SimulationConfig,
    generate_allocation_trace,
    generate_incident_trace,
    run_policy_comparison,
)
from repro.survival import CoxTimeModel, SurvivalDataset, extract_status_samples
from repro.topology import FatTree, FatTreeConfig

__version__ = "1.0.0"

__all__ = [
    "Anubis",
    "ClusterSimulator",
    "CoverageTable",
    "CoxTimeModel",
    "FatTree",
    "FatTreeConfig",
    "Fleet",
    "Node",
    "NodeState",
    "NodeStatus",
    "PoolConfig",
    "SelectionResult",
    "Selector",
    "ServiceConfig",
    "SimulationConfig",
    "SuiteRunner",
    "SurvivalDataset",
    "ValidationEvent",
    "ValidationPool",
    "ValidationReport",
    "ValidationService",
    "Validator",
    "WearModel",
    "__version__",
    "build_fleet",
    "cdf_distance",
    "extract_status_samples",
    "full_suite",
    "generate_allocation_trace",
    "generate_incident_trace",
    "learn_criteria",
    "one_sided_similarity",
    "pairwise_repeatability",
    "run_policy_comparison",
    "select_benchmarks",
    "similarity",
    "suite_by_name",
]
