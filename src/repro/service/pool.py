"""Parallel benchmark execution with timeouts, retries and isolation.

The synchronous :class:`~repro.core.validator.Validator` runs one
benchmark on one node at a time; a fleet sweep is a long serial loop
and a single hung execution stalls everything behind it.
:class:`ValidationPool` fans the same work out across a thread pool
with four operational guarantees:

* **per-benchmark timeouts** -- a (node, benchmark) execution that
  exceeds its deadline is abandoned and recorded as an execution
  failure; the sweep keeps going;
* **bounded retries with exponential backoff** -- transient crashes
  (raised exceptions) are retried up to ``max_attempts`` times;
* **crash isolation** -- an exception or hang in one execution never
  propagates to other nodes' work;
* **per-benchmark circuit breakers** -- a benchmark whose executions
  fail *fleet-wide* for ``breaker_failure_threshold`` consecutive
  sweeps is almost certainly broken itself (harness regression, bad
  container image), not evidence of fleet-wide hardware failure.  Its
  breaker opens: later sweeps short-circuit the benchmark instead of
  burning a timeout per node and quarantining the whole fleet.  After
  ``breaker_cooldown_sweeps`` the breaker half-opens and probes one
  node; a successful probe closes it again.

Because :class:`~repro.benchsuite.runner.SuiteRunner` draws from
per-(node, benchmark) child streams, a parallel sweep is bit-identical
to a sequential one for every execution that succeeds on its first
attempt -- scheduling order does not leak into results.

Python threads cannot be killed, so a timed-out execution's thread
keeps running in the background until its benchmark returns; the pool
merely stops waiting for it.  Each sweep uses a fresh executor so
abandoned threads never occupy a later sweep's workers.
"""

from __future__ import annotations

import enum
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

from repro.benchsuite.base import BenchmarkResult, BenchmarkSpec
from repro.core.parallel import resolve_workers
from repro.core.validator import ValidationReport, Validator, Violation
from repro.exceptions import ServiceError

__all__ = ["PoolConfig", "BenchmarkRun", "SweepResult", "ValidationPool",
           "BreakerState", "BreakerTransition", "CircuitBreaker"]


@dataclass(frozen=True)
class PoolConfig:
    """Execution knobs of the parallel pool.

    Attributes
    ----------
    max_workers:
        Thread-pool width per sweep.  ``None`` (the default) reads the
        ``REPRO_WORKERS`` environment variable, falling back to 8 --
        the same knob that widens criteria learning, so one deployment
        setting sizes the whole control plane.
    benchmark_timeout_seconds:
        Deadline for one (node, benchmark) execution, measured from
        the moment it starts on a worker; ``None`` disables timeouts.
    max_attempts:
        Total tries per execution (1 = no retries).
    backoff_base_seconds / backoff_multiplier:
        Retry *i* (i >= 2) sleeps ``base * multiplier**(i - 2)``
        before re-running.
    sweep_timeout_seconds:
        Hard deadline for a whole sweep; unresolved executions are
        abandoned as timed out when it passes.  Guards the pathological
        case of every worker hanging at once.  ``None`` disables it.
        When set, it must be at least ``benchmark_timeout_seconds`` --
        a sweep deadline shorter than one execution's deadline would
        silently make the per-benchmark timeout unreachable.
    poll_interval_seconds:
        Coordinator wake-up granularity for deadline checks; must be
        positive (a zero interval busy-spins the coordinator).
    breaker_failure_threshold:
        Consecutive *fleet-wide* execution failures of one benchmark
        before its circuit breaker opens; ``None`` disables breakers.
    breaker_cooldown_sweeps:
        Sweeps an open breaker skips before half-opening to probe.
    """

    max_workers: int | None = None
    benchmark_timeout_seconds: float | None = 30.0
    max_attempts: int = 3
    backoff_base_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    sweep_timeout_seconds: float | None = None
    poll_interval_seconds: float = 0.02
    breaker_failure_threshold: int | None = None
    breaker_cooldown_sweeps: int = 1

    def __post_init__(self):
        if self.max_workers is None:
            object.__setattr__(self, "max_workers",
                               resolve_workers(None, default=8))
        if self.max_workers < 1:
            raise ServiceError("max_workers must be at least 1")
        if self.max_attempts < 1:
            raise ServiceError("max_attempts must be at least 1")
        if self.backoff_base_seconds < 0 or self.backoff_multiplier < 1.0:
            raise ServiceError("invalid backoff configuration")
        if self.poll_interval_seconds <= 0:
            raise ServiceError("poll_interval_seconds must be positive")
        if (self.sweep_timeout_seconds is not None
                and self.benchmark_timeout_seconds is not None
                and self.sweep_timeout_seconds < self.benchmark_timeout_seconds):
            raise ServiceError(
                "sweep_timeout_seconds must be at least "
                "benchmark_timeout_seconds")
        if (self.breaker_failure_threshold is not None
                and self.breaker_failure_threshold < 1):
            raise ServiceError("breaker_failure_threshold must be at least 1")
        if self.breaker_cooldown_sweeps < 1:
            raise ServiceError("breaker_cooldown_sweeps must be at least 1")

    def backoff_seconds(self, attempt: int) -> float:
        """Sleep before ``attempt`` (1-based; the first try never waits)."""
        if attempt <= 1:
            return 0.0
        return self.backoff_base_seconds * self.backoff_multiplier ** (attempt - 2)


class BreakerState(str, enum.Enum):
    """Circuit-breaker states (standard three-state breaker)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerTransition:
    """One breaker state change, in occurrence order."""

    benchmark: str
    old: BreakerState
    new: BreakerState
    reason: str = ""


class CircuitBreaker:
    """Per-benchmark breaker over consecutive fleet-wide failures.

    The unit of evidence is one *sweep*: a sweep where every executed
    (node, benchmark) cell of this benchmark failed is a fleet-wide
    failure; any cell succeeding resets the consecutive count.  A
    fleet-wide failure indicts the benchmark, not the fleet.
    """

    def __init__(self, benchmark: str, *, failure_threshold: int,
                 cooldown_sweeps: int):
        self.benchmark = benchmark
        self.failure_threshold = int(failure_threshold)
        self.cooldown_sweeps = int(cooldown_sweeps)
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self._cooldown_left = 0
        self.transitions: list[BreakerTransition] = []

    def _set(self, new: BreakerState, reason: str) -> None:
        if new is self.state:
            return
        self.transitions.append(BreakerTransition(
            benchmark=self.benchmark, old=self.state, new=new, reason=reason))
        self.state = new

    def before_sweep(self) -> str:
        """Gate one sweep: ``"run"``, ``"probe"`` or ``"skip"``."""
        if self.state is BreakerState.CLOSED:
            return "run"
        if self.state is BreakerState.HALF_OPEN:
            return "probe"
        self._cooldown_left -= 1
        if self._cooldown_left <= 0:
            self._set(BreakerState.HALF_OPEN, reason="cooldown-elapsed")
            return "probe"
        return "skip"

    def record(self, fleet_wide_failure: bool) -> None:
        """Fold one executed sweep's outcome into the breaker."""
        if fleet_wide_failure:
            self.consecutive_failures += 1
            if self.state is BreakerState.HALF_OPEN:
                self._cooldown_left = self.cooldown_sweeps
                self._set(BreakerState.OPEN, reason="probe-failed")
            elif (self.state is BreakerState.CLOSED
                    and self.consecutive_failures >= self.failure_threshold):
                self._cooldown_left = self.cooldown_sweeps
                self._set(BreakerState.OPEN, reason="failure-threshold")
        else:
            self.consecutive_failures = 0
            if self.state is BreakerState.HALF_OPEN:
                self._set(BreakerState.CLOSED, reason="probe-succeeded")


@dataclass
class BenchmarkRun:
    """Final state of one (node, benchmark) cell of a sweep."""

    node_id: str
    benchmark: str
    result: BenchmarkResult | None = None
    attempts: int = 0
    error: str | None = None
    timed_out: bool = False
    short_circuited: bool = False  # skipped by an open circuit breaker
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class SweepResult:
    """All cells of one parallel sweep."""

    runs: list[BenchmarkRun] = field(default_factory=list)
    wall_seconds: float = 0.0

    def __post_init__(self):
        self._by_cell = {(r.node_id, r.benchmark): r for r in self.runs}

    def run_for(self, node_id: str, benchmark: str) -> BenchmarkRun:
        return self._by_cell[(node_id, benchmark)]

    @property
    def failed_runs(self) -> list[BenchmarkRun]:
        return [r for r in self.runs if not r.ok and not r.short_circuited]

    @property
    def short_circuited_runs(self) -> list[BenchmarkRun]:
        return [r for r in self.runs if r.short_circuited]

    @property
    def failed_node_ids(self) -> list[str]:
        seen: list[str] = []
        for run in self.failed_runs:
            if run.node_id not in seen:
                seen.append(run.node_id)
        return seen


@dataclass
class _Task:
    run: BenchmarkRun
    spec: BenchmarkSpec
    node: object
    attempt: int
    submitted_at: float
    started_at: list  # single-slot box written by the worker thread


class ValidationPool:
    """Parallel fleet-sweep engine reusing a Validator's policy.

    ``sanitizer`` (a :class:`repro.quality.Sanitizer`) is the pool's
    own ingestion guard: every result is passed through it, and the
    windows' ``sanitized`` provenance flag makes the pass idempotent --
    windows a runner-side sanitizer already cleaned flow through
    untouched, so every window leaving a sweep crossed the
    sanitization layer exactly once no matter which runner produced it.
    """

    def __init__(self, config: PoolConfig | None = None, *, sanitizer=None):
        self.config = config or PoolConfig()
        self.sanitizer = sanitizer
        #: Lazily-created per-benchmark breakers (empty when disabled).
        self.breakers: dict[str, CircuitBreaker] = {}

    # ------------------------------------------------------------------
    # Circuit breakers
    # ------------------------------------------------------------------
    def breaker_for(self, benchmark: str) -> CircuitBreaker | None:
        """This benchmark's breaker, created on first use; ``None``
        when breakers are disabled by configuration."""
        if self.config.breaker_failure_threshold is None:
            return None
        breaker = self.breakers.get(benchmark)
        if breaker is None:
            breaker = CircuitBreaker(
                benchmark,
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_sweeps=self.config.breaker_cooldown_sweeps)
            self.breakers[benchmark] = breaker
        return breaker

    def breaker_transitions(self) -> list[BreakerTransition]:
        """Every breaker state change so far, grouped by benchmark."""
        transitions: list[BreakerTransition] = []
        for name in sorted(self.breakers):
            transitions.extend(self.breakers[name].transitions)
        return transitions

    # ------------------------------------------------------------------
    # Raw sweeps
    # ------------------------------------------------------------------
    def run_benchmarks(self, specs, nodes, runner) -> SweepResult:
        """Run every benchmark in ``specs`` on every node, in parallel.

        Never raises for per-cell failures: each cell ends with either
        a result, an ``error``/``timed_out`` record, or a
        ``short_circuited`` marker from an open circuit breaker.
        """
        cfg = self.config
        specs = list(specs)
        nodes = list(nodes)
        runs = [BenchmarkRun(node_id=node.node_id, benchmark=spec.name)
                for spec in specs for node in nodes]
        by_cell = {(r.node_id, r.benchmark): r for r in runs}
        sweep_start = time.monotonic()

        # Breaker gating: "skip" short-circuits every cell, "probe"
        # runs the first node only (half-open), "run" runs everything.
        modes: dict[str, str] = {}
        for spec in specs:
            breaker = self.breaker_for(spec.name)
            modes[spec.name] = breaker.before_sweep() if breaker else "run"
        probe_node_id = nodes[0].node_id if nodes else None

        def runnable(spec, node) -> bool:
            mode = modes[spec.name]
            if mode == "run":
                return True
            if mode == "probe":
                return node.node_id == probe_node_id
            return False

        for run in runs:
            spec_mode = modes[run.benchmark]
            if spec_mode == "skip" or (spec_mode == "probe"
                                       and run.node_id != probe_node_id):
                run.short_circuited = True
                run.error = "circuit-open"

        executor = ThreadPoolExecutor(max_workers=cfg.max_workers)
        active: dict = {}

        def submit(spec, node, attempt):
            run = by_cell[(node.node_id, spec.name)]
            run.attempts = attempt
            task = _Task(run=run, spec=spec, node=node, attempt=attempt,
                         submitted_at=time.monotonic(), started_at=[None])
            future = executor.submit(self._execute, runner, task)
            active[future] = task

        try:
            for spec in specs:
                for node in nodes:
                    if runnable(spec, node):
                        submit(spec, node, attempt=1)

            while active:
                done, _ = wait(list(active), timeout=cfg.poll_interval_seconds,
                               return_when=FIRST_COMPLETED)
                now = time.monotonic()
                for future in done:
                    task = active.pop(future)
                    error = future.exception()
                    if error is None:
                        task.run.result = future.result()
                        task.run.error = None
                        task.run.wall_seconds = now - sweep_start
                    elif task.attempt < cfg.max_attempts:
                        submit(task.spec, task.node, task.attempt + 1)
                    else:
                        task.run.error = f"{type(error).__name__}: {error}"
                        task.run.wall_seconds = now - sweep_start
                # Deadline scan: abandon cells whose execution started
                # too long ago (the thread itself cannot be killed).
                for future, task in list(active.items()):
                    started = task.started_at[0]
                    expired = (
                        cfg.benchmark_timeout_seconds is not None
                        and started is not None
                        and now - started > cfg.benchmark_timeout_seconds
                    )
                    sweep_expired = (
                        cfg.sweep_timeout_seconds is not None
                        and now - sweep_start > cfg.sweep_timeout_seconds
                    )
                    if not expired and not sweep_expired:
                        continue
                    del active[future]
                    future.cancel()
                    if expired and task.attempt < cfg.max_attempts:
                        submit(task.spec, task.node, task.attempt + 1)
                        continue
                    task.run.timed_out = True
                    task.run.error = (
                        f"timeout after {cfg.benchmark_timeout_seconds}s"
                        if expired else
                        f"sweep timeout after {cfg.sweep_timeout_seconds}s"
                    )
                    task.run.wall_seconds = now - sweep_start
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

        # Fold each executed benchmark's fleet-wide outcome into its
        # breaker; skipped benchmarks contribute no evidence.
        if cfg.breaker_failure_threshold is not None:
            for spec in specs:
                if modes[spec.name] == "skip":
                    continue
                executed = [by_cell[(node.node_id, spec.name)]
                            for node in nodes
                            if not by_cell[(node.node_id, spec.name)
                                           ].short_circuited]
                if not executed:
                    continue
                breaker = self.breaker_for(spec.name)
                breaker.record(all(not run.ok for run in executed))

        return SweepResult(runs=runs,
                           wall_seconds=time.monotonic() - sweep_start)

    def _execute(self, runner, task: _Task):
        backoff = self.config.backoff_seconds(task.attempt)
        if backoff > 0.0:
            time.sleep(backoff)
        # The deadline clock starts when the benchmark actually starts,
        # not when the cell was queued behind a busy pool.
        task.started_at[0] = time.monotonic()
        result = runner.run(task.spec, task.node)
        if self.sanitizer is not None:
            # Idempotent by provenance: windows the runner already
            # sanitized carry sanitized=True and pass through untouched,
            # so no window is ever schema-checked or quarantined twice.
            result = self.sanitizer.sanitize_result(task.spec, result)
        return result

    # ------------------------------------------------------------------
    # Validator-equivalent sweeps
    # ------------------------------------------------------------------
    def validate(self, validator: Validator, nodes,
                 benchmarks=None) -> tuple[ValidationReport, list[SweepResult]]:
        """Parallel equivalent of :meth:`Validator.validate`.

        Phase semantics are preserved exactly: single-node micro, then
        single-node end-to-end, then multi-node, with nodes flagged in
        an earlier phase excluded from later phases.  Violations are
        appended in the sequential engine's (benchmark, node) order, so
        a fully-healthy parallel report is identical to a sequential
        one.  Cells that exhausted retries or timed out become
        ``execution-failure`` violations (defects by definition).

        Cells short-circuited by an open breaker produce *no*
        violation -- an open breaker means the benchmark itself is
        suspect, and quarantining the fleet on its word would be the
        exact false-positive storm the breaker exists to stop.
        Benchmarks that never executed on any node are removed from
        ``benchmarks_run`` so coverage accounting stays honest.
        """
        selected = validator.resolve(benchmarks)
        report = ValidationReport(
            validated_nodes=[node.node_id for node in nodes],
            benchmarks_run=[spec.name for spec in selected],
        )
        sweeps: list[SweepResult] = []
        remaining = list(nodes)
        executed_benchmarks: set[str] = set()
        short_circuited_benchmarks: set[str] = set()
        for phase_specs in validator.execution_phases(selected):
            if not remaining:
                break
            sweep = self.run_benchmarks(phase_specs, remaining, validator.runner)
            sweeps.append(sweep)
            for spec in phase_specs:
                for node in remaining:
                    run = sweep.run_for(node.node_id, spec.name)
                    if run.short_circuited:
                        short_circuited_benchmarks.add(spec.name)
                        continue
                    executed_benchmarks.add(spec.name)
                    if run.ok:
                        report.violations.extend(
                            validator.check_result(spec, run.result))
                    else:
                        for metric in spec.metrics:
                            report.violations.append(Violation(
                                node_id=node.node_id, benchmark=spec.name,
                                metric=metric.name, similarity=0.0,
                                reason=f"execution-failure: {run.error}",
                            ))
            flagged = set(report.defective_nodes)
            remaining = [n for n in remaining if n.node_id not in flagged]
        fully_skipped = short_circuited_benchmarks - executed_benchmarks
        report.benchmarks_run = [name for name in report.benchmarks_run
                                 if name not in fully_skipped]
        return report, sweeps
