"""Failure-domain sharding of the control plane by consistent hashing.

One :class:`~repro.service.controlplane.ValidationService` over one
journal is one crash, one corrupt journal or one breaker storm away
from stalling the whole fleet.  This module partitions the fleet into
*shards* -- each a full control plane with its **own**
:class:`~repro.service.store.JournalStore` (separate journal
directory, separate compaction), its own
:class:`~repro.service.queue.EventQueue`, its own
:class:`~repro.service.pool.ValidationPool` (and therefore its own
circuit breakers) and its own lifecycle map -- so every failure mode
the control plane hardens against is *contained* to the shard it
happened in.

Placement is a consistent-hash ring (:class:`HashRing`): each shard
projects ``virtual_nodes`` points onto the CRC32 ring and a node id
hashes to the first shard point at or after it.  Consistent hashing
buys two properties a modulo partition lacks:

* **stable ownership** -- placement depends only on (shard count,
  virtual-node count, node id), so a restarted supervisor recovers
  exactly the same assignment its journals were written under;
* **local failover** -- when a shard is degraded, each of its node
  ids falls through to the *next* ring point owned by a live shard,
  spreading the orphaned load over the survivors instead of dumping
  it all on one sibling.

A :class:`Shard` is deliberately thin: identity (index, owned node
ids), the journal subdirectory, restart/watchdog bookkeeping, and a
:meth:`Shard.start` that (re)builds the inner service via the
existing kill-safe journal recovery.  Everything *supervisory* --
watchdogs, backoff, degradation, handoff -- lives in
:mod:`repro.service.supervisor`.
"""

from __future__ import annotations

import bisect
import enum
import time
import zlib
from pathlib import Path

from repro.exceptions import ServiceError
from repro.service.controlplane import ServiceConfig, ValidationService

__all__ = ["HashRing", "ShardState", "Shard"]


class HashRing:
    """Consistent-hash ring mapping node ids to shard indexes.

    Parameters
    ----------
    shard_count:
        Number of shards (ring members).
    virtual_nodes:
        Ring points per shard; more points smooth the load split at
        the cost of a larger (still tiny) ring.
    """

    def __init__(self, shard_count: int, *, virtual_nodes: int = 64):
        if shard_count < 1:
            raise ServiceError("shard_count must be at least 1")
        if virtual_nodes < 1:
            raise ServiceError("virtual_nodes must be at least 1")
        self.shard_count = int(shard_count)
        self.virtual_nodes = int(virtual_nodes)
        points: list[tuple[int, int]] = []
        for shard in range(self.shard_count):
            for replica in range(self.virtual_nodes):
                point = zlib.crc32(f"shard-{shard}/vn-{replica}".encode())
                points.append((point, shard))
        # CRC32 collisions between virtual nodes are possible in
        # principle; sort on (point, shard) so even a collision
        # resolves deterministically.
        points.sort()
        self._points = [point for point, _shard in points]
        self._shards = [shard for _point, shard in points]

    def owner(self, node_id: str, *, alive=None) -> int:
        """The shard owning ``node_id``.

        With ``alive`` (a set of shard indexes), ownership falls
        through dead shards to the next ring point owned by a live
        one -- the failover placement for a degraded owner's nodes.
        """
        if alive is not None and not alive:
            raise ServiceError("no live shard to own nodes")
        point = zlib.crc32(str(node_id).encode())
        start = bisect.bisect_left(self._points, point)
        for offset in range(len(self._shards)):
            shard = self._shards[(start + offset) % len(self._shards)]
            if alive is None or shard in alive:
                return shard
        raise ServiceError("no live shard to own nodes")

    def assignment(self, node_ids) -> dict[int, list[str]]:
        """Owned node ids per shard index (every shard present)."""
        owned: dict[int, list[str]] = {i: [] for i in range(self.shard_count)}
        for node_id in node_ids:
            owned[self.owner(node_id)].append(node_id)
        return owned


class ShardState(enum.Enum):
    """Supervisor-visible health of one shard."""

    #: Ticking normally.
    RUNNING = "running"
    #: Declared unhealthy; a restart is scheduled (backoff pending).
    RESTARTING = "restarting"
    #: Out of restart budget; pending work handed off to siblings and
    #: new work for its nodes routed around it.
    DEGRADED = "degraded"


class Shard:
    """One failure domain: a full control plane over owned nodes.

    Parameters
    ----------
    index:
        Ring position / stable identity of this shard.
    node_ids:
        Node ids this shard owns under the current ring.
    fleet:
        The **full** fleet.  Every shard's service indexes the whole
        fleet so a handed-off event referencing a degraded sibling's
        nodes is still submittable; *ownership* (which shard work is
        routed to) is the supervisor's job, not the service's.
    anubis_factory:
        Zero-argument callable building a fresh
        :class:`~repro.core.system.Anubis` facade.  Called once per
        (re)start so a crash cannot leak tainted in-memory policy
        state into the next incarnation -- journal recovery restores
        criteria and coverage from disk instead.
    journal_root:
        Parent directory; this shard journals under
        ``journal_root/shard-NN``.  ``None`` runs in memory (no
        recovery, for tests).
    service_config:
        Per-shard :class:`~repro.service.controlplane.ServiceConfig`
        (including ``max_queue_depth`` backpressure).
    clock:
        Monotonic-seconds source shared with the supervisor.
    """

    def __init__(self, index: int, node_ids, fleet, *, anubis_factory,
                 journal_root=None, service_config: ServiceConfig | None = None,
                 clock=time.monotonic):
        self.index = int(index)
        self.node_ids = frozenset(node_ids)
        self.fleet = list(fleet)
        self.anubis_factory = anubis_factory
        self.journal_dir = (None if journal_root is None
                            else Path(journal_root) / f"shard-{self.index:02d}")
        self.service_config = service_config or ServiceConfig()
        self.clock = clock
        self.state = ShardState.RUNNING
        #: Completed restarts of this shard's inner service.
        self.restarts = 0
        #: Consecutive supervisor ticks without observed progress
        #: while work was pending (watchdog input).
        self.stalled_ticks = 0
        #: Progress high-water mark at the last heartbeat.
        self.last_progress = 0
        #: Supervisor tick at which a scheduled restart fires.
        self.restart_due_tick: int | None = None
        #: Progress-making ticks since the last restart (forgiveness).
        self.progress_ticks = 0
        self.service: ValidationService = self._build_service()

    def _build_service(self) -> ValidationService:
        return ValidationService(
            self.anubis_factory(), self.fleet,
            journal_dir=self.journal_dir, config=self.service_config,
            clock=self.clock)

    def owns(self, node_id: str) -> bool:
        return node_id in self.node_ids

    def progress(self) -> int:
        """Monotonic tick-progress counter the watchdog samples.

        Counts *attempts* (completions plus contained failures): a
        shard grinding through a poison event is making progress; one
        whose counter is flat while its queue is non-empty is hung.
        """
        return (self.service.metrics.events_processed
                + self.service.metrics.tick_failures)

    def restart(self) -> ValidationService:
        """Rebuild the inner service from its journal (one restart).

        This *is* the kill-safe recovery path: the old incarnation is
        dropped wholesale and the replacement replays the shard's own
        journal -- pending events, lifecycle, criteria, handoff state.
        """
        self.restarts += 1
        self.state = ShardState.RUNNING
        self.restart_due_tick = None
        self.stalled_ticks = 0
        self.progress_ticks = 0
        self.service = self._build_service()
        self.last_progress = self.progress()
        return self.service
