"""Deterministic fault injection for the validation control plane.

The paper's central claim is that proactive validation catches the
failures reactive monitoring misses (§3.4 counts crashes and hangs as
defects in their own right).  That claim obligates the validator to
survive the same failure modes itself -- so this module turns the
control plane's own machinery against it, deterministically:

* **executor faults** -- benchmark executions crash or hang
  (:class:`ChaosRunner` wraps the Validator's runner);
* **journal write faults** -- ``append`` raises
  :class:`~repro.exceptions.JournalError`
  (:class:`ChaosJournalStore` wraps the service's store);
* **simulated process kills** -- ``append`` raises
  :class:`SimulatedKill` *instead of writing*, modelling ``kill -9``
  between any two journal records.  ``SimulatedKill`` subclasses
  ``BaseException`` so no ``except Exception`` handler in the service
  can accidentally "survive" its own death;
* **poison events and tick faults** -- the service's ``tick_hook``
  raises before processing;
* **repair faults** -- the service's ``repair_hook`` raises before a
  lifecycle advance.

Everything is driven by a :class:`ChaosPlan`: a frozen, seeded
description of *what* to inject at *which* rate.  Every probabilistic
draw uses a keyed RNG -- ``SeedSequence((seed, crc32(part), ...))``
over the identity of the decision point (node, benchmark, call index,
append counter, ...) -- the same idiom
:class:`~repro.benchsuite.runner.SuiteRunner` uses for measurement
noise.  Two runs with the same plan therefore inject the *same*
faults at the *same* points regardless of thread scheduling, so a
chaos soak is replayable and its assertions can be exact.

Usage::

    plan = ChaosPlan(seed=7, executor_crash_rate=0.05,
                     journal_error_rate=0.02)
    monkey = install_chaos(service, plan)
    try:
        ...drive the service...
    finally:
        monkey.uninstall()

``monkey.injections`` counts what actually fired, keyed by fault
kind, so tests can assert the storm really happened.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.system import ValidationEvent
from repro.exceptions import ChaosError, JournalError, ServiceError

__all__ = ["SimulatedKill", "ShardCrash", "ChaosPlan", "ChaosRunner",
           "ChaosJournalStore", "ChaosMonkey", "install_chaos", "poison_key",
           "ShardChaosPlan", "ShardChaosJournalStore", "ShardChaosMonkey",
           "install_shard_chaos", "ProcessChaosPlan"]


class SimulatedKill(BaseException):
    """A simulated ``kill -9`` of the service process.

    Deliberately a ``BaseException`` (like ``SystemExit``), *not* a
    :class:`~repro.exceptions.ReproError`: the control plane's
    failure-containment handlers catch ``Exception``, and a process
    kill is precisely the failure no handler gets to contain.  Tests
    catch it at the top level and model the "restart" by building a
    fresh service over the same journal directory.
    """


class ShardCrash(SimulatedKill):
    """A simulated crash of ONE shard's control plane.

    Same semantics as :class:`SimulatedKill` -- no handler inside the
    shard's service may contain it -- but the
    :class:`~repro.service.supervisor.ShardSupervisor` catches it at
    the shard boundary, exactly as a real supervisor observes one
    worker process dying while itself surviving.  A plain
    ``SimulatedKill`` still passes through the supervisor untouched:
    that one models the whole process (supervisor included) dying.
    """


def poison_key(event: ValidationEvent) -> tuple:
    """The identity under which chaos recognises an event.

    Matches the queue's coalescing key -- (kind value, sorted node
    ids) -- rather than the event id, because a submit rolled back by
    an injected journal fault and then retried is assigned a *new* id;
    the logical event is the same.
    """
    return (event.kind.value,
            tuple(sorted(node.node_id for node in event.nodes)))


def _entropy(parts) -> list[int]:
    return [part if isinstance(part, int) else zlib.crc32(str(part).encode())
            for part in parts]


@dataclass(frozen=True)
class ChaosPlan:
    """What to inject, at which rate, under which seed.

    All rates are probabilities in [0, 1] drawn from a keyed RNG, so
    the same plan injects identically across runs.  Deterministic
    (non-probabilistic) faults:

    * ``kill_after_appends=N`` kills the process on the (N+1)-th
      journal append of this incarnation -- drive N over every value
      up to the uninterrupted run's append count and you have tested a
      crash between *every* pair of journal records;
    * ``poison_event_keys`` always fail in the tick hook (until the
      service dead-letters them);
    * ``broken_benchmarks`` crash their first
      ``broken_benchmark_crashes`` executions, then heal -- the exact
      shape circuit breakers exist for (harness regression, then a
      fixed image).
    """

    seed: int
    executor_crash_rate: float = 0.0
    executor_hang_rate: float = 0.0
    hang_seconds: float = 1.0
    journal_error_rate: float = 0.0
    kill_rate: float = 0.0
    kill_after_appends: int | None = None
    repair_failure_rate: float = 0.0
    tick_error_rate: float = 0.0
    poison_event_keys: frozenset = frozenset()
    broken_benchmarks: frozenset = frozenset()
    broken_benchmark_crashes: int = 0
    fault_nodes: frozenset | None = None

    def __post_init__(self):
        for name in ("executor_crash_rate", "executor_hang_rate",
                     "journal_error_rate", "kill_rate",
                     "repair_failure_rate", "tick_error_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ServiceError(f"{name} must be in [0, 1], got {rate}")
        if self.hang_seconds < 0:
            raise ServiceError("hang_seconds must be non-negative")
        if self.kill_after_appends is not None and self.kill_after_appends < 0:
            raise ServiceError("kill_after_appends must be non-negative")
        if self.broken_benchmark_crashes < 0:
            raise ServiceError("broken_benchmark_crashes must be non-negative")

    def chance(self, rate: float, *key) -> bool:
        """One keyed Bernoulli draw: does the fault at ``key`` fire?

        ``key`` identifies the decision point (fault kind plus node /
        benchmark / counter parts); equal keys always draw the same
        answer for the same plan.
        """
        if rate <= 0.0:
            return False
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, *_entropy(key))))
        return bool(rng.random() < rate)


class ChaosRunner:
    """Delegating runner wrapper that injects executor faults.

    Crash and hang draws are keyed by (node, benchmark, per-cell call
    index), so retries of the same cell re-draw independently but
    deterministically, and thread scheduling cannot change which calls
    fault.  ``broken_benchmarks`` crash unconditionally for their
    first ``broken_benchmark_crashes`` executions (counted
    per-benchmark across the wrapper's lifetime), then heal.

    Everything except :meth:`run` passes through to the wrapped
    runner, so the Validator's policy helpers keep working.
    """

    def __init__(self, runner, plan: ChaosPlan, monkey: "ChaosMonkey"):
        self._runner = runner
        self.plan = plan
        self._monkey = monkey
        self._lock = threading.Lock()
        self._cell_calls: Counter = Counter()
        self._broken_crashes: Counter = Counter()

    def run(self, spec, node):
        plan = self.plan
        with self._lock:
            if (spec.name in plan.broken_benchmarks
                    and self._broken_crashes[spec.name]
                    < plan.broken_benchmark_crashes):
                self._broken_crashes[spec.name] += 1
                self._monkey.count("broken_benchmark_crash")
                raise ChaosError(
                    f"injected harness regression in benchmark {spec.name!r}")
            call = self._cell_calls[(node.node_id, spec.name)]
            self._cell_calls[(node.node_id, spec.name)] += 1
        if plan.fault_nodes is None or node.node_id in plan.fault_nodes:
            if plan.chance(plan.executor_crash_rate, "executor-crash",
                           node.node_id, spec.name, call):
                self._monkey.count("executor_crash")
                raise ChaosError(
                    f"injected executor crash: {spec.name} on {node.node_id}")
            if plan.chance(plan.executor_hang_rate, "executor-hang",
                           node.node_id, spec.name, call):
                self._monkey.count("executor_hang")
                # A hang is a sleep well past the pool's benchmark
                # timeout; the pool abandons the cell (Python threads
                # cannot be killed) and this thread finishes late into
                # a discarded future.  It must fail rather than run:
                # a late execution through the wrapped runner would
                # race later sweeps of the same cell for its repeat
                # counter and perturb the keyed measurement stream.
                time.sleep(plan.hang_seconds)
                raise ChaosError(
                    f"injected executor hang: {spec.name} on {node.node_id}")
        return self._runner.run(spec, node)

    def __getattr__(self, name):
        return getattr(self._runner, name)


class ChaosJournalStore:
    """Delegating journal wrapper injecting write faults and kills.

    Both are decided *before* the underlying write, per this
    incarnation's append counter: a :class:`SimulatedKill` models the
    process dying between two durable records, an injected
    :class:`~repro.exceptions.JournalError` models a full disk or I/O
    error the process survives.  Replay, rewrite and every attribute
    besides :meth:`append` pass through untouched.
    """

    def __init__(self, store, plan: ChaosPlan, monkey: "ChaosMonkey"):
        self._store = store
        self.plan = plan
        self._monkey = monkey
        self.appends = 0

    def append(self, kind: str, payload: dict, *, fsync=None) -> int:
        self.appends += 1
        count = self.appends
        plan = self.plan
        if (plan.kill_after_appends is not None
                and count > plan.kill_after_appends):
            self._monkey.count("kill")
            raise SimulatedKill(
                f"simulated process kill before journal append #{count}")
        if plan.chance(plan.kill_rate, "kill", count):
            self._monkey.count("kill")
            raise SimulatedKill(
                f"simulated process kill before journal append #{count}")
        if plan.chance(plan.journal_error_rate, "journal-error", count, kind):
            self._monkey.count("journal_error")
            raise JournalError(
                f"injected journal write fault (append #{count}, "
                f"kind {kind!r})")
        return self._store.append(kind, payload, fsync=fsync)

    def __getattr__(self, name):
        return getattr(self._store, name)


class ChaosMonkey:
    """One installed chaos plan: the hooks, wrappers and tally.

    ``injections`` counts every fault that actually fired, keyed by
    kind (``executor_crash``, ``executor_hang``, ``journal_error``,
    ``kill``, ``poison_tick``, ``tick_error``, ``repair_failure``,
    ``broken_benchmark_crash``) -- the evidence a soak test needs that
    its storm was real.
    """

    def __init__(self, service, plan: ChaosPlan):
        self.service = service
        self.plan = plan
        self.injections: Counter = Counter()
        self._lock = threading.Lock()
        self._repair_calls: Counter = Counter()
        self._original_runner = None
        self._original_store = None
        self._installed = False

    def count(self, kind: str) -> None:
        with self._lock:
            self.injections[kind] += 1

    # -- hooks wired into the service ----------------------------------
    def tick_hook(self, entry) -> None:
        key = poison_key(entry.event)
        if key in self.plan.poison_event_keys:
            self.count("poison_tick")
            raise ChaosError(
                f"injected poison event {key[0]} on nodes {list(key[1])}")
        if self.plan.chance(self.plan.tick_error_rate, "tick-error",
                            key[0], *key[1], entry.attempts):
            self.count("tick_error")
            raise ChaosError(
                f"injected tick fault for event {entry.event_id} "
                f"(attempt {entry.attempts + 1})")

    def repair_hook(self, node_id: str, target) -> None:
        with self._lock:
            attempt = self._repair_calls[(node_id, target.value)]
            self._repair_calls[(node_id, target.value)] += 1
        if self.plan.chance(self.plan.repair_failure_rate, "repair",
                            node_id, target.value, attempt):
            self.count("repair_failure")
            raise ChaosError(
                f"injected repair failure: {node_id} -> {target.value}")

    # -- install / uninstall -------------------------------------------
    def install(self) -> "ChaosMonkey":
        if self._installed:
            return self
        validator = self.service.anubis.validator
        self._original_runner = validator.runner
        validator.runner = ChaosRunner(validator.runner, self.plan, self)
        if self.service.store is not None:
            self._original_store = self.service.store
            self.service.store = ChaosJournalStore(
                self.service.store, self.plan, self)
        self.service.tick_hook = self.tick_hook
        self.service.repair_hook = self.repair_hook
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the service's collaborators (idempotent)."""
        if not self._installed:
            return
        self.service.anubis.validator.runner = self._original_runner
        if self._original_store is not None:
            self.service.store = self._original_store
        self.service.tick_hook = None
        self.service.repair_hook = None
        self._installed = False


def install_chaos(service, plan: ChaosPlan) -> ChaosMonkey:
    """Wrap ``service``'s collaborators per ``plan``; returns the
    installed :class:`ChaosMonkey` (call :meth:`ChaosMonkey.uninstall`
    to restore)."""
    return ChaosMonkey(service, plan).install()


# ----------------------------------------------------------------------
# Shard-level chaos (against the supervised shard fabric)
# ----------------------------------------------------------------------

#: Record kinds whose journal lines shard chaos may corrupt.  All are
#: observability or replay-redundant records: losing one costs at most
#: an at-least-once re-run, never an event -- so a chaos soak can keep
#: its event-accounting assertions *exact* while still proving that
#: recovery skips corrupted lines.  ``event-enqueued`` and the
#: snapshot kinds are deliberately excluded: corrupting those would
#: genuinely lose state, which is a different (and non-assertable)
#: failure class.
_CORRUPTIBLE_KINDS = ("shard-heartbeat", "pipeline-stats",
                      "breaker-transition", "batch-provenance",
                      "event-completed")


@dataclass(frozen=True)
class ShardChaosPlan:
    """Shard-fabric faults, seeded and keyed like :class:`ChaosPlan`.

    All rates are per-decision-point probabilities in [0, 1]:

    * ``crash_rate`` -- a ticked event raises :class:`ShardCrash`
      (the shard process dies mid-tick; the supervisor survives);
    * ``hang_rate`` -- the shard stops responding to ticks *until its
      next restart* (only the watchdog's stall detection recovers it);
    * ``slow_tick_rate`` / ``slow_tick_seconds`` -- a tick stalls for
      ``slow_tick_seconds`` before processing (latency, not failure);
    * ``heartbeat_loss_rate`` -- one heartbeat is dropped on the way
      to the supervisor;
    * ``journal_error_rate`` / ``kill_rate`` -- per-append journal
      write faults / shard kills, like :class:`ChaosJournalStore`
      but raising :class:`ShardCrash` so the blast stops at the shard;
    * ``journal_corrupt_rate`` -- one already-written line of the
      shard's journal is corrupted in place (restricted to
      observability/replay-redundant kinds, see
      ``_CORRUPTIBLE_KINDS``), exercising the CRC skip-and-warn path
      on the next recovery.

    ``target_shards`` limits every fault to the given shard indexes --
    the blast-radius soak targets one shard and asserts the others
    never notice.
    """

    seed: int
    target_shards: frozenset | None = None
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    slow_tick_rate: float = 0.0
    slow_tick_seconds: float = 0.0
    heartbeat_loss_rate: float = 0.0
    journal_error_rate: float = 0.0
    journal_corrupt_rate: float = 0.0
    kill_rate: float = 0.0

    def __post_init__(self):
        for name in ("crash_rate", "hang_rate", "slow_tick_rate",
                     "heartbeat_loss_rate", "journal_error_rate",
                     "journal_corrupt_rate", "kill_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ServiceError(f"{name} must be in [0, 1], got {rate}")
        if self.slow_tick_seconds < 0:
            raise ServiceError("slow_tick_seconds must be non-negative")

    def chance(self, rate: float, *key) -> bool:
        """One keyed Bernoulli draw (same idiom as
        :meth:`ChaosPlan.chance`)."""
        if rate <= 0.0:
            return False
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, *_entropy(key))))
        return bool(rng.random() < rate)

    def pick(self, upper: int, *key) -> int:
        """One keyed uniform draw in ``[0, upper)``."""
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, *_entropy(key))))
        return int(rng.integers(upper))


class ShardChaosJournalStore:
    """Per-shard journal wrapper: write faults and *shard* kills.

    Like :class:`ChaosJournalStore`, but draws are keyed by (shard,
    incarnation, append counter) so every restart re-draws fresh, and
    a kill raises :class:`ShardCrash` -- the shard dies, the
    supervisor lives.
    """

    def __init__(self, store, plan: ShardChaosPlan, monkey,
                 shard_index: int, incarnation: int):
        self._store = store
        self.plan = plan
        self._monkey = monkey
        self.shard_index = shard_index
        self.incarnation = incarnation
        self.appends = 0

    def append(self, kind: str, payload: dict, *, fsync=None) -> int:
        self.appends += 1
        count = self.appends
        plan = self.plan
        kind_name = getattr(kind, "value", kind)
        if plan.chance(plan.kill_rate, "shard-kill", self.shard_index,
                       self.incarnation, count):
            self._monkey.count("shard_kill")
            raise ShardCrash(
                f"injected shard {self.shard_index} kill before journal "
                f"append #{count}")
        if plan.chance(plan.journal_error_rate, "shard-journal-error",
                       self.shard_index, self.incarnation, count, kind_name):
            self._monkey.count("journal_error")
            raise JournalError(
                f"injected journal write fault on shard {self.shard_index} "
                f"(append #{count}, kind {kind_name!r})")
        return self._store.append(kind, payload, fsync=fsync)

    def __getattr__(self, name):
        return getattr(self._store, name)


class ShardChaosMonkey:
    """One installed shard-chaos plan against a supervisor.

    Wires the supervisor's three chaos seams (``tick_filter``,
    ``heartbeat_filter``, ``on_restart``) plus per-shard tick hooks
    and journal wrappers.  ``injections`` tallies what fired
    (``shard_crash``, ``shard_hang``, ``slow_tick``,
    ``heartbeat_loss``, ``journal_error``, ``journal_corruption``,
    ``shard_kill``).
    """

    def __init__(self, supervisor, plan: ShardChaosPlan):
        self.supervisor = supervisor
        self.plan = plan
        self.injections: Counter = Counter()
        self._lock = threading.Lock()
        #: Shard indexes currently hung (cleared by restart).
        self.hung: set[int] = set()
        self._counters: Counter = Counter()
        self._installed = False

    def count(self, kind: str) -> None:
        with self._lock:
            self.injections[kind] += 1

    def _next(self, *key) -> int:
        with self._lock:
            value = self._counters[key]
            self._counters[key] += 1
        return value

    def targets(self, shard) -> bool:
        return (self.plan.target_shards is None
                or shard.index in self.plan.target_shards)

    # -- seams ----------------------------------------------------------
    def _tick_hook_for(self, shard):
        plan = self.plan

        def hook(entry):
            call = self._next("tick", shard.index, shard.restarts)
            if plan.chance(plan.slow_tick_rate, "slow-tick", shard.index,
                           shard.restarts, call):
                self.count("slow_tick")
                time.sleep(plan.slow_tick_seconds)
            if plan.chance(plan.crash_rate, "shard-crash", shard.index,
                           shard.restarts, call):
                self.count("shard_crash")
                raise ShardCrash(
                    f"injected crash of shard {shard.index} while ticking "
                    f"event {entry.event_id}")

        return hook

    def tick_filter(self, shard) -> bool:
        if not self.targets(shard):
            return True
        if shard.index in self.hung:
            return False
        call = self._next("hang", shard.index, shard.restarts)
        if self.plan.chance(self.plan.hang_rate, "shard-hang", shard.index,
                            shard.restarts, call):
            self.count("shard_hang")
            self.hung.add(shard.index)
            return False
        return True

    def heartbeat_filter(self, shard) -> bool:
        if not self.targets(shard):
            return True
        call = self._next("corrupt", shard.index)
        if self.plan.chance(self.plan.journal_corrupt_rate,
                            "journal-corrupt", shard.index, call):
            if self._corrupt_journal(shard, call):
                self.count("journal_corruption")
        beat = self._next("heartbeat", shard.index)
        if self.plan.chance(self.plan.heartbeat_loss_rate, "heartbeat-loss",
                            shard.index, beat):
            self.count("heartbeat_loss")
            return False
        return True

    def _corrupt_journal(self, shard, call: int) -> bool:
        """Corrupt one replay-redundant line of the shard's journal.

        The victim line is truncated mid-JSON, so the next recovery
        hits the undecodable-line path (warn and skip) and the
        analytics reader counts it in ``corrupt_lines``.
        """
        store = shard.service.store
        path = getattr(store, "path", None)
        if path is None or not path.exists():
            return False
        lines = path.read_text().splitlines()
        candidates = [
            index for index, line in enumerate(lines)
            if any(f'"kind": "{kind}"' in line
                   for kind in _CORRUPTIBLE_KINDS)
        ]
        if not candidates:
            return False
        victim = candidates[self.plan.pick(
            len(candidates), "corrupt-line", shard.index, call)]
        lines[victim] = lines[victim][:max(len(lines[victim]) // 2, 1)]
        path.write_text("\n".join(lines) + "\n")
        return True

    def on_restart(self, shard) -> None:
        """Re-arm fault injection on a shard's replacement service."""
        self.hung.discard(shard.index)
        self._arm(shard)

    def _arm(self, shard) -> None:
        if not self.targets(shard):
            return
        service = shard.service
        if service.store is not None:
            service.store = ShardChaosJournalStore(
                service.store, self.plan, self, shard.index, shard.restarts)
        service.tick_hook = self._tick_hook_for(shard)

    # -- install / uninstall -------------------------------------------
    def install(self) -> "ShardChaosMonkey":
        if self._installed:
            return self
        for shard in self.supervisor.shards:
            self._arm(shard)
        self.supervisor.tick_filter = self.tick_filter
        self.supervisor.heartbeat_filter = self.heartbeat_filter
        self.supervisor.on_restart = self.on_restart
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the supervisor and every shard (idempotent)."""
        if not self._installed:
            return
        for shard in self.supervisor.shards:
            service = shard.service
            if isinstance(service.store, ShardChaosJournalStore):
                service.store = service.store._store
            service.tick_hook = None
        self.supervisor.tick_filter = None
        self.supervisor.heartbeat_filter = None
        self.supervisor.on_restart = None
        self.hung.clear()
        self._installed = False


def install_shard_chaos(supervisor, plan: ShardChaosPlan) -> ShardChaosMonkey:
    """Wrap ``supervisor``'s shards per ``plan``; returns the installed
    :class:`ShardChaosMonkey` (call
    :meth:`ShardChaosMonkey.uninstall` to restore)."""
    return ShardChaosMonkey(supervisor, plan).install()


# ----------------------------------------------------------------------
# Process-level chaos (real signals against worker processes)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ProcessChaosPlan:
    """Real OS-level faults a worker *process* inflicts on itself.

    Unlike :class:`ChaosPlan`/:class:`ShardChaosPlan`, nothing here is
    simulated: the worker built by
    :mod:`repro.service.procfabric` sends itself genuine signals --
    ``SIGKILL`` (uncatchable death between two journal appends, the
    real ``kill -9``) and ``SIGSTOP`` (an uncatchable hang only the
    parent's watchdog can detect).  The plan is **pure JSON data**
    (:meth:`to_payload`/:meth:`from_payload`) because it must cross
    the spawn boundary inside the worker spec; no callables, no
    pickling.

    Deterministic faults (the prefix-sweep drivers):

    * ``kill_after_appends=N`` -- the worker SIGKILLs itself *before*
      journal append N+1, but only while ``incarnation ==
      kill_incarnation`` -- a respawned worker must not die at the
      same append forever;
    * ``stop_before_ticks=N`` -- the worker SIGSTOPs itself before
      handling its (N+1)-th tick command of ``stop_incarnation``.

    Probabilistic faults (``kill_rate`` per append, ``stop_rate`` per
    tick) draw from the same keyed-RNG idiom as every other plan,
    keyed by (shard, incarnation, counter) so each respawn re-draws
    fresh and a soak stays replayable.  ``target_shards`` scopes every
    fault to the given shard indexes.
    """

    seed: int
    target_shards: frozenset | None = None
    kill_after_appends: int | None = None
    kill_incarnation: int = 0
    kill_rate: float = 0.0
    stop_before_ticks: int | None = None
    stop_incarnation: int = 0
    stop_rate: float = 0.0

    def __post_init__(self):
        for name in ("kill_rate", "stop_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ServiceError(f"{name} must be in [0, 1], got {rate}")
        for name in ("kill_after_appends", "stop_before_ticks"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ServiceError(f"{name} must be non-negative")

    def targets(self, shard_index: int) -> bool:
        return (self.target_shards is None
                or shard_index in self.target_shards)

    def chance(self, rate: float, *key) -> bool:
        """One keyed Bernoulli draw (same idiom as
        :meth:`ChaosPlan.chance`)."""
        if rate <= 0.0:
            return False
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, *_entropy(key))))
        return bool(rng.random() < rate)

    def should_kill(self, shard: int, incarnation: int, append: int) -> bool:
        """Die (for real) before performing journal append ``append``?"""
        if not self.targets(shard):
            return False
        if (self.kill_after_appends is not None
                and incarnation == self.kill_incarnation
                and append > self.kill_after_appends):
            return True
        return self.chance(self.kill_rate, "proc-kill", shard, incarnation,
                           append)

    def should_stop(self, shard: int, incarnation: int, tick: int) -> bool:
        """Freeze (for real) before handling tick number ``tick``?"""
        if not self.targets(shard):
            return False
        if (self.stop_before_ticks is not None
                and incarnation == self.stop_incarnation
                and tick > self.stop_before_ticks):
            return True
        return self.chance(self.stop_rate, "proc-stop", shard, incarnation,
                           tick)

    def to_payload(self) -> dict:
        """JSON-serializable form for the spawn boundary."""
        return {
            "seed": self.seed,
            "target_shards": (None if self.target_shards is None
                              else sorted(self.target_shards)),
            "kill_after_appends": self.kill_after_appends,
            "kill_incarnation": self.kill_incarnation,
            "kill_rate": self.kill_rate,
            "stop_before_ticks": self.stop_before_ticks,
            "stop_incarnation": self.stop_incarnation,
            "stop_rate": self.stop_rate,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ProcessChaosPlan":
        targets = payload.get("target_shards")
        return cls(
            seed=int(payload["seed"]),
            target_shards=(None if targets is None
                           else frozenset(int(t) for t in targets)),
            kill_after_appends=payload.get("kill_after_appends"),
            kill_incarnation=int(payload.get("kill_incarnation", 0)),
            kill_rate=float(payload.get("kill_rate", 0.0)),
            stop_before_ticks=payload.get("stop_before_ticks"),
            stop_incarnation=int(payload.get("stop_incarnation", 0)),
            stop_rate=float(payload.get("stop_rate", 0.0)),
        )
