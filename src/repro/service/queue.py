"""Risk-prioritized event queue with coalescing and a dead-letter side.

Orchestrators emit far more validation triggers than a fleet can
absorb: repeated job allocations on the same nodes, periodic ticks
that re-flag the same risky node, incident storms.  The queue orders
pending :class:`~repro.core.system.ValidationEvent`s by the
Selector-predicted incident probability (highest risk first, FIFO
within ties) and *coalesces* repeats -- an event for the same (kind,
node set) that is already pending merges into the existing entry
instead of growing the queue, keeping the higher priority and longer
usage duration of the two.

The dead-letter side handles *poison* events: an entry whose
processing keeps failing is eventually parked as a
:class:`DeadLetter` instead of being retried forever, where it stays
inspectable (:meth:`EventQueue.dead_letters`) without blocking the
rest of the queue.  The control plane decides *when* to park (after
``max_event_attempts`` failed ticks); the queue only provides the
mechanism.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, replace

from repro.core.system import ValidationEvent
from repro.exceptions import JournalError

__all__ = ["QueuedEvent", "DeadLetter", "EventQueue"]


def _coalesce_key(event: ValidationEvent) -> tuple:
    node_ids = tuple(sorted(getattr(n, "node_id", str(n)) for n in event.nodes))
    return (event.kind.value, node_ids)


@dataclass
class QueuedEvent:
    """One pending queue entry (possibly several coalesced events)."""

    event_id: int
    event: ValidationEvent
    priority: float
    enqueued_at: float = 0.0
    coalesced: int = 0  # how many later duplicates merged into this entry
    attempts: int = 0   # failed processing attempts so far
    #: ``(source_shard, source_event_id)`` when this entry was handed
    #: off from a degraded sibling shard; the marker rides through the
    #: journal so handoff reconciliation can tell a delivered event
    #: from one lost mid-handoff (no drops, no duplicates).
    origin: tuple[int, int] | None = None
    #: Set when admission control journaled this entry as shed.
    shed: bool = False

    @property
    def sort_key(self) -> tuple[float, int]:
        """Max-priority first; FIFO by event id within a priority."""
        return (-self.priority, self.event_id)

    def to_payload(self) -> dict:
        """Journal payload for one pending entry.

        Embeds the event via its canonical schema
        (:meth:`~repro.core.system.ValidationEvent.to_payload`) -- the
        queue, the journal and the recovery path all share the one
        serialization.
        """
        payload = {
            "event_id": self.event_id,
            "priority": self.priority,
            "attempts": self.attempts,
            "event": self.event.to_payload(),
        }
        if self.origin is not None:
            payload["origin"] = [int(self.origin[0]), int(self.origin[1])]
        return payload

    @classmethod
    def from_payload(cls, payload: dict, fleet_index: dict) -> "QueuedEvent":
        """Rebuild one pending entry from its :meth:`to_payload` form."""
        try:
            event = ValidationEvent.from_payload(payload["event"], fleet_index)
            origin = payload.get("origin")
            return cls(
                event_id=int(payload["event_id"]),
                event=event,
                priority=float(payload.get("priority", 0.0)),
                attempts=int(payload.get("attempts", 0)),
                origin=(None if origin is None
                        else (int(origin[0]), int(origin[1]))),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise JournalError(
                f"malformed queue-entry payload: {error}") from error


@dataclass(frozen=True)
class DeadLetter:
    """One poison event, parked after repeated processing failures."""

    entry: QueuedEvent
    reason: str = ""

    @property
    def event_id(self) -> int:
        return self.entry.event_id

    def to_payload(self) -> dict:
        """Journal payload: the entry's payload plus the parking reason."""
        payload = self.entry.to_payload()
        payload["reason"] = self.reason
        return payload


class EventQueue:
    """Priority queue keyed on predicted incident probability.

    The heap holds ``(sort_key, entry)`` tuples; priority *raises*
    (from coalescing) push a fresh tuple and the stale one is lazily
    discarded on pop, so both push and pop stay O(log n).
    """

    def __init__(self):
        self._heap: list[tuple[tuple[float, int], QueuedEvent]] = []
        self._pending: dict[tuple, QueuedEvent] = {}
        self._dead: list[DeadLetter] = []
        self._ids = itertools.count(1)
        self.coalesced_total = 0
        #: Highest event id handed out or reserved so far -- the
        #: high-water mark a snapshot must persist so a recovered
        #: queue never reuses an id.
        self.last_event_id = 0

    def __len__(self) -> int:
        return len(self._pending)

    def next_event_id(self) -> int:
        """Allocate a fresh event id (used by recovery to stay ahead
        of journaled ids)."""
        event_id = next(self._ids)
        self.last_event_id = max(self.last_event_id, event_id)
        return event_id

    def reserve_ids(self, up_to: int) -> None:
        """Ensure future ids are strictly greater than ``up_to``."""
        self._ids = itertools.count(up_to + 1)
        self.last_event_id = max(self.last_event_id, up_to)

    def push(self, event: ValidationEvent, priority: float, *,
             event_id: int | None = None, enqueued_at: float = 0.0,
             origin: tuple[int, int] | None = None) -> tuple[QueuedEvent, bool]:
        """Enqueue (or coalesce) one event.

        Returns ``(entry, created)``; ``created`` is False when the
        event merged into an already-pending entry for the same
        (kind, node set).
        """
        key = _coalesce_key(event)
        existing = self._pending.get(key)
        if existing is not None:
            existing.coalesced += 1
            self.coalesced_total += 1
            if event.duration_hours > existing.event.duration_hours:
                existing.event = replace(
                    existing.event, duration_hours=event.duration_hours)
            if priority > existing.priority:
                existing.priority = priority
                heapq.heappush(self._heap, (existing.sort_key, existing))
            return existing, False
        entry = QueuedEvent(
            event_id=event_id if event_id is not None else self.next_event_id(),
            event=event, priority=float(priority), enqueued_at=enqueued_at,
            origin=origin,
        )
        self._pending[key] = entry
        heapq.heappush(self._heap, (entry.sort_key, entry))
        return entry, True

    def requeue(self, entry: QueuedEvent) -> QueuedEvent:
        """Re-insert a popped entry (after a failed processing attempt).

        Keeps the entry's id, priority and attempt count.  If a fresh
        entry for the same (kind, node set) was submitted while this
        one was being processed, the two merge: the pending entry
        survives and inherits the higher attempt count and priority.
        """
        key = _coalesce_key(entry.event)
        existing = self._pending.get(key)
        if existing is not None:
            existing.attempts = max(existing.attempts, entry.attempts)
            if entry.priority > existing.priority:
                existing.priority = entry.priority
                heapq.heappush(self._heap, (existing.sort_key, existing))
            return existing
        self._pending[key] = entry
        heapq.heappush(self._heap, (entry.sort_key, entry))
        return entry

    def remove(self, entry: QueuedEvent) -> bool:
        """Withdraw a pending entry (journal-failure rollback).

        Returns False when the entry is no longer pending (already
        popped, or superseded).  The heap tuple is discarded lazily by
        :meth:`pop`, like a stale priority raise.
        """
        key = _coalesce_key(entry.event)
        if self._pending.get(key) is not entry:
            return False
        del self._pending[key]
        return True

    def pop(self) -> QueuedEvent | None:
        """Highest-priority pending entry, or ``None`` when empty."""
        while self._heap:
            sort_key, entry = heapq.heappop(self._heap)
            key = _coalesce_key(entry.event)
            if self._pending.get(key) is not entry or sort_key != entry.sort_key:
                continue  # stale tuple from a coalesced priority raise
            del self._pending[key]
            return entry
        return None

    def peek(self) -> QueuedEvent | None:
        """The entry :meth:`pop` would return, without removing it.

        Discards stale heap tuples on the way, so amortized cost
        matches pop.  The cross-shard scheduler uses this to compare
        the riskiest pending work across shards without consuming it.
        """
        while self._heap:
            sort_key, entry = self._heap[0]
            key = _coalesce_key(entry.event)
            if (self._pending.get(key) is not entry
                    or sort_key != entry.sort_key):
                heapq.heappop(self._heap)
                continue
            return entry
        return None

    def shed_lowest(self) -> QueuedEvent | None:
        """Withdraw the lowest-priority pending entry (admission control).

        The victim is the minimum by ``(priority, event_id)`` -- the
        lowest predicted risk, oldest first within a tie -- which under
        the control plane's priority scheme is always a coalescable
        probabilistic event while any full-validation event (priority
        above the probability range) is pending.  Returns ``None`` on
        an empty queue.  The victim's stale heap tuples are discarded
        lazily by :meth:`pop`, like any removed entry's.
        """
        if not self._pending:
            return None
        key, victim = min(self._pending.items(),
                          key=lambda item: (item[1].priority,
                                            item[1].event_id))
        del self._pending[key]
        victim.shed = True
        return victim

    def pending(self) -> list[QueuedEvent]:
        """Pending entries in pop order (does not consume the queue)."""
        return sorted(self._pending.values(), key=lambda e: e.sort_key)

    # ------------------------------------------------------------------
    # Dead letters
    # ------------------------------------------------------------------
    def dead_letter(self, entry: QueuedEvent, reason: str = "") -> DeadLetter:
        """Park one poison entry; it will never be popped again."""
        letter = DeadLetter(entry=entry, reason=reason)
        self._dead.append(letter)
        return letter

    def dead_letters(self) -> list[DeadLetter]:
        """Parked poison events, oldest first (inspection API)."""
        return list(self._dead)
