"""Supervision tree over the sharded control plane.

:class:`ShardSupervisor` is the parent of one
:class:`~repro.service.shard.Shard` per ring member and enforces the
fabric's three robustness contracts:

**Liveness (watchdog + restart-with-backoff).**  Every supervisor
tick samples each running shard's progress counter (completions plus
contained failures) and journals a ``shard-heartbeat`` record into
the shard's own journal.  A shard whose counter stays flat for
``watchdog_stall_ticks`` ticks while it has pending work -- or whose
heartbeats stop arriving -- is declared unhealthy and scheduled for a
restart after an exponential backoff.  Restarting *is* the existing
kill-safe journal recovery: the old incarnation is dropped and a
fresh service replays the shard's journal.

**Containment (degradation + journaled handoff).**  A shard that
exhausts ``max_shard_restarts`` is escalated to ``DEGRADED``: it is
taken out of rotation and its pending events are failed over to live
siblings.  Each failover is two durable writes -- a ``shard-handoff``
record in the source journal, then the sibling's ``event-enqueued``
record carrying an ``origin`` marker -- and a crash between the two
is healed by :meth:`ShardSupervisor.reconcile_handoffs`: a journaled
handoff with no matching origin anywhere is re-delivered, and the
origin set makes re-delivery idempotent.  The event is therefore
neither dropped nor duplicated at any kill point.

**Global risk ordering (cross-shard scheduler).**  Each supervisor
tick processes one event: the highest-priority queue head across all
responsive shards (peeked, not popped).  Every other running shard
still advances its repair pipeline, so quarantined nodes flow back to
HEALTHY no matter where the riskiest work sits.

Chaos seams mirror the single-service design: ``tick_filter``
(a hung shard never executes its tick), ``heartbeat_filter`` (a lost
heartbeat), and ``on_restart`` (re-arm fault injection on the
replacement service).  A :class:`~repro.service.chaos.ShardCrash`
raised inside a shard is caught *here*, at the shard boundary; a
plain :class:`~repro.service.chaos.SimulatedKill` -- the whole
process dying -- passes through untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.system import ValidationEvent
from repro.exceptions import JournalError, ServiceError
from repro.service.chaos import ShardCrash
from repro.service.controlplane import ServiceConfig, TickResult
from repro.service.queue import QueuedEvent
from repro.service.shard import HashRing, Shard, ShardState
from repro.service.store import RecordKind

__all__ = ["SupervisorConfig", "SupervisorMetrics", "ShardSupervisor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision-tree knobs.

    Attributes
    ----------
    shard_count / virtual_nodes:
        Ring geometry (see :class:`~repro.service.shard.HashRing`).
        Both must stay stable across restarts of the same journal
        root, or recovered journals would be read under the wrong
        ownership.
    watchdog_stall_ticks:
        Consecutive supervisor ticks a shard may show no progress
        while holding pending work (or miss heartbeats) before the
        watchdog declares it unhealthy.
    restart_backoff_base_ticks / restart_backoff_multiplier /
    restart_backoff_max_ticks:
        Exponential restart backoff, in supervisor ticks: the K-th
        restart waits ``base * multiplier**(K-1)`` ticks, capped.
    max_shard_restarts:
        Restarts a shard may consume before escalation to DEGRADED
        (pending work handed off, new work routed around it).
    restart_forgive_after_ticks:
        Progress-making ticks after which a shard's restart budget
        refills -- a transient storm should not permanently count
        against a shard that has long since recovered.  ``None``
        never forgives.
    sku_affinity:
        Route by the node's hardware class instead of its id: every
        node of one SKU lands on the same shard, criteria learning
        for a namespace stays within one failure domain, and a
        failover moves a whole SKU to one live sibling instead of
        scattering it.  Like the ring geometry, this must stay stable
        across restarts of the same journal root.
    service:
        The per-shard :class:`~repro.service.controlplane.ServiceConfig`
        (one config, applied to every shard).
    """

    shard_count: int = 4
    virtual_nodes: int = 64
    sku_affinity: bool = False
    watchdog_stall_ticks: int = 3
    restart_backoff_base_ticks: int = 1
    restart_backoff_multiplier: float = 2.0
    restart_backoff_max_ticks: int = 16
    max_shard_restarts: int = 3
    restart_forgive_after_ticks: int | None = None
    service: ServiceConfig = field(default_factory=ServiceConfig)

    def __post_init__(self):
        if self.shard_count < 1:
            raise ServiceError("shard_count must be at least 1")
        if self.virtual_nodes < 1:
            raise ServiceError("virtual_nodes must be at least 1")
        if self.watchdog_stall_ticks < 1:
            raise ServiceError("watchdog_stall_ticks must be at least 1")
        if self.restart_backoff_base_ticks < 1:
            raise ServiceError("restart_backoff_base_ticks must be at least 1")
        if self.restart_backoff_multiplier < 1.0:
            raise ServiceError("restart_backoff_multiplier must be >= 1")
        if self.restart_backoff_max_ticks < self.restart_backoff_base_ticks:
            raise ServiceError(
                "restart_backoff_max_ticks must be >= the base")
        if self.max_shard_restarts < 1:
            raise ServiceError("max_shard_restarts must be at least 1")
        if (self.restart_forgive_after_ticks is not None
                and self.restart_forgive_after_ticks < 1):
            raise ServiceError(
                "restart_forgive_after_ticks must be at least 1")

    def backoff_ticks(self, restarts: int) -> int:
        """Ticks to wait before restart number ``restarts + 1``."""
        ticks = (self.restart_backoff_base_ticks
                 * self.restart_backoff_multiplier ** max(restarts, 0))
        return max(1, min(int(ticks), self.restart_backoff_max_ticks))


@dataclass
class SupervisorMetrics:
    """What the supervision tree has done so far."""

    shard_restarts: int = 0
    shard_crashes: int = 0
    watchdog_trips: int = 0
    heartbeats_lost: int = 0
    shards_degraded: int = 0
    events_failed_over: int = 0
    handoffs_reconciled: int = 0

    def summary(self) -> dict:
        return {
            "shard_restarts": self.shard_restarts,
            "shard_crashes": self.shard_crashes,
            "watchdog_trips": self.watchdog_trips,
            "heartbeats_lost": self.heartbeats_lost,
            "shards_degraded": self.shards_degraded,
            "events_failed_over": self.events_failed_over,
            "handoffs_reconciled": self.handoffs_reconciled,
        }


class ShardSupervisor:
    """Drive one shard fabric: route, schedule, watch, restart, shed.

    Parameters
    ----------
    anubis_factory:
        Zero-argument callable building a fresh Anubis facade; called
        once per shard (re)start.
    nodes:
        The full fleet; ownership is derived from the ring.
    journal_root:
        Parent directory -- shard N journals under
        ``journal_root/shard-NN``.  ``None`` runs in memory.
    config:
        :class:`SupervisorConfig`.
    clock:
        Monotonic-seconds source shared by every shard (injectable).

    Attributes
    ----------
    tick_filter:
        Optional ``(shard) -> bool`` chaos seam: returning False
        means the shard is unresponsive this tick (a hang) -- its
        tick simply never executes, and only the watchdog's stall
        detection can recover it.
    heartbeat_filter:
        Optional ``(shard) -> bool`` chaos seam: returning False
        drops this tick's heartbeat; the supervisor conservatively
        counts a missing heartbeat as a stalled tick.
    on_restart:
        Optional ``(shard) -> None`` called after a shard restarts --
        the seam chaos uses to re-arm fault injection on the
        replacement service.
    """

    def __init__(self, anubis_factory, nodes, *, journal_root=None,
                 config: SupervisorConfig | None = None,
                 clock=time.monotonic):
        self.config = config or SupervisorConfig()
        self.clock = clock
        self.fleet = list(nodes)
        self.ring = HashRing(self.config.shard_count,
                             virtual_nodes=self.config.virtual_nodes)
        self._sku_index = {node.node_id: getattr(node, "sku", "unknown")
                           for node in self.fleet}
        assignment: dict[int, list[str]] = {
            index: [] for index in range(self.config.shard_count)}
        for node in self.fleet:
            owner = self.ring.owner(self._routing_key(node.node_id))
            assignment[owner].append(node.node_id)
        self.shards = [
            Shard(index, assignment[index], self.fleet,
                  anubis_factory=anubis_factory, journal_root=journal_root,
                  service_config=self.config.service, clock=clock)
            for index in range(self.config.shard_count)
        ]
        self.tick_index = 0
        self.metrics = SupervisorMetrics()
        self.tick_filter = None
        self.heartbeat_filter = None
        self.on_restart = None
        # Startup reconciliation: the previous incarnation may have
        # died between a handoff record and its delivery.
        self.reconcile_handoffs()

    # ------------------------------------------------------------------
    # Routing / ingest
    # ------------------------------------------------------------------
    def _alive(self) -> set[int]:
        return {shard.index for shard in self.shards
                if shard.state is not ShardState.DEGRADED}

    def _routing_key(self, node_id: str) -> str:
        """What the ring hashes for this node: its id, or -- under
        ``sku_affinity`` -- its hardware class, so one SKU's nodes
        co-locate and fail over together."""
        if not self.config.sku_affinity:
            return node_id
        return self._sku_index.get(node_id, "unknown")

    def route(self, node_id: str) -> int:
        """The shard responsible for ``node_id`` right now.

        The ring owner, unless that shard is degraded -- then the
        node falls through the ring to its first live successor.  A
        RESTARTING shard still receives work: its journal is intact,
        so submits are durably accepted and recovered by the restart.
        """
        return self.ring.owner(self._routing_key(node_id),
                               alive=self._alive())

    def submit(self, event: ValidationEvent) -> dict[int, QueuedEvent]:
        """Split one event along shard ownership and submit each part.

        Returns the accepted entry per shard index.  Splitting is the
        isolation boundary at work: an event spanning many shards
        becomes independent per-shard events, so one shard's failure
        cannot hold another shard's nodes hostage.
        """
        groups: dict[int, list] = {}
        for node in event.nodes:
            groups.setdefault(self.route(node.node_id), []).append(node)
        statuses = {status.node_id: status for status in event.statuses}
        accepted: dict[int, QueuedEvent] = {}
        for index in sorted(groups):
            nodes = tuple(groups[index])
            part = ValidationEvent(
                kind=event.kind,
                nodes=nodes,
                statuses=tuple(statuses[node.node_id] for node in nodes
                               if node.node_id in statuses),
                duration_hours=event.duration_hours,
            )
            accepted[index] = self.shards[index].service.submit(part)
        return accepted

    def schedule_periodic(self, statuses, *,
                          lookahead_hours: float = 24.0) -> dict[int, QueuedEvent]:
        """Per-shard periodic scheduling (§3.1 step 1), fleet-wide."""
        groups: dict[int, list] = {}
        for status in statuses:
            groups.setdefault(self.route(status.node_id), []).append(status)
        accepted: dict[int, QueuedEvent] = {}
        for index in sorted(groups):
            entry = self.shards[index].service.schedule_periodic(
                groups[index], lookahead_hours=lookahead_hours)
            if entry is not None:
                accepted[index] = entry
        return accepted

    # ------------------------------------------------------------------
    # The supervision loop
    # ------------------------------------------------------------------
    def tick(self) -> list[TickResult]:
        """One supervision round.

        Fires due restarts, processes the globally riskiest pending
        event on the highest-priority *responsive* shard, advances
        every other running shard's repair pipeline, then heartbeats
        and watches each running shard.
        """
        self.tick_index += 1
        results: list[TickResult] = []
        for shard in self.shards:
            if (shard.state is ShardState.RESTARTING
                    and shard.restart_due_tick is not None
                    and self.tick_index >= shard.restart_due_tick):
                self._restart(shard)
        running = [shard for shard in self.shards
                   if shard.state is ShardState.RUNNING]
        ticked = None
        attempted: set[int] = set()
        for shard in self._priority_order(running):
            attempted.add(shard.index)
            if self.tick_filter is not None and not self.tick_filter(shard):
                continue  # hung: the tick never executes; watchdog's job
            ticked = shard
            result = self._tick_shard(shard)
            if result is not None:
                results.append(result)
            break
        for shard in running:
            if shard is not ticked and shard.state is ShardState.RUNNING:
                shard.service.advance_repairs()
        for shard in self.shards:
            self._heartbeat(shard, attempted=attempted)
        return results

    def _priority_order(self, running) -> list[Shard]:
        """Shards with pending work, riskiest queue head first."""
        heads = []
        for shard in running:
            head = shard.service.queue.peek()
            if head is not None:
                heads.append((-head.priority, shard.index, shard))
        return [shard for _priority, _index, shard in sorted(heads)]

    def _tick_shard(self, shard: Shard) -> TickResult | None:
        try:
            return shard.service.tick()
        except ShardCrash as fault:
            # The shard "process" died; the supervisor did not.  Its
            # journal is intact up to the crash point, so a restart
            # recovers everything durably accepted.
            self.metrics.shard_crashes += 1
            self._declare_unhealthy(shard, reason=f"crash: {fault}")
            return None

    def _heartbeat(self, shard: Shard, *, attempted: set[int]) -> None:
        """Sample one shard's liveness and run the stall watchdog.

        A shard is only blamed for lack of progress on ticks where
        the scheduler actually *attempted* it -- a shard whose
        pending work simply lost the cross-shard priority race this
        round is waiting, not hung.
        """
        if shard.state is not ShardState.RUNNING:
            return
        if (self.heartbeat_filter is not None
                and not self.heartbeat_filter(shard)):
            # No signal: the supervisor cannot tell a lost heartbeat
            # from a dead shard, so it conservatively counts this as
            # a stalled tick.
            self.metrics.heartbeats_lost += 1
            shard.stalled_ticks += 1
        else:
            progress = shard.progress()
            try:
                self._journal_shard(shard, RecordKind.SHARD_HEARTBEAT, {
                    "shard": shard.index,
                    "tick": self.tick_index,
                    "progress": progress,
                    "queue_depth": len(shard.service.queue),
                    "restarts": shard.restarts,
                    "stalled_ticks": shard.stalled_ticks,
                })
            except ShardCrash as fault:
                self.metrics.shard_crashes += 1
                self._declare_unhealthy(shard, reason=f"crash: {fault}")
                return
            if progress > shard.last_progress or not shard.service.queue:
                shard.stalled_ticks = 0
                if progress > shard.last_progress:
                    shard.progress_ticks += 1
                    forgive = self.config.restart_forgive_after_ticks
                    if (forgive is not None
                            and shard.progress_ticks >= forgive):
                        shard.restarts = 0
                        shard.progress_ticks = 0
            elif shard.index in attempted:
                shard.stalled_ticks += 1
            shard.last_progress = progress
        if shard.stalled_ticks >= self.config.watchdog_stall_ticks:
            self.metrics.watchdog_trips += 1
            self._declare_unhealthy(shard, reason="watchdog-stall")

    def _journal_shard(self, shard: Shard, kind, payload: dict) -> None:
        """Best-effort observability append into one shard's journal."""
        store = shard.service.store
        if store is None:
            return
        try:
            store.append(kind, payload)
        except JournalError:
            pass

    # ------------------------------------------------------------------
    # Restart / degrade / failover
    # ------------------------------------------------------------------
    def _declare_unhealthy(self, shard: Shard, *, reason: str) -> None:
        if shard.state is not ShardState.RUNNING:
            return
        if shard.restarts >= self.config.max_shard_restarts:
            self._degrade(shard, reason=reason)
            return
        shard.state = ShardState.RESTARTING
        shard.restart_due_tick = (
            self.tick_index + self.config.backoff_ticks(shard.restarts))
        shard.stalled_ticks = 0

    def _restart(self, shard: Shard) -> None:
        shard.restart()
        self.metrics.shard_restarts += 1
        if self.on_restart is not None:
            self.on_restart(shard)
        # The shard may have recovered handoff state, or a sibling's
        # delivery may have been lost with the old incarnation.
        self.reconcile_handoffs()

    def _degrade(self, shard: Shard, *, reason: str) -> None:
        shard.state = ShardState.DEGRADED
        self.metrics.shards_degraded += 1
        try:
            self._journal_shard(shard, RecordKind.SHARD_DEGRADED, {
                "shard": shard.index,
                "tick": self.tick_index,
                "restarts": shard.restarts,
                "reason": reason,
            })
        except ShardCrash:
            pass  # the shard is already being written off
        self._failover(shard)

    def _failover(self, shard: Shard) -> None:
        """Hand a degraded shard's pending events to live siblings.

        Per entry: journal ``shard-handoff`` in the *source* journal,
        then submit to the target with an ``origin`` marker.  If the
        source journal refuses the handoff record, the entry is
        re-queued and left parked on the degraded shard -- still
        durably pending, still accounted for, re-deliverable by a
        later full-process restart.
        """
        alive = self._alive()
        if not alive:
            raise ServiceError(
                "every shard degraded; no failover target remains")
        while True:
            entry = shard.service.queue.pop()
            if entry is None:
                break
            first_node = sorted(
                node.node_id for node in entry.event.nodes)[0]
            target_index = self.ring.owner(self._routing_key(first_node),
                                           alive=alive)
            try:
                shard.service.record_handoff(entry, to_shard=target_index)
            except (JournalError, ShardCrash):
                shard.service.queue.requeue(entry)
                break
            self.metrics.events_failed_over += 1
            try:
                self.shards[target_index].service.submit(
                    entry.event, origin=(shard.index, entry.event_id))
            except JournalError:
                # Handoff journaled but undelivered; the handed_off
                # map keeps it re-deliverable by reconciliation.
                continue

    def reconcile_handoffs(self) -> int:
        """Re-deliver journaled handoffs that never reached a sibling.

        For every ``shard-handoff`` record whose
        ``(source, event_id)`` origin appears in *no* shard's
        delivered-origin set, submit the event to its target (or, if
        the target is gone, to the node's live ring successor).  The
        origin set makes this idempotent: a handoff delivered just
        before a crash is recognized and skipped, one lost mid-flight
        is re-submitted exactly once.  Returns the number re-delivered.
        """
        alive = self._alive()
        if not alive:
            return 0
        delivered: set[tuple[int, int]] = set()
        for shard in self.shards:
            delivered |= shard.service.origins_seen
        redelivered = 0
        for shard in self.shards:
            for event_id in sorted(shard.service.handed_off):
                origin = (shard.index, event_id)
                if origin in delivered:
                    continue
                payload = shard.service.handed_off[event_id]
                event = ValidationEvent.from_payload(
                    payload["event"], shard.service.fleet_index)
                target_index = int(payload.get("to_shard", -1))
                if target_index not in alive:
                    first_node = sorted(
                        node.node_id for node in event.nodes)[0]
                    target_index = self.ring.owner(
                        self._routing_key(first_node), alive=alive)
                try:
                    self.shards[target_index].service.submit(
                        event, origin=origin)
                except JournalError:
                    continue  # retried at the next reconciliation
                delivered.add(origin)
                redelivered += 1
                self.metrics.handoffs_reconciled += 1
        return redelivered

    # ------------------------------------------------------------------
    # Draining and reporting
    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        """No pending work, repairs or scheduled restarts anywhere.

        A degraded shard's parked leftovers (handoff blocked by a
        broken journal) do not block quiescence -- they are durable
        and re-deliverable, and the shard is out of rotation.
        """
        for shard in self.shards:
            if shard.state is ShardState.RESTARTING:
                return False
            if shard.state is ShardState.DEGRADED:
                continue
            if len(shard.service.queue) > 0:
                return False
            if shard.service.repairs_in_flight():
                return False
        return True

    def drain(self, *, max_ticks: int = 100_000) -> list[TickResult]:
        """Tick until the whole fabric is quiescent."""
        results: list[TickResult] = []
        for _ in range(max_ticks):
            results.extend(self.tick())
            if self.quiescent():
                return results
        raise ServiceError(
            f"supervisor drain did not converge in {max_ticks} ticks")

    def seal(self, *, reason: str = "drain") -> None:
        """Durably mark a clean shutdown of every non-degraded shard.

        Appends a ``fabric-drain`` record to each live shard's journal
        and fsyncs its tail (see
        :meth:`~repro.service.controlplane.ValidationService.seal`),
        so ``repro report`` can tell this shutdown from a crash and no
        unsynced record can be lost after the supervisor exits.
        Best-effort per shard: one refusing journal must not block the
        others' clean shutdown.
        """
        for shard in self.shards:
            if shard.state is ShardState.DEGRADED:
                continue
            try:
                shard.service.seal(reason=reason,
                                   extra={"shard": shard.index,
                                          "tick": self.tick_index})
            except (JournalError, ShardCrash):
                continue

    def summary(self) -> dict:
        """Fabric-level health: supervisor counters plus per-shard state."""
        shards = {}
        for shard in self.shards:
            metrics = shard.service.metrics
            shards[f"shard-{shard.index:02d}"] = {
                "state": shard.state.value,
                "owned_nodes": len(shard.node_ids),
                "restarts": shard.restarts,
                "queue_depth": len(shard.service.queue),
                "events_processed": metrics.events_processed,
                "events_shed": metrics.events_shed,
                "events_dead_lettered": metrics.events_dead_lettered,
                "handed_off": len(shard.service.handed_off),
            }
        return {
            "tick_index": self.tick_index,
            **self.metrics.summary(),
            "shards": shards,
        }
