"""Durable, parallel validation control plane (the operational layer).

The paper runs SuperBench/ANUBIS as a long-lived service wired into a
cluster orchestrator; this subpackage supplies that missing layer
around the in-process facade:

``repro.service.queue``
    Risk-prioritized, coalescing event queue with a dead-letter side
    for poison events.
``repro.service.pool``
    Parallel benchmark executor with timeouts, retries, crash
    isolation and per-benchmark circuit breakers.
``repro.service.lifecycle``
    Enforced node state machine (HEALTHY -> SCHEDULED -> VALIDATING ->
    QUARANTINED -> IN_REPAIR -> RETURNING) plus flap damping.
``repro.service.store``
    Append-only, CRC32-checksummed JSONL journal with embedded
    criteria snapshots, optional fsync and atomic compaction.
``repro.service.controlplane``
    :class:`ValidationService` -- the tick/drain orchestrator with
    per-event metrics, failure containment and kill-and-restart
    recovery.
``repro.service.shard``
    Consistent-hash partitioning of the fleet into isolated failure
    domains, each a full control plane over its own journal.
``repro.service.supervisor``
    The supervision tree: per-shard watchdogs, restart backoff,
    degradation with journaled cross-shard handoff, and the global
    risk-priority scheduler.
``repro.service.procfabric``
    The process-isolated fabric: one OS process per shard, a
    length-prefixed JSON pipe protocol, PID/deadline liveness, and
    graceful signal-driven drain -- real crash containment.
``repro.service.chaos``
    Deterministic, seeded fault injection against all of the above,
    including shard-level faults against the supervised fabric and
    real-signal (``SIGKILL``/``SIGSTOP``) plans for the process
    fabric.
"""

from repro.service.chaos import (
    ChaosJournalStore,
    ChaosMonkey,
    ChaosPlan,
    ChaosRunner,
    ProcessChaosPlan,
    ShardChaosJournalStore,
    ShardChaosMonkey,
    ShardChaosPlan,
    ShardCrash,
    SimulatedKill,
    install_chaos,
    install_shard_chaos,
)
from repro.service.controlplane import (
    ServiceConfig,
    ServiceMetrics,
    TickResult,
    ValidationService,
)
from repro.service.lifecycle import (
    LEGAL_TRANSITIONS,
    FlapDamper,
    NodeLifecycle,
    NodeState,
    Transition,
)
from repro.service.pool import (
    BenchmarkRun,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
    PoolConfig,
    SweepResult,
    ValidationPool,
)
from repro.service.procfabric import (
    PARENT_ORIGIN,
    ProcessFabric,
    ProcessFabricMetrics,
    QueueState,
    WorkerDied,
    WorkerFault,
    WorkerSpec,
    WorkerUnresponsive,
    default_builder,
    replay_queue_state,
)
from repro.service.queue import DeadLetter, EventQueue, QueuedEvent
from repro.service.shard import HashRing, Shard, ShardState
from repro.service.store import (
    JournalRecord,
    JournalStore,
    event_from_payload,
    event_to_payload,
)
from repro.service.supervisor import (
    ShardSupervisor,
    SupervisorConfig,
    SupervisorMetrics,
)

__all__ = [
    "BenchmarkRun",
    "BreakerState",
    "BreakerTransition",
    "ChaosJournalStore",
    "ChaosMonkey",
    "ChaosPlan",
    "ChaosRunner",
    "CircuitBreaker",
    "DeadLetter",
    "EventQueue",
    "FlapDamper",
    "HashRing",
    "JournalRecord",
    "JournalStore",
    "LEGAL_TRANSITIONS",
    "NodeLifecycle",
    "NodeState",
    "PARENT_ORIGIN",
    "PoolConfig",
    "ProcessChaosPlan",
    "ProcessFabric",
    "ProcessFabricMetrics",
    "QueueState",
    "QueuedEvent",
    "ServiceConfig",
    "ServiceMetrics",
    "Shard",
    "ShardChaosJournalStore",
    "ShardChaosMonkey",
    "ShardChaosPlan",
    "ShardCrash",
    "ShardState",
    "ShardSupervisor",
    "SimulatedKill",
    "SupervisorConfig",
    "SupervisorMetrics",
    "SweepResult",
    "TickResult",
    "Transition",
    "ValidationPool",
    "ValidationService",
    "WorkerDied",
    "WorkerFault",
    "WorkerSpec",
    "WorkerUnresponsive",
    "default_builder",
    "event_from_payload",
    "event_to_payload",
    "install_chaos",
    "install_shard_chaos",
    "replay_queue_state",
]
