"""Durable, parallel validation control plane (the operational layer).

The paper runs SuperBench/ANUBIS as a long-lived service wired into a
cluster orchestrator; this subpackage supplies that missing layer
around the in-process facade:

``repro.service.queue``
    Risk-prioritized, coalescing event queue.
``repro.service.pool``
    Parallel benchmark executor with timeouts, retries and crash
    isolation.
``repro.service.lifecycle``
    Enforced node state machine (HEALTHY -> SCHEDULED -> VALIDATING ->
    QUARANTINED -> IN_REPAIR -> RETURNING).
``repro.service.store``
    Append-only JSONL journal with embedded criteria snapshots.
``repro.service.controlplane``
    :class:`ValidationService` -- the tick/drain orchestrator with
    per-event metrics and kill-and-restart recovery.
"""

from repro.service.controlplane import (
    ServiceConfig,
    ServiceMetrics,
    TickResult,
    ValidationService,
)
from repro.service.lifecycle import (
    LEGAL_TRANSITIONS,
    NodeLifecycle,
    NodeState,
    Transition,
)
from repro.service.pool import (
    BenchmarkRun,
    PoolConfig,
    SweepResult,
    ValidationPool,
)
from repro.service.queue import EventQueue, QueuedEvent
from repro.service.store import (
    JournalRecord,
    JournalStore,
    event_from_payload,
    event_to_payload,
)

__all__ = [
    "BenchmarkRun",
    "EventQueue",
    "JournalRecord",
    "JournalStore",
    "LEGAL_TRANSITIONS",
    "NodeLifecycle",
    "NodeState",
    "PoolConfig",
    "QueuedEvent",
    "ServiceConfig",
    "ServiceMetrics",
    "SweepResult",
    "TickResult",
    "Transition",
    "ValidationPool",
    "ValidationService",
    "event_from_payload",
    "event_to_payload",
]
