"""The validation control plane: a durable service around Anubis.

:class:`ValidationService` turns the synchronous
:class:`~repro.core.system.Anubis` facade into the operational loop
the paper deploys (§3.1 Figure 7, §4): orchestration events are
*submitted* into a risk-prioritized queue (coalescing repeats), a
``tick`` pops the riskiest event, applies exactly the facade's policy
via :meth:`Anubis.plan`, executes it on the parallel
:class:`~repro.service.pool.ValidationPool`, and walks every touched
node through the enforced lifecycle state machine.  All of it is
journaled through :class:`~repro.service.store.JournalStore`, so a
killed service recovers its queue, lifecycle states, learned criteria
and coverage history from disk.

The service separates three clocks deliberately:

* *queue latency* -- submit to pop, per event;
* *validation wall-clock* -- parallel sweep duration, per event;
* *repair pipeline* -- quarantined nodes advance one lifecycle stage
  per tick (QUARANTINED -> IN_REPAIR -> RETURNING -> HEALTHY),
  mirroring the hot-buffer swap flow without wall-clock coupling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.persistence import apply_criteria_payload, criteria_payload
from repro.core.system import (
    FULL_VALIDATION_KINDS,
    Anubis,
    EventKind,
    ValidationEvent,
    ValidationOutcome,
)
from repro.core.validator import ValidationReport, Violation
from repro.exceptions import ServiceError
from repro.service.lifecycle import NodeLifecycle, NodeState
from repro.service.pool import PoolConfig, ValidationPool
from repro.service.queue import EventQueue, QueuedEvent
from repro.service.store import (
    JournalStore,
    event_from_payload,
    event_to_payload,
)

__all__ = ["ServiceConfig", "ServiceMetrics", "TickResult", "ValidationService"]

#: Lifecycle stages a node moves through after quarantine, advanced
#: one stage per tick (later stages first so one tick moves one stage).
_REPAIR_PIPELINE = (
    (NodeState.RETURNING, NodeState.HEALTHY, "repair-complete"),
    (NodeState.IN_REPAIR, NodeState.RETURNING, "repair-finished"),
    (NodeState.QUARANTINED, NodeState.IN_REPAIR, "repair-started"),
)


@dataclass(frozen=True)
class ServiceConfig:
    """Control-plane knobs.

    Attributes
    ----------
    pool:
        Parallel-executor configuration.
    snapshot_every:
        Journal a fresh criteria snapshot every N completed events
        (cheap insurance against criteria refreshed out-of-band).
    full_validation_priority:
        Queue priority for kinds that bypass the Selector
        (incident-reported, node-added, software-upgraded); above the
        [0, 1] probability range so they always jump the queue.
    """

    pool: PoolConfig = field(default_factory=PoolConfig)
    snapshot_every: int = 25
    full_validation_priority: float = 2.0

    def __post_init__(self):
        if self.snapshot_every < 1:
            raise ServiceError("snapshot_every must be at least 1")


@dataclass
class ServiceMetrics:
    """Aggregate per-event service statistics."""

    events_submitted: int = 0
    events_coalesced: int = 0
    events_processed: int = 0
    policy_skips: int = 0
    validations_run: int = 0
    nodes_validated: int = 0
    nodes_quarantined: int = 0
    queue_latencies: list[float] = field(default_factory=list)
    validation_seconds: list[float] = field(default_factory=list)

    @property
    def defect_rate(self) -> float:
        """Quarantined node-slots per validated node-slot."""
        return self.nodes_quarantined / max(self.nodes_validated, 1)

    def summary(self) -> dict:
        latencies = self.queue_latencies
        walls = self.validation_seconds
        return {
            "events_submitted": self.events_submitted,
            "events_coalesced": self.events_coalesced,
            "events_processed": self.events_processed,
            "policy_skips": self.policy_skips,
            "validations_run": self.validations_run,
            "nodes_validated": self.nodes_validated,
            "nodes_quarantined": self.nodes_quarantined,
            "defect_rate": self.defect_rate,
            "queue_latency_mean_s": (sum(latencies) / len(latencies)
                                     if latencies else 0.0),
            "queue_latency_max_s": max(latencies, default=0.0),
            "validation_mean_s": (sum(walls) / len(walls) if walls else 0.0),
            "validation_total_s": sum(walls),
        }

    def format_table(self) -> str:
        summary = self.summary()
        lines = []
        for key, value in summary.items():
            if isinstance(value, float):
                lines.append(f"{key:<24} {value:.4f}")
            else:
                lines.append(f"{key:<24} {value}")
        return "\n".join(lines)


@dataclass
class TickResult:
    """What one tick did."""

    event_id: int
    outcome: ValidationOutcome
    queue_latency_seconds: float
    validation_seconds: float
    quarantined: list[str] = field(default_factory=list)
    skipped_nodes: list[str] = field(default_factory=list)


class ValidationService:
    """Durable, parallel control plane around one Anubis facade.

    Parameters
    ----------
    anubis:
        The policy facade (Validator + Selector).  The service drives
        :meth:`Anubis.plan` and :meth:`Anubis.record` so the facade's
        history and summary stay authoritative.
    nodes:
        The fleet this service validates; journaled events reference
        these nodes by id.
    journal_dir:
        Directory for the journal; ``None`` runs purely in memory.
        When the directory already holds a journal, the service
        recovers queue, lifecycle, criteria and coverage from it.
    config:
        Control-plane knobs; see :class:`ServiceConfig`.
    clock:
        Monotonic-seconds source (injectable for tests).
    """

    def __init__(self, anubis: Anubis, nodes, *, journal_dir=None,
                 config: ServiceConfig | None = None, clock=time.monotonic):
        self.anubis = anubis
        self.fleet_index = {node.node_id: node for node in nodes}
        self.config = config or ServiceConfig()
        self.clock = clock
        self.queue = EventQueue()
        self.lifecycle = NodeLifecycle()
        self.pool = ValidationPool(self.config.pool)
        self.metrics = ServiceMetrics()
        self._completed_since_snapshot = 0
        self._have_snapshot = False
        self._recovering = False
        self.store = (JournalStore(journal_dir)
                      if journal_dir is not None else None)
        if self.store is not None:
            self._recover()
            self._maybe_snapshot(force=not self._have_snapshot)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def submit(self, event: ValidationEvent) -> QueuedEvent:
        """Queue one orchestration event, risk-prioritized.

        Repeat events for the same (kind, node set) coalesce into the
        already-pending entry.  Healthy nodes move to SCHEDULED.
        """
        for node in event.nodes:
            if node.node_id not in self.fleet_index:
                raise ServiceError(
                    f"event references node {node.node_id!r} outside the "
                    f"service fleet")
        priority = self._priority(event)
        entry, created = self.queue.push(event, priority,
                                         enqueued_at=self.clock())
        self.metrics.events_submitted += 1
        if created:
            self._journal("event-enqueued", {
                "event_id": entry.event_id,
                "priority": entry.priority,
                "event": event_to_payload(event),
            })
            for node in event.nodes:
                if self.lifecycle.state(node.node_id) is NodeState.HEALTHY:
                    self._transition(node.node_id, NodeState.SCHEDULED,
                                     reason=f"event-{entry.event_id}")
        else:
            self.metrics.events_coalesced += 1
            self._journal("event-coalesced", {
                "event_id": entry.event_id,
                "priority": entry.priority,
                "duration_hours": entry.event.duration_hours,
            })
        return entry

    def schedule_periodic(self, statuses, *,
                          lookahead_hours: float = 24.0) -> QueuedEvent | None:
        """Enqueue one PERIODIC event for nodes due re-validation.

        Runs the Selector's regular-validation check (§3.1 step 1) over
        ``statuses`` and submits a single event covering every node
        whose predicted risk crossed p0.  Returns ``None`` when no
        node is due.
        """
        due = self.anubis.selector.nodes_due_for_regular_validation(
            list(statuses), lookahead_hours)
        due = [s for s in due
               if self.lifecycle.state(s.node_id) is NodeState.HEALTHY]
        if not due:
            return None
        event = ValidationEvent(
            kind=EventKind.PERIODIC,
            nodes=tuple(self.fleet_index[s.node_id] for s in due),
            statuses=tuple(due),
            duration_hours=lookahead_hours,
        )
        return self.submit(event)

    def _priority(self, event: ValidationEvent) -> float:
        if event.kind in FULL_VALIDATION_KINDS:
            return self.config.full_validation_priority
        if not event.statuses:
            return 0.0
        probs = self.anubis.selector.incident_probabilities(
            list(event.statuses), event.duration_hours)
        return float(probs.max()) if probs.size else 0.0

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------
    def tick(self) -> TickResult | None:
        """Advance repairs one stage, then process the riskiest event.

        Returns ``None`` when the queue was empty (repairs still
        advanced).
        """
        self._advance_repairs()
        entry = self.queue.pop()
        if entry is None:
            return None
        queue_latency = max(self.clock() - entry.enqueued_at, 0.0)
        event = entry.event

        eligible = []
        skipped_nodes = []
        for node in event.nodes:
            # HEALTHY is eligible too: an overlapping earlier event may
            # have validated the node and returned it to the pool while
            # this event sat queued.
            if self.lifecycle.state(node.node_id) in (NodeState.SCHEDULED,
                                                      NodeState.HEALTHY):
                eligible.append(node)
            else:
                # Node drifted into the repair pipeline while the event
                # was queued; validating it now would be illegal.
                skipped_nodes.append(node.node_id)

        plan = self.anubis.plan(event)
        validation_seconds = 0.0
        quarantined: list[str] = []
        if not plan.validates or not eligible:
            for node in eligible:
                if self.lifecycle.state(node.node_id) is NodeState.SCHEDULED:
                    self._transition(node.node_id, NodeState.HEALTHY,
                                     reason="selector-skip")
            outcome = ValidationOutcome(event=event, selection=plan.selection,
                                        report=None)
            self.metrics.policy_skips += 1
        else:
            for node in eligible:
                if self.lifecycle.state(node.node_id) is NodeState.HEALTHY:
                    self._transition(node.node_id, NodeState.SCHEDULED,
                                     reason=f"event-{entry.event_id}")
                self._transition(node.node_id, NodeState.VALIDATING,
                                 reason=f"event-{entry.event_id}")
            started = self.clock()
            report, _sweeps = self.pool.validate(
                self.anubis.validator, eligible, plan.benchmarks)
            validation_seconds = max(self.clock() - started, 0.0)
            self.anubis.selector.record_validation(report)
            outcome = ValidationOutcome(
                event=event, selection=plan.selection, report=report,
                defective_node_ids=report.defective_nodes,
            )
            defective = set(report.defective_nodes)
            for node in eligible:
                if node.node_id in defective:
                    self._transition(node.node_id, NodeState.QUARANTINED,
                                     reason=f"event-{entry.event_id}")
                    quarantined.append(node.node_id)
                else:
                    self._transition(node.node_id, NodeState.HEALTHY,
                                     reason="validation-passed")
            self.metrics.validations_run += 1
            self.metrics.nodes_validated += len(eligible)
            self.metrics.nodes_quarantined += len(quarantined)
            self.metrics.validation_seconds.append(validation_seconds)

        self.anubis.record(outcome)
        self.metrics.events_processed += 1
        self.metrics.queue_latencies.append(queue_latency)
        self._journal("event-completed", {
            "event_id": entry.event_id,
            "kind": event.kind.value,
            "skipped": outcome.skipped,
            "validated_nodes": (list(outcome.report.validated_nodes)
                                if outcome.report else []),
            "benchmarks_run": (list(outcome.report.benchmarks_run)
                               if outcome.report else []),
            "violations": ([[v.node_id, v.benchmark, v.metric, v.reason]
                            for v in outcome.report.violations]
                           if outcome.report else []),
            "defective": list(outcome.defective_node_ids),
            "queue_latency_seconds": queue_latency,
            "validation_seconds": validation_seconds,
        })
        self._completed_since_snapshot += 1
        if self._completed_since_snapshot >= self.config.snapshot_every:
            self._maybe_snapshot(force=True)
        return TickResult(
            event_id=entry.event_id,
            outcome=outcome,
            queue_latency_seconds=queue_latency,
            validation_seconds=validation_seconds,
            quarantined=quarantined,
            skipped_nodes=skipped_nodes,
        )

    def drain(self, *, max_ticks: int = 100_000) -> list[TickResult]:
        """Tick until the queue is empty and every repair completed."""
        results: list[TickResult] = []
        for _ in range(max_ticks):
            result = self.tick()
            if result is not None:
                results.append(result)
                continue
            if not self._repairs_in_flight():
                return results
        raise ServiceError(f"drain did not converge in {max_ticks} ticks")

    def _repairs_in_flight(self) -> bool:
        return any(
            self.lifecycle.nodes_in(state)
            for state in (NodeState.QUARANTINED, NodeState.IN_REPAIR,
                          NodeState.RETURNING)
        )

    def _advance_repairs(self) -> None:
        for current, target, reason in _REPAIR_PIPELINE:
            for node_id in self.lifecycle.nodes_in(current):
                self._transition(node_id, target, reason=reason)

    # ------------------------------------------------------------------
    # Criteria management
    # ------------------------------------------------------------------
    def learn_criteria(self, nodes, benchmarks=None) -> None:
        """Offline criteria learning, snapshotted to the journal."""
        self.anubis.validator.learn_criteria(nodes, benchmarks)
        self._maybe_snapshot(force=True)

    def _maybe_snapshot(self, *, force: bool = False) -> None:
        if self.store is None or self._recovering:
            return
        if not self.anubis.validator.criteria:
            return
        if not force:
            return
        self.store.append("criteria-snapshot",
                          criteria_payload(self.anubis.validator))
        self._have_snapshot = True
        self._completed_since_snapshot = 0

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _journal(self, kind: str, payload: dict) -> None:
        if self.store is not None and not self._recovering:
            self.store.append(kind, payload)

    def _transition(self, node_id: str, new: NodeState, *,
                    reason: str = "") -> None:
        applied = self.lifecycle.transition(node_id, new, reason=reason)
        self._journal("transition", {
            "node_id": node_id,
            "old": applied.old.value,
            "new": applied.new.value,
            "reason": reason,
        })

    def _recover(self) -> None:
        """Rebuild queue, lifecycle, criteria and coverage from disk."""
        records = self.store.replay()
        if not records:
            return
        self._recovering = True
        pending: dict[int, dict] = {}
        max_event_id = 0
        try:
            for record in records:
                payload = record.payload
                if record.kind == "criteria-snapshot":
                    apply_criteria_payload(self.anubis.validator, payload,
                                           source=str(self.store.path))
                    self._have_snapshot = True
                elif record.kind == "transition":
                    self.lifecycle.transition(
                        payload["node_id"], NodeState(payload["new"]),
                        reason=payload.get("reason", ""))
                elif record.kind == "event-enqueued":
                    event_id = int(payload["event_id"])
                    max_event_id = max(max_event_id, event_id)
                    pending[event_id] = {
                        "event": payload["event"],
                        "priority": float(payload["priority"]),
                    }
                elif record.kind == "event-coalesced":
                    event_id = int(payload["event_id"])
                    if event_id in pending:
                        pending[event_id]["priority"] = max(
                            pending[event_id]["priority"],
                            float(payload["priority"]))
                        pending[event_id]["event"]["duration_hours"] = max(
                            float(pending[event_id]["event"]["duration_hours"]),
                            float(payload.get("duration_hours", 0.0)))
                elif record.kind == "event-completed":
                    event_id = int(payload["event_id"])
                    max_event_id = max(max_event_id, event_id)
                    pending.pop(event_id, None)
                    self._replay_completed(payload)
            for event_id in sorted(pending):
                info = pending[event_id]
                event = event_from_payload(info["event"], self.fleet_index)
                self.queue.push(event, info["priority"], event_id=event_id,
                                enqueued_at=self.clock())
            self.queue.reserve_ids(max_event_id)
        finally:
            self._recovering = False

    def _replay_completed(self, payload: dict) -> None:
        """Re-apply one completed event's side effects (coverage,
        aggregate metrics) without re-running anything."""
        self.metrics.events_processed += 1
        self.metrics.queue_latencies.append(
            float(payload.get("queue_latency_seconds", 0.0)))
        if payload.get("skipped", False):
            self.metrics.policy_skips += 1
            return
        report = ValidationReport(
            validated_nodes=list(payload.get("validated_nodes", [])),
            benchmarks_run=list(payload.get("benchmarks_run", [])),
            violations=[
                Violation(node_id=v[0], benchmark=v[1], metric=v[2],
                          similarity=0.0, reason=v[3])
                for v in payload.get("violations", [])
            ],
        )
        self.anubis.selector.record_validation(report)
        self.metrics.validations_run += 1
        self.metrics.nodes_validated += len(report.validated_nodes)
        self.metrics.nodes_quarantined += len(payload.get("defective", []))
        self.metrics.validation_seconds.append(
            float(payload.get("validation_seconds", 0.0)))
