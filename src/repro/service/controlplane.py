"""The validation control plane: a durable service around Anubis.

:class:`ValidationService` turns the synchronous
:class:`~repro.core.system.Anubis` facade into the operational loop
the paper deploys (§3.1 Figure 7, §4): orchestration events are
*submitted* into a risk-prioritized queue (coalescing repeats), a
``tick`` pops the riskiest event, applies exactly the facade's policy
via :meth:`Anubis.plan`, executes it on the parallel
:class:`~repro.service.pool.ValidationPool`, and walks every touched
node through the enforced lifecycle state machine.  All of it is
journaled through :class:`~repro.service.store.JournalStore`, so a
killed service recovers its queue, lifecycle states, learned criteria
and coverage history from disk.

The service separates three clocks deliberately:

* *queue latency* -- submit to pop, per event;
* *validation wall-clock* -- parallel sweep duration, per event;
* *repair pipeline* -- quarantined nodes advance one lifecycle stage
  per tick (QUARANTINED -> IN_REPAIR -> RETURNING -> HEALTHY),
  mirroring the hot-buffer swap flow without wall-clock coupling.

The paper's premise cuts both ways: a validator policing a
gray-failing fleet must itself survive the failure modes it detects
(§3.4 counts crashes and hangs as defects).  The control plane is
therefore hardened against its *own* machinery failing:

* a tick that raises (journal write fault, poison event, injected
  chaos) releases the event's nodes, re-queues the event, and after
  ``max_event_attempts`` failed ticks parks it in the dead-letter
  queue instead of retrying forever;
* repair-stage failures are absorbed and retried next tick;
* nodes that flap through quarantine are held down exponentially
  (:class:`~repro.service.lifecycle.FlapDamper`);
* recovery resets nodes stranded in VALIDATING/SCHEDULED by a
  mid-tick crash, and replays transitions *forced* so a journal
  record lost to a write fault cannot wedge a restart;
* ``compact_every`` bounds journal growth by periodically rewriting
  it as a state snapshot plus the still-pending events.

Event processing is **at-least-once**: a crash after validation ran
but before its completion record landed re-runs the event on
recovery.  Re-validation is safe -- it touches no cluster state
beyond coverage counters and may re-quarantine an already-defective
node, which the lifecycle absorbs.

Fault injection for all of this lives in
:mod:`repro.service.chaos`; the ``tick_hook`` / ``repair_hook``
attributes are its (and any test's) seams into the loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.persistence import apply_criteria_payload, criteria_payload
from repro.core.system import (
    FULL_VALIDATION_KINDS,
    Anubis,
    EventKind,
    ValidationEvent,
    ValidationOutcome,
)
from repro.core.validator import ValidationReport, Violation
from repro.exceptions import JournalError, ServiceError
from repro.quality.rollout import RolloutDecision, evaluate_rollout
from repro.service.lifecycle import FlapDamper, NodeLifecycle, NodeState
from repro.service.pool import PoolConfig, ValidationPool
from repro.service.queue import DeadLetter, EventQueue, QueuedEvent
from repro.service.store import JournalStore, RecordKind

__all__ = ["ServiceConfig", "ServiceMetrics", "TickResult", "ValidationService"]

#: Lifecycle stages a node moves through after quarantine, advanced
#: one stage per tick (later stages first so one tick moves one stage).
_REPAIR_PIPELINE = (
    (NodeState.RETURNING, NodeState.HEALTHY, "repair-complete"),
    (NodeState.IN_REPAIR, NodeState.RETURNING, "repair-finished"),
    (NodeState.QUARANTINED, NodeState.IN_REPAIR, "repair-started"),
)

#: Integer metric counters carried through snapshot compaction.
_SNAPSHOT_METRIC_FIELDS = (
    "events_submitted", "events_coalesced", "events_processed",
    "policy_skips", "validations_run", "nodes_validated",
    "nodes_quarantined", "tick_failures", "events_dead_lettered",
    "repair_failures", "events_shed",
)


@dataclass(frozen=True)
class ServiceConfig:
    """Control-plane knobs.

    Attributes
    ----------
    pool:
        Parallel-executor configuration (including circuit breakers).
    snapshot_every:
        Journal a fresh criteria snapshot every N completed events
        (cheap insurance against criteria refreshed out-of-band).
    full_validation_priority:
        Queue priority for kinds that bypass the Selector
        (incident-reported, node-added, software-upgraded); above the
        [0, 1] probability range so they always jump the queue.
    max_event_attempts:
        Failed processing attempts before an event is parked in the
        dead-letter queue instead of retried (1 = no retries).
    max_queue_depth:
        Bound on distinct pending queue entries.  When a submit would
        leave more than this many entries pending, admission control
        sheds the lowest-risk entry (journaled as ``LOAD_SHED``) so
        overload degrades coverage gracefully instead of growing
        memory without bound.  ``None`` (the default) keeps the queue
        unbounded -- exactly the pre-backpressure behavior.
    journal_fsync:
        Force every journal append to stable storage (durability over
        throughput); the default flushes to the OS only.
    compact_every:
        Rewrite the journal as a snapshot every N completed events so
        recovery cost and disk use stay bounded; ``None`` disables
        compaction.
    flap_base_holddown_ticks / flap_multiplier / flap_max_holddown_ticks:
        Exponential hold-down for nodes flapping through quarantine:
        the K-th quarantine holds the node for
        ``base * multiplier**(K-1)`` ticks, capped.
    flap_forgive_after_ticks:
        Quarantine-free ticks after which a node's flap count is
        forgiven; ``None`` never forgives.
    sanitizer:
        Optional :class:`repro.quality.Sanitizer`; when set, every
        benchmark result entering the service (pool sweeps and the
        validator's own runs) crosses telemetry sanitization, and the
        shared ledger accumulates quarantine provenance.
    rollout:
        Optional :class:`repro.quality.RolloutConfig`; when set,
        :meth:`ValidationService.learn_criteria` shadow-evaluates
        every freshly learned criteria before activation and rolls
        back (journaled) candidates that would blow the eviction
        budget.  ``None`` activates new criteria unconditionally.
    """

    pool: PoolConfig = field(default_factory=PoolConfig)
    snapshot_every: int = 25
    full_validation_priority: float = 2.0
    max_event_attempts: int = 3
    max_queue_depth: int | None = None
    journal_fsync: bool = False
    compact_every: int | None = None
    flap_base_holddown_ticks: int = 1
    flap_multiplier: float = 2.0
    flap_max_holddown_ticks: int = 32
    flap_forgive_after_ticks: int | None = None
    sanitizer: object | None = None
    rollout: object | None = None

    def __post_init__(self):
        if self.snapshot_every < 1:
            raise ServiceError("snapshot_every must be at least 1")
        if self.max_event_attempts < 1:
            raise ServiceError("max_event_attempts must be at least 1")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ServiceError("max_queue_depth must be at least 1")
        if self.compact_every is not None and self.compact_every < 1:
            raise ServiceError("compact_every must be at least 1")

    def build_damper(self) -> FlapDamper:
        """The flap damper these knobs describe (validates them too)."""
        return FlapDamper(
            base_holddown_ticks=self.flap_base_holddown_ticks,
            multiplier=self.flap_multiplier,
            max_holddown_ticks=self.flap_max_holddown_ticks,
            forgive_after_ticks=self.flap_forgive_after_ticks,
        )


@dataclass
class ServiceMetrics:
    """Aggregate per-event service statistics."""

    events_submitted: int = 0
    events_coalesced: int = 0
    events_processed: int = 0
    policy_skips: int = 0
    validations_run: int = 0
    nodes_validated: int = 0
    nodes_quarantined: int = 0
    tick_failures: int = 0
    events_dead_lettered: int = 0
    repair_failures: int = 0
    events_shed: int = 0
    journal_compactions: int = 0
    queue_latencies: list[float] = field(default_factory=list)
    validation_seconds: list[float] = field(default_factory=list)

    @property
    def defect_rate(self) -> float:
        """Quarantined node-slots per validated node-slot."""
        return self.nodes_quarantined / max(self.nodes_validated, 1)

    def summary(self) -> dict:
        latencies = self.queue_latencies
        walls = self.validation_seconds
        return {
            "events_submitted": self.events_submitted,
            "events_coalesced": self.events_coalesced,
            "events_processed": self.events_processed,
            "policy_skips": self.policy_skips,
            "validations_run": self.validations_run,
            "nodes_validated": self.nodes_validated,
            "nodes_quarantined": self.nodes_quarantined,
            "tick_failures": self.tick_failures,
            "events_dead_lettered": self.events_dead_lettered,
            "repair_failures": self.repair_failures,
            "events_shed": self.events_shed,
            "journal_compactions": self.journal_compactions,
            "defect_rate": self.defect_rate,
            "queue_latency_mean_s": (sum(latencies) / len(latencies)
                                     if latencies else 0.0),
            "queue_latency_max_s": max(latencies, default=0.0),
            "validation_mean_s": (sum(walls) / len(walls) if walls else 0.0),
            "validation_total_s": sum(walls),
        }

    def format_table(self) -> str:
        # Function-level import: analytics sits above the service layer
        # in the import graph (analytics.reader imports service.store).
        from repro.analytics.report import kv_table
        return kv_table(self.summary())


@dataclass
class TickResult:
    """What one tick did.

    ``failed`` ticks carry no outcome: the event's processing raised,
    its nodes were released, and the event was re-queued (or
    dead-lettered once out of attempts).
    """

    event_id: int
    outcome: ValidationOutcome | None
    queue_latency_seconds: float
    validation_seconds: float
    quarantined: list[str] = field(default_factory=list)
    skipped_nodes: list[str] = field(default_factory=list)
    failed: bool = False
    error: str | None = None


class ValidationService:
    """Durable, parallel control plane around one Anubis facade.

    Parameters
    ----------
    anubis:
        The policy facade (Validator + Selector).  The service drives
        :meth:`Anubis.plan` and :meth:`Anubis.record` so the facade's
        history and summary stay authoritative.
    nodes:
        The fleet this service validates; journaled events reference
        these nodes by id.
    journal_dir:
        Directory for the journal; ``None`` runs purely in memory.
        When the directory already holds a journal, the service
        recovers queue, lifecycle, criteria and coverage from it.
    config:
        Control-plane knobs; see :class:`ServiceConfig`.
    clock:
        Monotonic-seconds source (injectable for tests).

    Attributes
    ----------
    tick_hook:
        Optional callable ``(entry) -> None`` invoked after an event
        is popped, before processing; raising fails the tick.  Fault
        injection seam (see :mod:`repro.service.chaos`).
    repair_hook:
        Optional callable ``(node_id, target_state) -> None`` invoked
        before each repair-pipeline advance; raising skips the
        advance for this tick (retried next tick).
    """

    def __init__(self, anubis: Anubis, nodes, *, journal_dir=None,
                 config: ServiceConfig | None = None, clock=time.monotonic):
        self.anubis = anubis
        self.fleet_index = {node.node_id: node for node in nodes}
        self.config = config or ServiceConfig()
        self.clock = clock
        self.queue = EventQueue()
        self.lifecycle = NodeLifecycle()
        self.damper = self.config.build_damper()
        self.pool = ValidationPool(self.config.pool,
                                   sanitizer=self.config.sanitizer)
        # One sanitization crossing per result: the validator's own
        # runner gets the service sanitizer unless it brought its own
        # (in which case the pool defers to it, see ValidationPool).
        if (self.config.sanitizer is not None
                and getattr(self.anubis.validator.runner, "sanitizer",
                            None) is None):
            self.anubis.validator.runner.sanitizer = self.config.sanitizer
        self.metrics = ServiceMetrics()
        self.tick_hook = None
        self.repair_hook = None
        #: Handoff payloads journaled by :meth:`record_handoff` (or
        #: replayed from SHARD_HANDOFF records), keyed by event id.
        #: The supervisor reconciles these against sibling shards'
        #: :attr:`origins_seen` after a restart.
        self.handed_off: dict[int, dict] = {}
        #: Every ``(source_shard, source_event_id)`` handoff marker
        #: this service has durably accepted -- the dedupe set that
        #: makes handoff re-delivery idempotent.
        self.origins_seen: set[tuple[int, int]] = set()
        # Previous learning windows per (sku, benchmark, metric): the
        # shadow set guarded rollout scores candidates against.  Held
        # in memory only -- after a restart the first re-learn falls
        # back to the bootstrap self-consistency check.
        self._shadow_windows: dict[tuple[str, str, str], list] = {}
        # Node ids whose telemetry changed since the last learn --
        # fed by batch provenance on every validated event, consumed
        # by learn_criteria() to pick the delta vs full re-learn path
        # when the validator runs the incremental engine.
        self._nodes_measured_since_learn: set[str] = set()
        # Per-benchmark count of breaker transitions already journaled.
        self._breaker_seen: dict[str, int] = {}
        self._completed_since_snapshot = 0
        self._completed_since_compaction = 0
        self._have_snapshot = False
        self._recovering = False
        self.store = (JournalStore(journal_dir,
                                   fsync=self.config.journal_fsync)
                      if journal_dir is not None else None)
        if self.store is not None:
            self._recover()
            self._maybe_snapshot(force=not self._have_snapshot)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def submit(self, event: ValidationEvent, *,
               origin: tuple[int, int] | None = None) -> QueuedEvent:
        """Queue one orchestration event, risk-prioritized.

        Repeat events for the same (kind, node set) coalesce into the
        already-pending entry.  Healthy nodes move to SCHEDULED.

        If the enqueue record cannot be journaled, the entry is rolled
        back out of the queue and the error re-raised: an event must
        never be accepted in memory only, or a restart would silently
        drop it.

        ``origin`` marks a cross-shard handoff delivery with the
        source's ``(shard_index, event_id)``; the marker is journaled
        inside the enqueue record and remembered in
        :attr:`origins_seen`, which is how handoff reconciliation
        tells a delivered event from one lost mid-handoff.

        With ``config.max_queue_depth`` set, a submit that leaves the
        queue over its bound sheds the lowest-risk pending entry
        (journaled as ``LOAD_SHED``); the shed victim may be the entry
        just created, which is then returned with ``shed`` set.
        """
        for node in event.nodes:
            if node.node_id not in self.fleet_index:
                raise ServiceError(
                    f"event references node {node.node_id!r} outside the "
                    f"service fleet")
        priority = self._priority(event)
        entry, created = self.queue.push(event, priority,
                                         enqueued_at=self.clock(),
                                         origin=origin)
        if created:
            try:
                self._journal(RecordKind.EVENT_ENQUEUED, entry.to_payload())
            except JournalError:
                self.queue.remove(entry)
                raise
            if entry.origin is not None:
                self.origins_seen.add(entry.origin)
            self.metrics.events_submitted += 1
            for node in event.nodes:
                if self.lifecycle.state(node.node_id) is NodeState.HEALTHY:
                    self._transition(node.node_id, NodeState.SCHEDULED,
                                     reason=f"event-{entry.event_id}")
            self._shed_for_admission()
        else:
            self.metrics.events_submitted += 1
            self.metrics.events_coalesced += 1
            payload = {
                "event_id": entry.event_id,
                "priority": entry.priority,
                "duration_hours": entry.event.duration_hours,
            }
            if origin is not None:
                # A handoff re-delivery that merged into an already
                # pending entry still counts as delivered; the marker
                # must be journaled or a restart would re-deliver.
                payload["origin"] = [int(origin[0]), int(origin[1])]
            self._journal(RecordKind.EVENT_COALESCED, payload)
            if origin is not None:
                self.origins_seen.add((int(origin[0]), int(origin[1])))
        return entry

    def schedule_periodic(self, statuses, *,
                          lookahead_hours: float = 24.0) -> QueuedEvent | None:
        """Enqueue one PERIODIC event for nodes due re-validation.

        Runs the Selector's regular-validation check (§3.1 step 1) over
        ``statuses`` and submits a single event covering every node
        whose predicted risk crossed p0.  Returns ``None`` when no
        node is due.
        """
        due = self.anubis.selector.nodes_due_for_regular_validation(
            list(statuses), lookahead_hours)
        due = [s for s in due
               if self.lifecycle.state(s.node_id) is NodeState.HEALTHY]
        if not due:
            return None
        event = ValidationEvent(
            kind=EventKind.PERIODIC,
            nodes=tuple(self.fleet_index[s.node_id] for s in due),
            statuses=tuple(due),
            duration_hours=lookahead_hours,
        )
        return self.submit(event)

    def _shed_for_admission(self) -> QueuedEvent | None:
        """Enforce ``max_queue_depth`` by shedding the lowest-risk entry.

        The shed is journaled *before* the victim's nodes are
        released, so a restart that replays the ``LOAD_SHED`` record
        drops the entry exactly like the running service did.  If the
        shed record itself cannot be journaled, the victim is
        re-queued (the queue rides over its bound until the journal
        heals) -- shedding in memory only would leave the event
        resurrected-on-restart yet unaccounted while running.
        """
        depth = self.config.max_queue_depth
        if depth is None or len(self.queue) <= depth:
            return None
        victim = self.queue.shed_lowest()
        if victim is None:
            return None
        shed_record = {
            "event_id": victim.event_id,
            "kind": victim.event.kind.value,
            "priority": victim.priority,
            "coalesced": victim.coalesced,
            "reason": "queue-full",
        }
        if not self._journal_best_effort(RecordKind.LOAD_SHED, shed_record):
            victim.shed = False
            self.queue.requeue(victim)
            return None
        self.metrics.events_shed += 1
        covered = {node.node_id
                   for pending in self.queue.pending()
                   for node in pending.event.nodes}
        for node in victim.event.nodes:
            if (node.node_id not in covered
                    and self.lifecycle.state(node.node_id)
                    is NodeState.SCHEDULED):
                self._transition_best_effort(node.node_id, NodeState.HEALTHY,
                                             reason="load-shed")
        return victim

    def record_handoff(self, entry: QueuedEvent, *, to_shard: int) -> None:
        """Journal one pending entry's failover to a sibling shard.

        The supervisor withdraws ``entry`` from this (degraded)
        shard's queue, calls this to durably mark it handed off, then
        submits it to the sibling with ``origin=(this_shard,
        event_id)``.  A kill between those two writes leaves the
        handoff journaled here but undelivered there; recovery
        surfaces it via :attr:`handed_off` and the supervisor
        re-delivers (the sibling's :attr:`origins_seen` absorbs the
        retry, so the event is neither dropped nor duplicated).
        """
        payload = entry.to_payload()
        payload["to_shard"] = int(to_shard)
        self._journal(RecordKind.SHARD_HANDOFF, payload)
        self.handed_off[entry.event_id] = payload
        covered = {node.node_id
                   for pending in self.queue.pending()
                   for node in pending.event.nodes}
        for node in entry.event.nodes:
            if (node.node_id not in covered
                    and self.lifecycle.state(node.node_id)
                    is NodeState.SCHEDULED):
                self._transition_best_effort(node.node_id, NodeState.HEALTHY,
                                             reason="shard-handoff")

    def _priority(self, event: ValidationEvent) -> float:
        if event.kind in FULL_VALIDATION_KINDS:
            return self.config.full_validation_priority
        if not event.statuses:
            return 0.0
        probs = self.anubis.selector.incident_probabilities(
            list(event.statuses), event.duration_hours)
        return float(probs.max()) if probs.size else 0.0

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------
    def tick(self) -> TickResult | None:
        """Advance repairs one stage, then process the riskiest event.

        Returns ``None`` when the queue was empty (repairs still
        advanced).  A processing failure does not propagate: the
        event's nodes are released, the event is re-queued (or
        dead-lettered after ``max_event_attempts``), and a ``failed``
        result is returned.  Only a simulated process kill
        (:class:`~repro.service.chaos.SimulatedKill`, a
        ``BaseException``) escapes, exactly like a real ``kill -9``
        would.
        """
        self._advance_repairs()
        entry = self.queue.pop()
        if entry is None:
            return None
        try:
            if self.tick_hook is not None:
                self.tick_hook(entry)
            return self._process(entry)
        except Exception as error:
            return self._fail_tick(entry, error)

    def _process(self, entry: QueuedEvent) -> TickResult:
        queue_latency = max(self.clock() - entry.enqueued_at, 0.0)
        event = entry.event

        eligible = []
        skipped_nodes = []
        for node in event.nodes:
            # HEALTHY is eligible too: an overlapping earlier event may
            # have validated the node and returned it to the pool while
            # this event sat queued.
            if self.lifecycle.state(node.node_id) in (NodeState.SCHEDULED,
                                                      NodeState.HEALTHY):
                eligible.append(node)
            else:
                # Node drifted into the repair pipeline while the event
                # was queued; validating it now would be illegal.
                skipped_nodes.append(node.node_id)

        plan = self.anubis.plan(event)
        validation_seconds = 0.0
        quarantined: list[str] = []
        short_circuited: list[str] = []
        if not plan.validates or not eligible:
            for node in eligible:
                if self.lifecycle.state(node.node_id) is NodeState.SCHEDULED:
                    self._transition(node.node_id, NodeState.HEALTHY,
                                     reason="selector-skip")
            outcome = ValidationOutcome(event=event, selection=plan.selection,
                                        report=None)
            self.metrics.policy_skips += 1
        else:
            for node in eligible:
                if self.lifecycle.state(node.node_id) is NodeState.HEALTHY:
                    self._transition(node.node_id, NodeState.SCHEDULED,
                                     reason=f"event-{entry.event_id}")
                self._transition(node.node_id, NodeState.VALIDATING,
                                 reason=f"event-{entry.event_id}")
            started = self.clock()
            report, sweeps = self.pool.validate(
                self.anubis.validator, eligible, plan.benchmarks)
            validation_seconds = max(self.clock() - started, 0.0)
            short_circuited = sorted({
                run.benchmark for sweep in sweeps
                for run in sweep.short_circuited_runs})
            self.anubis.selector.record_validation(report)
            self._nodes_measured_since_learn.update(
                node.node_id for node in eligible)
            self._journal_provenance(entry.event_id, sweeps)
            self._journal_breaker_transitions()
            outcome = ValidationOutcome(
                event=event, selection=plan.selection, report=report,
                defective_node_ids=report.defective_nodes,
            )
            defective = set(report.defective_nodes)
            for node in eligible:
                if node.node_id in defective:
                    self._transition(node.node_id, NodeState.QUARANTINED,
                                     reason=f"event-{entry.event_id}")
                    self.damper.record_quarantine(node.node_id)
                    quarantined.append(node.node_id)
                else:
                    self._transition(node.node_id, NodeState.HEALTHY,
                                     reason="validation-passed")
            self.metrics.validations_run += 1
            self.metrics.nodes_validated += len(eligible)
            self.metrics.nodes_quarantined += len(quarantined)
            self.metrics.validation_seconds.append(validation_seconds)

        self.anubis.record(outcome)
        self.metrics.events_processed += 1
        self.metrics.queue_latencies.append(queue_latency)
        self._journal(RecordKind.EVENT_COMPLETED, {
            "event_id": entry.event_id,
            "kind": event.kind.value,
            "duration_hours": event.duration_hours,
            "skipped": outcome.skipped,
            "validated_nodes": (list(outcome.report.validated_nodes)
                                if outcome.report else []),
            "benchmarks_run": (list(outcome.report.benchmarks_run)
                               if outcome.report else []),
            "violations": ([[v.node_id, v.benchmark, v.metric, v.reason,
                             v.sku]
                            for v in outcome.report.violations]
                           if outcome.report else []),
            "defective": list(outcome.defective_node_ids),
            "short_circuited": short_circuited,
            "queue_latency_seconds": queue_latency,
            "validation_seconds": validation_seconds,
        })
        self._completed_since_snapshot += 1
        self._completed_since_compaction += 1
        if (self.config.compact_every is not None
                and self._completed_since_compaction
                >= self.config.compact_every):
            self.compact_journal()
        elif self._completed_since_snapshot >= self.config.snapshot_every:
            self._maybe_snapshot(force=True)
        return TickResult(
            event_id=entry.event_id,
            outcome=outcome,
            queue_latency_seconds=queue_latency,
            validation_seconds=validation_seconds,
            quarantined=quarantined,
            skipped_nodes=skipped_nodes,
        )

    def _fail_tick(self, entry: QueuedEvent, error: Exception) -> TickResult:
        """Contain one failed processing attempt.

        Releases the event's nodes (SCHEDULED/VALIDATING back to
        HEALTHY -- QUARANTINED nodes flagged before the failure keep
        their verdict), then re-queues the event or, once its attempts
        are exhausted, parks it in the dead-letter queue.  Journaling
        here is best-effort: the failure being handled may *be* a
        journal fault, and a lost record is healed by forced replay
        plus the recovery reset.
        """
        self.metrics.tick_failures += 1
        reason = f"{type(error).__name__}: {error}"
        for node in entry.event.nodes:
            if self.lifecycle.state(node.node_id) in (NodeState.SCHEDULED,
                                                      NodeState.VALIDATING):
                self._transition_best_effort(node.node_id, NodeState.HEALTHY,
                                             reason="tick-failed")
        entry.attempts += 1
        if entry.attempts >= self.config.max_event_attempts:
            letter = self.queue.dead_letter(entry, reason)
            self.metrics.events_dead_lettered += 1
            self._journal_best_effort(RecordKind.EVENT_DEAD_LETTERED,
                                      letter.to_payload())
        else:
            self.queue.requeue(entry)
            self._journal_best_effort(RecordKind.EVENT_FAILED, {
                "event_id": entry.event_id,
                "attempts": entry.attempts,
                "error": reason,
            })
        return TickResult(
            event_id=entry.event_id,
            outcome=None,
            queue_latency_seconds=max(self.clock() - entry.enqueued_at, 0.0),
            validation_seconds=0.0,
            failed=True,
            error=reason,
        )

    def drain(self, *, max_ticks: int = 100_000) -> list[TickResult]:
        """Tick until the queue is empty and every repair completed.

        Dead-lettered events do not block draining -- that is the
        point of the dead-letter queue.
        """
        results: list[TickResult] = []
        for _ in range(max_ticks):
            result = self.tick()
            if result is not None:
                results.append(result)
                continue
            if not self._repairs_in_flight():
                return results
        raise ServiceError(f"drain did not converge in {max_ticks} ticks")

    def seal(self, *, reason: str = "drain",
             extra: dict | None = None) -> None:
        """Durably mark a clean shutdown of this service's journal.

        Appends a ``fabric-drain`` record carrying ``reason`` plus a
        small state digest, then fsyncs the journal tail, so (a) a
        journal whose final records include a drain is provably a
        clean shutdown, not a crash, and (b) nothing appended before
        the drain can be lost to the machine afterwards.  Safe to call
        on a journal-less (in-memory) service: it is a no-op.
        """
        if self.store is None:
            return
        payload = {
            "reason": reason,
            "pending": len(self.queue),
            "events_processed": self.metrics.events_processed,
            "dead_letters": len(self.queue.dead_letters()),
        }
        if extra:
            payload.update(extra)
        self._journal_best_effort(RecordKind.FABRIC_DRAIN, payload)
        self.store.sync()

    def dead_letters(self) -> list[DeadLetter]:
        """Parked poison events (inspection API)."""
        return self.queue.dead_letters()

    def advance_repairs(self) -> None:
        """Advance the repair pipeline one stage without processing
        any event.

        The shard supervisor's cross-shard scheduler processes one
        event per supervisor tick (the globally riskiest); every
        *other* running shard still gets its repair pipeline advanced
        through this, so quarantined nodes keep flowing back to
        HEALTHY regardless of which shard holds the riskiest work.
        """
        self._advance_repairs()

    def repairs_in_flight(self) -> bool:
        """Whether any node is still in the repair pipeline."""
        return self._repairs_in_flight()

    def _repairs_in_flight(self) -> bool:
        return any(
            self.lifecycle.nodes_in(state)
            for state in (NodeState.QUARANTINED, NodeState.IN_REPAIR,
                          NodeState.RETURNING)
        )

    def _advance_repairs(self) -> None:
        self.damper.tick()
        for current, target, reason in _REPAIR_PIPELINE:
            for node_id in self.lifecycle.nodes_in(current):
                if (current is NodeState.QUARANTINED
                        and not self.damper.ready(node_id)):
                    continue  # flap hold-down: stay quarantined
                if self.repair_hook is not None:
                    try:
                        self.repair_hook(node_id, target)
                    except Exception:
                        # Repair-stage failure: the node stays at its
                        # current stage and the advance retries next
                        # tick.
                        self.metrics.repair_failures += 1
                        continue
                self._transition_best_effort(node_id, target, reason=reason)

    # ------------------------------------------------------------------
    # Criteria management
    # ------------------------------------------------------------------
    def _resolve_learn_mode(self, nodes) -> str:
        """Pick the incremental engine's learn-mode hint from provenance.

        First learn (no engine state yet) resolves ``"auto"`` -- the
        engine's own state machine picks exact vs full.  On a re-learn,
        the set of nodes that produced new telemetry since the last
        learn (tracked from validated events) bounds how many windows
        can have changed: at or below the engine's ``delta_threshold``
        the service hints ``"delta"`` (the engine still falls back to
        full when structurally ineligible), above it ``"full"`` --
        there is no point fingerprint-diffing a mostly-changed fleet.
        """
        validator = self.anubis.validator
        if validator.incremental is None or not validator.criteria_states:
            return "auto"
        node_ids = {node.node_id for node in nodes}
        changed = len(node_ids & self._nodes_measured_since_learn)
        if changed <= validator.incremental.delta_threshold * len(node_ids):
            return "delta"
        return "full"

    def learn_criteria(self, nodes, benchmarks=None, *,
                       mode: str | None = None) -> list[RolloutDecision]:
        """Offline criteria learning with guarded rollout.

        Freshly learned criteria are *candidates*: with a rollout guard
        configured (``config.rollout``), each candidate is
        shadow-evaluated against the *previous* learning window
        (:func:`repro.quality.rollout.evaluate_rollout`) before it goes
        live -- scoring against the previous window is what catches
        coherent telemetry poisoning, where the new windows and the
        criteria learned from them agree perfectly with each other and
        with nothing else.  Without a previous window (first learn, or
        first re-learn after a restart) the candidate is checked for
        self-consistency against its own windows under the bootstrap
        eviction cap.

        A rejected candidate is rolled back to the previously active
        criteria -- the journal records the rollback, so a restart
        recovers the active criteria, never the poisoned candidate --
        and its windows are discarded (the shadow set keeps the last
        *trusted* window).  The post-learn snapshot captures only what
        survived the guard.  Returns the per-(benchmark, metric)
        decisions (empty without a guard).
        """
        validator = self.anubis.validator
        previous = dict(validator.criteria)
        resolved_mode = mode if mode is not None else (
            self._resolve_learn_mode(nodes))
        windows = validator.learn_criteria(nodes, benchmarks,
                                           mode=resolved_mode)
        self._nodes_measured_since_learn.clear()
        self._journal_learn(windows, resolved_mode)
        decisions: list[RolloutDecision] = []
        if self.config.rollout is None:
            self._shadow_windows.update(windows)
        else:
            for key, current in windows.items():
                candidate = validator.criteria.get(key)
                if candidate is None:
                    continue
                learn_path = self._learn_path(key)
                prior = previous.get(key)
                shadow = self._shadow_windows.get(key)
                if prior is None or shadow is None:
                    decision = evaluate_rollout(
                        current, candidate.criteria, None,
                        alpha=candidate.alpha,
                        higher_is_better=candidate.higher_is_better,
                        config=self.config.rollout,
                        benchmark=key[1], metric=key[2], sku=key[0],
                        learn_path=learn_path)
                else:
                    decision = evaluate_rollout(
                        shadow, candidate.criteria, prior.criteria,
                        alpha=candidate.alpha,
                        higher_is_better=candidate.higher_is_better,
                        config=self.config.rollout,
                        benchmark=key[1], metric=key[2], sku=key[0],
                        learn_path=learn_path)
                decisions.append(decision)
                if decision.accepted:
                    self._shadow_windows[key] = current
                    continue
                if prior is not None:
                    validator.criteria[key] = prior
                else:
                    del validator.criteria[key]
                # The rejected candidate's engine state is tainted --
                # drop it and pin the next learn for this key to the
                # exact path, so a poisoned approximation can never
                # seed the next delta.
                validator.invalidate_criteria_state(key)
                self._journal_best_effort(RecordKind.CRITERIA_ROLLBACK, {
                    "sku": key[0],
                    "benchmark": key[1],
                    "metric": key[2],
                    "candidate_rate": decision.candidate_rate,
                    "baseline_rate": decision.baseline_rate,
                    "reason": decision.reason,
                    "learn_path": learn_path,
                })
        self._maybe_snapshot(force=True)
        return decisions

    def _learn_path(self, key: tuple[str, str, str]) -> str:
        """Engine path that produced the latest candidate for ``key``."""
        state = self.anubis.validator.criteria_states.get(key)
        return state.path if state is not None else ""

    def _journal_learn(self, windows, mode: str) -> None:
        """Journal one compact record per learning pass (best-effort).

        Records the resolved mode hint plus each key's realized engine
        path and in-learn seconds, so the analytics plane can tell how
        often re-learns actually ride the delta path and what each
        path costs.  Skipped entirely for classic exact-only learns
        (no engine state to report).
        """
        states = self.anubis.validator.criteria_states
        entries = [
            {"sku": key[0], "benchmark": key[1], "metric": key[2],
             "path": states[key].path,
             "seconds": states[key].seconds,
             "delta_steps": states[key].delta_steps}
            for key in sorted(windows) if key in states
        ]
        if not entries:
            return
        self._journal_best_effort(RecordKind.CRITERIA_LEARN, {
            "mode": mode,
            "learned": entries,
        })

    def _maybe_snapshot(self, *, force: bool = False) -> None:
        if self.store is None or self._recovering:
            return
        if not self.anubis.validator.criteria:
            return
        if not force:
            return
        self.store.append(RecordKind.CRITERIA_SNAPSHOT,
                          criteria_payload(self.anubis.validator))
        # Snapshot moments double as the cadence for journaling the
        # measurement spine's stage counters (analytics reads these;
        # recovery ignores them), so the read path sees pipeline cost
        # without a per-event record.
        self._journal_best_effort(RecordKind.PIPELINE_STATS,
                                  {"stages": self.anubis.pipeline_stats()})
        self._have_snapshot = True
        self._completed_since_snapshot = 0

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def compact_journal(self) -> int:
        """Rewrite the journal as a snapshot of live state.

        The replacement journal holds the latest criteria snapshot, a
        ``state-snapshot`` record (lifecycle states, flap counts,
        aggregate metrics, dead letters, id high-water mark) and one
        ``event-enqueued`` record per still-pending event -- so its
        size tracks live state, not uptime.  Returns the number of
        records written (0 without a store).
        """
        if self.store is None or self._recovering:
            return 0
        records: list[tuple[str, dict]] = []
        if self.anubis.validator.criteria:
            records.append((RecordKind.CRITERIA_SNAPSHOT,
                            criteria_payload(self.anubis.validator)))
        records.append((RecordKind.STATE_SNAPSHOT, self._state_snapshot()))
        records.append((RecordKind.PIPELINE_STATS,
                        {"stages": self.anubis.pipeline_stats()}))
        for entry in self.queue.pending():
            records.append((RecordKind.EVENT_ENQUEUED, entry.to_payload()))
        count = self.store.rewrite(records)
        self.metrics.journal_compactions += 1
        self._have_snapshot = bool(self.anubis.validator.criteria)
        self._completed_since_snapshot = 0
        self._completed_since_compaction = 0
        return count

    def _state_snapshot(self) -> dict:
        return {
            "states": {node_id: state.value
                       for node_id, state in self.lifecycle.states().items()},
            "flap_counts": self.damper.flap_counts(),
            "last_event_id": self.queue.last_event_id,
            "dead_letters": [letter.to_payload()
                             for letter in self.queue.dead_letters()],
            # Handoff reconciliation state must survive compaction:
            # losing a handed-off payload could drop the event (the
            # supervisor could no longer re-deliver it), losing an
            # origin marker could duplicate one (a re-delivery would
            # no longer dedupe).
            "handed_off": [self.handed_off[event_id]
                           for event_id in sorted(self.handed_off)],
            "origins_seen": [list(origin)
                             for origin in sorted(self.origins_seen)],
            "metrics": {name: getattr(self.metrics, name)
                        for name in _SNAPSHOT_METRIC_FIELDS},
        }

    def _journal(self, kind: str, payload: dict) -> None:
        if self.store is not None and not self._recovering:
            self.store.append(kind, payload)

    def _journal_best_effort(self, kind: str, payload: dict) -> bool:
        """Journal if possible; a write fault must not mask the
        failure currently being handled."""
        try:
            self._journal(kind, payload)
            return True
        except JournalError:
            return False

    def _journal_provenance(self, event_id: int, sweeps) -> None:
        """Journal one compact sanitization-provenance summary.

        Aggregates the per-window provenance flags of everything the
        sweeps measured into one record per event, keyed by
        (sku, benchmark, metric) -- the slice the analytics
        sanitization reducer reports on.  Best-effort: observability
        records must never fail a tick that already validated
        successfully.
        """
        provenance: dict[tuple[str, str, str], dict] = {}
        for sweep in sweeps:
            for run in sweep.runs:
                if run.result is None:
                    continue
                for window in run.result.windows:
                    key = (window.sku, window.benchmark, window.metric)
                    entry = provenance.setdefault(key, {
                        "windows": 0, "sanitized": 0, "quarantined": 0,
                        "faults": {}})
                    entry["windows"] += 1
                    entry["sanitized"] += int(window.sanitized)
                    entry["quarantined"] += int(window.quarantined)
                    for fault in window.faults:
                        entry["faults"][fault] = \
                            entry["faults"].get(fault, 0) + 1
        if not provenance:
            return
        self._journal_best_effort(RecordKind.BATCH_PROVENANCE, {
            "event_id": event_id,
            "provenance": [
                {"sku": sku, "benchmark": benchmark, "metric": metric,
                 **entry}
                for (sku, benchmark, metric), entry
                in sorted(provenance.items())
            ],
        })

    def _journal_breaker_transitions(self) -> None:
        """Journal breaker state changes since the last sweep.

        The pool accumulates each breaker's transition history
        in-process; this diffs against the per-benchmark high-water
        mark so every transition is journaled exactly once.
        Best-effort, like all observability records.
        """
        for benchmark in sorted(self.pool.breakers):
            transitions = self.pool.breakers[benchmark].transitions
            seen = self._breaker_seen.get(benchmark, 0)
            for transition in transitions[seen:]:
                self._journal_best_effort(RecordKind.BREAKER_TRANSITION, {
                    "benchmark": transition.benchmark,
                    "old": transition.old.value,
                    "new": transition.new.value,
                    "reason": transition.reason,
                })
            self._breaker_seen[benchmark] = len(transitions)

    def _transition(self, node_id: str, new: NodeState, *,
                    reason: str = "") -> None:
        applied = self.lifecycle.transition(node_id, new, reason=reason)
        node = self.fleet_index.get(node_id)
        self._journal(RecordKind.TRANSITION, {
            "node_id": node_id,
            "sku": node.sku if node is not None else "unknown",
            "old": applied.old.value,
            "new": applied.new.value,
            "reason": reason,
        })

    def _transition_best_effort(self, node_id: str, new: NodeState, *,
                                reason: str = "") -> None:
        """Apply a transition whose journal record may be sacrificed.

        Used on failure-handling paths: the in-memory state must
        advance even when the journal is refusing writes.  A lost
        record leaves a gap that recovery heals with a forced replay
        plus the stranded-node reset.
        """
        try:
            self._transition(node_id, new, reason=reason)
        except JournalError:
            pass

    def _recover(self) -> None:
        """Rebuild queue, lifecycle, criteria and coverage from disk."""
        records = self.store.replay()
        self._recovering = True
        pending: dict[int, dict] = {}
        max_event_id = 0
        try:
            for record in records:
                payload = record.payload
                if record.kind == RecordKind.CRITERIA_SNAPSHOT:
                    apply_criteria_payload(self.anubis.validator, payload,
                                           source=str(self.store.path))
                    self._have_snapshot = True
                elif record.kind == RecordKind.STATE_SNAPSHOT:
                    max_event_id = max(
                        max_event_id, self._apply_state_snapshot(payload))
                elif record.kind == RecordKind.TRANSITION:
                    # Forced: a journal write fault may have eaten an
                    # intermediate record, and refusing to restart
                    # over the gap would turn one lost line into a
                    # permanently wedged service.
                    new = NodeState(payload["new"])
                    self.lifecycle.transition(
                        payload["node_id"], new,
                        reason=payload.get("reason", ""), force=True)
                    if new is NodeState.QUARANTINED:
                        self.damper.record_quarantine(payload["node_id"])
                elif record.kind == RecordKind.EVENT_ENQUEUED:
                    event_id = int(payload["event_id"])
                    max_event_id = max(max_event_id, event_id)
                    origin = payload.get("origin")
                    if origin is not None:
                        origin = (int(origin[0]), int(origin[1]))
                        self.origins_seen.add(origin)
                    pending[event_id] = {
                        "event": payload["event"],
                        "priority": float(payload["priority"]),
                        "attempts": int(payload.get("attempts", 0)),
                        "origin": origin,
                    }
                elif record.kind == RecordKind.EVENT_COALESCED:
                    event_id = int(payload["event_id"])
                    origin = payload.get("origin")
                    if origin is not None:
                        self.origins_seen.add((int(origin[0]),
                                               int(origin[1])))
                    if event_id in pending:
                        pending[event_id]["priority"] = max(
                            pending[event_id]["priority"],
                            float(payload["priority"]))
                        pending[event_id]["event"]["duration_hours"] = max(
                            float(pending[event_id]["event"]["duration_hours"]),
                            float(payload.get("duration_hours", 0.0)))
                elif record.kind == RecordKind.EVENT_FAILED:
                    event_id = int(payload["event_id"])
                    if event_id in pending:
                        pending[event_id]["attempts"] = max(
                            pending[event_id]["attempts"],
                            int(payload.get("attempts", 0)))
                elif record.kind == RecordKind.EVENT_DEAD_LETTERED:
                    event_id = int(payload["event_id"])
                    max_event_id = max(max_event_id, event_id)
                    pending.pop(event_id, None)
                    entry = QueuedEvent.from_payload(payload,
                                                     self.fleet_index)
                    self.queue.dead_letter(entry, payload.get("reason", ""))
                    self.metrics.events_dead_lettered += 1
                elif record.kind == RecordKind.EVENT_COMPLETED:
                    event_id = int(payload["event_id"])
                    max_event_id = max(max_event_id, event_id)
                    pending.pop(event_id, None)
                    self._replay_completed(payload)
                elif record.kind == RecordKind.LOAD_SHED:
                    event_id = int(payload["event_id"])
                    max_event_id = max(max_event_id, event_id)
                    pending.pop(event_id, None)
                    self.metrics.events_shed += 1
                elif record.kind == RecordKind.SHARD_HANDOFF:
                    event_id = int(payload["event_id"])
                    max_event_id = max(max_event_id, event_id)
                    pending.pop(event_id, None)
                    self.handed_off[event_id] = dict(payload)
            for event_id in sorted(pending):
                info = pending[event_id]
                event = ValidationEvent.from_payload(info["event"],
                                                     self.fleet_index)
                entry, _created = self.queue.push(
                    event, info["priority"], event_id=event_id,
                    enqueued_at=self.clock(), origin=info.get("origin"))
                entry.attempts = info["attempts"]
            self.queue.reserve_ids(max_event_id)
        finally:
            self._recovering = False
        self._reset_interrupted_nodes()

    def _apply_state_snapshot(self, payload: dict) -> int:
        """Install one compacted ``state-snapshot`` record; returns
        the snapshot's event-id high-water mark."""
        self.lifecycle.restore({
            node_id: NodeState(value)
            for node_id, value in payload.get("states", {}).items()})
        self.damper.restore(payload.get("flap_counts", {}))
        for name, value in payload.get("metrics", {}).items():
            if name in _SNAPSHOT_METRIC_FIELDS:
                setattr(self.metrics, name, int(value))
        for letter in payload.get("dead_letters", []):
            entry = QueuedEvent.from_payload(letter, self.fleet_index)
            self.queue.dead_letter(entry, letter.get("reason", ""))
        for handoff in payload.get("handed_off", []):
            self.handed_off[int(handoff["event_id"])] = dict(handoff)
        for origin in payload.get("origins_seen", []):
            self.origins_seen.add((int(origin[0]), int(origin[1])))
        return int(payload.get("last_event_id", 0))

    def _reset_interrupted_nodes(self) -> None:
        """Heal nodes stranded by a mid-tick crash.

        A node left VALIDATING has no durably-recorded verdict -- the
        process died mid-validation -- so it returns to the healthy
        pool and will be re-validated when its (still pending) event
        is re-ticked.  A node left SCHEDULED with no pending event
        covering it would otherwise sit in SCHEDULED forever.
        """
        covered = {node.node_id
                   for entry in self.queue.pending()
                   for node in entry.event.nodes}
        for node_id in list(self.lifecycle.nodes_in(NodeState.VALIDATING)):
            self._transition_best_effort(node_id, NodeState.HEALTHY,
                                         reason="crash-recovery")
        for node_id in list(self.lifecycle.nodes_in(NodeState.SCHEDULED)):
            if node_id not in covered:
                self._transition_best_effort(node_id, NodeState.HEALTHY,
                                             reason="crash-recovery")
        for node_id, state in self.lifecycle.states().items():
            if state is NodeState.QUARANTINED:
                # Conservative: serve the full hold-down again rather
                # than guess how much elapsed before the crash.
                self.damper.arm(node_id)
            else:
                self.damper.release(node_id)

    def _replay_completed(self, payload: dict) -> None:
        """Re-apply one completed event's side effects (coverage,
        aggregate metrics) without re-running anything."""
        self.metrics.events_processed += 1
        self.metrics.queue_latencies.append(
            float(payload.get("queue_latency_seconds", 0.0)))
        if payload.get("skipped", False):
            self.metrics.policy_skips += 1
            return
        report = ValidationReport(
            validated_nodes=list(payload.get("validated_nodes", [])),
            benchmarks_run=list(payload.get("benchmarks_run", [])),
            violations=[
                Violation(node_id=v[0], benchmark=v[1], metric=v[2],
                          similarity=0.0, reason=v[3],
                          sku=v[4] if len(v) > 4 else "unknown")
                for v in payload.get("violations", [])
            ],
        )
        self.anubis.selector.record_validation(report)
        self.metrics.validations_run += 1
        self.metrics.nodes_validated += len(report.validated_nodes)
        self.metrics.nodes_quarantined += len(payload.get("defective", []))
        self.metrics.validation_seconds.append(
            float(payload.get("validation_seconds", 0.0)))
