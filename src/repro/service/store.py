"""Durable service state: an append-only JSONL journal.

Everything the control plane must survive a restart with is journaled
as one JSON object per line in ``journal.jsonl`` under the store
directory: enqueued/coalesced/completed events, lifecycle transitions
and periodic learned-criteria snapshots (embedded via
:func:`~repro.core.persistence.criteria_payload`, the same document
``save_criteria`` writes).  Recovery replays the journal in order --
transitions re-apply legally because they were legal when written,
pending events are re-queued with their journaled priorities, and the
latest criteria snapshot restores the Validator.

A crash can truncate the final line mid-write.  Replay therefore
*skips* undecodable lines with a logged warning instead of failing:
losing the last record is recoverable, refusing to restart is not.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.selector import NodeStatus
from repro.core.system import EventKind, ValidationEvent
from repro.exceptions import JournalError

__all__ = ["JournalRecord", "JournalStore", "event_to_payload",
           "event_from_payload"]

logger = logging.getLogger(__name__)

JOURNAL_FILENAME = "journal.jsonl"


def event_to_payload(event: ValidationEvent) -> dict:
    """Serialize one event to plain JSON types.

    Nodes are stored by id only -- the service re-binds ids against
    its fleet on recovery, so heavyweight node state never enters the
    journal.
    """
    return {
        "kind": event.kind.value,
        "nodes": [node.node_id for node in event.nodes],
        "statuses": [
            {"node_id": status.node_id,
             "covariates": np.asarray(status.covariates, dtype=float).tolist()}
            for status in event.statuses
        ],
        "duration_hours": event.duration_hours,
    }


def event_from_payload(payload: dict, fleet_index: dict) -> ValidationEvent:
    """Rebuild an event from its journal payload.

    ``fleet_index`` maps node id -> :class:`~repro.hardware.node.Node`;
    ids no longer present in the fleet raise :class:`JournalError`
    (a journal must never silently validate the wrong hardware).
    """
    try:
        nodes = []
        for node_id in payload["nodes"]:
            if node_id not in fleet_index:
                raise JournalError(
                    f"journaled event references unknown node {node_id!r}")
            nodes.append(fleet_index[node_id])
        statuses = tuple(
            NodeStatus(node_id=s["node_id"],
                       covariates=np.asarray(s["covariates"], dtype=float))
            for s in payload["statuses"]
        )
        return ValidationEvent(
            kind=EventKind(payload["kind"]),
            nodes=tuple(nodes),
            statuses=statuses,
            duration_hours=float(payload["duration_hours"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise JournalError(f"malformed event payload: {error}") from error


@dataclass(frozen=True)
class JournalRecord:
    """One replayed journal line."""

    seq: int
    kind: str
    payload: dict


class JournalStore:
    """Append-only journal under one directory.

    Appends are flushed line-by-line so at most the final record can
    be lost to a crash.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_FILENAME
        self._seq = self._last_seq_on_disk()

    def _last_seq_on_disk(self) -> int:
        last = 0
        for record in self.replay():
            last = max(last, record.seq)
        return last

    @property
    def next_seq(self) -> int:
        return self._seq + 1

    def append(self, kind: str, payload: dict) -> int:
        """Append one record, flushed; returns its sequence number."""
        self._seq += 1
        line = json.dumps({"seq": self._seq, "kind": kind, "payload": payload})
        try:
            with self.path.open("a") as handle:
                handle.write(line + "\n")
                handle.flush()
        except OSError as error:
            raise JournalError(f"cannot append to {self.path}: {error}") from error
        return self._seq

    def replay(self) -> list[JournalRecord]:
        """All decodable records in append order.

        Corrupted or truncated lines (a crash mid-append) are skipped
        with a warning rather than raised -- recovery must always make
        progress from what *was* durably written.
        """
        if not self.path.exists():
            return []
        records: list[JournalRecord] = []
        try:
            lines = self.path.read_text().splitlines()
        except OSError as error:
            raise JournalError(f"cannot read {self.path}: {error}") from error
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
                record = JournalRecord(seq=int(raw["seq"]),
                                       kind=str(raw["kind"]),
                                       payload=dict(raw["payload"]))
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as error:
                logger.warning(
                    "skipping corrupted journal line %d of %s: %s",
                    lineno, self.path, error)
                continue
            records.append(record)
        return records
