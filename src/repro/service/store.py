"""Durable service state: an append-only, checksummed JSONL journal.

Everything the control plane must survive a restart with is journaled
as one JSON object per line in ``journal.jsonl`` under the store
directory: enqueued/coalesced/completed/failed events, lifecycle
transitions, dead-letter parkings and periodic learned-criteria
snapshots (embedded via
:func:`~repro.core.persistence.criteria_payload`, the same document
``save_criteria`` writes).  Recovery replays the journal in order --
transitions re-apply (forced where fault-tolerant continuation left a
gap), pending events are re-queued with their journaled priorities,
and the latest criteria snapshot restores the Validator.

Three hardening layers keep the journal trustworthy and bounded:

* **CRC32 record checksums** -- every record carries a checksum over
  its canonical JSON body, so a line that is *decodable but corrupted*
  (bit rot, partial overwrite that still parses) is detected and
  skipped instead of silently replayed.  Records written before
  checksumming existed (no ``crc`` field) still replay.
* **Optional fsync-on-append** -- by default appends are flushed to
  the OS (at most the final record is lost to a *process* crash);
  with ``fsync=True`` each record is forced to stable storage before
  ``append`` returns, surviving a *machine* crash at a throughput
  cost.  The trade-off is an explicit per-store or per-append choice.
* **Snapshot compaction** -- :meth:`rewrite` atomically replaces the
  journal with a compact set of snapshot records (write to a temp
  file, fsync, rename), so recovery cost and disk use stay bounded by
  live state rather than by service uptime.

A crash can truncate the final line mid-write.  Replay therefore
*skips* undecodable lines with a logged warning instead of failing:
losing the last record is recoverable, refusing to restart is not.
"""

from __future__ import annotations

import enum
import json
import logging
import os
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.core.system import ValidationEvent
from repro.exceptions import JournalError

__all__ = ["RecordKind", "KNOWN_KINDS", "JournalRecord", "JournalStore",
           "event_to_payload", "event_from_payload", "record_crc",
           "decode_journal_line"]

logger = logging.getLogger(__name__)

JOURNAL_FILENAME = "journal.jsonl"


class RecordKind(str, enum.Enum):
    """Registry of every journal record kind the system writes.

    One place instead of string literals scattered across the control
    plane, quality layer and analytics: writers journal
    ``RecordKind.X`` (``str``-valued, so payloads and comparisons with
    plain strings keep working), and readers -- recovery and the
    analytics :class:`~repro.analytics.reader.JournalReader` -- can
    tell a *known-but-unhandled* kind from a forward-version journal's
    genuinely unknown one.
    """

    #: Queue lifecycle of one orchestration event.
    EVENT_ENQUEUED = "event-enqueued"
    EVENT_COALESCED = "event-coalesced"
    EVENT_COMPLETED = "event-completed"
    EVENT_FAILED = "event-failed"
    EVENT_DEAD_LETTERED = "event-dead-lettered"
    #: Node lifecycle transition (HEALTHY -> ... -> HEALTHY).
    TRANSITION = "transition"
    #: Learned-criteria snapshot / guarded-rollout rejection.
    CRITERIA_SNAPSHOT = "criteria-snapshot"
    CRITERIA_ROLLBACK = "criteria-rollback"
    #: One criteria learning pass: per-key engine path + timing.
    CRITERIA_LEARN = "criteria-learn"
    #: Compaction state snapshot (lifecycle, metrics, dead letters).
    STATE_SNAPSHOT = "state-snapshot"
    #: Typed measurement batch with full window provenance.
    MEASUREMENT_BATCH = "measurement-batch"
    #: Compact per-event sanitization/quarantine provenance summary.
    BATCH_PROVENANCE = "batch-provenance"
    #: Circuit-breaker state change of one benchmark's breaker.
    BREAKER_TRANSITION = "breaker-transition"
    #: Measurement-spine stage counters (execute/sanitize/score/learn).
    PIPELINE_STATS = "pipeline-stats"
    #: Admission control shed one pending event (bounded queue full).
    LOAD_SHED = "load-shed"
    #: Supervisor liveness probe for one shard (tick progress, depth).
    SHARD_HEARTBEAT = "shard-heartbeat"
    #: Supervisor gave up restarting a shard (escalation record).
    SHARD_DEGRADED = "shard-degraded"
    #: One pending event failed over from a degraded shard to a sibling.
    SHARD_HANDOFF = "shard-handoff"
    #: Clean shutdown marker: the writer drained and fsynced this
    #: journal before exiting (a journal whose last record is not a
    #: drain was a crash).
    FABRIC_DRAIN = "fabric-drain"
    #: Liveness probe journaled by a worker *process* (process fabric).
    PROC_HEARTBEAT = "proc-heartbeat"
    #: The parent supervisor respawned a dead worker process.
    PROC_RESTART = "proc-restart"


#: Every record kind a journal written by this version can contain.
KNOWN_KINDS = frozenset(kind.value for kind in RecordKind)


def event_to_payload(event: ValidationEvent) -> dict:
    """Serialize one event -- delegates to the one canonical schema,
    :meth:`~repro.core.system.ValidationEvent.to_payload`."""
    return event.to_payload()


def event_from_payload(payload: dict, fleet_index: dict) -> ValidationEvent:
    """Rebuild an event -- delegates to the one canonical schema,
    :meth:`~repro.core.system.ValidationEvent.from_payload`."""
    return ValidationEvent.from_payload(payload, fleet_index)


def record_crc(seq: int, kind: str, payload: dict) -> int:
    """Checksum over one record's canonical JSON body.

    Canonical form (sorted keys, no whitespace) makes the checksum
    independent of how the surrounding line happened to be formatted.
    """
    body = json.dumps([seq, kind, payload], sort_keys=True,
                      separators=(",", ":"))
    return zlib.crc32(body.encode())


@dataclass(frozen=True)
class JournalRecord:
    """One replayed journal line."""

    seq: int
    kind: str
    payload: dict


def decode_journal_line(line: str, *, lineno: int = 0,
                        path: object = "") -> tuple[JournalRecord | None, str]:
    """Decode one journal line; never raises.

    The single decode-and-verify implementation shared by
    :meth:`JournalStore.replay` and the analytics
    :class:`~repro.analytics.reader.JournalReader`, so both paths agree
    exactly on what counts as a valid record.  Returns
    ``(record, status)`` where status is one of:

    * ``"ok"`` -- decodable, checksum-valid (or pre-checksum legacy);
    * ``"empty"`` -- blank line, nothing to decode;
    * ``"corrupt-line"`` -- undecodable (truncated append, bit rot that
      no longer parses); logged at WARNING;
    * ``"crc-mismatch"`` -- decodable but its checksum disagrees with
      its body; logged at WARNING.

    ``record`` is ``None`` for every non-``"ok"`` status.
    """
    if not line.strip():
        return None, "empty"
    try:
        raw = json.loads(line)
        record = JournalRecord(seq=int(raw["seq"]),
                               kind=str(raw["kind"]),
                               payload=dict(raw["payload"]))
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
        logger.warning("skipping corrupted journal line %d of %s: %s",
                       lineno, path, error)
        return None, "corrupt-line"
    # Records from before checksumming carry no "crc"; accept them
    # rather than invalidating every pre-existing journal.
    if "crc" in raw and int(raw["crc"]) != record_crc(
            record.seq, record.kind, record.payload):
        logger.warning(
            "skipping checksum-mismatched journal line %d of %s "
            "(seq %d, kind %r)", lineno, path, record.seq, record.kind)
        return None, "crc-mismatch"
    return record, "ok"


class JournalStore:
    """Append-only journal under one directory.

    Parameters
    ----------
    directory:
        Journal directory (created if missing).
    fsync:
        Default durability of :meth:`append`: ``False`` flushes to the
        OS only (fast, loses at most the final record to a process
        crash), ``True`` forces every record to stable storage.
    """

    def __init__(self, directory, *, fsync: bool = False):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_FILENAME
        self.fsync = bool(fsync)
        #: Decodable-but-corrupt lines (checksum mismatches) seen by
        #: the most recent :meth:`replay`.
        self.corrupt_records = 0
        self._heal_torn_tail()
        self._seq = self._last_seq_on_disk()

    def _heal_torn_tail(self) -> None:
        """Seal a torn final line left by a real ``kill -9`` mid-write.

        ``append`` writes ``line + "\\n"`` in one call, but the OS may
        persist only a prefix when the writer dies.  If the file does
        not end with a newline, a later append would concatenate onto
        the torn line and corrupt *both* records; writing the missing
        newline confines the damage to the (already lost) torn record,
        which replay then skips as ``corrupt-line``.
        """
        try:
            if not self.path.exists() or self.path.stat().st_size == 0:
                return
            with self.path.open("rb+") as handle:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError as error:
            raise JournalError(
                f"cannot heal torn tail of {self.path}: {error}") from error

    def _last_seq_on_disk(self) -> int:
        last = 0
        for record in self.replay():
            last = max(last, record.seq)
        return last

    @property
    def next_seq(self) -> int:
        return self._seq + 1

    def append(self, kind: str, payload: dict, *,
               fsync: bool | None = None) -> int:
        """Append one checksummed record; returns its sequence number.

        ``kind`` may be a plain string or a :class:`RecordKind`;
        ``fsync`` overrides the store default for this one append
        (``None`` keeps the store default).
        """
        kind = getattr(kind, "value", kind)
        seq = self._seq + 1
        line = json.dumps({"seq": seq, "kind": kind, "payload": payload,
                           "crc": record_crc(seq, kind, payload)})
        effective_fsync = self.fsync if fsync is None else bool(fsync)
        try:
            with self.path.open("a") as handle:
                handle.write(line + "\n")
                handle.flush()
                if effective_fsync:
                    os.fsync(handle.fileno())
        except OSError as error:
            raise JournalError(f"cannot append to {self.path}: {error}") from error
        self._seq = seq
        return seq

    def sync(self) -> None:
        """Force everything appended so far to stable storage.

        Used by graceful drain: a single fsync of the journal tail is
        much cheaper than running the whole session with
        ``fsync=True``, yet guarantees a clean shutdown loses nothing.
        """
        if not self.path.exists():
            return
        try:
            with self.path.open("a") as handle:
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as error:
            raise JournalError(f"cannot fsync {self.path}: {error}") from error

    def rewrite(self, records) -> int:
        """Atomically replace the journal with ``records`` (compaction).

        ``records`` is an iterable of ``(kind, payload)`` pairs --
        typically a state snapshot plus the still-pending events.  The
        replacement journal is written to a temporary file, fsynced,
        and renamed over the old one, so a crash at any point leaves
        either the old journal or the new one, never a mix.  Sequence
        numbers restart at 1; returns the number of records written.
        """
        tmp_path = self.path.with_suffix(".jsonl.tmp")
        count = 0
        try:
            with tmp_path.open("w") as handle:
                for kind, payload in records:
                    kind = getattr(kind, "value", kind)
                    count += 1
                    line = json.dumps({
                        "seq": count, "kind": kind, "payload": payload,
                        "crc": record_crc(count, kind, payload)})
                    handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except OSError as error:
            raise JournalError(
                f"cannot compact journal {self.path}: {error}") from error
        self._seq = count
        return count

    def replay(self, *, start_seq: int = 0) -> list[JournalRecord]:
        """All decodable, checksum-valid records in append order.

        Truncated lines (a crash mid-append) and checksum mismatches
        (corruption of a decodable line) are skipped with a warning
        rather than raised -- recovery must always make progress from
        what *was* durably and correctly written.  Checksum mismatches
        are additionally counted in :attr:`corrupt_records`.

        ``start_seq`` is the resume cursor of the iteration API: only
        records with ``seq > start_seq`` are returned, so an
        incremental consumer (the analytics reader, a follow-mode
        report) can pick up where its last read left off.  After
        compaction sequence numbers restart at 1, which a cursor-aware
        consumer must detect by segment identity, not by seq alone --
        see :class:`repro.analytics.reader.JournalReader`.
        """
        self.corrupt_records = 0
        if not self.path.exists():
            return []
        records: list[JournalRecord] = []
        try:
            lines = self.path.read_text().splitlines()
        except OSError as error:
            raise JournalError(f"cannot read {self.path}: {error}") from error
        for lineno, line in enumerate(lines, start=1):
            record, status = decode_journal_line(line, lineno=lineno,
                                                 path=self.path)
            if status == "crc-mismatch":
                self.corrupt_records += 1
            if record is not None and record.seq > start_seq:
                records.append(record)
        return records
