"""Process-isolated shard fabric: one OS process per failure domain.

The thread-level :class:`~repro.service.supervisor.ShardSupervisor`
contains *simulated* shard deaths; this module contains **real**
ones.  Each shard's full control plane -- journal, queue, pool,
lifecycle -- runs in its own spawned worker process
(``python -m repro.service.procfabric``), and the parent
:class:`ProcessFabric` is a true OS parent: a worker that takes a
genuine ``SIGKILL`` between two journal appends, or freezes under
``SIGSTOP``, is detected by PID liveness and RPC deadlines, killed
off, and respawned over its own journal through the existing
kill-safe recovery.  The no-loss/no-duplication invariant the thread
fabric proves against :class:`~repro.service.chaos.SimulatedKill`
therefore holds against the operating system.

**Protocol.**  Parent and worker speak length-prefixed JSON frames
over the worker's stdin/stdout pipes: a 4-byte big-endian length
followed by one UTF-8 JSON object.  The worker re-points file
descriptor 1 at stderr before anything else runs, so stray prints
from library code can never corrupt the protocol stream.  Commands
are strictly request/response (one frame each way, in order), which
keeps the channel state trivial: any deadline miss desynchronizes the
channel, and the parent's only remedy -- kill and respawn -- is also
the correct supervision response.

**Liveness contract.**  The parent samples each RUNNING worker once
per supervision tick with a ``status`` RPC under
``status_deadline_seconds``.  A worker is declared dead when its PID
is gone (``SIGKILL``, crash, OOM) or its RPC deadline lapses (a
``SIGSTOP`` freeze, a wedged C extension -- the cases PID liveness
cannot see).  Either way the parent SIGKILLs the remains, reaps them,
and schedules a respawn with the supervisor's exponential backoff;
out of restart budget, the shard is DEGRADED and its journal --
which the parent may now read and append, the worker being provably
dead -- drives the journaled ``shard-handoff`` failover exactly as in
the thread fabric.  Single-writer discipline: the parent touches a
shard's journal *only* while that shard has no live process.

**Exactly-once ingest.**  Every event part the parent delivers
carries an ``origin`` marker (``(-1, n)`` for parent submissions,
``(shard, event_id)`` for failovers).  The worker dedupes against its
recovered :attr:`~ValidationService.origins_seen` before enqueueing,
so a delivery whose ACK was lost to a kill is safely retried: the
part lands in some journal exactly once no matter where the child
died.

**Graceful drain.**  Workers install ``SIGTERM``/``SIGINT`` handlers
that break out of the blocking protocol read, journal a
``fabric-drain`` record, fsync the journal tail and exit 0; the
parent's :meth:`ProcessFabric.shutdown` seals every live worker (RPC
first, signal as fallback) so ``repro report`` can tell a clean
shutdown from a crash for every shard.

Real fault *injection* is the worker's own job:
:class:`~repro.service.chaos.ProcessChaosPlan` crosses the spawn
boundary as JSON and the worker sends **itself** ``SIGKILL`` before a
chosen journal append or ``SIGSTOP`` before a chosen tick -- the
deterministic drivers of the kill-at-every-prefix property test.
"""

from __future__ import annotations

import json
import os
import select
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.system import ValidationEvent
from repro.exceptions import JournalError, ServiceError
from repro.service.chaos import ProcessChaosPlan
from repro.service.controlplane import ServiceConfig, ValidationService
from repro.service.shard import HashRing, ShardState
from repro.service.store import JournalStore, RecordKind
from repro.service.supervisor import SupervisorConfig

__all__ = ["WorkerSpec", "WorkerFault", "WorkerDied", "WorkerUnresponsive",
           "ProcessFabric", "ProcessFabricMetrics", "QueueState",
           "replay_queue_state", "default_builder", "worker_main",
           "read_frame", "write_frame", "PARENT_ORIGIN"]

#: Origin "shard index" the parent stamps on its own deliveries.  A
#: real shard can never be negative, so parent origins and failover
#: origins share one dedupe namespace without colliding.
PARENT_ORIGIN = -1

_FRAME_HEADER = 4
_MAX_FRAME = 64 * 1024 * 1024


# ----------------------------------------------------------------------
# Frame protocol (shared by both sides)
# ----------------------------------------------------------------------

class WorkerFault(ServiceError):
    """A worker process failed its side of the protocol contract."""


class WorkerDied(WorkerFault):
    """The worker's PID is gone or its pipe closed mid-conversation."""


class WorkerUnresponsive(WorkerFault):
    """The worker missed an RPC deadline (hang, ``SIGSTOP``, overload)."""


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def write_frame(fd: int, message: dict) -> None:
    """Write one length-prefixed JSON frame to ``fd``.

    Raises :class:`WorkerDied` when the peer has closed its end.
    """
    body = json.dumps(message, separators=(",", ":")).encode()
    try:
        _write_all(fd, len(body).to_bytes(_FRAME_HEADER, "big") + body)
    except (BrokenPipeError, OSError) as error:
        raise WorkerDied(f"peer pipe closed while writing: {error}") from error


def _read_exact(fd: int, count: int) -> bytes | None:
    """Blocking exact read; ``None`` on EOF before ``count`` bytes."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = os.read(fd, remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(fd: int) -> dict | None:
    """Blocking read of one frame from ``fd``; ``None`` on clean EOF."""
    header = _read_exact(fd, _FRAME_HEADER)
    if header is None:
        return None
    length = int.from_bytes(header, "big")
    if length > _MAX_FRAME:
        raise WorkerFault(f"oversized frame: {length} bytes")
    body = _read_exact(fd, length)
    if body is None:
        return None
    return json.loads(body.decode())


# ----------------------------------------------------------------------
# Worker spec (JSON across the spawn boundary -- never pickled)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs to build its shard.

    ``builder`` is a ``"module:function"`` reference resolved *inside*
    the worker; called with ``builder_args`` (a JSON dict) it must
    return ``(anubis, nodes, service_config)``.  Keeping the spec pure
    JSON -- dotted refs instead of callables -- is what makes the
    spawn boundary honest: nothing crosses it that a config file could
    not carry.
    """

    shard_index: int
    journal_dir: str
    builder: str
    builder_args: dict = field(default_factory=dict)
    incarnation: int = 0
    heartbeat_every: int = 1
    chaos: dict | None = None

    def to_payload(self) -> dict:
        return {
            "shard_index": self.shard_index,
            "journal_dir": self.journal_dir,
            "builder": self.builder,
            "builder_args": self.builder_args,
            "incarnation": self.incarnation,
            "heartbeat_every": self.heartbeat_every,
            "chaos": self.chaos,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "WorkerSpec":
        return cls(
            shard_index=int(payload["shard_index"]),
            journal_dir=str(payload["journal_dir"]),
            builder=str(payload["builder"]),
            builder_args=dict(payload.get("builder_args", {})),
            incarnation=int(payload.get("incarnation", 0)),
            heartbeat_every=int(payload.get("heartbeat_every", 1)),
            chaos=payload.get("chaos"),
        )


def _resolve_builder(ref: str):
    module_name, _, attr = ref.partition(":")
    if not module_name or not attr:
        raise ServiceError(
            f"builder must be 'module:function', got {ref!r}")
    import importlib
    module = importlib.import_module(module_name)
    target = module
    for part in attr.split("."):
        target = getattr(target, part)
    return target


def default_builder(args: dict):
    """Build ``(anubis, nodes, service_config)`` from plain JSON knobs.

    The stock builder the CLI, benchmarks and tests parameterize
    instead of shipping code across the spawn boundary.  Recognized
    keys (all optional): ``fleet_size``/``fleet_seed``, ``suite`` (a
    list of benchmark names; ``None`` means the full suite),
    ``runner_seed``, ``criteria_path`` (pre-learned criteria JSON --
    loading beats re-learning in every worker) or ``learn_on``,
    ``trace_nodes``/``trace_hours``/``trace_seed``, ``p0``, ``pool``
    (a :class:`~repro.service.pool.PoolConfig` kwargs dict) and
    ``service`` (extra :class:`ServiceConfig` kwargs).
    """
    from repro.benchsuite.runner import SuiteRunner
    from repro.benchsuite.suite import full_suite, suite_by_name
    from repro.core.persistence import load_criteria
    from repro.core.selector import Selector
    from repro.core.system import Anubis
    from repro.core.validator import Validator
    from repro.hardware.fleet import build_fleet
    from repro.service.pool import PoolConfig
    from repro.simulation import analytic_coverage_table, suite_durations
    from repro.simulation.generator import generate_incident_trace
    from repro.survival import extract_status_samples
    from repro.survival.exponential import ExponentialModel

    fleet = build_fleet(int(args.get("fleet_size", 12)),
                        seed=int(args.get("fleet_seed", 5)))
    names = args.get("suite")
    suite = (full_suite() if names is None
             else tuple(suite_by_name(name) for name in names))
    validator = Validator(suite,
                          runner=SuiteRunner(seed=int(args.get("runner_seed",
                                                               9))))
    criteria_path = args.get("criteria_path")
    if criteria_path:
        load_criteria(validator, criteria_path)
    else:
        validator.learn_criteria(fleet.nodes[:int(args.get("learn_on", 6))])
    trace = generate_incident_trace(
        int(args.get("trace_nodes", 50)),
        float(args.get("trace_hours", 800.0)),
        seed=int(args.get("trace_seed", 11)))
    dataset = extract_status_samples(trace)
    model = ExponentialModel().fit(dataset)
    selector = Selector(model, analytic_coverage_table(suite),
                        suite_durations(suite),
                        p0=float(args.get("p0", 0.05)))
    pool = PoolConfig(**dict(args.get("pool", {})))
    service_config = ServiceConfig(pool=pool, **dict(args.get("service", {})))
    return Anubis(validator, selector), fleet.nodes, service_config


# ----------------------------------------------------------------------
# Journal-driven queue reduction (parent-side recovery of dead shards)
# ----------------------------------------------------------------------

@dataclass
class QueueState:
    """What a shard's journal says about its queue, reduced offline.

    ``pending`` maps event id to ``{"event", "priority", "attempts",
    "origin"}`` -- the same reduction
    :meth:`ValidationService._recover` performs, minus everything that
    needs a live service (lifecycle, criteria, metrics).
    """

    pending: dict[int, dict] = field(default_factory=dict)
    origins_seen: set = field(default_factory=set)
    handed_off: dict[int, dict] = field(default_factory=dict)
    last_event_id: int = 0
    sealed: bool = False


def replay_queue_state(records) -> QueueState:
    """Reduce journal ``records`` to the queue state they describe.

    The parent runs this over a **dead** shard's journal (the only
    time it may read one) to learn what is still pending there --
    the input to journaled failover -- and which handoffs/origins are
    durable.  ``sealed`` reports whether the final record is a
    ``fabric-drain``: the clean-shutdown marker.
    """
    state = QueueState()
    for record in records:
        payload = record.payload
        state.sealed = record.kind == RecordKind.FABRIC_DRAIN
        if record.kind == RecordKind.EVENT_ENQUEUED:
            event_id = int(payload["event_id"])
            state.last_event_id = max(state.last_event_id, event_id)
            origin = payload.get("origin")
            if origin is not None:
                origin = (int(origin[0]), int(origin[1]))
                state.origins_seen.add(origin)
            state.pending[event_id] = {
                "event": payload["event"],
                "priority": float(payload["priority"]),
                "attempts": int(payload.get("attempts", 0)),
                "origin": origin,
            }
        elif record.kind == RecordKind.EVENT_COALESCED:
            origin = payload.get("origin")
            if origin is not None:
                state.origins_seen.add((int(origin[0]), int(origin[1])))
        elif record.kind in (RecordKind.EVENT_COMPLETED,
                             RecordKind.EVENT_DEAD_LETTERED,
                             RecordKind.LOAD_SHED):
            event_id = int(payload["event_id"])
            state.last_event_id = max(state.last_event_id, event_id)
            state.pending.pop(event_id, None)
        elif record.kind == RecordKind.SHARD_HANDOFF:
            event_id = int(payload["event_id"])
            state.last_event_id = max(state.last_event_id, event_id)
            state.pending.pop(event_id, None)
            state.handed_off[event_id] = dict(payload)
        elif record.kind == RecordKind.STATE_SNAPSHOT:
            state.last_event_id = max(
                state.last_event_id, int(payload.get("last_event_id", 0)))
            for handoff in payload.get("handed_off", []):
                state.handed_off[int(handoff["event_id"])] = dict(handoff)
            for origin in payload.get("origins_seen", []):
                state.origins_seen.add((int(origin[0]), int(origin[1])))
    return state


# ----------------------------------------------------------------------
# The worker process
# ----------------------------------------------------------------------

class _DrainRequested(BaseException):
    """Raised by the worker's signal handler to break the blocking
    protocol read (PEP 475 would otherwise auto-retry ``os.read``
    after the handler returns).  A ``BaseException`` so no containment
    handler in the control plane can swallow a shutdown request."""

    def __init__(self, signum: int):
        super().__init__(f"signal {signum}")
        self.signum = signum


class _SelfKillJournal:
    """Journal wrapper that SIGKILLs its own process, for real.

    The process-chaos analogue of
    :class:`~repro.service.chaos.ChaosJournalStore`: when the plan
    says append ``N+1`` must not happen, the worker sends itself an
    uncatchable ``SIGKILL`` *before* writing -- the exact semantics of
    ``kill -9`` landing between two durable records.  Appends 1..N are
    already flushed to the OS, which keeps them; nothing here is
    simulated.
    """

    def __init__(self, store, plan: ProcessChaosPlan, shard: int,
                 incarnation: int):
        self._store = store
        self.plan = plan
        self.shard = shard
        self.incarnation = incarnation
        self.appends = 0

    def append(self, kind: str, payload: dict, *, fsync=None) -> int:
        self.appends += 1
        if self.plan.should_kill(self.shard, self.incarnation, self.appends):
            os.kill(os.getpid(), signal.SIGKILL)
        return self._store.append(kind, payload, fsync=fsync)

    def __getattr__(self, name):
        return getattr(self._store, name)


class ShardWorker:
    """One shard's control plane, spoken to over the frame protocol."""

    def __init__(self, spec: WorkerSpec, proto_in: int, proto_out: int):
        self.spec = spec
        self.proto_in = proto_in
        self.proto_out = proto_out
        self.chaos = (None if spec.chaos is None
                      else ProcessChaosPlan.from_payload(spec.chaos))
        self.service: ValidationService | None = None
        self.ticks = 0
        self.statuses = 0

    # -- lifecycle ------------------------------------------------------
    def build(self) -> None:
        builder = _resolve_builder(self.spec.builder)
        anubis, nodes, config = builder(self.spec.builder_args)
        if self.chaos is None:
            self.service = ValidationService(
                anubis, nodes, journal_dir=self.spec.journal_dir,
                config=config)
            return
        # Arm the kill wrapper from the very first journal append --
        # the service's own startup appends (criteria snapshot,
        # recovery bookkeeping) are kill points too, so the wrapper
        # must be in place before construction, not bolted on after.
        # Patching the constructor controlplane resolves is safe here:
        # this is a dedicated worker process.
        from repro.service import controlplane as _controlplane
        original = _controlplane.JournalStore
        chaos, shard = self.chaos, self.spec.shard_index
        incarnation = self.spec.incarnation

        def armed(directory, **kwargs):
            return _SelfKillJournal(original(directory, **kwargs),
                                    chaos, shard, incarnation)

        _controlplane.JournalStore = armed
        try:
            self.service = ValidationService(
                anubis, nodes, journal_dir=self.spec.journal_dir,
                config=config)
        finally:
            _controlplane.JournalStore = original

    def run(self) -> int:
        try:
            self.build()
            self._reply({"ok": True, "ready": True, **self._state()})
            while True:
                message = read_frame(self.proto_in)
                if message is None:
                    # Parent gone (pipe closed): seal and leave -- an
                    # orphaned worker must not keep writing a journal
                    # its next owner believes quiet.
                    self._seal("parent-eof")
                    return 0
                if not self._dispatch(message):
                    return 0
        except _DrainRequested as request:
            self._seal(f"signal-{request.signum}")
            return 0

    def _seal(self, reason: str) -> None:
        if self.service is None:
            return
        try:
            self.service.seal(reason=reason,
                              extra={"shard": self.spec.shard_index,
                                     "incarnation": self.spec.incarnation})
        except Exception:
            pass

    def _reply(self, message: dict) -> None:
        write_frame(self.proto_out, message)

    # -- command dispatch ----------------------------------------------
    def _dispatch(self, message: dict) -> bool:
        """Handle one command; returns False when the worker should
        exit (after a ``seal``)."""
        command = message.get("cmd")
        try:
            if command == "status":
                self._reply({"ok": True, **self._status()})
            elif command == "state":
                self._reply({"ok": True, **self._state()})
            elif command == "submit":
                self._reply(self._submit(message))
            elif command == "tick":
                self._reply(self._tick())
            elif command == "advance_repairs":
                self.service.advance_repairs()
                self._reply({"ok": True})
            elif command == "seal":
                self._seal(str(message.get("reason", "drain")))
                self._reply({"ok": True, "sealed": True})
                return False
            else:
                self._reply({"ok": False,
                             "error": f"unknown command {command!r}"})
        except _DrainRequested:
            raise
        except Exception as error:
            self._reply({"ok": False,
                         "error": f"{type(error).__name__}: {error}"})
        return True

    def _status(self) -> dict:
        service = self.service
        self.statuses += 1
        head = service.queue.peek()
        progress = (service.metrics.events_processed
                    + service.metrics.tick_failures)
        if (self.spec.heartbeat_every > 0
                and self.statuses % self.spec.heartbeat_every == 0):
            payload = {
                "shard": self.spec.shard_index,
                "incarnation": self.spec.incarnation,
                "beat": self.statuses,
                "progress": progress,
                "queue_depth": len(service.queue),
            }
            try:
                service._journal_best_effort(RecordKind.PROC_HEARTBEAT,
                                             payload)
            except Exception:
                pass
        return {
            "shard": self.spec.shard_index,
            "incarnation": self.spec.incarnation,
            "pid": os.getpid(),
            "queue_depth": len(service.queue),
            "head_priority": None if head is None else head.priority,
            "progress": progress,
            "events_processed": service.metrics.events_processed,
            "repairs_in_flight": service.repairs_in_flight(),
            "dead_letters": len(service.dead_letters()),
        }

    def _state(self) -> dict:
        """The heavy reply: everything reconciliation needs."""
        service = self.service
        return {
            **self._status(),
            "origins_seen": [list(origin)
                             for origin in sorted(service.origins_seen)],
            "handed_off": {str(event_id): payload
                           for event_id, payload
                           in sorted(service.handed_off.items())},
            "pending": [entry.to_payload()
                        for entry in service.queue.pending()],
        }

    def _submit(self, message: dict) -> dict:
        origin = message.get("origin")
        if origin is not None:
            origin = (int(origin[0]), int(origin[1]))
            if origin in self.service.origins_seen:
                # Redelivery of something durably accepted before a
                # crash: ACK without touching the queue.
                return {"ok": True, "event_id": None, "deduped": True}
        event = ValidationEvent.from_payload(message["event"],
                                             self.service.fleet_index)
        entry = self.service.submit(event, origin=origin)
        return {"ok": True, "event_id": entry.event_id,
                "shed": bool(getattr(entry, "shed", False)),
                "deduped": False}

    def _tick(self) -> dict:
        self.ticks += 1
        if (self.chaos is not None
                and self.chaos.should_stop(self.spec.shard_index,
                                           self.spec.incarnation,
                                           self.ticks)):
            # A real hang: uncatchable, undetectable from inside.
            # Only the parent's RPC deadline can see this.
            os.kill(os.getpid(), signal.SIGSTOP)
        result = self.service.tick()
        if result is None:
            return {"ok": True, "result": None}
        return {"ok": True, "result": {
            "event_id": result.event_id,
            "failed": result.failed,
            "error": result.error,
            "quarantined": list(result.quarantined),
            "skipped_nodes": list(result.skipped_nodes),
        }}


def worker_main() -> int:
    """Entry point of ``python -m repro.service.procfabric``.

    Claims the protocol fds, re-points stdout at stderr (stray prints
    must never corrupt frames), installs the graceful-drain signal
    handlers, then reads the :class:`WorkerSpec` as the first frame
    and serves commands until sealed, signalled, or orphaned.
    """
    proto_in = os.dup(0)
    proto_out = os.dup(1)
    os.dup2(2, 1)
    sys.stdout = sys.stderr

    def _on_signal(signum, _frame):
        raise _DrainRequested(signum)

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        payload = read_frame(proto_in)
        if payload is None:
            return 1
        spec = WorkerSpec.from_payload(payload)
        return ShardWorker(spec, proto_in, proto_out).run()
    except _DrainRequested:
        return 0


# ----------------------------------------------------------------------
# The parent supervisor
# ----------------------------------------------------------------------

class _WorkerHandle:
    """Parent-side view of one worker process: channel + bookkeeping."""

    def __init__(self, shard_index: int, journal_dir: Path):
        self.shard_index = shard_index
        self.journal_dir = journal_dir
        self.state = ShardState.RUNNING
        self.proc: subprocess.Popen | None = None
        self.incarnation = 0
        self.restarts = 0
        self.restart_due_tick: int | None = None
        self._buf = b""

    # -- channel --------------------------------------------------------
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def request(self, message: dict, deadline_seconds: float) -> dict:
        if not self.alive():
            raise WorkerDied(
                f"worker {self.shard_index} has no live process")
        self._send(message, deadline_seconds)
        return self._recv(deadline_seconds)

    def _send(self, message: dict, deadline_seconds: float) -> None:
        """Deadline-bounded frame write to the worker's stdin.

        The fd is non-blocking (set at spawn): a ``SIGSTOP``-frozen
        worker whose stdin pipe is full must surface as
        :class:`WorkerUnresponsive`, never wedge the parent inside a
        blocking ``os.write`` where no watchdog can run.
        """
        fd = self.proc.stdin.fileno()
        body = json.dumps(message, separators=(",", ":")).encode()
        data = memoryview(len(body).to_bytes(_FRAME_HEADER, "big") + body)
        end = time.monotonic() + deadline_seconds
        while data:
            remaining = end - time.monotonic()
            if remaining <= 0:
                raise WorkerUnresponsive(
                    f"worker {self.shard_index} did not accept a frame "
                    f"within its {deadline_seconds:.1f}s deadline")
            _, writable, _ = select.select([], [fd], [],
                                           min(remaining, 0.25))
            if not writable:
                continue
            try:
                written = os.write(fd, data)
            except BlockingIOError:
                continue
            except (BrokenPipeError, OSError) as error:
                raise WorkerDied(
                    f"worker {self.shard_index} pipe closed while "
                    f"writing: {error}") from error
            data = data[written:]

    def _recv(self, deadline_seconds: float) -> dict:
        fd = self.proc.stdout.fileno()
        end = time.monotonic() + deadline_seconds
        while True:
            frame = self._try_decode()
            if frame is not None:
                return frame
            remaining = end - time.monotonic()
            if remaining <= 0:
                raise WorkerUnresponsive(
                    f"worker {self.shard_index} missed its "
                    f"{deadline_seconds:.1f}s deadline")
            ready, _, _ = select.select([fd], [], [],
                                        min(remaining, 0.25))
            if not ready:
                continue
            chunk = os.read(fd, 1 << 16)
            if not chunk:
                raise WorkerDied(
                    f"worker {self.shard_index} closed its pipe")
            self._buf += chunk

    def _try_decode(self) -> dict | None:
        if len(self._buf) < _FRAME_HEADER:
            return None
        length = int.from_bytes(self._buf[:_FRAME_HEADER], "big")
        if length > _MAX_FRAME:
            raise WorkerFault(f"oversized frame from worker "
                              f"{self.shard_index}: {length} bytes")
        if len(self._buf) < _FRAME_HEADER + length:
            return None
        body = self._buf[_FRAME_HEADER:_FRAME_HEADER + length]
        self._buf = self._buf[_FRAME_HEADER + length:]
        return json.loads(body.decode())

    # -- process lifecycle ---------------------------------------------
    def spawn(self, spec: WorkerSpec, spawn_deadline: float) -> dict:
        """Start the process, ship the spec, await the ready frame."""
        env = os.environ.copy()
        import repro
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (src_root + os.pathsep + existing
                                 if existing else src_root)
        self._buf = b""
        # -c instead of -m: the package __init__ already imports this
        # module, and runpy would warn about re-executing it.
        self.proc = subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.service.procfabric import worker_main; "
             "sys.exit(worker_main())"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=None, bufsize=0, env=env)
        os.set_blocking(self.proc.stdin.fileno(), False)
        self._send(spec.to_payload(), spawn_deadline)
        ready = self._recv(spawn_deadline)
        if not ready.get("ok") or not ready.get("ready"):
            raise WorkerFault(
                f"worker {self.shard_index} failed to start: {ready}")
        return ready

    def ensure_dead(self, *, reap_seconds: float = 10.0) -> None:
        """SIGKILL whatever remains and reap it.

        ``SIGKILL`` terminates even a ``SIGSTOP``-frozen process, so
        this is the one true precondition for the parent touching the
        shard's journal.
        """
        if self.proc is None:
            return
        if self.proc.poll() is None:
            try:
                self.proc.kill()
            except OSError:
                pass
        try:
            self.proc.wait(timeout=reap_seconds)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
            pass
        for stream in (self.proc.stdin, self.proc.stdout):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass
        self._buf = b""


@dataclass
class ProcessFabricMetrics:
    """What the process supervisor has done so far."""

    worker_spawns: int = 0
    worker_restarts: int = 0
    worker_deaths: int = 0
    rpc_timeouts: int = 0
    shards_degraded: int = 0
    events_failed_over: int = 0
    handoffs_reconciled: int = 0
    deliveries_deduped: int = 0

    def summary(self) -> dict:
        return {
            "worker_spawns": self.worker_spawns,
            "worker_restarts": self.worker_restarts,
            "worker_deaths": self.worker_deaths,
            "rpc_timeouts": self.rpc_timeouts,
            "shards_degraded": self.shards_degraded,
            "events_failed_over": self.events_failed_over,
            "handoffs_reconciled": self.handoffs_reconciled,
            "deliveries_deduped": self.deliveries_deduped,
        }


class ProcessFabric:
    """Supervise one OS worker process per shard, as a true parent.

    Parameters
    ----------
    builder / builder_args:
        ``"module:function"`` reference (plus its JSON args) each
        worker resolves to build ``(anubis, nodes, service_config)``
        -- see :func:`default_builder`.
    journal_root:
        Parent directory; shard N journals under
        ``journal_root/shard-NN``.  Required: a process fabric without
        journals could not recover anything from a dead child.
    config:
        :class:`~repro.service.supervisor.SupervisorConfig` -- the
        same geometry/backoff/budget knobs as the thread fabric.
        ``watchdog_stall_ticks`` applies only to the thread fabric:
        here a single missed RPC deadline is fatal, because it
        desynchronizes the request/response framing beyond repair.
    chaos:
        Optional :class:`~repro.service.chaos.ProcessChaosPlan`
        shipped to every worker (workers fault *themselves*).
    status_deadline_seconds / tick_deadline_seconds /
    spawn_deadline_seconds / drain_timeout_seconds:
        RPC deadlines: liveness probe, one tick (bounded by real
        validation work), process start (imports + journal recovery),
        and graceful drain before escalation to ``SIGKILL``.  All
        must be positive.
    """

    def __init__(self, *, builder: str, builder_args: dict | None = None,
                 journal_root, config: SupervisorConfig | None = None,
                 chaos: ProcessChaosPlan | None = None,
                 heartbeat_every: int = 1,
                 status_deadline_seconds: float = 10.0,
                 tick_deadline_seconds: float = 120.0,
                 spawn_deadline_seconds: float = 120.0,
                 drain_timeout_seconds: float = 10.0):
        if journal_root is None:
            raise ServiceError(
                "ProcessFabric requires a journal_root: dead workers are "
                "recovered from their journals")
        for name, value in (
                ("status_deadline_seconds", status_deadline_seconds),
                ("tick_deadline_seconds", tick_deadline_seconds),
                ("spawn_deadline_seconds", spawn_deadline_seconds),
                ("drain_timeout_seconds", drain_timeout_seconds)):
            if value <= 0:
                raise ServiceError(f"{name} must be positive, got {value}")
        if heartbeat_every < 0:
            raise ServiceError("heartbeat_every must be non-negative")
        self.builder = builder
        self.builder_args = dict(builder_args or {})
        self.journal_root = Path(journal_root)
        self.config = config or SupervisorConfig()
        self.chaos = chaos
        self.heartbeat_every = int(heartbeat_every)
        self.status_deadline = float(status_deadline_seconds)
        self.tick_deadline = float(tick_deadline_seconds)
        self.spawn_deadline = float(spawn_deadline_seconds)
        self.drain_timeout = float(drain_timeout_seconds)
        self.ring = HashRing(self.config.shard_count,
                             virtual_nodes=self.config.virtual_nodes)
        self.tick_index = 0
        self.metrics = ProcessFabricMetrics()
        #: Undelivered event parts: origin -> {"target", "event"}.
        self._undelivered: dict[tuple[int, int], dict] = {}
        self._origin_seq = 0
        self.workers = [
            _WorkerHandle(index,
                          self.journal_root / f"shard-{index:02d}")
            for index in range(self.config.shard_count)
        ]
        self._sealed = False
        start_origins: set[tuple[int, int]] = set()
        for handle in self.workers:
            try:
                ready = self._spawn(handle)
            except WorkerFault:
                # A worker can die during its very first journal
                # appends (a chaos kill at prefix 1 lands here).  With
                # fault injection armed that is a death to contain,
                # not a construction error; without it, fail fast --
                # a spawn that dies with no fault injected is a bad
                # builder, and a restart loop would only obscure it.
                if self.chaos is None:
                    self.shutdown(reason="startup-failure")
                    raise
                handle.ensure_dead()
                self.metrics.worker_deaths += 1
                handle.state = ShardState.RESTARTING
                handle.restart_due_tick = (
                    self.tick_index
                    + self.config.backoff_ticks(handle.restarts))
                try:
                    state = replay_queue_state(
                        JournalStore(handle.journal_dir).replay())
                except JournalError:
                    continue
                start_origins |= state.origins_seen
            else:
                start_origins |= {(int(o[0]), int(o[1]))
                                  for o in ready.get("origins_seen", [])}
        # Parent origins must stay unique across parent restarts over
        # the same journals: resume after the recovered high-water mark.
        for origin in start_origins:
            if origin[0] == PARENT_ORIGIN:
                self._origin_seq = max(self._origin_seq, origin[1])
        # The previous incarnation may have died between a handoff
        # record and its delivery.
        self.reconcile_handoffs()

    # -- spawn / restart / degrade --------------------------------------
    def _spec(self, handle: _WorkerHandle) -> WorkerSpec:
        return WorkerSpec(
            shard_index=handle.shard_index,
            journal_dir=str(handle.journal_dir),
            builder=self.builder,
            builder_args=self.builder_args,
            incarnation=handle.incarnation,
            heartbeat_every=self.heartbeat_every,
            chaos=None if self.chaos is None else self.chaos.to_payload(),
        )

    def _spawn(self, handle: _WorkerHandle) -> dict:
        ready = handle.spawn(self._spec(handle), self.spawn_deadline)
        handle.state = ShardState.RUNNING
        handle.restart_due_tick = None
        self.metrics.worker_spawns += 1
        return ready

    def _journal_parent(self, handle: _WorkerHandle, kind,
                        payload: dict) -> None:
        """Append to a shard journal from the parent.

        Legal ONLY while the shard's process is dead (the caller's
        responsibility -- single-writer discipline); best-effort, like
        every observability append.
        """
        try:
            JournalStore(handle.journal_dir).append(kind, payload)
        except JournalError:
            pass

    def _declare_dead(self, handle: _WorkerHandle, *, reason: str) -> None:
        if handle.state is not ShardState.RUNNING:
            return
        handle.ensure_dead()
        self.metrics.worker_deaths += 1
        if handle.restarts >= self.config.max_shard_restarts:
            self._degrade(handle, reason=reason)
            return
        handle.state = ShardState.RESTARTING
        handle.restart_due_tick = (
            self.tick_index + self.config.backoff_ticks(handle.restarts))

    def _restart(self, handle: _WorkerHandle) -> None:
        handle.ensure_dead()
        handle.restarts += 1
        handle.incarnation += 1
        self._journal_parent(handle, RecordKind.PROC_RESTART, {
            "shard": handle.shard_index,
            "incarnation": handle.incarnation,
            "tick": self.tick_index,
        })
        try:
            self._spawn(handle)
        except WorkerFault as fault:
            handle.ensure_dead()
            handle.state = ShardState.RUNNING  # so _declare_dead acts
            self._declare_dead(handle, reason=f"respawn-failed: {fault}")
            return
        self.metrics.worker_restarts += 1
        self.reconcile_handoffs()

    def _degrade(self, handle: _WorkerHandle, *, reason: str) -> None:
        handle.ensure_dead()
        handle.state = ShardState.DEGRADED
        self.metrics.shards_degraded += 1
        alive = self._alive_indices()
        if not alive:
            raise ServiceError(
                "every shard degraded; no failover target remains")
        try:
            store = JournalStore(handle.journal_dir)
        except JournalError:
            return
        try:
            store.append(RecordKind.SHARD_DEGRADED, {
                "shard": handle.shard_index,
                "tick": self.tick_index,
                "restarts": handle.restarts,
                "reason": reason,
            })
        except JournalError:
            pass
        state = replay_queue_state(store.replay())
        # Every origin this journal durably accepted is a delivery that
        # DID land -- only its ACK was lost.  Un-park those entries now,
        # or _retry_undelivered would re-route them to a sibling under
        # the parent origin while the failover below delivers the same
        # event under another, defeating the origin dedupe.
        for origin in state.origins_seen:
            self._undelivered.pop(origin, None)
        for event_id in sorted(state.pending):
            info = state.pending[event_id]
            first_node = sorted(info["event"]["nodes"])[0]
            target = self.ring.owner(first_node, alive=alive)
            # Fail over under the event's ORIGINAL origin when it has
            # one: every path that could ever re-deliver this part
            # (retry, reconcile, a second failover) then shares one
            # dedupe key with this delivery.
            origin = (info["origin"] if info["origin"] is not None
                      else (handle.shard_index, event_id))
            payload = {
                "event_id": event_id,
                "event": info["event"],
                "priority": info["priority"],
                "attempts": info["attempts"],
                "origin": [int(origin[0]), int(origin[1])],
                "to_shard": target,
            }
            try:
                store.append(RecordKind.SHARD_HANDOFF, payload)
            except JournalError:
                continue
            self.metrics.events_failed_over += 1
            self._deliver(target, info["event"], origin=origin)

    # -- routing / ingest -----------------------------------------------
    def _alive_indices(self) -> set[int]:
        """Shards whose journals still accept work (not DEGRADED).

        RESTARTING shards stay in the set: ownership must be stable
        across a bounded outage, so their parts wait in
        ``_undelivered`` rather than migrating to a sibling.
        """
        return {handle.shard_index for handle in self.workers
                if handle.state is not ShardState.DEGRADED}

    def _running(self, index: int) -> _WorkerHandle | None:
        handle = self.workers[index]
        return handle if handle.state is ShardState.RUNNING else None

    def route(self, node_id: str) -> int:
        return self.ring.owner(node_id, alive=self._alive_indices())

    def _next_origin(self) -> tuple[int, int]:
        self._origin_seq += 1
        return (PARENT_ORIGIN, self._origin_seq)

    def submit(self, event: ValidationEvent) -> dict[int, dict]:
        """Split one event along shard ownership; deliver each part.

        Every part carries a fresh parent origin marker, so a delivery
        interrupted by a worker death is retried (on the respawned
        worker, or a sibling if the owner degraded) without ever
        double-enqueueing.  Returns the per-shard delivery replies;
        parts owed to a temporarily dead shard appear with
        ``{"queued": True}`` and are delivered by later ticks.
        """
        groups: dict[int, list] = {}
        for node in event.nodes:
            groups.setdefault(self.route(node.node_id), []).append(node)
        statuses = {status.node_id: status for status in event.statuses}
        replies: dict[int, dict] = {}
        for index in sorted(groups):
            nodes = tuple(groups[index])
            part = ValidationEvent(
                kind=event.kind,
                nodes=nodes,
                statuses=tuple(statuses[node.node_id] for node in nodes
                               if node.node_id in statuses),
                duration_hours=event.duration_hours,
            )
            origin = self._next_origin()
            payload = part.to_payload()
            reply = self._deliver(index, payload, origin=origin)
            replies[index] = reply if reply is not None else {"queued": True}
        return replies

    def _deliver(self, target: int, event_payload: dict, *,
                 origin: tuple[int, int]) -> dict | None:
        """Deliver one origin-marked part; park it on failure.

        Returns the worker's reply, or ``None`` when the part was
        parked in ``_undelivered`` (dead/restarting target).  A reply
        with ``ok: False`` (the worker's journal refused the enqueue)
        also parks: durable acceptance or nothing.
        """
        handle = self._running(target)
        if handle is not None:
            try:
                reply = handle.request(
                    {"cmd": "submit", "event": event_payload,
                     "origin": list(origin)},
                    self.status_deadline)
            except WorkerFault as fault:
                self._note_fault(handle, fault)
            else:
                if reply.get("ok"):
                    if reply.get("deduped"):
                        self.metrics.deliveries_deduped += 1
                    self._undelivered.pop(origin, None)
                    return reply
        self._undelivered[origin] = {"target": target,
                                     "event": event_payload}
        return None

    def _note_fault(self, handle: _WorkerHandle, fault: WorkerFault) -> None:
        """One failed RPC is conclusive either way: a dead pipe means
        the process is gone, and a single missed deadline leaves the
        request/response framing desynchronized, so the worker could
        not be spoken to again even if it woke up."""
        if isinstance(fault, WorkerUnresponsive):
            self.metrics.rpc_timeouts += 1
        self._declare_dead(handle, reason=str(fault))

    # -- the supervision loop -------------------------------------------
    def tick(self) -> list[dict]:
        """One supervision round over real processes.

        Fires due respawns, probes every RUNNING worker's liveness,
        ticks the worker holding the globally riskiest queue head,
        advances repairs everywhere else, then retries undelivered
        parts.
        """
        self.tick_index += 1
        results: list[dict] = []
        for handle in self.workers:
            if (handle.state is ShardState.RESTARTING
                    and handle.restart_due_tick is not None
                    and self.tick_index >= handle.restart_due_tick):
                self._restart(handle)
        statuses: dict[int, dict] = {}
        for handle in list(self.workers):
            if handle.state is not ShardState.RUNNING:
                continue
            if not handle.alive():
                self._declare_dead(handle, reason="pid-gone")
                continue
            try:
                status = handle.request({"cmd": "status"},
                                        self.status_deadline)
            except WorkerFault as fault:
                self._note_fault(handle, fault)
                continue
            if status.get("ok"):
                statuses[handle.shard_index] = status
        ticked = None
        heads = sorted(
            ((status["head_priority"], -index, index)
             for index, status in statuses.items()
             if status.get("head_priority") is not None),
            reverse=True)
        for _priority, _neg, index in heads:
            handle = self._running(index)
            if handle is None:
                continue
            try:
                reply = handle.request({"cmd": "tick"}, self.tick_deadline)
            except WorkerFault as fault:
                self._note_fault(handle, fault)
                continue
            ticked = index
            if reply.get("ok") and reply.get("result") is not None:
                results.append(reply["result"])
            break
        for index, status in statuses.items():
            if index == ticked:
                continue
            handle = self._running(index)
            if handle is None or not status.get("repairs_in_flight"):
                continue
            try:
                handle.request({"cmd": "advance_repairs"},
                               self.status_deadline)
            except WorkerFault as fault:
                self._note_fault(handle, fault)
        self._retry_undelivered()
        return results

    def _retry_undelivered(self) -> None:
        alive = self._alive_indices()
        for origin in list(self._undelivered):
            info = self._undelivered[origin]
            target = info["target"]
            if target not in alive:
                # Owner degraded for good: fall through the ring.
                first_node = sorted(info["event"]["nodes"])[0]
                target = self.ring.owner(first_node, alive=alive)
                info["target"] = target
            if self._running(target) is not None:
                self._deliver(target, info["event"], origin=origin)

    def reconcile_handoffs(self) -> int:
        """Re-deliver journaled handoffs that never reached a sibling.

        The process twin of
        :meth:`~repro.service.supervisor.ShardSupervisor.reconcile_handoffs`:
        delivered-origin sets come from live workers over RPC and from
        dead shards' journals directly (single-writer safe -- the
        parent only reads journals of shards with no live process).
        """
        alive = self._alive_indices()
        if not alive:
            return 0
        delivered: set[tuple[int, int]] = set()
        handed: list[tuple[int, dict]] = []
        for handle in self.workers:
            if handle.state is ShardState.RUNNING and handle.alive():
                try:
                    state = handle.request({"cmd": "state"},
                                           self.status_deadline)
                except WorkerFault as fault:
                    self._note_fault(handle, fault)
                    continue
                for origin in state.get("origins_seen", []):
                    delivered.add((int(origin[0]), int(origin[1])))
                for payload in state.get("handed_off", {}).values():
                    handed.append((handle.shard_index, payload))
            else:
                try:
                    records = JournalStore(handle.journal_dir).replay()
                except JournalError:
                    continue
                state = replay_queue_state(records)
                delivered |= state.origins_seen
                for payload in state.handed_off.values():
                    handed.append((handle.shard_index, payload))
        redelivered = 0
        for source, payload in handed:
            # Handoffs written by _degrade record the origin their
            # delivery used; older records fall back to the source
            # shard's identity, which is what _degrade used to stamp.
            recorded = payload.get("origin")
            origin = ((int(recorded[0]), int(recorded[1]))
                      if recorded is not None
                      else (source, int(payload["event_id"])))
            if origin in delivered:
                continue
            target = int(payload.get("to_shard", -1))
            if target not in alive or self._running(target) is None:
                first_node = sorted(payload["event"]["nodes"])[0]
                target = self.ring.owner(first_node, alive=alive)
            if self._running(target) is None:
                continue  # owner mid-restart; retried next round
            reply = self._deliver(target, payload["event"], origin=origin)
            if reply is not None:
                delivered.add(origin)
                redelivered += 1
                self.metrics.handoffs_reconciled += 1
        return redelivered

    # -- draining and reporting -----------------------------------------
    def quiescent(self) -> bool:
        """No pending work, repairs, undelivered parts or due respawns.

        Like the thread fabric, a degraded shard's journal-parked
        leftovers do not block quiescence -- they are durable and
        re-deliverable.
        """
        if self._undelivered:
            return False
        for handle in self.workers:
            if handle.state is ShardState.RESTARTING:
                return False
            if handle.state is ShardState.DEGRADED:
                continue
            try:
                status = handle.request({"cmd": "status"},
                                        self.status_deadline)
            except WorkerFault as fault:
                self._note_fault(handle, fault)
                return False
            if status.get("queue_depth", 0) > 0:
                return False
            if status.get("repairs_in_flight"):
                return False
        return True

    def drain(self, *, max_ticks: int = 100_000) -> list[dict]:
        """Tick until the whole fabric is quiescent."""
        results: list[dict] = []
        for _ in range(max_ticks):
            results.extend(self.tick())
            if self.quiescent():
                return results
        raise ServiceError(
            f"process fabric drain did not converge in {max_ticks} ticks")

    def shutdown(self, *, reason: str = "shutdown") -> dict[int, bool]:
        """Graceful end-to-end drain of every worker process.

        Per RUNNING worker: ask for a ``seal`` over RPC (journal the
        ``fabric-drain`` record, fsync, exit 0); if the worker cannot
        be spoken to, fall back to ``SIGTERM`` (its signal handler
        runs the same seal) and escalate to ``SIGKILL`` after
        ``drain_timeout_seconds``.  Returns per-shard ``True`` when
        the worker exited within its drain window.  Idempotent.
        """
        sealed: dict[int, bool] = {}
        if self._sealed:
            return sealed
        self._sealed = True
        for handle in self.workers:
            clean = False
            if handle.state is ShardState.RUNNING and handle.alive():
                try:
                    reply = handle.request({"cmd": "seal",
                                            "reason": reason},
                                           self.drain_timeout)
                    clean = bool(reply.get("sealed"))
                except WorkerFault:
                    try:
                        handle.proc.terminate()
                    except OSError:
                        pass
                if handle.proc is not None:
                    try:
                        handle.proc.wait(timeout=self.drain_timeout)
                        clean = clean or handle.proc.returncode == 0
                    except subprocess.TimeoutExpired:
                        clean = False
            handle.ensure_dead()
            sealed[handle.shard_index] = clean
        return sealed

    def __enter__(self) -> "ProcessFabric":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def summary(self) -> dict:
        """Fabric-level health: parent counters plus per-shard state."""
        shards = {}
        for handle in self.workers:
            entry = {
                "state": handle.state.value,
                "restarts": handle.restarts,
                "incarnation": handle.incarnation,
                "pid": None if not handle.alive() else handle.proc.pid,
            }
            if handle.state is ShardState.RUNNING and handle.alive():
                try:
                    status = handle.request({"cmd": "status"},
                                            self.status_deadline)
                except WorkerFault:
                    status = {}
                entry["queue_depth"] = status.get("queue_depth")
                entry["events_processed"] = status.get("events_processed")
            shards[f"shard-{handle.shard_index:02d}"] = entry
        return {
            "tick_index": self.tick_index,
            **self.metrics.summary(),
            "undelivered": len(self._undelivered),
            "shards": shards,
        }


if __name__ == "__main__":
    sys.exit(worker_main())
