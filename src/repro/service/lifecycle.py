"""Explicit node state machine for the validation control plane.

The paper's deployment moves nodes through a fixed operational cycle:
healthy nodes are scheduled for validation, validated nodes either
return to the healthy pool or are quarantined, quarantined nodes go
through repair (hot-buffer swap or ticket) and return.  The seed
reproduction kept these states implicit -- scattered across
``simulation.cluster`` bookkeeping and ``core.system`` outcome lists.
:class:`NodeLifecycle` makes them first-class and *enforced*: only the
transitions in :data:`LEGAL_TRANSITIONS` are allowed, every transition
is sequence-numbered for journaling, and a service restart can replay
the journal to recover the exact fleet state.

Two escape hatches exist for crash recovery only: ``force=True``
applies a transition whose *old* state no longer matches the legal
graph (a journal record was lost to a write fault between an applied
in-memory transition and its append), and :meth:`restore` installs a
full state snapshot from a compacted journal.  Neither is for live
operation.

:class:`FlapDamper` adds flap damping on top of the state machine: a
node that keeps oscillating QUARANTINED -> ... -> HEALTHY ->
QUARANTINED is held in quarantine with an exponentially growing
hold-down before the repair pipeline will touch it again, so a
marginal node cannot churn through hot-buffer swaps tick after tick.
"""

from __future__ import annotations

import enum
import math
from collections import Counter
from dataclasses import dataclass

from repro.exceptions import LifecycleError, ServiceError

__all__ = ["NodeState", "LEGAL_TRANSITIONS", "Transition", "NodeLifecycle",
           "FlapDamper"]


class NodeState(str, enum.Enum):
    """Where a node sits in the validation/repair cycle."""

    HEALTHY = "healthy"
    SCHEDULED = "scheduled"
    VALIDATING = "validating"
    QUARANTINED = "quarantined"
    IN_REPAIR = "in-repair"
    RETURNING = "returning"


#: The legal edges of the state machine::
#:
#:     HEALTHY -> SCHEDULED -> VALIDATING -> QUARANTINED -> IN_REPAIR
#:        ^           |            |                            |
#:        |           v            v                            v
#:        +------- (skip) ---- (passed) <------------------ RETURNING
#:
#: SCHEDULED -> HEALTHY covers events the Selector decided to skip;
#: RETURNING -> SCHEDULED covers re-validation of repaired nodes
#: before they rejoin the pool.
LEGAL_TRANSITIONS: dict[NodeState, frozenset[NodeState]] = {
    NodeState.HEALTHY: frozenset({NodeState.SCHEDULED}),
    NodeState.SCHEDULED: frozenset({NodeState.VALIDATING, NodeState.HEALTHY}),
    NodeState.VALIDATING: frozenset({NodeState.HEALTHY, NodeState.QUARANTINED}),
    NodeState.QUARANTINED: frozenset({NodeState.IN_REPAIR}),
    NodeState.IN_REPAIR: frozenset({NodeState.RETURNING}),
    NodeState.RETURNING: frozenset({NodeState.HEALTHY, NodeState.SCHEDULED}),
}


@dataclass(frozen=True)
class Transition:
    """One applied state change, in journal order."""

    seq: int
    node_id: str
    old: NodeState
    new: NodeState
    reason: str = ""
    forced: bool = False


class NodeLifecycle:
    """Tracks and enforces per-node states.

    Nodes never seen before are :attr:`NodeState.HEALTHY`; the class
    therefore needs no up-front fleet registration and works for
    fleets that grow while the service runs.
    """

    def __init__(self):
        self._states: dict[str, NodeState] = {}
        self._seq = 0
        self.transitions: list[Transition] = []

    def state(self, node_id: str) -> NodeState:
        """Current state of one node (HEALTHY if never seen)."""
        return self._states.get(node_id, NodeState.HEALTHY)

    def transition(self, node_id: str, new: NodeState, *,
                   reason: str = "", force: bool = False) -> Transition:
        """Apply one state change, enforcing legality.

        ``force=True`` skips the legality check; it exists for journal
        replay, where a lost record can leave a gap between the
        replayed old state and the next journaled transition.  The
        applied transition still records the actual old state and is
        marked ``forced``.
        """
        old = self.state(node_id)
        forced = False
        if new not in LEGAL_TRANSITIONS[old]:
            if not force:
                raise LifecycleError(
                    f"illegal transition {old.value} -> {new.value} "
                    f"for node {node_id!r}"
                    + (f" ({reason})" if reason else "")
                )
            forced = True
        self._seq += 1
        applied = Transition(seq=self._seq, node_id=node_id, old=old,
                             new=new, reason=reason, forced=forced)
        self._states[node_id] = new
        self.transitions.append(applied)
        return applied

    def restore(self, states: dict[str, NodeState]) -> None:
        """Install a full state snapshot (compacted-journal recovery).

        Replaces all tracked states without legality checks and
        without appending transitions; only recovery may call this,
        before any live transition is applied.
        """
        self._states = {node_id: NodeState(state)
                        for node_id, state in states.items()}

    def nodes_in(self, state: NodeState) -> list[str]:
        """Node ids currently in ``state``, in first-transition order.

        HEALTHY only lists nodes that have transitioned at least once
        (untouched nodes are implicitly healthy and unknown here).
        """
        return [n for n, s in self._states.items() if s is state]

    def counts(self) -> dict[str, int]:
        """State value -> number of known nodes in it."""
        counter = Counter(s.value for s in self._states.values())
        return {state.value: counter.get(state.value, 0) for state in NodeState}

    def states(self) -> dict[str, NodeState]:
        """Snapshot of every explicitly-tracked node's state."""
        return dict(self._states)


class FlapDamper:
    """Exponential hold-down for nodes that flap through quarantine.

    Each time a node is quarantined its flap count rises and it is
    *held* in QUARANTINED for ``base * multiplier**(count - 1)`` ticks
    (capped at ``max_holddown_ticks``) before the repair pipeline may
    advance it.  A node that stays out of quarantine for
    ``forgive_after_ticks`` ticks has its flap count forgiven, so one
    bad week years ago does not penalise a since-repaired node.

    The damper counts *service ticks*, not wall-clock: the control
    plane calls :meth:`tick` once per service tick, keeping damping
    deterministic and replayable.
    """

    def __init__(self, *, base_holddown_ticks: int = 1,
                 multiplier: float = 2.0, max_holddown_ticks: int = 64,
                 forgive_after_ticks: int | None = None):
        if base_holddown_ticks < 1:
            raise ServiceError("base_holddown_ticks must be at least 1")
        if multiplier < 1.0:
            raise ServiceError("flap multiplier must be at least 1")
        if max_holddown_ticks < base_holddown_ticks:
            raise ServiceError(
                "max_holddown_ticks must be at least base_holddown_ticks")
        if forgive_after_ticks is not None and forgive_after_ticks < 1:
            raise ServiceError("forgive_after_ticks must be at least 1")
        self.base_holddown_ticks = int(base_holddown_ticks)
        self.multiplier = float(multiplier)
        self.max_holddown_ticks = int(max_holddown_ticks)
        self.forgive_after_ticks = forgive_after_ticks
        self._flap_counts: dict[str, int] = {}
        self._holddowns: dict[str, int] = {}
        self._last_quarantine_tick: dict[str, int] = {}
        self._tick = 0

    def holddown_for(self, count: int) -> int:
        """Hold-down length (ticks) for a node's ``count``-th flap."""
        raw = self.base_holddown_ticks * self.multiplier ** (count - 1)
        return min(int(math.ceil(raw)), self.max_holddown_ticks)

    def record_quarantine(self, node_id: str) -> int:
        """Register one quarantine; returns the armed hold-down."""
        last = self._last_quarantine_tick.get(node_id)
        if (self.forgive_after_ticks is not None and last is not None
                and self._tick - last >= self.forgive_after_ticks):
            self._flap_counts[node_id] = 0
        count = self._flap_counts.get(node_id, 0) + 1
        self._flap_counts[node_id] = count
        self._last_quarantine_tick[node_id] = self._tick
        holddown = self.holddown_for(count)
        self._holddowns[node_id] = holddown
        return holddown

    def tick(self) -> None:
        """Advance one service tick; hold-downs decay toward ready."""
        self._tick += 1
        for node_id, remaining in list(self._holddowns.items()):
            if remaining > 0:
                self._holddowns[node_id] = remaining - 1

    def ready(self, node_id: str) -> bool:
        """May the repair pipeline advance this node out of quarantine?"""
        return self._holddowns.get(node_id, 0) <= 0

    def holddown_remaining(self, node_id: str) -> int:
        return self._holddowns.get(node_id, 0)

    def flap_count(self, node_id: str) -> int:
        return self._flap_counts.get(node_id, 0)

    def flap_counts(self) -> dict[str, int]:
        """Snapshot of all non-zero flap counts (for journaling)."""
        return {n: c for n, c in self._flap_counts.items() if c > 0}

    def arm(self, node_id: str) -> int:
        """Re-arm the hold-down from the current flap count.

        Recovery calls this for nodes still QUARANTINED after replay:
        the conservative choice is to serve the full hold-down again
        rather than guess how much of it elapsed before the crash.
        """
        holddown = self.holddown_for(max(self._flap_counts.get(node_id, 0), 1))
        self._holddowns[node_id] = holddown
        return holddown

    def release(self, node_id: str) -> None:
        """Clear any pending hold-down (node no longer quarantined)."""
        self._holddowns.pop(node_id, None)

    def restore(self, flap_counts: dict[str, int]) -> None:
        """Install flap counts from a compacted-journal snapshot."""
        self._flap_counts = {n: int(c) for n, c in flap_counts.items()}
