"""Explicit node state machine for the validation control plane.

The paper's deployment moves nodes through a fixed operational cycle:
healthy nodes are scheduled for validation, validated nodes either
return to the healthy pool or are quarantined, quarantined nodes go
through repair (hot-buffer swap or ticket) and return.  The seed
reproduction kept these states implicit -- scattered across
``simulation.cluster`` bookkeeping and ``core.system`` outcome lists.
:class:`NodeLifecycle` makes them first-class and *enforced*: only the
transitions in :data:`LEGAL_TRANSITIONS` are allowed, every transition
is sequence-numbered for journaling, and a service restart can replay
the journal to recover the exact fleet state.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.exceptions import LifecycleError

__all__ = ["NodeState", "LEGAL_TRANSITIONS", "Transition", "NodeLifecycle"]


class NodeState(str, enum.Enum):
    """Where a node sits in the validation/repair cycle."""

    HEALTHY = "healthy"
    SCHEDULED = "scheduled"
    VALIDATING = "validating"
    QUARANTINED = "quarantined"
    IN_REPAIR = "in-repair"
    RETURNING = "returning"


#: The legal edges of the state machine::
#:
#:     HEALTHY -> SCHEDULED -> VALIDATING -> QUARANTINED -> IN_REPAIR
#:        ^           |            |                            |
#:        |           v            v                            v
#:        +------- (skip) ---- (passed) <------------------ RETURNING
#:
#: SCHEDULED -> HEALTHY covers events the Selector decided to skip;
#: RETURNING -> SCHEDULED covers re-validation of repaired nodes
#: before they rejoin the pool.
LEGAL_TRANSITIONS: dict[NodeState, frozenset[NodeState]] = {
    NodeState.HEALTHY: frozenset({NodeState.SCHEDULED}),
    NodeState.SCHEDULED: frozenset({NodeState.VALIDATING, NodeState.HEALTHY}),
    NodeState.VALIDATING: frozenset({NodeState.HEALTHY, NodeState.QUARANTINED}),
    NodeState.QUARANTINED: frozenset({NodeState.IN_REPAIR}),
    NodeState.IN_REPAIR: frozenset({NodeState.RETURNING}),
    NodeState.RETURNING: frozenset({NodeState.HEALTHY, NodeState.SCHEDULED}),
}


@dataclass(frozen=True)
class Transition:
    """One applied state change, in journal order."""

    seq: int
    node_id: str
    old: NodeState
    new: NodeState
    reason: str = ""


class NodeLifecycle:
    """Tracks and enforces per-node states.

    Nodes never seen before are :attr:`NodeState.HEALTHY`; the class
    therefore needs no up-front fleet registration and works for
    fleets that grow while the service runs.
    """

    def __init__(self):
        self._states: dict[str, NodeState] = {}
        self._seq = 0
        self.transitions: list[Transition] = []

    def state(self, node_id: str) -> NodeState:
        """Current state of one node (HEALTHY if never seen)."""
        return self._states.get(node_id, NodeState.HEALTHY)

    def transition(self, node_id: str, new: NodeState, *,
                   reason: str = "") -> Transition:
        """Apply one state change, enforcing legality."""
        old = self.state(node_id)
        if new not in LEGAL_TRANSITIONS[old]:
            raise LifecycleError(
                f"illegal transition {old.value} -> {new.value} "
                f"for node {node_id!r}" + (f" ({reason})" if reason else "")
            )
        self._seq += 1
        applied = Transition(seq=self._seq, node_id=node_id, old=old,
                             new=new, reason=reason)
        self._states[node_id] = new
        self.transitions.append(applied)
        return applied

    def nodes_in(self, state: NodeState) -> list[str]:
        """Node ids currently in ``state``, in first-transition order.

        HEALTHY only lists nodes that have transitioned at least once
        (untouched nodes are implicitly healthy and unknown here).
        """
        return [n for n, s in self._states.items() if s is state]

    def counts(self) -> dict[str, int]:
        """State value -> number of known nodes in it."""
        counter = Counter(s.value for s in self._states.values())
        return {state.value: counter.get(state.value, 0) for state in NodeState}

    def states(self) -> dict[str, NodeState]:
        """Snapshot of every explicitly-tracked node's state."""
        return dict(self._states)
