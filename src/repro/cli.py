"""Command-line interface: ``python -m repro <command>``.

Thin operational wrappers over the library for the three workflows a
downstream operator runs most:

* ``screen``   -- build-out screening of a simulated fleet (Table 6 flow);
* ``simulate`` -- the 30-day policy comparison (Figure 8 / Table 4 flow);
* ``traces``   -- generate and persist incident/allocation traces;
* ``serve``    -- the durable validation control plane over a synthetic
  event stream (the §3.1 service loop);
* ``report``   -- the fleet SLO report (MTBI trend, availability vs.
  validation overhead, breaker/rollback/DLQ counts, sanitization
  rates) rebuilt deterministically from a ``serve`` journal, as
  markdown or JSON, snapshot or ``--follow`` streaming;
* ``quality-report`` -- a dirty-telemetry sweep through the
  sanitization layer: quarantine ledger, clean-vs-dirty eviction
  comparison, and a guarded-rollout demonstration against poisoned
  criteria.

Every command takes ``--seed`` and prints plain-text tables; exit code
is non-zero on invalid arguments only (experiments that merely show
bad hardware still exit 0 -- finding defects is the point).
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SuperBench/ANUBIS reproduction: proactive GPU-fleet validation",
    )
    parser.add_argument("--profile", action="store_true",
                        help="run the command under cProfile and print the "
                             "top-25 cumulative functions (put it before "
                             "the subcommand: repro --profile serve ...)")
    parser.add_argument("--profile-out", metavar="PATH",
                        default="repro-profile.pstats",
                        help="where --profile dumps the pstats file "
                             "(default repro-profile.pstats)")
    sub = parser.add_subparsers(dest="command", required=True)

    screen = sub.add_parser("screen", help="screen a simulated fleet "
                                           "with the full benchmark set")
    screen.add_argument("--nodes", type=int, default=120,
                        help="fleet size (default 120)")
    screen.add_argument("--learn-on", type=int, default=60,
                        help="nodes used for offline criteria learning")
    screen.add_argument("--alpha", type=float, default=0.95,
                        help="similarity threshold (default 0.95)")
    screen.add_argument("--seed", type=int, default=0)
    screen.add_argument("--save-criteria", metavar="PATH", default=None,
                        help="write learned criteria JSON to PATH")

    simulate = sub.add_parser("simulate", help="run the 30-day policy "
                                               "comparison simulation")
    simulate.add_argument("--nodes", type=int, default=48)
    simulate.add_argument("--days", type=int, default=30)
    simulate.add_argument("--p0", type=float, default=0.02,
                          help="Selector residual-probability target")
    simulate.add_argument("--seed", type=int, default=0)

    traces = sub.add_parser("traces", help="generate synthetic incident "
                                           "and allocation traces")
    traces.add_argument("--nodes", type=int, default=200)
    traces.add_argument("--hours", type=float, default=2400.0)
    traces.add_argument("--incidents-out", metavar="PATH", default=None)
    traces.add_argument("--allocations-out", metavar="PATH", default=None)
    traces.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser("serve", help="run the validation control plane "
                                         "against a simulated fleet")
    serve.add_argument("--nodes", type=int, default=64,
                       help="fleet size (default 64)")
    serve.add_argument("--events", type=int, default=200,
                       help="synthetic orchestration events to replay")
    serve.add_argument("--journal", metavar="DIR", default=None,
                       help="journal directory (enables durable state)")
    serve.add_argument("--learn-on", type=int, default=16,
                       help="nodes used for offline criteria learning")
    serve.add_argument("--workers", type=int, default=8,
                       help="parallel validation workers")
    serve.add_argument("--p0", type=float, default=0.10,
                       help="Selector residual-probability target")
    serve.add_argument("--max-queue-depth", type=int, default=None,
                       metavar="N",
                       help="bound the event queue at N entries; overload "
                            "sheds the lowest-risk events (journaled as "
                            "load-shed) instead of growing without bound")
    serve.add_argument("--incremental-criteria", action="store_true",
                       help="learn criteria through the incremental engine "
                            "(sketches + landmark medoids + delta re-learn) "
                            "and run a gated re-learn after the event "
                            "stream, so the per-path learn stages "
                            "(learn-exact/full/delta/cached) show up in "
                            "the pipeline stats and the journal report")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--chaos-seed", type=int, default=None, metavar="SEED",
                       help="install the seeded chaos harness (executor "
                            "crashes, journal write faults, tick/repair "
                            "faults, and -- with --journal -- simulated "
                            "process kills with restart-from-journal; with "
                            "--processes, real SIGKILLs against the worker "
                            "processes)")
    serve.add_argument("--processes", action="store_true",
                       help="run the process-isolated shard fabric: one OS "
                            "worker process per shard with real crash "
                            "containment and journaled failover "
                            "(requires --journal)")
    serve.add_argument("--shards", type=int, default=2, metavar="N",
                       help="shard count for --processes (default 2)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="graceful-drain window per worker before "
                            "escalating to SIGKILL (default 10)")
    serve.add_argument("--sku-mix", metavar="SPEC", default=None,
                       help="heterogeneous fleet composition as "
                            "NAME=FRACTION pairs summing to 1.0, e.g. "
                            "'A100=0.5,H100=0.3,MI250X=0.2' (default: "
                            "a homogeneous A100 fleet); criteria are "
                            "learned per SKU namespace")

    report = sub.add_parser(
        "report",
        help="fleet SLO report (MTBI trend, availability vs. validation "
             "overhead, breaker/rollback/DLQ counts, sanitization rates) "
             "rebuilt from a service journal")
    report.add_argument("--journal", metavar="DIR", required=True,
                        help="journal directory written by serve --journal")
    report.add_argument("--format", choices=("markdown", "json"),
                        default="markdown", help="output format "
                        "(default markdown)")
    report.add_argument("--fleet-size", type=int, default=None,
                        help="known fleet size for availability math "
                             "(default: nodes seen in the journal)")
    report.add_argument("--follow", action="store_true",
                        help="keep polling the journal and re-emit the "
                             "report when new records land")
    report.add_argument("--interval", type=float, default=2.0,
                        help="--follow poll interval in seconds "
                             "(default 2.0)")
    report.add_argument("--max-polls", type=int, default=None,
                        help="stop --follow after N polls (default: run "
                             "until interrupted)")
    report.add_argument("--out", metavar="PATH", default=None,
                        help="also write the report to PATH")
    report.add_argument("--by-sku", action="store_true",
                        help="emit only the per-SKU fleet-health section "
                             "(per-SKU MTBI, eviction pipeline, rollback "
                             "and sanitization rates; pre-SKU journals "
                             "report one 'unknown' row)")

    quality = sub.add_parser(
        "quality-report",
        help="sweep a fleet through dirty telemetry and report what the "
             "sanitization layer quarantined")
    quality.add_argument("--nodes", type=int, default=32,
                         help="fleet size (default 32)")
    quality.add_argument("--learn-on", type=int, default=16,
                         help="nodes used for offline criteria learning")
    quality.add_argument("--contamination", type=float, default=0.10,
                         help="telemetry fault probability per run "
                              "(default 0.10)")
    quality.add_argument("--alpha", type=float, default=0.95,
                         help="similarity threshold (default 0.95)")
    quality.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_screen(args) -> int:
    from repro.benchsuite.runner import SuiteRunner
    from repro.benchsuite.suite import full_suite
    from repro.core.validator import Validator
    from repro.hardware.fleet import build_fleet

    if args.learn_on < 2 or args.learn_on > args.nodes:
        print("error: --learn-on must be in [2, --nodes]", file=sys.stderr)
        return 2
    fleet = build_fleet(args.nodes, seed=args.seed)
    validator = Validator(full_suite(), runner=SuiteRunner(seed=args.seed),
                          alpha=args.alpha)
    print(f"learning criteria on {args.learn_on} of {args.nodes} nodes...")
    validator.learn_criteria(fleet.nodes[:args.learn_on])
    print("screening the fleet...")
    report = validator.validate(fleet.nodes)

    by_benchmark = report.violations_by_benchmark()
    print(f"\n{'benchmark':<28} defects")
    for name, nodes in sorted(by_benchmark.items(), key=lambda kv: -len(kv[1])):
        print(f"{name:<28} {len(nodes)} "
              f"({100 * len(nodes) / args.nodes:.2f}%)")
    flagged = report.defective_nodes
    print(f"\ntotal: {len(flagged)}/{args.nodes} nodes filtered as defective "
          f"({100 * len(flagged) / args.nodes:.2f}%)")
    if args.save_criteria:
        from repro.core.persistence import save_criteria
        save_criteria(validator, args.save_criteria)
        print(f"criteria written to {args.save_criteria}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.simulation.cluster import SimulationConfig
    from repro.simulation.generator import generate_allocation_trace
    from repro.simulation.metrics import run_policy_comparison

    horizon = 24.0 * args.days
    config = SimulationConfig(n_nodes=args.nodes, horizon_hours=horizon,
                              seed=args.seed)
    trace = generate_allocation_trace(
        horizon, jobs_per_hour=args.nodes / 48.0,
        max_job_nodes=max(2, args.nodes // 4),
        mean_duration_hours=18.0, seed=args.seed + 1)
    print(f"simulating {args.days} days x {args.nodes} nodes "
          f"({len(trace)} jobs) under four policies...")
    comparison = run_policy_comparison(config, trace, p0=args.p0)
    print(f"\n{'policy':<10} {'util':>7} {'MTBI(h)':>9} {'val(h)':>8} "
          f"{'inc/node':>9}")
    for name in ("absence", "full-set", "selector", "ideal"):
        result = comparison.results[name]
        print(f"{name:<10} {100 * result.average_utilization:>6.1f}% "
              f"{result.mtbi_hours:>9.1f} "
              f"{result.average_validation_hours:>8.1f} "
              f"{result.average_incidents:>9.2f}")
    return 0


def _cmd_traces(args) -> int:
    from repro.simulation.generator import (
        generate_allocation_trace,
        generate_incident_trace,
    )

    incidents = generate_incident_trace(args.nodes, args.hours, seed=args.seed)
    allocations = generate_allocation_trace(args.hours, seed=args.seed + 1)
    print(f"generated {len(incidents)} incidents on {args.nodes} nodes and "
          f"{len(allocations)} allocation requests over {args.hours:.0f} h")
    if args.incidents_out:
        incidents.save(args.incidents_out)
        print(f"incident trace written to {args.incidents_out}")
    if args.allocations_out:
        allocations.save(args.allocations_out)
        print(f"allocation trace written to {args.allocations_out}")
    return 0


def _parse_sku_mix(spec: str) -> dict[str, float]:
    """Parse 'A100=0.5,H100=0.5'-style fleet-composition specs."""
    mix: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, fraction = part.partition("=")
        name = name.strip()
        if not name or not fraction:
            raise ValueError(
                f"expected NAME=FRACTION, got {part!r}")
        if name in mix:
            raise ValueError(f"duplicate SKU {name!r}")
        try:
            mix[name] = float(fraction)
        except ValueError:
            raise ValueError(
                f"bad fraction {fraction!r} for SKU {name!r}") from None
    if not mix:
        raise ValueError("empty sku mix")
    return mix


def _learn_subset(nodes, learn_on: int):
    """The first ``learn_on`` nodes, round-robined across SKUs.

    Criteria are learned per SKU namespace, and every namespace needs
    at least two sample nodes -- a contiguous slice of a mixed fleet
    can starve a minority class entirely, so the subset interleaves
    the classes instead.  Homogeneous fleets reduce to the plain
    prefix slice.
    """
    by_sku: dict[str, list] = {}
    for node in nodes:
        by_sku.setdefault(getattr(node, "sku", "unknown"), []).append(node)
    if len(by_sku) == 1:
        return list(nodes)[:learn_on]
    subset: list = []
    pools = [list(group) for _sku, group in sorted(by_sku.items())]
    while len(subset) < learn_on and any(pools):
        for pool in pools:
            if pool:
                subset.append(pool.pop(0))
                if len(subset) >= learn_on:
                    break
    return subset


def _cmd_serve(args) -> int:
    import numpy as np

    from repro.benchsuite.runner import SuiteRunner
    from repro.benchsuite.suite import full_suite
    from repro.core.selector import NodeStatus, Selector
    from repro.core.system import Anubis, EventKind, ValidationEvent
    from repro.core.validator import Validator
    from repro.exceptions import ServiceError
    from repro.hardware.fleet import build_fleet
    from repro.service import (
        PoolConfig,
        ServiceConfig,
        SimulatedKill,
        ValidationService,
    )
    from repro.simulation import analytic_coverage_table, suite_durations
    from repro.simulation.generator import generate_incident_trace
    from repro.survival import extract_status_samples
    from repro.survival.exponential import ExponentialModel

    if args.learn_on < 2 or args.learn_on > args.nodes:
        print("error: --learn-on must be in [2, --nodes]", file=sys.stderr)
        return 2
    if args.events < 1 or args.workers < 1:
        print("error: --events and --workers must be positive", file=sys.stderr)
        return 2
    if args.processes and not args.journal:
        print("error: --processes requires --journal (dead workers are "
              "recovered from their journals)", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 2
    if args.drain_timeout <= 0:
        print("error: --drain-timeout must be positive", file=sys.stderr)
        return 2
    sku_mix = None
    if args.sku_mix:
        try:
            sku_mix = _parse_sku_mix(args.sku_mix)
        except ValueError as error:
            print(f"error: --sku-mix: {error}", file=sys.stderr)
            return 2

    try:
        fleet = build_fleet(args.nodes, seed=args.seed, sku_mix=sku_mix)
    except ValueError as error:
        print(f"error: --sku-mix: {error}", file=sys.stderr)
        return 2
    if sku_mix is not None:
        counts = ", ".join(f"{sku}={count}" for sku, count
                           in sorted(fleet.sku_counts().items()))
        print(f"fleet composition: {counts}")
    suite = full_suite()
    incremental = None
    if args.incremental_criteria:
        from repro.core.incremental import IncrementalConfig
        incremental = IncrementalConfig()
    validator = Validator(suite, runner=SuiteRunner(seed=args.seed),
                          incremental=incremental)
    print(f"learning criteria on {args.learn_on} of {args.nodes} nodes...")
    validator.learn_criteria(_learn_subset(fleet.nodes, args.learn_on))

    trace = generate_incident_trace(max(args.nodes, 50), 2400.0,
                                    seed=args.seed + 1)
    dataset = extract_status_samples(trace)
    model = ExponentialModel().fit(dataset)
    selector = Selector(model, analytic_coverage_table(suite),
                        suite_durations(suite), p0=args.p0)
    anubis = Anubis(validator, selector)

    # Synthetic orchestration stream: mostly job allocations, plus
    # periodic checks, incident reports and node additions.
    rng = np.random.default_rng(args.seed + 2)
    n_samples = len(dataset)
    kinds = rng.choice(4, size=args.events, p=[0.70, 0.15, 0.10, 0.05])
    events = []
    for kind_index in kinds:
        if kind_index == 0:
            kind = EventKind.JOB_ALLOCATION
            width = 1 + int(rng.integers(0, max(args.nodes // 8, 1)))
            duration = float(rng.lognormal(2.0, 1.0))
        elif kind_index == 1:
            kind = EventKind.PERIODIC
            width, duration = 1 + int(rng.integers(0, 4)), 24.0
        elif kind_index == 2:
            kind = EventKind.INCIDENT_REPORTED
            width, duration = 1, 24.0
        else:
            kind = EventKind.NODE_ADDED
            width, duration = 1 + int(rng.integers(0, 2)), 24.0
        picks = rng.choice(args.nodes, size=min(width, args.nodes),
                           replace=False)
        members = [fleet.nodes[int(i)] for i in picks]
        statuses = tuple(
            NodeStatus(node_id=node.node_id,
                       covariates=dataset.covariates[
                           int(rng.integers(0, n_samples))])
            for node in members
        )
        events.append(ValidationEvent(kind=kind, nodes=tuple(members),
                                      statuses=statuses,
                                      duration_hours=duration))

    if args.processes:
        return _serve_processes(args, validator, events)

    # Approximate criteria only ever go live through the shadow-
    # evaluation gate, so the incremental engine always brings the
    # rollout guard with it.
    rollout = None
    if args.incremental_criteria:
        from repro.quality.rollout import RolloutConfig
        rollout = RolloutConfig()
    config = ServiceConfig(pool=PoolConfig(max_workers=args.workers),
                           max_queue_depth=args.max_queue_depth,
                           rollout=rollout)
    service = ValidationService(anubis, fleet.nodes,
                                journal_dir=args.journal, config=config)

    from collections import Counter

    chaos = None
    restarts = 0
    injections = Counter()

    def install(target):
        nonlocal chaos
        if args.chaos_seed is None:
            return
        from repro.service.chaos import ChaosPlan, install_chaos

        if chaos is not None:
            injections.update(chaos.injections)

        # The seed shifts per incarnation so a restarted service does
        # not deterministically die at the same journal append again.
        chaos = install_chaos(target, ChaosPlan(
            seed=args.chaos_seed + restarts,
            executor_crash_rate=0.02,
            journal_error_rate=0.02,
            tick_error_rate=0.02,
            repair_failure_rate=0.05,
            kill_rate=0.01 if args.journal else 0.0,
        ))

    install(service)
    print(f"submitting {args.events} events over {args.nodes} nodes..."
          + (" (chaos on)" if chaos else ""))
    results = []
    submitted = 0
    dropped = 0
    previous = _install_drain_handlers()
    try:
        while True:
            try:
                while submitted < len(events):
                    try:
                        service.submit(events[submitted])
                    except ServiceError:
                        # Injected journal fault rejected the enqueue;
                        # the entry was rolled back, so the event is
                        # simply lost to this run (a real orchestrator
                        # would retry).
                        dropped += 1
                    submitted += 1
                results.extend(service.drain())
                break
            except SimulatedKill:
                restarts += 1
                if restarts > 50:
                    print("error: chaos kept killing the service",
                          file=sys.stderr)
                    return 1
                print(f"chaos: simulated process kill #{restarts}; "
                      f"restarting from journal...")
                service = ValidationService(anubis, fleet.nodes,
                                            journal_dir=args.journal,
                                            config=config)
                install(service)
        if args.incremental_criteria:
            # Post-stream re-learn: the control plane resolves delta
            # vs full from the nodes measured since the first learn,
            # walks the candidates through the rollout gate, and
            # journals the realized per-key engine path
            # (criteria-learn record).
            print(f"\nre-learning criteria on {args.learn_on} nodes "
                  f"(incremental engine)...")
            decisions = service.learn_criteria(fleet.nodes[:args.learn_on])
            rejected = sum(1 for d in decisions if not d.accepted)
            if decisions:
                print(f"rollout gate: {len(decisions) - rejected} "
                      f"accepted, {rejected} rolled back")

        quarantined = sorted({n for r in results for n in r.quarantined})
        print(f"\nprocessed {len(results)} events "
              f"({service.queue.coalesced_total} coalesced away)\n")
        print(service.metrics.format_table())
        pipeline = anubis.pipeline_stats()
        if pipeline:
            print("\nmeasurement spine (stage: runs, seconds):")
            for stage, entry in pipeline.items():
                print(f"  {stage:<14} {int(entry['count']):6d} "
                      f"{entry['seconds']:8.3f}s")
        counts = service.lifecycle.counts()
        print("\nlifecycle:",
              " ".join(f"{k}={v}" for k, v in counts.items()))
        if quarantined:
            print(f"quarantined this run: {', '.join(quarantined)}")
        if chaos is not None:
            injections.update(chaos.injections)
            fired = " ".join(f"{k}={v}"
                             for k, v in sorted(injections.items()))
            print(f"chaos injections: {fired or 'none'} "
                  f"(restarts={restarts})")
            if service.dead_letters():
                print(f"dead-lettered events: "
                      f"{len(service.dead_letters())}")
        if args.journal:
            # Run-complete seal: with the drain marker as the
            # journal's final record, the report's clean_shutdown
            # flag reads true.  Sealing happens inside the handler-
            # covered region: a signal landing anywhere between the
            # first submit and this seal still drains cleanly.
            service.seal(reason="run-complete")
            print(f"journal: {service.store.path}")
        return 0
    except _GracefulShutdown as stop:
        # Graceful drain: journal the fabric-drain marker and fsync
        # the journal tail, so ``repro report`` can tell this clean
        # shutdown from a crash.  Handlers are restored first, so a
        # second signal kills immediately instead of re-entering.
        _restore_drain_handlers(previous)
        service.seal(reason=f"signal-{stop.signum}")
        print(f"\nsignal {stop.signum}: journal sealed after "
              f"{submitted}/{len(events)} events "
              f"({service.metrics.events_processed} processed); exiting")
        return 0
    finally:
        _restore_drain_handlers(previous)


class _GracefulShutdown(BaseException):
    """Raised from the serve signal handlers to unwind to a seal.

    A ``BaseException`` so no containment handler between the signal
    and the drain logic can swallow the shutdown request.
    """

    def __init__(self, signum: int):
        super().__init__(f"signal {signum}")
        self.signum = signum


def _install_drain_handlers():
    """Route SIGTERM/SIGINT into :class:`_GracefulShutdown`."""
    import signal

    def _raise(signum, _frame):
        raise _GracefulShutdown(signum)

    return {signum: signal.signal(signum, _raise)
            for signum in (signal.SIGTERM, signal.SIGINT)}


def _restore_drain_handlers(previous) -> None:
    import signal

    for signum, handler in previous.items():
        signal.signal(signum, handler)


def _serve_processes(args, validator, events) -> int:
    """``serve --processes``: the OS-process shard fabric end to end.

    The parent learns criteria once (already done by the caller) and
    persists them next to the journals, so every worker loads instead
    of re-learning; workers then rebuild the same fleet, suite and
    selector from the JSON builder args.  SIGTERM/SIGINT drain every
    worker gracefully -- each seals its own journal -- and a chaos
    seed arms real ``SIGKILL``/``SIGSTOP`` faults inside the workers.
    """
    from pathlib import Path

    from repro.core.persistence import save_criteria
    from repro.service import (
        ProcessChaosPlan,
        ProcessFabric,
        SupervisorConfig,
    )

    root = Path(args.journal)
    root.mkdir(parents=True, exist_ok=True)
    criteria_path = root / "criteria.json"
    save_criteria(validator, criteria_path)

    chaos = None
    if args.chaos_seed is not None:
        chaos = ProcessChaosPlan(seed=args.chaos_seed, kill_rate=0.01,
                                 stop_rate=0.002)
    builder_args = {
        "fleet_size": args.nodes,
        "fleet_seed": args.seed,
        "suite": None,
        "runner_seed": args.seed,
        "criteria_path": str(criteria_path),
        "trace_nodes": max(args.nodes, 50),
        "trace_hours": 2400.0,
        "trace_seed": args.seed + 1,
        "p0": args.p0,
        "pool": {"max_workers": args.workers},
        "service": {"max_queue_depth": args.max_queue_depth},
    }
    print(f"spawning {args.shards} worker processes..."
          + (" (chaos on)" if chaos else ""))
    fabric = ProcessFabric(
        builder="repro.service.procfabric:default_builder",
        builder_args=builder_args,
        journal_root=root,
        config=SupervisorConfig(shard_count=args.shards),
        chaos=chaos,
        drain_timeout_seconds=args.drain_timeout,
    )
    print(f"submitting {len(events)} events over {args.nodes} nodes...")
    results = []
    submitted = 0
    previous = _install_drain_handlers()
    try:
        for event in events:
            fabric.submit(event)
            submitted += 1
        results = fabric.drain()
        summary = fabric.summary()
        # The run-complete shutdown (seal RPC to every worker) happens
        # inside the handler-covered region: a signal landing after
        # the drain but before the seals would otherwise kill the
        # parent with unsealed journals and orphaned workers.
        sealed = fabric.shutdown(reason="run-complete")
        quarantined = sorted({n for r in results
                              for n in r["quarantined"]})
        print(f"\nprocessed {len(results)} events across {args.shards} "
              f"worker processes\n")
        for key in ("worker_spawns", "worker_restarts", "worker_deaths",
                    "rpc_timeouts", "shards_degraded",
                    "events_failed_over", "handoffs_reconciled",
                    "deliveries_deduped"):
            print(f"  {key:<22} {summary[key]:6d}")
        if quarantined:
            print(f"\nquarantined this run: {', '.join(quarantined)}")
        clean = sum(1 for ok in sealed.values() if ok)
        print(f"\nclean drains: {clean}/{len(sealed)} workers")
        print(f"journals under: {root}")
        return 0
    except _GracefulShutdown as stop:
        # Restore first: a second signal kills immediately rather
        # than interrupting the seal already in progress.
        _restore_drain_handlers(previous)
        sealed = fabric.shutdown(reason=f"signal-{stop.signum}")
        clean = sum(1 for ok in sealed.values() if ok)
        print(f"\nsignal {stop.signum}: drained {clean}/{len(sealed)} "
              f"workers cleanly after {submitted}/{len(events)} events; "
              f"exiting")
        return 0
    finally:
        _restore_drain_handlers(previous)


def _cmd_report(args) -> int:
    import time as _time

    from repro.analytics import JournalReader, build_report
    from repro.analytics.report import render_json, render_markdown

    if args.interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return 2
    if args.max_polls is not None and args.max_polls < 1:
        print("error: --max-polls must be at least 1", file=sys.stderr)
        return 2

    reader = JournalReader(args.journal)
    render = render_json if args.format == "json" else render_markdown

    def emit(records) -> str:
        report = build_report(records, fleet_size=args.fleet_size,
                              journal_health=reader.health())
        if args.by_sku:
            report = {"sku": report.get("sku")}
        text = render(report)
        print(text, end="")
        if args.out:
            from pathlib import Path
            Path(args.out).write_text(text)
        return text

    if not args.follow:
        emit(reader.read_all())
        return 0

    # Follow mode: keep the record prefix in memory and rebuild the
    # report whenever a poll delivers news.  A reset (the service
    # compacted the journal under us) drops the prefix and starts
    # over from the rewritten segment -- reducers are cheap enough to
    # re-run; correctness over cleverness.
    records: list = []
    cursor = None
    polls = 0
    while True:
        result = reader.poll(cursor)
        cursor = result.cursor
        if result.reset:
            records = []
        if result.records or polls == 0:
            records.extend(result.records)
            emit(records)
        polls += 1
        if args.max_polls is not None and polls >= args.max_polls:
            return 0
        _time.sleep(args.interval)


def _cmd_quality_report(args) -> int:
    import numpy as np

    from repro.benchsuite.runner import SuiteRunner
    from repro.benchsuite.suite import full_suite
    from repro.core.validator import Validator
    from repro.hardware.fleet import build_fleet
    from repro.quality import RolloutConfig, Sanitizer, evaluate_rollout
    from repro.simulation.dirty import dirty_runner

    if args.learn_on < 2 or args.learn_on > args.nodes:
        print("error: --learn-on must be in [2, --nodes]", file=sys.stderr)
        return 2
    if not 0.0 <= args.contamination <= 1.0:
        print("error: --contamination must be in [0, 1]", file=sys.stderr)
        return 2

    fleet = build_fleet(args.nodes, seed=args.seed)
    suite = full_suite()
    learn_nodes = fleet.nodes[:args.learn_on]

    # Clean reference sweep: same fleet, same seed, no telemetry dirt.
    clean = Validator(suite, runner=SuiteRunner(seed=args.seed),
                      alpha=args.alpha)
    clean.learn_criteria(learn_nodes)
    clean_report = clean.validate(fleet.nodes)

    # Dirty sweep: telemetry faults at the requested rate, sanitized at
    # ingestion, learning trimmed to the same contamination budget.
    sanitizer = Sanitizer.for_suite(suite)
    runner = dirty_runner(contamination=args.contamination, seed=args.seed,
                          sanitizer=sanitizer)
    dirty = Validator(suite, runner=runner, alpha=args.alpha,
                      contamination=min(args.contamination, 0.49))
    print(f"learning criteria on {args.learn_on} of {args.nodes} nodes "
          f"under {100 * args.contamination:.0f}% telemetry contamination...")
    windows = dirty.learn_criteria(learn_nodes)
    dirty_report = dirty.validate(fleet.nodes)

    print("\ntelemetry quarantine ledger:")
    print(sanitizer.ledger.format_table())

    clean_evicted = set(clean_report.defective_nodes)
    dirty_evicted = set(dirty_report.defective_nodes)
    false_evictions = sorted(dirty_evicted - clean_evicted)
    print(f"\nevictions: clean run {len(clean_evicted)}, "
          f"dirty run {len(dirty_evicted)}, "
          f"false (dirty-only) {len(false_evictions)}")
    if false_evictions:
        print("false evictions: " + ", ".join(false_evictions))

    # Guarded rollout against a coherent poisoning of every criteria:
    # the candidate measures 3x too high, fleet-wide.
    guard = RolloutConfig()
    rejected = 0
    for key, shadow in sorted(windows.items()):
        criteria = dirty.criteria[key]
        poisoned = np.asarray(criteria.criteria, dtype=float) * 3.0
        decision = evaluate_rollout(
            shadow, poisoned, criteria.criteria, alpha=criteria.alpha,
            higher_is_better=criteria.higher_is_better, config=guard,
            benchmark=key[1], metric=key[2], sku=key[0])
        if not decision.accepted:
            rejected += 1
    print(f"\nguarded rollout: poisoned criteria rejected for "
          f"{rejected}/{len(windows)} (sku, benchmark, metric) namespaces")
    return 0


def _run_profiled(handler, args) -> int:
    """Run one command under cProfile; dump stats and a top-25 summary."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(handler, args)
    finally:
        profiler.dump_stats(args.profile_out)
        print(f"\nprofile written to {args.profile_out}; "
              "top 25 by cumulative time:", file=sys.stderr)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats(pstats.SortKey.CUMULATIVE).print_stats(25)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "screen": _cmd_screen,
        "simulate": _cmd_simulate,
        "traces": _cmd_traces,
        "serve": _cmd_serve,
        "report": _cmd_report,
        "quality-report": _cmd_quality_report,
    }
    handler = handlers[args.command]
    if args.profile:
        return _run_profiled(handler, args)
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
