"""Simulated GPU-node hardware substrate."""

from repro.hardware.components import (
    COMPONENT_CATEGORY,
    DEFECT_CATALOG,
    Component,
    DefectMode,
    IncidentCategory,
    defect_mode,
)
from repro.hardware.degradation import DEFAULT_CATEGORY_WEIGHTS, WearModel
from repro.hardware.fleet import Fleet, build_fleet
from repro.hardware.gpu import GpuMemory, row_remap_regression_probability
from repro.hardware.node import Node

__all__ = [
    "COMPONENT_CATEGORY",
    "DEFAULT_CATEGORY_WEIGHTS",
    "DEFECT_CATALOG",
    "Component",
    "DefectMode",
    "Fleet",
    "GpuMemory",
    "IncidentCategory",
    "Node",
    "WearModel",
    "build_fleet",
    "defect_mode",
    "row_remap_regression_probability",
]
