"""Simulated GPU-node hardware substrate."""

from repro.hardware.components import (
    COMPONENT_CATEGORY,
    DEFECT_CATALOG,
    Component,
    DefectMode,
    IncidentCategory,
    defect_mode,
)
from repro.hardware.degradation import DEFAULT_CATEGORY_WEIGHTS, WearModel
from repro.hardware.fleet import Fleet, build_fleet
from repro.hardware.gpu import GpuMemory, row_remap_regression_probability
from repro.hardware.node import Node
from repro.hardware.sku import (
    DEFAULT_SKU,
    SKU_REGISTRY,
    UNKNOWN_SKU,
    GpuSpec,
    gpu_spec,
    performance_factor,
)

__all__ = [
    "COMPONENT_CATEGORY",
    "DEFAULT_CATEGORY_WEIGHTS",
    "DEFAULT_SKU",
    "DEFECT_CATALOG",
    "SKU_REGISTRY",
    "UNKNOWN_SKU",
    "Component",
    "DefectMode",
    "Fleet",
    "GpuMemory",
    "GpuSpec",
    "IncidentCategory",
    "Node",
    "WearModel",
    "build_fleet",
    "defect_mode",
    "gpu_spec",
    "performance_factor",
    "row_remap_regression_probability",
]
