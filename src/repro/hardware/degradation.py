"""Gradual hardware degradation (paper §2.2, Figure 4).

The paper's key reliability observation: the mean duration between a
node's ``i``-th and ``(i+1)``-th incidents *shrinks* as incidents
accumulate -- from 719.4 hours before the first incident to 151.7
hours by the twentieth -- because partial repairs restore only the
redundancy that broke, not overall margin.

:class:`WearModel` captures that with a power-law hazard

``rate(i) = rate_0 * (1 + i) ** gamma``

where ``i`` is the node's historical incident count.  The default
``gamma`` is calibrated so ``MTBI(0) / MTBI(19)`` matches the paper's
``719.4 / 151.7`` ratio.  The model also supplies per-category hazard
shares and job-level time-to-failure (Figure 4 right).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.components import IncidentCategory

__all__ = ["WearModel", "DEFAULT_CATEGORY_WEIGHTS"]

#: Ticket-category mix behind Figure 1, normalized at construction.
DEFAULT_CATEGORY_WEIGHTS: dict[IncidentCategory, float] = {
    IncidentCategory.GPU: 0.30,
    IncidentCategory.NETWORK: 0.22,
    IncidentCategory.GPU_MEMORY: 0.13,
    IncidentCategory.CPU_MEMORY: 0.09,
    IncidentCategory.SOFTWARE: 0.08,
    IncidentCategory.PCIE: 0.06,
    IncidentCategory.NVLINK: 0.05,
    IncidentCategory.THERMAL: 0.04,
    IncidentCategory.DISK: 0.03,
}


@dataclass(frozen=True)
class WearModel:
    """Power-law incident hazard as a function of incident history.

    Attributes
    ----------
    base_mtbi_hours:
        Expected time to the *first* incident of a fresh node
        (paper: 719.4 h).
    gamma:
        Hazard growth exponent; the default reproduces the paper's
        20th-incident MTBI of 151.7 h.
    category_weights:
        Relative share of each incident category.
    """

    base_mtbi_hours: float = 719.4
    gamma: float = field(default=None)
    category_weights: dict[IncidentCategory, float] = field(default=None)

    def __post_init__(self):
        if self.base_mtbi_hours <= 0:
            raise ValueError("base_mtbi_hours must be positive")
        if self.gamma is None:
            # MTBI(i) = base / (1 + i)^gamma; match MTBI(19) = 151.7 h.
            target_ratio = 719.4 / 151.7
            object.__setattr__(
                self, "gamma", float(np.log(target_ratio) / np.log(20.0))
            )
        weights = self.category_weights or dict(DEFAULT_CATEGORY_WEIGHTS)
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("category weights must sum to a positive value")
        normalized = {cat: w / total for cat, w in weights.items()}
        object.__setattr__(self, "category_weights", normalized)

    def incident_rate(self, incident_count: int) -> float:
        """Hazard (incidents/hour) for a node with ``incident_count``
        historical incidents."""
        count = max(int(incident_count), 0)
        return (1.0 + count) ** self.gamma / self.base_mtbi_hours

    def mean_time_between_incidents(self, incident_count: int) -> float:
        """Expected gap between the ``i``-th and ``(i+1)``-th incident."""
        return 1.0 / self.incident_rate(incident_count)

    def sample_time_to_incident(self, incident_count: int,
                                rng: np.random.Generator) -> float:
        """Draw an exponential time to the next incident (hours)."""
        return float(rng.exponential(self.mean_time_between_incidents(incident_count)))

    def sample_category(self, rng: np.random.Generator) -> IncidentCategory:
        """Draw the ticket category of the next incident."""
        categories = list(self.category_weights)
        weights = np.array([self.category_weights[c] for c in categories])
        return categories[int(rng.choice(len(categories), p=weights))]

    def job_time_to_failure(self, node_count: int, incident_count: int) -> float:
        """Figure 4 (right): expected time to first failure of a
        gang-scheduled job.

        Assuming every node in the job has had ``incident_count``
        incidents and fails independently at the constant per-node
        rate, the job's failure rate is the sum of the node rates.
        """
        if node_count <= 0:
            raise ValueError("node_count must be positive")
        return self.mean_time_between_incidents(incident_count) / node_count
