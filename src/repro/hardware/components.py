"""Hardware component model and defect catalog.

The paper's fleets are physical A100/MI250X/H100 VMs; our substitute is
a parametric node model.  Each node carries a *health* value in
``(0, 1]`` per :class:`Component`; benchmarks declare per-component
sensitivities and their measured performance scales with the healths of
the components they touch (see :mod:`repro.benchsuite`).

:data:`DEFECT_CATALOG` enumerates the gray-failure modes observed in
the paper (§2, Table 6): degraded IB HCAs, PCIe downgrades, HBM row
remapping, thermal throttling, the A100 compute/communication-overlap
L2-interference regression, workload-path-specific regressions that
only end-to-end benchmarks expose, and so on.  Injection rates are
calibrated so a build-out fleet shows roughly the paper's 10.36% defect
ratio with the per-benchmark ordering of Table 6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Component",
    "IncidentCategory",
    "DefectMode",
    "DEFECT_CATALOG",
    "COMPONENT_CATEGORY",
    "defect_mode",
]


class Component(str, enum.Enum):
    """Hardware (and pseudo-) components a benchmark can exercise.

    The three ``E2E_*_PATH`` entries are pseudo-components modelling
    software/hardware interactions that only surface under a full
    training workload of that family -- the paper's motivation for
    keeping end-to-end benchmarks in the set (§3.2).
    """

    GPU_COMPUTE = "gpu_compute"
    GPU_MEMORY = "gpu_memory"
    GPU_MEMORY_BW = "gpu_memory_bw"
    NVLINK = "nvlink"
    PCIE = "pcie"
    CPU = "cpu"
    DRAM = "dram"
    NIC = "nic"
    IB_LINK = "ib_link"
    DISK = "disk"
    OVERLAP_ENGINE = "overlap_engine"
    E2E_CNN_PATH = "e2e_cnn_path"
    E2E_TRANSFORMER_PATH = "e2e_transformer_path"
    E2E_RNN_PATH = "e2e_rnn_path"


class IncidentCategory(str, enum.Enum):
    """Coarse incident categories used in tickets and node statuses."""

    GPU = "gpu"
    GPU_MEMORY = "gpu_memory"
    NETWORK = "network"
    CPU_MEMORY = "cpu_memory"
    PCIE = "pcie"
    NVLINK = "nvlink"
    DISK = "disk"
    SOFTWARE = "software"
    THERMAL = "thermal"


#: Component -> incident-ticket category (Figure 1 sources).
COMPONENT_CATEGORY: dict[Component, IncidentCategory] = {
    Component.GPU_COMPUTE: IncidentCategory.GPU,
    Component.GPU_MEMORY: IncidentCategory.GPU_MEMORY,
    Component.GPU_MEMORY_BW: IncidentCategory.GPU_MEMORY,
    Component.NVLINK: IncidentCategory.NVLINK,
    Component.PCIE: IncidentCategory.PCIE,
    Component.CPU: IncidentCategory.CPU_MEMORY,
    Component.DRAM: IncidentCategory.CPU_MEMORY,
    Component.NIC: IncidentCategory.NETWORK,
    Component.IB_LINK: IncidentCategory.NETWORK,
    Component.DISK: IncidentCategory.DISK,
    Component.OVERLAP_ENGINE: IncidentCategory.GPU,
    Component.E2E_CNN_PATH: IncidentCategory.SOFTWARE,
    Component.E2E_TRANSFORMER_PATH: IncidentCategory.SOFTWARE,
    Component.E2E_RNN_PATH: IncidentCategory.SOFTWARE,
}


@dataclass(frozen=True)
class DefectMode:
    """One gray-failure mode.

    Attributes
    ----------
    name:
        Stable identifier, e.g. ``"ib_hca_degraded"``.
    components:
        Component -> health multiplier applied when the defect is
        injected (values in ``(0, 1)``; smaller = more severe).
    category:
        Ticket category the defect manifests as.
    rate:
        Probability that a random build-out node carries this defect
        (calibrated against Table 6).
    severity_jitter:
        Relative jitter applied to the health multipliers at injection
        time so defects vary in severity across nodes.
    """

    name: str
    components: dict[Component, float]
    category: IncidentCategory
    rate: float
    severity_jitter: float = 0.3

    def sampled_health(self, rng) -> dict[Component, float]:
        """Health multipliers with per-node severity jitter applied."""
        sampled = {}
        for component, base in self.components.items():
            degradation = 1.0 - base
            jitter = 1.0 + self.severity_jitter * float(rng.uniform(-1.0, 1.0))
            sampled[component] = float(min(1.0, max(0.05, 1.0 - degradation * jitter)))
        return sampled


#: Gray-failure catalog; rates roughly reproduce Table 6's per-benchmark
#: defect shares (including overlap between benchmarks) and the 10.36%
#: overall defect ratio.
DEFECT_CATALOG: tuple[DefectMode, ...] = (
    DefectMode(
        name="ib_hca_degraded",
        components={Component.NIC: 0.72},
        category=IncidentCategory.NETWORK,
        rate=0.0480,
    ),
    DefectMode(
        name="pcie_downgrade",
        components={Component.PCIE: 0.55},
        category=IncidentCategory.PCIE,
        rate=0.0165,
    ),
    DefectMode(
        name="transformer_path_regression",
        components={Component.E2E_TRANSFORMER_PATH: 0.82},
        category=IncidentCategory.SOFTWARE,
        rate=0.0125,
    ),
    DefectMode(
        name="dram_latency",
        components={Component.DRAM: 0.70, Component.CPU: 0.88},
        category=IncidentCategory.CPU_MEMORY,
        rate=0.0105,
    ),
    DefectMode(
        name="ib_fabric_link_flaky",
        components={Component.IB_LINK: 0.78},
        category=IncidentCategory.NETWORK,
        rate=0.0090,
    ),
    DefectMode(
        name="cnn_path_regression",
        components={Component.E2E_CNN_PATH: 0.84},
        category=IncidentCategory.SOFTWARE,
        rate=0.0060,
    ),
    DefectMode(
        name="rnn_path_regression",
        components={Component.E2E_RNN_PATH: 0.85},
        category=IncidentCategory.SOFTWARE,
        rate=0.0036,
    ),
    DefectMode(
        name="hbm_row_remap_regression",
        components={Component.GPU_MEMORY: 0.75, Component.GPU_MEMORY_BW: 0.85},
        category=IncidentCategory.GPU_MEMORY,
        rate=0.0030,
    ),
    DefectMode(
        name="l2_overlap_interference",
        components={Component.OVERLAP_ENGINE: 0.70},
        category=IncidentCategory.GPU,
        rate=0.0026,
    ),
    DefectMode(
        name="nvlink_degraded",
        components={Component.NVLINK: 0.75},
        category=IncidentCategory.NVLINK,
        rate=0.0024,
    ),
    DefectMode(
        name="disk_slow",
        components={Component.DISK: 0.60},
        category=IncidentCategory.DISK,
        rate=0.0016,
    ),
    DefectMode(
        name="gpu_thermal_throttle",
        components={Component.GPU_COMPUTE: 0.85, Component.GPU_MEMORY_BW: 0.92},
        category=IncidentCategory.THERMAL,
        rate=0.0012,
    ),
    DefectMode(
        name="gpu_compute_weak",
        components={Component.GPU_COMPUTE: 0.80},
        category=IncidentCategory.GPU,
        rate=0.0010,
    ),
)


def defect_mode(name: str) -> DefectMode:
    """Look up a catalog entry by name."""
    for mode in DEFECT_CATALOG:
        if mode.name == name:
            return mode
    raise KeyError(f"unknown defect mode {name!r}")
