"""GPU HBM row-remapping model (paper §2.2, Table 1).

A100-class GPUs ship redundant rows per HBM bank; correctable memory
errors are transparently remapped onto spare rows.  The redundancy
hides the degradation from software -- until spares run low, at which
point end-to-end workloads start regressing.  Table 1 quantifies this:
nodes with more than 10 remapped correctable errors regress in
end-to-end workloads 83.3% of the time versus 5.6% for 1--10 errors.

:class:`GpuMemory` tracks spare-row consumption per bank and exposes
the regression model used by the fleet builder and the Table 1 bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GpuMemory", "row_remap_regression_probability"]

#: Regression probability for nodes with 1-10 remapped errors (Table 1).
REGRESSION_PROB_LOW = 0.056
#: Regression probability for nodes with >10 remapped errors (Table 1).
REGRESSION_PROB_HIGH = 0.833
#: Threshold separating the two regimes.
REMAP_THRESHOLD = 10


def row_remap_regression_probability(remapped_errors: int) -> float:
    """P(end-to-end regression | number of remapped correctable errors).

    Piecewise model straight from Table 1: zero with no remaps, 5.6%
    for 1--10, 83.3% above 10.
    """
    if remapped_errors <= 0:
        return 0.0
    if remapped_errors <= REMAP_THRESHOLD:
        return REGRESSION_PROB_LOW
    return REGRESSION_PROB_HIGH


@dataclass
class GpuMemory:
    """HBM stack with redundant rows per bank.

    Attributes
    ----------
    banks:
        Number of HBM banks.
    spare_rows_per_bank:
        Redundant rows available in each bank.
    remapped:
        Per-bank count of rows consumed by remapping.
    uncorrectable:
        Count of errors that arrived after a bank ran out of spares;
        these surface as failures rather than gray degradation.
    """

    banks: int = 24
    spare_rows_per_bank: int = 8
    remapped: np.ndarray = field(default=None)
    uncorrectable: int = 0

    def __post_init__(self):
        if self.banks <= 0 or self.spare_rows_per_bank <= 0:
            raise ValueError("banks and spare_rows_per_bank must be positive")
        if self.remapped is None:
            self.remapped = np.zeros(self.banks, dtype=int)
        else:
            self.remapped = np.asarray(self.remapped, dtype=int).copy()
            if self.remapped.shape != (self.banks,):
                raise ValueError("remapped must have one entry per bank")

    @property
    def total_remapped(self) -> int:
        """Total correctable errors absorbed by row remapping."""
        return int(self.remapped.sum())

    @property
    def spare_rows_left(self) -> int:
        """Unused spare rows across all banks."""
        capacity = self.banks * self.spare_rows_per_bank
        return capacity - self.total_remapped

    def record_correctable_error(self, bank: int) -> bool:
        """Absorb one correctable error in ``bank``.

        Returns ``True`` when the error was remapped onto a spare row
        and ``False`` when the bank was already exhausted (the error
        becomes uncorrectable and counts as a hard failure).
        """
        if not 0 <= bank < self.banks:
            raise IndexError(f"bank {bank} out of range [0, {self.banks})")
        if self.remapped[bank] >= self.spare_rows_per_bank:
            self.uncorrectable += 1
            return False
        self.remapped[bank] += 1
        return True

    def inject_errors(self, count: int, rng: np.random.Generator) -> int:
        """Inject ``count`` correctable errors on random banks.

        Returns how many were successfully remapped.
        """
        remapped = 0
        for bank in rng.integers(0, self.banks, size=count):
            if self.record_correctable_error(int(bank)):
                remapped += 1
        return remapped

    def regression_probability(self) -> float:
        """Table 1 regression model applied to this GPU's remap count."""
        return row_remap_regression_probability(self.total_remapped)
