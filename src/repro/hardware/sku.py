"""SKU registry: per-hardware-class performance envelopes.

Production fleets mix accelerator generations, and a benchmark's
"normal" level differs enough across them that criteria learned on one
SKU are meaningless for another (the Milabench observation).  A
:class:`GpuSpec` captures everything node construction and measurement
need to know about one hardware class: the throughput factor relative
to the baseline SKU, the width of its silicon lottery, how defect- and
telemetry-fault-prone the class is, and its HBM geometry.

The registry is deliberately small and frozen: a SKU name is part of a
measurement's *identity* (it keys criteria namespaces end to end), so
specs are looked up by exact name and an unregistered name degrades to
a neutral envelope rather than failing -- hand-built :class:`Node`
objects with the default ``sku="unknown"`` behave exactly as they did
before the axis existed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DEFAULT_SKU",
    "UNKNOWN_SKU",
    "GpuSpec",
    "SKU_REGISTRY",
    "gpu_spec",
    "performance_factor",
]

#: SKU stamped by :func:`~repro.hardware.fleet.build_fleet` when no
#: ``sku_mix`` is given -- the hardware class every pre-SKU fleet
#: implicitly was.
DEFAULT_SKU = "A100"

#: Bucket for measurements whose provenance predates the SKU axis
#: (v1 journal records, hand-built nodes).
UNKNOWN_SKU = "unknown"


@dataclass(frozen=True)
class GpuSpec:
    """Envelope of one hardware class.

    Attributes
    ----------
    sku:
        Registry name (e.g. ``"H100"``).
    performance_factor:
        Throughput multiplier relative to the baseline SKU; applied to
        every throughput metric's base level (latency metrics divide).
    performance_cv:
        Coefficient of variation of the class's silicon lottery.
    defect_scale:
        Multiplier on catalog defect rates -- newer silicon early in
        its production ramp fails more often.
    hbm_error_rate:
        Fraction of nodes with burn-in correctable HBM errors.
    dirty_rate_scale:
        Multiplier on telemetry-fault injection rates -- younger
        driver/collector stacks emit dirtier telemetry.
    memory_banks / spare_rows_per_bank:
        HBM row-remapping geometry for the class.
    """

    sku: str
    performance_factor: float = 1.0
    performance_cv: float = 0.004
    defect_scale: float = 1.0
    hbm_error_rate: float = 0.035
    dirty_rate_scale: float = 1.0
    memory_banks: int = 24
    spare_rows_per_bank: int = 8


#: The three classes the paper's fleets mix.  The A100 spec *is* the
#: pre-SKU hardcoded profile, so a ``build_fleet`` call without a mix
#: is bit-identical to the homogeneous fleets of earlier revisions.
SKU_REGISTRY: dict[str, GpuSpec] = {
    "A100": GpuSpec(sku="A100"),
    "H100": GpuSpec(sku="H100", performance_factor=2.2,
                    performance_cv=0.006, defect_scale=1.3,
                    hbm_error_rate=0.045, dirty_rate_scale=1.4),
    "MI250X": GpuSpec(sku="MI250X", performance_factor=1.4,
                      performance_cv=0.008, defect_scale=1.15,
                      hbm_error_rate=0.040, dirty_rate_scale=1.2,
                      memory_banks=32),
}


def gpu_spec(sku: str) -> GpuSpec:
    """The registered spec for ``sku``, or a neutral envelope.

    Unregistered names (including :data:`UNKNOWN_SKU`) get a factor-1.0
    spec so hand-built nodes and legacy measurements keep their exact
    pre-SKU behaviour.
    """
    spec = SKU_REGISTRY.get(sku)
    if spec is not None:
        return spec
    return GpuSpec(sku=sku)


def performance_factor(sku: str) -> float:
    """Throughput factor of ``sku`` relative to the baseline (1.0 when
    unregistered)."""
    return gpu_spec(sku).performance_factor
