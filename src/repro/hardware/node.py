"""Node model: per-component health plus defect bookkeeping.

A :class:`Node` is the unit of validation in the paper -- a GPU VM.
Its observable surface is deliberately small: benchmarks query
:meth:`Node.performance_multiplier` with their component-sensitivity
map, and the measurement model in :mod:`repro.benchsuite` turns that
multiplier into synthetic metric samples.  Everything the Validator
and Selector see is derived from those samples and from incident
events; neither ever reads ``health`` directly, so the substitution
preserves the paper's information flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.components import Component, DefectMode
from repro.hardware.gpu import GpuMemory

__all__ = ["Node"]


@dataclass
class Node:
    """One GPU VM with per-component health in ``(0, 1]``.

    Attributes
    ----------
    node_id:
        Stable identifier (e.g. ``"node-0042"``).
    health:
        Component -> health; missing components are implicitly 1.0.
    defects:
        Names of injected :class:`DefectMode`\\ s (ground truth, used
        only by experiment harnesses -- never by the Validator).
    gpu_memory:
        HBM row-remapping state (one aggregate stack per node).
    performance_spread:
        Node-level silicon-lottery factor around 1.0 applied to every
        benchmark; models the natural cross-node variation the paper
        cites (Sinha et al.).
    sku:
        Hardware class of the node (see :mod:`repro.hardware.sku`).
        Part of every measurement's identity: windows produced on this
        node carry it, and criteria are namespaced by it.  Hand-built
        nodes default to the ``"unknown"`` bucket, which behaves as
        the neutral (factor-1.0) envelope.
    """

    node_id: str
    health: dict[Component, float] = field(default_factory=dict)
    defects: list[str] = field(default_factory=list)
    gpu_memory: GpuMemory = field(default_factory=GpuMemory)
    performance_spread: float = 1.0
    sku: str = "unknown"

    def __post_init__(self):
        for component, value in self.health.items():
            if not 0.0 < value <= 1.0:
                raise ValueError(
                    f"health for {component} must be in (0, 1], got {value}"
                )

    @property
    def is_defective(self) -> bool:
        """Ground-truth flag: any injected defect or degraded component."""
        if self.defects:
            return True
        return any(h < 1.0 for h in self.health.values())

    def component_health(self, component: Component) -> float:
        """Health of one component (1.0 when untouched)."""
        return self.health.get(component, 1.0)

    def apply_defect(self, mode: DefectMode, rng: np.random.Generator) -> None:
        """Inject a defect: multiply affected component healths down."""
        for component, multiplier in mode.sampled_health(rng).items():
            self.health[component] = self.component_health(component) * multiplier
        self.defects.append(mode.name)

    def repair(self) -> None:
        """Restore every component to full health and clear defects."""
        self.health.clear()
        self.defects.clear()
        self.gpu_memory = GpuMemory(
            banks=self.gpu_memory.banks,
            spare_rows_per_bank=self.gpu_memory.spare_rows_per_bank,
        )

    def performance_multiplier(self, sensitivity: dict[Component, float]) -> float:
        """Effective performance factor for a benchmark.

        ``sensitivity`` maps components to exponents ``w``; the
        multiplier is ``spread * prod(health_c ** w_c)``.  A benchmark
        insensitive to a degraded component (``w = 0``) is unaffected
        by it -- the mechanism behind defects that only one benchmark
        catches (§2.3).
        """
        multiplier = self.performance_spread
        for component, weight in sensitivity.items():
            if weight == 0.0:
                continue
            multiplier *= self.component_health(component) ** weight
        return multiplier
