"""Fleet construction: populations of nodes with injected gray failures.

The experiment harnesses (Fig 9, Tables 1/5/6) need fleets like the
paper's: a build-out of a few thousand VMs in which roughly 10% of
nodes hide some defect.  :func:`build_fleet` draws node-level silicon
variation and injects defects from :data:`DEFECT_CATALOG` (or a custom
catalog) independently per node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.components import DEFECT_CATALOG, DefectMode
from repro.hardware.gpu import GpuMemory
from repro.hardware.node import Node
from repro.hardware.sku import DEFAULT_SKU, gpu_spec

__all__ = ["Fleet", "build_fleet"]


@dataclass
class Fleet:
    """A named collection of nodes plus ground-truth bookkeeping."""

    nodes: list[Node]

    def __post_init__(self):
        seen = set()
        for node in self.nodes:
            if node.node_id in seen:
                raise ValueError(f"duplicate node id {node.node_id!r}")
            seen.add(node.node_id)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def get(self, node_id: str) -> Node:
        """Node lookup by id."""
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(f"no node {node_id!r} in fleet")

    @property
    def defective_nodes(self) -> list[Node]:
        """Ground-truth defective nodes (experiment harness use only)."""
        return [node for node in self.nodes if node.is_defective]

    @property
    def defect_ratio(self) -> float:
        """Ground-truth fraction of defective nodes."""
        if not self.nodes:
            return 0.0
        return len(self.defective_nodes) / len(self.nodes)

    def defect_counts(self) -> dict[str, int]:
        """Histogram of injected defect modes across the fleet."""
        counts: dict[str, int] = {}
        for node in self.nodes:
            for name in node.defects:
                counts[name] = counts.get(name, 0) + 1
        return counts

    def sku_counts(self) -> dict[str, int]:
        """Histogram of hardware classes across the fleet."""
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.sku] = counts.get(node.sku, 0) + 1
        return counts


def build_fleet(n_nodes: int, *, seed: int = 0,
                catalog: tuple[DefectMode, ...] = DEFECT_CATALOG,
                defect_scale: float = 1.0,
                performance_cv: float = 0.004,
                hbm_error_rate: float = 0.035,
                sku_mix: dict[str, float] | None = None) -> Fleet:
    """Build a fleet of ``n_nodes`` with catalog-driven defect injection.

    Parameters
    ----------
    n_nodes:
        Fleet size.
    seed:
        Seed for all randomness (defects, severities, silicon spread).
    catalog:
        Defect modes with per-node injection rates.
    defect_scale:
        Multiplier on every catalog rate; ``0`` yields a clean fleet.
        With a ``sku_mix`` it composes with each class's own
        ``defect_scale`` envelope.
    performance_cv:
        Coefficient of variation of the node-level silicon-lottery
        factor.  Ignored when ``sku_mix`` is given -- each class then
        uses its own :class:`~repro.hardware.sku.GpuSpec` envelope.
    hbm_error_rate:
        Fraction of nodes that accumulated correctable HBM errors
        during burn-in (Table 1's ~3.4% of nodes with any remapping).
        Like ``performance_cv``, superseded by the per-SKU envelope
        when ``sku_mix`` is given.
    sku_mix:
        Optional SKU -> fraction map for a heterogeneous fleet, e.g.
        ``{"A100": 0.5, "H100": 0.3, "MI250X": 0.2}``.  Fractions must
        sum to 1.0 (within 1e-9) or a :class:`ValueError` is raised --
        silently renormalizing would hide a typo in a fleet spec.
        ``None`` builds the homogeneous default-SKU fleet, bit-identical
        to fleets built before the SKU axis existed.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if defect_scale < 0:
        raise ValueError("defect_scale must be non-negative")
    mix: list[tuple[str, float]] | None = None
    if sku_mix is not None:
        if not sku_mix:
            raise ValueError("sku_mix must name at least one SKU")
        for sku, fraction in sku_mix.items():
            if fraction < 0.0:
                raise ValueError(
                    f"sku_mix fraction for {sku!r} must be non-negative, "
                    f"got {fraction}")
        total = float(sum(sku_mix.values()))
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"sku_mix fractions must sum to 1.0, got {total}")
        # Sorted for a deterministic lottery regardless of dict order.
        mix = sorted(sku_mix.items())
    rng = np.random.default_rng(seed)
    width = max(len(str(n_nodes - 1)), 4)

    nodes: list[Node] = []
    for i in range(n_nodes):
        if mix is None:
            # Homogeneous path: no extra RNG draw, same stream as the
            # pre-SKU builder -- seeded fleets stay bit-identical.
            sku = DEFAULT_SKU
            node_cv, node_hbm_rate = performance_cv, hbm_error_rate
            node_defect_scale = defect_scale
            memory = GpuMemory()
        else:
            roll = rng.random()
            edge = 0.0
            sku = mix[-1][0]
            for name, fraction in mix:
                edge += fraction
                if roll < edge:
                    sku = name
                    break
            spec = gpu_spec(sku)
            node_cv = spec.performance_cv
            node_hbm_rate = spec.hbm_error_rate
            node_defect_scale = defect_scale * spec.defect_scale
            memory = GpuMemory(banks=spec.memory_banks,
                               spare_rows_per_bank=spec.spare_rows_per_bank)
        node = Node(
            node_id=f"node-{i:0{width}d}",
            gpu_memory=memory,
            performance_spread=float(rng.normal(1.0, node_cv)),
            sku=sku,
        )
        for mode in catalog:
            if rng.random() < mode.rate * node_defect_scale:
                node.apply_defect(mode, rng)
        if rng.random() < node_hbm_rate:
            # Burn-in correctable errors: mostly small counts, a thin
            # tail above the Table 1 threshold.
            count = 1 + int(rng.geometric(0.35))
            if rng.random() < 0.055:
                count = 11 + int(rng.geometric(0.3))
            node.gpu_memory.inject_errors(count, rng)
        nodes.append(node)
    return Fleet(nodes=nodes)
