"""Fleet construction: populations of nodes with injected gray failures.

The experiment harnesses (Fig 9, Tables 1/5/6) need fleets like the
paper's: a build-out of a few thousand VMs in which roughly 10% of
nodes hide some defect.  :func:`build_fleet` draws node-level silicon
variation and injects defects from :data:`DEFECT_CATALOG` (or a custom
catalog) independently per node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.components import DEFECT_CATALOG, DefectMode
from repro.hardware.gpu import GpuMemory
from repro.hardware.node import Node

__all__ = ["Fleet", "build_fleet"]


@dataclass
class Fleet:
    """A named collection of nodes plus ground-truth bookkeeping."""

    nodes: list[Node]

    def __post_init__(self):
        seen = set()
        for node in self.nodes:
            if node.node_id in seen:
                raise ValueError(f"duplicate node id {node.node_id!r}")
            seen.add(node.node_id)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def get(self, node_id: str) -> Node:
        """Node lookup by id."""
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(f"no node {node_id!r} in fleet")

    @property
    def defective_nodes(self) -> list[Node]:
        """Ground-truth defective nodes (experiment harness use only)."""
        return [node for node in self.nodes if node.is_defective]

    @property
    def defect_ratio(self) -> float:
        """Ground-truth fraction of defective nodes."""
        if not self.nodes:
            return 0.0
        return len(self.defective_nodes) / len(self.nodes)

    def defect_counts(self) -> dict[str, int]:
        """Histogram of injected defect modes across the fleet."""
        counts: dict[str, int] = {}
        for node in self.nodes:
            for name in node.defects:
                counts[name] = counts.get(name, 0) + 1
        return counts


def build_fleet(n_nodes: int, *, seed: int = 0,
                catalog: tuple[DefectMode, ...] = DEFECT_CATALOG,
                defect_scale: float = 1.0,
                performance_cv: float = 0.004,
                hbm_error_rate: float = 0.035) -> Fleet:
    """Build a fleet of ``n_nodes`` with catalog-driven defect injection.

    Parameters
    ----------
    n_nodes:
        Fleet size.
    seed:
        Seed for all randomness (defects, severities, silicon spread).
    catalog:
        Defect modes with per-node injection rates.
    defect_scale:
        Multiplier on every catalog rate; ``0`` yields a clean fleet.
    performance_cv:
        Coefficient of variation of the node-level silicon-lottery
        factor.
    hbm_error_rate:
        Fraction of nodes that accumulated correctable HBM errors
        during burn-in (Table 1's ~3.4% of nodes with any remapping).
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if defect_scale < 0:
        raise ValueError("defect_scale must be non-negative")
    rng = np.random.default_rng(seed)
    width = max(len(str(n_nodes - 1)), 4)

    nodes: list[Node] = []
    for i in range(n_nodes):
        node = Node(
            node_id=f"node-{i:0{width}d}",
            gpu_memory=GpuMemory(),
            performance_spread=float(rng.normal(1.0, performance_cv)),
        )
        for mode in catalog:
            if rng.random() < mode.rate * defect_scale:
                node.apply_defect(mode, rng)
        if rng.random() < hbm_error_rate:
            # Burn-in correctable errors: mostly small counts, a thin
            # tail above the Table 1 threshold.
            count = 1 + int(rng.geometric(0.35))
            if rng.random() < 0.055:
                count = 11 + int(rng.geometric(0.3))
            node.gpu_memory.inject_errors(count, rng)
        nodes.append(node)
    return Fleet(nodes=nodes)
