"""Benchmark detection/coverage bootstrapping for the simulator.

The paper's selection simulation decides whether a chosen benchmark
subset would have caught a simulated incident "based on coverage from
historical validation data".  This module derives both views from the
defect catalog and the benchmark sensitivities:

* :func:`detects` / :func:`detection_map` -- ground truth: which
  benchmark would flag a defect mode, from the expected metric shift
  versus the similarity threshold;
* :func:`analytic_coverage_table` -- a
  :class:`~repro.core.selection.CoverageTable` seeded with synthetic
  historical defects in catalog-rate proportions, standing in for the
  paper's build-out validation dataset.
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec
from repro.core.selection import CoverageTable
from repro.hardware.components import DEFECT_CATALOG, DefectMode

__all__ = ["expected_shift", "detects", "detection_map", "analytic_coverage_table"]


def expected_shift(spec: BenchmarkSpec, mode: DefectMode) -> float:
    """Largest relative metric shift ``mode`` induces on ``spec``.

    The measurement model multiplies throughput by
    ``prod(health_c ** w_c)``; the shift is ``1 - `` that product,
    maximized over the benchmark's metrics (latency metrics shift by
    the same relative amount in the other direction).
    """
    worst = 0.0
    for metric in spec.metrics:
        sensitivity = spec.metric_sensitivity(metric)
        product = 1.0
        for component, health in mode.components.items():
            weight = sensitivity.get(component, 0.0)
            if weight:
                product *= health ** weight
        worst = max(worst, 1.0 - product)
    return worst


def detects(spec: BenchmarkSpec, mode: DefectMode, alpha: float = 0.95) -> bool:
    """True when the benchmark's expected shift breaks the threshold.

    A similarity threshold ``alpha`` tolerates relative regressions up
    to ``1 - alpha`` (the CDF distance of a pure level shift equals the
    relative shift).
    """
    return expected_shift(spec, mode) > (1.0 - alpha)


def detection_map(suite, catalog: tuple[DefectMode, ...] = DEFECT_CATALOG,
                  alpha: float = 0.95) -> dict[str, set[str]]:
    """Defect mode name -> set of benchmark names that detect it."""
    return {
        mode.name: {spec.name for spec in suite if detects(spec, mode, alpha)}
        for mode in catalog
    }


def analytic_coverage_table(suite, catalog: tuple[DefectMode, ...] = DEFECT_CATALOG,
                            alpha: float = 0.95, *,
                            n_reference: int = 10_000) -> CoverageTable:
    """Synthetic historical coverage table in catalog proportions.

    Creates ``round(rate * n_reference)`` (at least one) historical
    defect keys per mode and credits them to every detecting
    benchmark, mirroring a build-out validation dataset.
    """
    if n_reference <= 0:
        raise ValueError("n_reference must be positive")
    table = CoverageTable()
    for spec in suite:
        table.ensure_benchmark(spec.name)
    detectors = detection_map(suite, catalog, alpha)
    for mode in catalog:
        count = max(1, round(mode.rate * n_reference))
        keys = {(mode.name, i) for i in range(count)}
        for benchmark in detectors[mode.name]:
            table.record(benchmark, keys)
    return table
