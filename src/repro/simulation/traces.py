"""Trace records: node incidents and allocation requests (paper §5.1).

The paper's simulations are driven by two proprietary traces collected
from internal clusters -- a 4-month node incident trace and a job
allocation-request trace.  These dataclasses define our equivalent
records plus JSON round-tripping so generated traces can be persisted
and replayed deterministically.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.exceptions import TraceError

__all__ = [
    "IncidentRecord",
    "IncidentTrace",
    "AllocationRecord",
    "AllocationTrace",
]


@dataclass(frozen=True)
class IncidentRecord:
    """One incident event on one node.

    Attributes
    ----------
    node_id:
        The affected node.
    start_hour / end_hour:
        When the incident started and when it was resolved (hours from
        trace start); ``end_hour - start_hour`` is the troubleshooting
        duration of Figure 2.
    category:
        Coarse category (matches :class:`~repro.hardware.components.IncidentCategory`
        values).
    component:
        Finer-grained source component (Figure 1).
    """

    node_id: str
    start_hour: float
    end_hour: float
    category: str
    component: str = ""

    def __post_init__(self):
        if self.end_hour < self.start_hour:
            raise TraceError(
                f"incident on {self.node_id} ends ({self.end_hour}) before "
                f"it starts ({self.start_hour})"
            )

    @property
    def duration_hours(self) -> float:
        """Troubleshooting (time-to-resolve) duration."""
        return self.end_hour - self.start_hour


@dataclass(frozen=True)
class IncidentTrace:
    """A collection of incident records over a fixed horizon.

    ``node_attributes`` optionally carries static health telemetry per
    node (correctable-error rates, thermal margins, link bit-error
    rates, ...) -- the monitored data the paper's Selector consumes as
    status covariates alongside incident history.
    """

    records: tuple[IncidentRecord, ...]
    horizon_hours: float
    node_ids: tuple[str, ...] = field(default=())
    node_attributes: dict = field(default_factory=dict)

    def __post_init__(self):
        records = tuple(sorted(self.records, key=lambda r: (r.start_hour, r.node_id)))
        object.__setattr__(self, "records", records)
        if not self.node_ids:
            ids = tuple(sorted({r.node_id for r in records}))
            object.__setattr__(self, "node_ids", ids)
        for record in records:
            if record.start_hour > self.horizon_hours:
                raise TraceError(
                    f"incident at {record.start_hour}h beyond horizon "
                    f"{self.horizon_hours}h"
                )

    def __len__(self) -> int:
        return len(self.records)

    def for_node(self, node_id: str) -> list[IncidentRecord]:
        """Chronological incidents of one node."""
        return [r for r in self.records if r.node_id == node_id]

    def category_counts(self) -> dict[str, int]:
        """Histogram of incident categories."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.category] = counts.get(record.category, 0) + 1
        return counts

    def component_counts(self) -> dict[str, int]:
        """Histogram of incident source components (Figure 1)."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.component] = counts.get(record.component, 0) + 1
        return counts

    def durations(self) -> list[float]:
        """All troubleshooting durations (Figure 2)."""
        return [r.duration_hours for r in self.records]

    def save(self, path) -> None:
        """Write the trace as JSON."""
        payload = {
            "horizon_hours": self.horizon_hours,
            "node_ids": list(self.node_ids),
            "node_attributes": self.node_attributes,
            "records": [asdict(r) for r in self.records],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path) -> "IncidentTrace":
        """Read a trace previously written with :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text())
            records = tuple(IncidentRecord(**r) for r in payload["records"])
            return cls(records=records, horizon_hours=payload["horizon_hours"],
                       node_ids=tuple(payload["node_ids"]),
                       node_attributes=payload.get("node_attributes", {}))
        except (KeyError, TypeError, json.JSONDecodeError) as error:
            raise TraceError(f"malformed incident trace at {path}: {error}") from error


@dataclass(frozen=True)
class AllocationRecord:
    """One job allocation request."""

    job_id: str
    submit_hour: float
    n_nodes: int
    duration_hours: float

    def __post_init__(self):
        if self.n_nodes < 1:
            raise TraceError(f"job {self.job_id} requests {self.n_nodes} nodes")
        if self.duration_hours <= 0:
            raise TraceError(f"job {self.job_id} has non-positive duration")


@dataclass(frozen=True)
class AllocationTrace:
    """A stream of allocation requests over a fixed horizon."""

    records: tuple[AllocationRecord, ...]
    horizon_hours: float

    def __post_init__(self):
        records = tuple(sorted(self.records, key=lambda r: (r.submit_hour, r.job_id)))
        object.__setattr__(self, "records", records)

    def __len__(self) -> int:
        return len(self.records)

    def save(self, path) -> None:
        """Write the trace as JSON."""
        payload = {
            "horizon_hours": self.horizon_hours,
            "records": [asdict(r) for r in self.records],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path) -> "AllocationTrace":
        """Read a trace previously written with :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text())
            records = tuple(AllocationRecord(**r) for r in payload["records"])
            return cls(records=records, horizon_hours=payload["horizon_hours"])
        except (KeyError, TypeError, json.JSONDecodeError) as error:
            raise TraceError(
                f"malformed allocation trace at {path}: {error}") from error
