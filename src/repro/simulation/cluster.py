"""30-day cluster simulation with pluggable validation policies (§5.2).

Discrete-event simulation following the paper's seven steps:

1. FIFO queues for jobs and nodes; *stressed replay* of an allocation
   trace schedules jobs best-effort.
2. Gray failures form on allocated nodes according to the wear model:
   a node's next *defect* forms after an exponential number of
   job-running hours whose rate grows with its reactive-repair count.
   A formed defect is silent (latent) at first and manifests as a
   customer incident after an exponential *incubation* of further
   running hours -- the window in which proactive validation can win.
3. At every allocation the policy decides whether/what to validate
   (Algorithm 1 for the Selector).
4. Whether the chosen subset catches a latent defect is decided by the
   ground-truth detection map (benchmark sensitivities vs the defect
   catalog), matching the paper's "coverage instead of running actual
   benchmarks".
5. Caught defects: the node is swapped with a hot spare (~1 h) and
   returns *fresh* -- proactive repair restores full redundancy; the
   job and the remaining nodes are pushed to the rears of their
   queues.
6. Missed defects manifest mid-job: the job is interrupted, re-queued
   with its remaining duration, and re-validated on the next
   allocation.
7. Reactive repair (no-validation baseline) takes the Figure 2 ticket
   expectancy (~36 h) and is *partial*: the node returns with a higher
   wear count, reproducing the paper's shrinking-MTBI spiral.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError
from repro.hardware.components import DEFECT_CATALOG, DefectMode
from repro.hardware.degradation import WearModel
from repro.simulation.coverage import detection_map
from repro.simulation.policies import (
    AbsencePolicy,
    IdealPolicy,
    NodeView,
    PolicyDecision,
    ValidationPolicy,
)
from repro.simulation.repair import RepairSystem
from repro.simulation.traces import AllocationTrace

__all__ = ["SimulationConfig", "NodeStats", "SimulationResult", "ClusterSimulator"]


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulation run.

    The default wear model is re-based for the simulation scale: the
    paper's internal trace shows roughly one incident per node every
    few days, much denser than the Figure 4 cluster, so the base MTBI
    here is 60 h with the Figure 4 growth exponent.
    """

    n_nodes: int = 128
    horizon_hours: float = 720.0
    seed: int = 0
    base_mtbi_hours: float = 30.0
    wear_gamma: float = 1.4
    incubation_mean_hours: float = 35.0
    incubation_gamma: float = 1.1
    reactive_repair_hours: float = 36.0
    swap_hours: float = 1.0
    hot_buffer_fraction: float = 0.06
    alpha: float = 0.95
    defect_free: bool = False

    def __post_init__(self):
        if self.n_nodes <= 0 or self.horizon_hours <= 0:
            raise SimulationError("n_nodes and horizon_hours must be positive")
        if self.incubation_mean_hours <= 0:
            raise SimulationError("incubation_mean_hours must be positive")

    def wear_model(self) -> WearModel:
        """Wear model used for defect formation.

        The growth exponent defaults to a steeper value than the
        Figure 4 calibration: Figure 4 measures a *production* cluster
        where operators do restore some redundancy, while the
        simulation's no-validation baseline never restores any, so its
        un-mitigated wear grows faster.
        """
        return WearModel(base_mtbi_hours=self.base_mtbi_hours,
                         gamma=self.wear_gamma)


@dataclass
class _NodeState:
    """Internal per-slot simulation state."""

    node_id: str
    wear_count: int = 0
    run_hours: float = 0.0
    run_hours_at_clean: float = 0.0
    next_form_run_hours: float = float("inf")
    latent_mode: str | None = None
    incubation_left: float = 0.0
    pending_incubation: float = 0.0
    # accounting
    up_hours: float = 0.0
    validation_hours: float = 0.0
    repair_hours: float = 0.0
    incidents: int = 0
    defects_caught: int = 0

    def view(self) -> NodeView:
        return NodeView(
            node_id=self.node_id,
            hours_since_clean=self.run_hours - self.run_hours_at_clean,
            incident_count=self.wear_count,
        )


@dataclass
class _Job:
    job_id: str
    n_nodes: int
    remaining_hours: float
    interruptions: int = 0


@dataclass(frozen=True)
class NodeStats:
    """Final per-node accounting."""

    node_id: str
    up_hours: float
    validation_hours: float
    repair_hours: float
    incidents: int
    defects_caught: int

    def utilization(self, horizon: float) -> float:
        return self.up_hours / horizon

    def mtbi(self) -> float:
        """Up time divided by incident count (floored at one)."""
        return self.up_hours / max(self.incidents, 1)


@dataclass
class SimulationResult:
    """Aggregate outcome of one policy run."""

    policy: str
    config: SimulationConfig
    nodes: list[NodeStats]
    jobs_completed: int
    jobs_interrupted: int
    validations_run: int
    validations_skipped: int
    daily_up_hours: np.ndarray = field(default=None)
    daily_validation_hours: np.ndarray = field(default=None)
    daily_repair_hours: np.ndarray = field(default=None)

    def _node_fields(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(up_hours, validation_hours, incidents) as flat arrays.

        Built once per result and reused by every fleet metric -- the
        regenerators read these properties in tight sweeps, where N
        list comprehensions per access dominated.
        """
        cached = getattr(self, "_field_arrays", None)
        if cached is None or len(cached[0]) != len(self.nodes):
            n = len(self.nodes)
            cached = (
                np.fromiter((s.up_hours for s in self.nodes), float, count=n),
                np.fromiter((s.validation_hours for s in self.nodes), float,
                            count=n),
                np.fromiter((s.incidents for s in self.nodes), float, count=n),
            )
            self._field_arrays = cached
        return cached

    @property
    def average_utilization(self) -> float:
        up_hours, _, _ = self._node_fields()
        return float(up_hours.mean() / self.config.horizon_hours)

    @property
    def average_validation_hours(self) -> float:
        _, validation_hours, _ = self._node_fields()
        return float(validation_hours.mean())

    @property
    def average_incidents(self) -> float:
        _, _, incidents = self._node_fields()
        return float(incidents.mean())

    @property
    def mtbi_hours(self) -> float:
        """Average per-node MTBI (the paper's §5.2 definition).

        Each node's MTBI is its up time divided by its incident count
        (floored at one for incident-free nodes), then averaged across
        nodes -- so a policy that keeps many nodes incident-free scores
        high even if a few nodes fail repeatedly.
        """
        up_hours, _, incidents = self._node_fields()
        return float(np.mean(up_hours / np.maximum(incidents, 1.0)))

    @property
    def cluster_mtbi_hours(self) -> float:
        """Cluster-level MTBI: total up time over total incidents."""
        up_hours, _, incidents = self._node_fields()
        return float(up_hours.sum() / max(incidents.sum(), 1.0))

    def daily_utilization(self) -> np.ndarray:
        """Average node utilization per simulated day (Figure 8)."""
        return self.daily_up_hours / (self.config.n_nodes * 24.0)


class ClusterSimulator:
    """Drives one policy over one allocation trace."""

    def __init__(self, config: SimulationConfig, policy: ValidationPolicy,
                 trace: AllocationTrace, *,
                 catalog: tuple[DefectMode, ...] = DEFECT_CATALOG,
                 detectors: dict[str, set[str]] | None = None,
                 evolve_coverage: bool = False):
        self.config = config
        self.policy = policy
        self.trace = trace
        self.catalog = catalog
        self.wear = config.wear_model()
        if detectors is None:
            from repro.benchsuite.suite import full_suite
            detectors = detection_map(full_suite(), catalog, config.alpha)
        self.detectors = detectors
        self._mode_names = [m.name for m in catalog]
        rates = np.array([m.rate for m in catalog], dtype=float)
        self._mode_probs = rates / rates.sum()
        self._defect_free = config.defect_free or isinstance(policy, IdealPolicy)
        self._reactive = isinstance(policy, AbsencePolicy)
        # Evolving coverage (§3.1: the system "evolves in tandem with
        # the latest node statuses"): every caught defect credits the
        # detecting benchmarks in the Selector's coverage table, and
        # every missed incident credits them post-mortem (repair
        # troubleshooting identifies the mode).  Only meaningful when
        # the policy actually owns a coverage table.
        self._evolve = bool(evolve_coverage) and hasattr(policy, "coverage")
        self._defect_sequence = 0

    def _credit_coverage(self, mode: str, subset: set[str] | None = None) -> None:
        """Record one identified defect in the policy's coverage table."""
        if not self._evolve or mode is None:
            return
        detectors = self.detectors.get(mode, set())
        if subset is not None:
            detectors = detectors & subset
        if not detectors:
            return
        self._defect_sequence += 1
        key = (mode, self._defect_sequence)
        for benchmark in detectors:
            self.policy.coverage.record(benchmark, {key})

    # ------------------------------------------------------------------
    # Node state helpers
    # ------------------------------------------------------------------
    def _refresh(self, state: _NodeState, rng: np.random.Generator, *,
                 fresh: bool) -> None:
        """Re-arm a node after repair.

        ``fresh=True`` models the hot-buffer swap (full redundancy
        restored); ``fresh=False`` models partial reactive repair.
        """
        if fresh:
            state.wear_count = 0
        else:
            state.wear_count += 1
        state.latent_mode = None
        state.incubation_left = 0.0
        state.run_hours_at_clean = state.run_hours
        if self._defect_free:
            state.next_form_run_hours = float("inf")
            return
        gap = rng.exponential(self.wear.mean_time_between_incidents(state.wear_count))
        state.next_form_run_hours = state.run_hours + float(gap)

    def _incubation_mean(self, wear_count: int) -> float:
        """Gray-window length for a node with ``wear_count`` partial repairs.

        Partial reactive repairs leave redundancy unrestored, so later
        defects manifest faster: the mean incubation shrinks as
        ``(1 + count) ** -incubation_gamma`` -- the redundancy-erosion
        counterpart of the wear model's formation-rate growth.
        """
        return (self.config.incubation_mean_hours
                / (1.0 + max(wear_count, 0)) ** self.config.incubation_gamma)

    def _incident_offset(self, state: _NodeState, rng: np.random.Generator) -> float:
        """Running-hours until this node's defect would manifest."""
        if state.latent_mode is not None:
            return state.incubation_left
        form_offset = state.next_form_run_hours - state.run_hours
        if not np.isfinite(form_offset):
            return float("inf")
        if state.pending_incubation <= 0.0:
            state.pending_incubation = float(
                rng.exponential(self._incubation_mean(state.wear_count))
            )
        return form_offset + state.pending_incubation

    def _advance(self, state: _NodeState, elapsed: float,
                 rng: np.random.Generator) -> bool:
        """Advance one node by ``elapsed`` running hours.

        Returns True when the node's defect manifested exactly at the
        end of the window (it is the incident node).
        """
        manifested = False
        if state.latent_mode is not None:
            state.incubation_left -= elapsed
            if state.incubation_left <= 1e-9:
                manifested = True
        else:
            form_offset = state.next_form_run_hours - state.run_hours
            if form_offset <= elapsed + 1e-12:
                mode = self._mode_names[int(rng.choice(len(self._mode_names),
                                                       p=self._mode_probs))]
                state.latent_mode = mode
                state.incubation_left = (
                    state.pending_incubation - (elapsed - form_offset)
                )
                state.pending_incubation = 0.0
                if state.incubation_left <= 1e-9:
                    manifested = True
        state.run_hours += elapsed
        return manifested

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Simulate the full horizon and return aggregate results."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        n_days = int(np.ceil(cfg.horizon_hours / 24.0))
        daily_up = np.zeros(n_days)
        daily_validation = np.zeros(n_days)
        daily_repair = np.zeros(n_days)

        def charge(bucket: np.ndarray, start: float, end: float) -> float:
            """Charge [start, end) into daily buckets, capped at horizon.

            Returns the charged duration."""
            start = min(max(start, 0.0), cfg.horizon_hours)
            end = min(max(end, 0.0), cfg.horizon_hours)
            if end <= start:
                return 0.0
            first, last = int(start // 24.0), int(np.ceil(end / 24.0))
            for day in range(first, min(last, n_days)):
                lo, hi = day * 24.0, (day + 1) * 24.0
                bucket[day] += max(0.0, min(end, hi) - max(start, lo))
            return end - start

        states = {f"slot-{i:04d}": _NodeState(node_id=f"slot-{i:04d}")
                  for i in range(cfg.n_nodes)}
        for state in states.values():
            self._refresh(state, rng, fresh=True)
            state.run_hours_at_clean = 0.0

        repair = RepairSystem(
            hot_buffer_size=max(1, int(cfg.hot_buffer_fraction * cfg.n_nodes)),
            swap_hours=cfg.swap_hours,
            repair_hours=cfg.reactive_repair_hours,
        )

        free: deque[str] = deque(states)
        releases: list[tuple[float, int, str]] = []  # (time, seq, node_id)
        requeues: list[tuple[float, int, _Job]] = []  # (time, seq, job)
        pending: deque[_Job] = deque()
        seq = 0

        jobs_completed = 0
        jobs_interrupted = 0
        validations_run = 0
        validations_skipped = 0

        arrivals = list(self.trace.records)
        arrival_index = 0

        def release_node(node_id: str, at: float) -> None:
            nonlocal seq
            seq += 1
            heapq.heappush(releases, (at, seq, node_id))

        def requeue_job(job: _Job, at: float) -> None:
            nonlocal seq
            seq += 1
            heapq.heappush(requeues, (at, seq, job))

        def handle_defective(state: _NodeState, at: float) -> None:
            """Send a defective node to repair and re-arm it."""
            if self._reactive:
                end = at + cfg.reactive_repair_hours
                state.repair_hours += charge(daily_repair, at, end)
                self._refresh(state, rng, fresh=False)
            else:
                outcome = repair.send_to_repair(at)
                end = outcome.available_at
                state.repair_hours += charge(daily_repair, at, end)
                self._refresh(state, rng, fresh=True)
            release_node(state.node_id, end)

        def start_job(job: _Job, node_ids: list[str], now: float) -> None:
            nonlocal jobs_completed, jobs_interrupted
            nonlocal validations_run, validations_skipped
            members = [states[n] for n in node_ids]
            decision: PolicyDecision = self.policy.decide(
                [s.view() for s in members], job.remaining_hours
            )
            start = now
            if decision.benchmarks is not None:
                if decision.validates:
                    validations_run += 1
                    validation_end = now + decision.validation_hours
                    subset = set(decision.benchmarks)
                    caught = []
                    for state in members:
                        state.validation_hours += charge(
                            daily_validation, now, validation_end
                        )
                        if (state.latent_mode is not None
                                and self.detectors.get(state.latent_mode)
                                and self.detectors[state.latent_mode] & subset):
                            caught.append(state)
                    if caught:
                        for state in caught:
                            state.defects_caught += 1
                            self._credit_coverage(state.latent_mode, subset)
                            handle_defective(state, validation_end)
                        survivors = [s for s in members if s not in caught]
                        for state in survivors:
                            state.run_hours_at_clean = state.run_hours
                            release_node(state.node_id, validation_end)
                        requeue_job(job, validation_end)
                        return
                    for state in members:
                        state.run_hours_at_clean = state.run_hours
                    start = validation_end
                else:
                    validations_skipped += 1

            # Run the job from ``start``.
            duration = job.remaining_hours
            offsets = [self._incident_offset(s, rng) for s in members]
            first_offset = min(offsets)
            if first_offset < duration:
                elapsed = first_offset
            else:
                elapsed = duration
            incident_nodes = []
            for state in members:
                if self._advance(state, elapsed, rng):
                    incident_nodes.append(state)
                state.up_hours += charge(daily_up, start, start + elapsed)

            end = start + elapsed
            if first_offset < duration:
                jobs_interrupted += 1
                job.remaining_hours = duration - elapsed
                job.interruptions += 1
                # The manifested node(s) raise the incident; at least
                # one exists because first_offset came from a member.
                if not incident_nodes:
                    incident_nodes = [members[int(np.argmin(offsets))]]
                if end <= cfg.horizon_hours:
                    for state in incident_nodes:
                        state.incidents += 1
                for state in incident_nodes:
                    # Post-mortem: troubleshooting identifies the mode,
                    # teaching the coverage table which benchmarks
                    # would have caught it.
                    self._credit_coverage(state.latent_mode)
                    handle_defective(state, end)
                for state in members:
                    if state not in incident_nodes:
                        release_node(state.node_id, end)
                requeue_job(job, end)
            else:
                jobs_completed += 1
                for state in members:
                    release_node(state.node_id, end)

        # -------------------------- event loop -------------------------
        while True:
            next_arrival = (arrivals[arrival_index].submit_hour
                            if arrival_index < len(arrivals) else float("inf"))
            next_release = releases[0][0] if releases else float("inf")
            next_requeue = requeues[0][0] if requeues else float("inf")
            now = min(next_arrival, next_release, next_requeue)
            if not np.isfinite(now) or now >= cfg.horizon_hours:
                break
            while (arrival_index < len(arrivals)
                   and arrivals[arrival_index].submit_hour <= now):
                record = arrivals[arrival_index]
                pending.append(_Job(
                    job_id=record.job_id,
                    n_nodes=min(record.n_nodes, cfg.n_nodes),
                    remaining_hours=record.duration_hours,
                ))
                arrival_index += 1
            while releases and releases[0][0] <= now:
                _, _, node_id = heapq.heappop(releases)
                free.append(node_id)
            while requeues and requeues[0][0] <= now:
                _, _, job = heapq.heappop(requeues)
                pending.append(job)
            # Best-effort FIFO with backfill: take the oldest job that
            # fits the free pool (the paper's "stressed replay ...
            # best-effort manner").
            scheduled = True
            while scheduled and free:
                scheduled = False
                for index, job in enumerate(pending):
                    if job.n_nodes <= len(free):
                        del pending[index]
                        node_ids = [free.popleft() for _ in range(job.n_nodes)]
                        start_job(job, node_ids, now)
                        scheduled = True
                        break

        node_stats = [
            NodeStats(node_id=s.node_id, up_hours=s.up_hours,
                      validation_hours=s.validation_hours,
                      repair_hours=s.repair_hours, incidents=s.incidents,
                      defects_caught=s.defects_caught)
            for s in states.values()
        ]
        return SimulationResult(
            policy=self.policy.name,
            config=cfg,
            nodes=node_stats,
            jobs_completed=jobs_completed,
            jobs_interrupted=jobs_interrupted,
            validations_run=validations_run,
            validations_skipped=validations_skipped,
            daily_up_hours=daily_up,
            daily_validation_hours=daily_validation,
            daily_repair_hours=daily_repair,
        )
