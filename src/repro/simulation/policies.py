"""Validation policies for the selection simulation (paper §5.2).

Four policies, matching the paper's comparison:

* :class:`AbsencePolicy` -- never validate; every defect eventually
  manifests as an incident and repair is reactive troubleshooting.
* :class:`FullSetPolicy` -- validate with the full benchmark set on
  every job allocation.
* :class:`SelectorPolicy` -- ANUBIS: estimate the joint incident
  probability of the allocated nodes, skip validation when it is
  already below ``p0``, otherwise run Algorithm 1 to pick the cheapest
  covering subset.
* :class:`IdealPolicy` -- the no-defects upper bound (scheduling-only
  utilization ceiling).

A policy sees only *observable* node state
(:class:`NodeView`: hours since the node was last known clean, and its
reactive-repair count) and returns a :class:`PolicyDecision`; the
simulator applies ground-truth detection separately.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.selection import CoverageTable, select_benchmarks
from repro.hardware.degradation import WearModel

__all__ = [
    "NodeView",
    "PolicyDecision",
    "ValidationPolicy",
    "AbsencePolicy",
    "FullSetPolicy",
    "SelectorPolicy",
    "IdealPolicy",
]


@dataclass(frozen=True)
class NodeView:
    """Observable status of one node at allocation time."""

    node_id: str
    hours_since_clean: float
    incident_count: int


@dataclass(frozen=True)
class PolicyDecision:
    """What a policy chose to do before a job starts.

    ``benchmarks`` is ``None`` for "no validation at all" (absence /
    ideal), an empty tuple when the Selector explicitly skipped, and a
    non-empty tuple of benchmark names otherwise.  ``validation_hours``
    is the wall-clock cost charged to every allocated node.
    """

    benchmarks: tuple[str, ...] | None
    validation_hours: float = 0.0

    @property
    def validates(self) -> bool:
        return bool(self.benchmarks)


class ValidationPolicy(abc.ABC):
    """Strategy interface for the cluster simulator."""

    name = "abstract"

    @abc.abstractmethod
    def decide(self, views: list[NodeView], job_duration_hours: float
               ) -> PolicyDecision:
        """Decision for one allocation of ``views`` to a job."""


class AbsencePolicy(ValidationPolicy):
    """No validation ever (the paper's "absence" baseline)."""

    name = "absence"

    def decide(self, views, job_duration_hours) -> PolicyDecision:
        return PolicyDecision(benchmarks=None)


class IdealPolicy(ValidationPolicy):
    """No validation; paired with a defect-free simulator run."""

    name = "ideal"

    def decide(self, views, job_duration_hours) -> PolicyDecision:
        return PolicyDecision(benchmarks=None)


class FullSetPolicy(ValidationPolicy):
    """Full benchmark set on every allocation."""

    name = "full-set"

    def __init__(self, durations: dict[str, float]):
        if not durations:
            raise ValueError("FullSetPolicy needs benchmark durations")
        self.durations = dict(durations)
        self._full = tuple(sorted(self.durations))
        self._hours = sum(self.durations.values()) / 60.0

    def decide(self, views, job_duration_hours) -> PolicyDecision:
        return PolicyDecision(benchmarks=self._full, validation_hours=self._hours)


class SelectorPolicy(ValidationPolicy):
    """ANUBIS Selector: risk-gated, coverage-driven subset selection.

    Parameters
    ----------
    durations:
        Benchmark name -> minutes.
    coverage:
        Historical coverage table for Algorithm 1.
    wear:
        Wear model used as the incident-probability estimator: a node
        whose slot has run ``hours_since_clean`` hours since it last
        passed validation has probability
        ``1 - exp(-rate(incident_count) * hours_since_clean)`` of
        already carrying a latent defect -- the risk validation can
        actually remove.  (Mid-job formations are invisible to
        allocation-time validation, so including the job duration only
        forces pointless re-validation of just-cleaned nodes.  The
        production system uses the fitted Cox-Time model; the analytic
        estimator keeps the simulation deterministic, and the Cox-Time
        path is exercised by the Table 3 pipeline.)
    p0:
        Residual probability target of Algorithm 1.
    include_job_duration:
        Add the job duration to the exposure window (the paper's
        literal "expectation of time to incident shorter than job
        duration" reading); off by default for the reason above.
    """

    name = "selector"

    def __init__(self, durations: dict[str, float], coverage: CoverageTable,
                 wear: WearModel, *, p0: float = 0.02,
                 include_job_duration: bool = False):
        if not durations:
            raise ValueError("SelectorPolicy needs benchmark durations")
        if not 0.0 <= p0 < 1.0:
            raise ValueError(f"p0 must be in [0, 1), got {p0}")
        self.durations = dict(durations)
        self.coverage = coverage
        self.wear = wear
        self.p0 = float(p0)
        self.include_job_duration = bool(include_job_duration)

    def node_probability(self, view: NodeView, job_duration_hours: float) -> float:
        """P(a catchable latent defect is present) for one node."""
        rate = self.wear.incident_rate(view.incident_count)
        exposure = max(view.hours_since_clean, 0.0)
        if self.include_job_duration:
            exposure += job_duration_hours
        return float(1.0 - np.exp(-rate * exposure))

    def decide(self, views, job_duration_hours) -> PolicyDecision:
        probs = [self.node_probability(v, job_duration_hours) for v in views]
        result = select_benchmarks(probs, self.durations, self.coverage, self.p0)
        hours = result.total_time_minutes / 60.0
        return PolicyDecision(benchmarks=result.subset, validation_hours=hours)
