"""Synthetic trace generation (substitute for the paper's Azure traces).

Generates the two trace families §5.1 collects from production:

* :func:`generate_incident_trace` -- per-node incident event streams
  whose hazard follows the :class:`~repro.hardware.degradation.WearModel`
  (incident rate grows with historical incident count, Figure 4) plus a
  mild unobserved per-node frailty.  Troubleshooting durations follow
  the empirical Figure 2 mixture (38.1% above one day, 10.3% above two
  weeks).
* :func:`generate_allocation_trace` -- a Poisson stream of gang-
  scheduled job requests with power-of-two node counts and log-normal
  durations, shaped like published GPU-cluster traces.

Incident *components* (Figure 1) are drawn per category so the ticket
mix can be histogrammed the same way the paper does.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.components import IncidentCategory
from repro.hardware.degradation import WearModel
from repro.simulation.traces import (
    AllocationRecord,
    AllocationTrace,
    IncidentRecord,
    IncidentTrace,
)

__all__ = [
    "TTR_SEGMENTS",
    "sample_time_to_resolve",
    "generate_incident_trace",
    "generate_allocation_trace",
    "CATEGORY_COMPONENTS",
]

#: Figure 2 troubleshooting-duration mixture: (low_h, high_h, probability).
#: P(>24h) = 0.381 and P(>336h) = 0.103 match the paper's quoted tail.
TTR_SEGMENTS: tuple[tuple[float, float, float], ...] = (
    (0.25, 1.0, 0.080),
    (1.0, 6.0, 0.220),
    (6.0, 24.0, 0.319),
    (24.0, 168.0, 0.200),
    (168.0, 336.0, 0.078),
    (336.0, 720.0, 0.103),
)

#: Incident source components per category (Figure 1 granularity).
CATEGORY_COMPONENTS: dict[IncidentCategory, tuple[str, ...]] = {
    IncidentCategory.GPU: ("gpu_sm", "gpu_driver_xid", "gpu_power"),
    IncidentCategory.GPU_MEMORY: ("hbm_row_remap", "hbm_ecc"),
    IncidentCategory.NETWORK: ("ib_link", "ib_hca", "tor_uplink"),
    IncidentCategory.CPU_MEMORY: ("dram_dimm", "cpu_core"),
    IncidentCategory.PCIE: ("pcie_lane",),
    IncidentCategory.NVLINK: ("nvlink_lane", "nvswitch"),
    IncidentCategory.DISK: ("nvme_ssd",),
    IncidentCategory.SOFTWARE: ("driver_stack", "firmware"),
    IncidentCategory.THERMAL: ("cooling_airflow",),
}


def sample_time_to_resolve(rng: np.random.Generator) -> float:
    """Draw one troubleshooting duration (hours) from the Figure 2 mix.

    Log-uniform within each segment so the short segments are not
    artificially flat.
    """
    probs = np.array([seg[2] for seg in TTR_SEGMENTS])
    idx = int(rng.choice(len(TTR_SEGMENTS), p=probs / probs.sum()))
    low, high, _ = TTR_SEGMENTS[idx]
    return float(np.exp(rng.uniform(np.log(low), np.log(high))))


def expected_time_to_resolve() -> float:
    """Mean of the Figure 2 mixture, in hours (the paper rounds this
    to ~1.5 days for the no-validation repair duration)."""
    total = 0.0
    for low, high, prob in TTR_SEGMENTS:
        # Mean of a log-uniform on [low, high].
        mean = (high - low) / (np.log(high) - np.log(low))
        total += prob * mean
    return float(total)


#: Telemetry channels attached to each node: (name, signal gain on
#: log-frailty, noise sigma).  High gain / low noise = informative.
TELEMETRY_CHANNELS: tuple[tuple[str, float, float], ...] = (
    ("telemetry_ecc_rate", 1.0, 0.18),
    ("telemetry_thermal_margin", -0.7, 0.30),
    ("telemetry_link_ber", 0.8, 0.40),
)


def generate_incident_trace(n_nodes: int, horizon_hours: float, *,
                            wear: WearModel | None = None,
                            frailty_sigma: float = 0.25,
                            gap_shape: float = 1.0,
                            telemetry: bool = True,
                            seed: int = 0) -> IncidentTrace:
    """Simulate per-node incident streams over ``horizon_hours``.

    Each node alternates up-time and repair time (Figure 2 mixture).
    The up-time gap has mean ``wear_mtbi(count) / frailty`` -- matching
    the paper's observation that gaps shrink as incidents accumulate --
    and Weibull shape ``gap_shape``: 1.0 gives memoryless exponential
    gaps; larger values give degradation with memory (a wear-out
    hazard that rises within each episode), which is what separates
    Cox-Time from the constant-rate baselines in Table 3.

    ``telemetry`` attaches per-node health counters (correctable-error
    rate, thermal margin, link BER) correlated with the node's latent
    frailty -- the monitored status data the production Selector feeds
    its probability model.
    """
    if n_nodes <= 0 or horizon_hours <= 0:
        raise ValueError("n_nodes and horizon_hours must be positive")
    if gap_shape <= 0:
        raise ValueError("gap_shape must be positive")
    wear = wear or WearModel()
    rng = np.random.default_rng(seed)
    width = max(len(str(n_nodes - 1)), 4)
    # Normalize so the Weibull draw has unit mean for any shape.
    from math import gamma as gamma_fn
    weibull_mean = gamma_fn(1.0 + 1.0 / gap_shape)

    records: list[IncidentRecord] = []
    node_ids = []
    node_attributes: dict[str, dict[str, float]] = {}
    for i in range(n_nodes):
        node_id = f"node-{i:0{width}d}"
        node_ids.append(node_id)
        frailty = float(np.exp(rng.normal(0.0, frailty_sigma)))
        if telemetry:
            log_frailty = float(np.log(frailty))
            node_attributes[node_id] = {
                name: gain * log_frailty + noise * float(rng.standard_normal())
                for name, gain, noise in TELEMETRY_CHANNELS
            }
        clock = 0.0
        incident_count = 0
        while True:
            mean_gap = wear.mean_time_between_incidents(incident_count) / frailty
            gap = mean_gap * float(rng.weibull(gap_shape)) / weibull_mean
            start = clock + gap
            if start >= horizon_hours:
                break
            category = wear.sample_category(rng)
            component = str(rng.choice(CATEGORY_COMPONENTS[category]))
            duration = sample_time_to_resolve(rng)
            end = min(start + duration, horizon_hours)
            records.append(IncidentRecord(
                node_id=node_id, start_hour=start, end_hour=end,
                category=category.value, component=component,
            ))
            incident_count += 1
            clock = start + duration
            if clock >= horizon_hours:
                break
    return IncidentTrace(records=tuple(records), horizon_hours=horizon_hours,
                         node_ids=tuple(node_ids),
                         node_attributes=node_attributes)


def generate_allocation_trace(horizon_hours: float, *,
                              jobs_per_hour: float = 1.0,
                              max_job_nodes: int = 64,
                              mean_duration_hours: float = 10.0,
                              seed: int = 0) -> AllocationTrace:
    """Simulate a stream of gang-scheduled job requests.

    Job sizes are powers of two with geometrically decaying popularity
    (most jobs are small, a few span many nodes); durations are
    log-normal with the requested mean.
    """
    if horizon_hours <= 0 or jobs_per_hour <= 0:
        raise ValueError("horizon_hours and jobs_per_hour must be positive")
    rng = np.random.default_rng(seed)
    sizes = []
    size = 1
    while size <= max_job_nodes:
        sizes.append(size)
        size *= 2
    size_weights = np.array([0.55 ** k for k in range(len(sizes))])
    size_weights /= size_weights.sum()

    # Log-normal duration with the requested mean and sigma=1.0.
    sigma = 1.0
    mu = np.log(mean_duration_hours) - sigma ** 2 / 2.0

    records = []
    clock = 0.0
    job_index = 0
    while True:
        clock += float(rng.exponential(1.0 / jobs_per_hour))
        if clock >= horizon_hours:
            break
        n_nodes = int(sizes[int(rng.choice(len(sizes), p=size_weights))])
        duration = float(np.exp(rng.normal(mu, sigma)))
        duration = min(max(duration, 0.25), horizon_hours)
        records.append(AllocationRecord(
            job_id=f"job-{job_index:06d}", submit_hour=clock,
            n_nodes=n_nodes, duration_hours=duration,
        ))
        job_index += 1
    return AllocationTrace(records=tuple(records), horizon_hours=horizon_hours)
