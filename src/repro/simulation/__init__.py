"""Cluster simulation: traces, policies, repair and the event loop."""

from repro.simulation.cluster import (
    ClusterSimulator,
    NodeStats,
    SimulationConfig,
    SimulationResult,
)
from repro.simulation.coverage import (
    analytic_coverage_table,
    detection_map,
    detects,
    expected_shift,
)
from repro.simulation.dirty import (
    contaminated_windows,
    dirty_runner,
    poisoned_windows,
)
from repro.simulation.generator import (
    CATEGORY_COMPONENTS,
    TTR_SEGMENTS,
    generate_allocation_trace,
    generate_incident_trace,
    sample_time_to_resolve,
)
from repro.simulation.metrics import (
    PolicyComparison,
    build_policies,
    job_time_to_failure_curve,
    mean_time_between_ith_incidents,
    run_policy_comparison,
    suite_durations,
)
from repro.simulation.policies import (
    AbsencePolicy,
    FullSetPolicy,
    IdealPolicy,
    NodeView,
    PolicyDecision,
    SelectorPolicy,
    ValidationPolicy,
)
from repro.simulation.repair import RepairSystem, SwapOutcome
from repro.simulation.traces import (
    AllocationRecord,
    AllocationTrace,
    IncidentRecord,
    IncidentTrace,
)

__all__ = [
    "AbsencePolicy",
    "AllocationRecord",
    "AllocationTrace",
    "CATEGORY_COMPONENTS",
    "ClusterSimulator",
    "FullSetPolicy",
    "IdealPolicy",
    "IncidentRecord",
    "IncidentTrace",
    "NodeStats",
    "NodeView",
    "PolicyComparison",
    "PolicyDecision",
    "RepairSystem",
    "SelectorPolicy",
    "SimulationConfig",
    "SimulationResult",
    "SwapOutcome",
    "TTR_SEGMENTS",
    "ValidationPolicy",
    "analytic_coverage_table",
    "build_policies",
    "contaminated_windows",
    "detection_map",
    "detects",
    "dirty_runner",
    "expected_shift",
    "generate_allocation_trace",
    "generate_incident_trace",
    "job_time_to_failure_curve",
    "mean_time_between_ith_incidents",
    "poisoned_windows",
    "run_policy_comparison",
    "sample_time_to_resolve",
    "suite_durations",
]
