"""Dirty-telemetry generators for measurement-plane soak testing.

The sanitization layer (:mod:`repro.quality`) and the
contamination-resistant learner (:mod:`repro.core.criteria`) exist to
survive telemetry the paper's clean-room formulas never see: NaN
bursts, truncated collection windows, unit-scale glitches, duplicated
samples.  This module manufactures that dirt deterministically so soak
tests can assert fleet-level outcomes (bounded false evictions,
learning that completes, poisoned updates rejected) against a known
contamination rate.

Three entry points:

* :func:`dirty_runner` -- a ready-made
  :class:`~repro.benchsuite.faults.FaultInjectingRunner` whose total
  telemetry-fault probability equals ``contamination``, split across
  the four telemetry fault classes;
* :func:`contaminated_windows` -- raw per-node window arrays with a
  deterministic subset corrupted, for driving
  :func:`~repro.core.criteria.learn_criteria` and
  :func:`~repro.quality.rollout.evaluate_rollout` directly without a
  benchmark suite in the loop;
* :func:`contaminated_batch` -- the same dirt as a typed
  :class:`~repro.core.measurement.MeasurementBatch`, for driving the
  measurement spine (sanitization provenance, nonfinite-policy
  resolution, journal round-trips) end to end.

Everything is keyed off an explicit seed; the same seed reproduces
the same dirt, window for window.
"""

from __future__ import annotations

import numpy as np

from repro.benchsuite.faults import FaultInjectingRunner
from repro.core.measurement import MeasurementBatch, MetricWindow
from repro.exceptions import ReproError

__all__ = ["dirty_runner", "contaminated_windows", "contaminated_batch",
           "poisoned_windows"]

#: How :func:`dirty_runner` splits the contamination budget across the
#: telemetry fault classes (weights, normalised internally).
_FAULT_MIX = {
    "telemetry-nan": 0.4,
    "telemetry-truncate": 0.2,
    "telemetry-scale": 0.2,
    "telemetry-duplicate": 0.2,
}


def dirty_runner(*, contamination: float, seed: int = 0, fault_nodes=None,
                 windows=None, sanitizer=None,
                 unit_scale_factor: float = 1000.0,
                 scale_rates_by_sku: bool = False) -> FaultInjectingRunner:
    """A fault runner whose telemetry-fault probability is ``contamination``.

    The budget is split 40/20/20/20 across non-finite, truncation,
    unit-scale and duplication faults -- non-finite corruption is the
    most common collector failure in practice, the rest roughly even.
    Execution faults (crash/hang/garbage) are left at zero: dirty
    *telemetry* is the subject here, not broken executions.

    ``scale_rates_by_sku`` makes ``contamination`` the *baseline*
    rate: each node's lottery is further multiplied by its SKU's
    ``dirty_rate_scale``, so a mixed fleet's newer hardware classes
    report dirtier telemetry -- the heterogeneous-fleet soak scenario.
    """
    if not 0.0 <= contamination <= 1.0:
        raise ReproError(
            f"contamination must be in [0, 1], got {contamination}")
    total = sum(_FAULT_MIX.values())
    return FaultInjectingRunner(
        seed=seed,
        fault_nodes=fault_nodes,
        windows=windows,
        sanitizer=sanitizer,
        unit_scale_factor=unit_scale_factor,
        scale_rates_by_sku=scale_rates_by_sku,
        telemetry_nan_rate=contamination * _FAULT_MIX["telemetry-nan"] / total,
        telemetry_truncate_rate=(contamination
                                 * _FAULT_MIX["telemetry-truncate"] / total),
        telemetry_scale_rate=(contamination
                              * _FAULT_MIX["telemetry-scale"] / total),
        telemetry_duplicate_rate=(contamination
                                  * _FAULT_MIX["telemetry-duplicate"] / total),
    )


def contaminated_windows(*, n_windows: int, window: int = 32,
                         base_value: float = 100.0, noise_cv: float = 0.02,
                         contamination: float = 0.1, seed: int = 0,
                         scale_factor: float = 1000.0) -> list[np.ndarray]:
    """Per-node measurement windows with a corrupted subset.

    Generates ``n_windows`` healthy windows (normal noise around
    ``base_value``), then corrupts ``round(contamination * n_windows)``
    of them -- cycling through NaN injection, truncation, unit-scale
    multiplication and duplication so every fault class is represented.
    The corrupted indices are the *last* ones the shuffled RNG picks,
    so which nodes are dirty varies with the seed but never with call
    order.
    """
    if n_windows < 1:
        raise ReproError("n_windows must be at least 1")
    if not 0.0 <= contamination <= 1.0:
        raise ReproError(
            f"contamination must be in [0, 1], got {contamination}")
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0xD1A7)))
    windows = [base_value * (1.0 + noise_cv * rng.standard_normal(window))
               for _ in range(n_windows)]
    n_dirty = int(round(contamination * n_windows))
    dirty_idx = rng.permutation(n_windows)[:n_dirty]
    faults = ("nan", "truncate", "scale", "duplicate")
    for slot, index in enumerate(sorted(dirty_idx)):
        kind = faults[slot % len(faults)]
        arr = windows[index]
        if kind == "nan":
            n_bad = max(1, arr.size // 10)
            bad = rng.choice(arr.size, size=n_bad, replace=False)
            arr[bad] = rng.choice([np.nan, np.inf, -np.inf], size=n_bad)
        elif kind == "truncate":
            windows[index] = arr[:max(1, arr.size // 4)]
        elif kind == "scale":
            windows[index] = arr * scale_factor
        else:
            half = max(1, arr.size // 2)
            windows[index] = np.concatenate([arr, arr[:half]])
    return windows


def contaminated_batch(*, n_windows: int, window: int = 32,
                       base_value: float = 100.0, noise_cv: float = 0.02,
                       contamination: float = 0.1, seed: int = 0,
                       scale_factor: float = 1000.0,
                       benchmark: str = "soak", metric: str = "value",
                       higher_is_better: bool = True,
                       sku: str = "unknown") -> MeasurementBatch:
    """:func:`contaminated_windows`, typed as a provenance batch.

    Wraps the raw dirty windows into one
    :class:`~repro.core.measurement.MeasurementBatch` of per-node
    :class:`~repro.core.measurement.MetricWindow`\\ s (node ids
    ``soak-000`` ...), so soak tests can drive the measurement spine --
    sanitization marking, nonfinite-policy resolution, journaling --
    exactly as the runner path does.  The windows are *raw* (not yet
    sanitized), which is the point: the batch resolves its nonfinite
    policy to ``mask`` until a sanitizer has marked every window.
    ``sku`` stamps the whole batch's hardware-class provenance
    (batches are SKU-homogeneous by construction).
    """
    raw = contaminated_windows(
        n_windows=n_windows, window=window, base_value=base_value,
        noise_cv=noise_cv, contamination=contamination, seed=seed,
        scale_factor=scale_factor)
    windows = tuple(
        MetricWindow(node_id=f"soak-{i:03d}", benchmark=benchmark,
                     metric=metric, values=values,
                     higher_is_better=higher_is_better, sku=sku)
        for i, values in enumerate(raw))
    return MeasurementBatch(benchmark=benchmark, metric=metric,
                            windows=windows,
                            higher_is_better=higher_is_better, sku=sku)


def poisoned_windows(*, n_windows: int, window: int = 32,
                     base_value: float = 100.0, noise_cv: float = 0.02,
                     poison_factor: float = 3.0,
                     seed: int = 0) -> list[np.ndarray]:
    """Windows from a fleet whose telemetry was *coherently* poisoned.

    Unlike :func:`contaminated_windows` (random per-window dirt), this
    models the guarded-rollout adversary: every window measures
    ``poison_factor`` times too high -- a fleet-wide driver/collector
    regression.  Criteria learned from these windows look internally
    consistent but would evict the whole healthy fleet; the rollout
    guard must reject them.
    """
    if n_windows < 1:
        raise ReproError("n_windows must be at least 1")
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0xBAD)))
    level = base_value * poison_factor
    return [level * (1.0 + noise_cv * rng.standard_normal(window))
            for _ in range(n_windows)]
