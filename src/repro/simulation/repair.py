"""Repair system: out-for-repair pipeline plus hot buffer (paper §3.1).

The paper's runtime keeps a *defective buffer* of nodes out for repair
(OFR) and a *hot buffer* of repaired healthy spares.  When validation
flags a node, the orchestration swaps it with a hot spare in about one
hour instead of waiting days for troubleshooting.

:class:`RepairSystem` models that: swaps consume hot-buffer stock, the
defective node enters a repair pipeline, and finished repairs restock
the buffer.  When the buffer is empty a swap degrades to waiting for
the node's own repair -- surfacing under-provisioned buffers in the
simulation metrics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.exceptions import SimulationError

__all__ = ["SwapOutcome", "RepairSystem"]


@dataclass(frozen=True)
class SwapOutcome:
    """Result of sending one defective node to repair.

    ``available_at`` is when the slot becomes usable again; ``swapped``
    says whether a hot spare was available (fast path).
    """

    available_at: float
    swapped: bool


@dataclass
class RepairSystem:
    """Hot-buffer swap + repair pipeline.

    Attributes
    ----------
    hot_buffer_size:
        Number of healthy spares initially on the shelf.
    swap_hours:
        Time to swap in a hot spare (paper: ~1 hour).
    repair_hours:
        Time to repair a defective node before it restocks the buffer.
    """

    hot_buffer_size: int = 8
    swap_hours: float = 1.0
    repair_hours: float = 36.0
    _stock: int = field(init=False, default=0)
    _repairs: list[float] = field(init=False, default_factory=list)
    swaps_served: int = field(init=False, default=0)
    swaps_missed: int = field(init=False, default=0)

    def __post_init__(self):
        if self.hot_buffer_size < 0:
            raise SimulationError("hot_buffer_size must be non-negative")
        if self.swap_hours <= 0 or self.repair_hours <= 0:
            raise SimulationError("swap_hours and repair_hours must be positive")
        self._stock = self.hot_buffer_size

    def _restock(self, now: float) -> None:
        while self._repairs and self._repairs[0] <= now:
            heapq.heappop(self._repairs)
            self._stock += 1

    def available_spares(self, now: float) -> int:
        """Hot-buffer stock at ``now`` (after restocking)."""
        self._restock(now)
        return self._stock

    def send_to_repair(self, now: float) -> SwapOutcome:
        """Swap a defective node out; returns when the slot is usable.

        Fast path: consume a spare, slot back in ``swap_hours``; the
        defective unit re-enters the buffer after ``repair_hours``.
        Slow path (empty buffer): the slot waits for its own unit's
        repair, which returns directly to the slot instead of the
        buffer.
        """
        self._restock(now)
        if self._stock > 0:
            self._stock -= 1
            self.swaps_served += 1
            heapq.heappush(self._repairs, now + self.repair_hours)
            return SwapOutcome(available_at=now + self.swap_hours, swapped=True)
        self.swaps_missed += 1
        return SwapOutcome(available_at=now + self.repair_hours, swapped=False)
