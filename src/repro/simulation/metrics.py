"""Simulation analysis helpers: policy comparisons and trace statistics.

Provides the aggregation behind Figure 4 (MTBI decay by incident
index), Figure 8 (daily utilization per policy) and Table 4
(validation time / MTBI per policy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.benchsuite.suite import full_suite
from repro.core.selection import CoverageTable
from repro.simulation.cluster import (ClusterSimulator, SimulationConfig,
                                      SimulationResult)
from repro.simulation.coverage import analytic_coverage_table
from repro.simulation.policies import (
    AbsencePolicy,
    FullSetPolicy,
    IdealPolicy,
    SelectorPolicy,
    ValidationPolicy,
)
from repro.simulation.traces import AllocationTrace, IncidentTrace

__all__ = [
    "PolicyComparison",
    "suite_durations",
    "build_policies",
    "run_policy_comparison",
    "mean_time_between_ith_incidents",
    "job_time_to_failure_curve",
]


def suite_durations(suite=None) -> dict[str, float]:
    """Benchmark name -> nominal duration in minutes for the full set."""
    suite = suite if suite is not None else full_suite()
    return {spec.name: spec.duration_minutes for spec in suite}


def build_policies(config: SimulationConfig, *,
                   coverage: CoverageTable | None = None,
                   p0: float = 0.02) -> dict[str, ValidationPolicy]:
    """The four §5.2 policies, sharing durations and coverage history."""
    durations = suite_durations()
    coverage = coverage or analytic_coverage_table(full_suite(), alpha=config.alpha)
    return {
        "absence": AbsencePolicy(),
        "full-set": FullSetPolicy(durations),
        "selector": SelectorPolicy(durations, coverage, config.wear_model(), p0=p0),
        "ideal": IdealPolicy(),
    }


@dataclass
class PolicyComparison:
    """Results of running every policy on the same trace and seed."""

    results: dict[str, SimulationResult]

    def table4_rows(self) -> list[tuple[str, float, float]]:
        """(policy, validation hours per node, MTBI hours) rows."""
        rows = []
        for name in ("absence", "full-set", "selector"):
            if name in self.results:
                result = self.results[name]
                rows.append((name, result.average_validation_hours,
                             result.mtbi_hours))
        return rows

    def utilization_row(self) -> dict[str, float]:
        """Policy -> average node utilization (Figure 8 headline)."""
        return {name: r.average_utilization for name, r in self.results.items()}


def run_policy_comparison(config: SimulationConfig, trace: AllocationTrace, *,
                          policies: dict[str, ValidationPolicy] | None = None,
                          p0: float = 0.02) -> PolicyComparison:
    """Run all policies on one trace with one seed."""
    policies = policies or build_policies(config, p0=p0)
    results = {}
    for name, policy in policies.items():
        simulator = ClusterSimulator(config, policy, trace)
        results[name] = simulator.run()
    return PolicyComparison(results=results)


def mean_time_between_ith_incidents(trace: IncidentTrace,
                                    max_index: int = 20) -> list[float]:
    """Figure 4 (left): mean gap between the i-th and (i+1)-th incidents.

    Entry ``i`` (0-based) averages, over all nodes with at least
    ``i + 1`` incidents, the time from the ``i``-th incident's
    resolution (or node birth for ``i = 0``) to the next incident's
    start.
    """
    gaps: list[list[float]] = [[] for _ in range(max_index)]
    for node_id in trace.node_ids:
        incidents = trace.for_node(node_id)
        previous_end = 0.0
        for index, record in enumerate(incidents[:max_index]):
            gaps[index].append(record.start_hour - previous_end)
            previous_end = record.end_hour
    return [float(np.mean(g)) if g else float("nan") for g in gaps]


def job_time_to_failure_curve(mtbi_hours: float,
                              node_counts=(1, 8, 64, 512)) -> dict[int, float]:
    """Figure 4 (right): expected job time-to-failure at scale.

    Independent constant-rate nodes: a gang-scheduled job of ``n``
    nodes fails ``n`` times as fast as one node.
    """
    if mtbi_hours <= 0:
        raise ValueError("mtbi_hours must be positive")
    return {int(n): mtbi_hours / int(n) for n in node_counts}
