"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
downstream code can catch one base class.  Sub-classes are split by the
subsystem that raises them; they carry plain messages and never wrap
internal state, keeping tracebacks readable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidSampleError(ReproError):
    """A benchmark sample is empty, non-finite, or otherwise unusable."""


class CriteriaError(ReproError):
    """Criteria learning failed (e.g. every sample was excluded as a defect)."""


class ModelNotFittedError(ReproError):
    """A survival/probability model was queried before :meth:`fit` was called."""


class TopologyError(ReproError):
    """A network topology is malformed or a query on it is unsatisfiable."""


class SchedulingError(ReproError):
    """A pairwise or topology-aware validation schedule cannot be built."""


class BenchmarkError(ReproError):
    """A benchmark definition or execution request is invalid."""


class SimulationError(ReproError):
    """The cluster simulator was configured inconsistently."""


class TraceError(ReproError):
    """A trace file or trace record is malformed."""


class SkuMismatchError(ReproError, ValueError):
    """A measurement crossed a SKU namespace boundary.

    Raised when a window would be grouped with -- or scored against --
    criteria from another hardware class.  Criteria are only
    meaningful within one SKU (an H100's "normal" throughput is an
    A100's anomaly), so crossings fail loudly instead of producing a
    plausible-looking wrong verdict.  Also a :class:`ValueError`, per
    the same convention as :class:`ServiceError`: the mismatch is a
    bad-argument error from the caller's point of view.
    """


class ServiceError(ReproError, ValueError):
    """The validation control plane was driven inconsistently.

    Also a :class:`ValueError`: most instances are raised while
    validating configuration knobs, and callers outside this package
    reasonably catch ``ValueError`` for bad-parameter errors.
    """


class LifecycleError(ServiceError):
    """An illegal node state-machine transition was requested."""


class JournalError(ServiceError):
    """The service journal cannot be written or replayed."""


class ChaosError(ServiceError):
    """A fault injected by the chaos harness (:mod:`repro.service.chaos`)."""
