"""Criteria-construction baselines and the Margin Ratio (paper §5.3).

Figure 9 compares Algorithm 2's criteria against two typical outlier-
detection constructions:

* **IQR**: samples are ranked by mean throughput; those below
  ``Q1 - 1.5 * (Q3 - Q1)`` are defects and the criteria is the median
  sample of the rest.
* **k-means (k=2)**: samples (equal-length step series) are clustered
  in Euclidean space; the minority cluster is defective and the
  criteria is the element-wise mean of the majority cluster.

All three are scored with the *Margin Ratio*

``min over defective of d(S_i, S_C)  /  max over healthy of d(S_j, S_C)``

-- larger means a clearer boundary between defective and healthy
nodes under the paper's CDF distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ecdf import as_sample
from repro.core.fastdist import SortedSampleBatch, one_vs_many_distances
from repro.exceptions import CriteriaError

__all__ = [
    "BaselineCriteria",
    "iqr_criteria",
    "kmeans_criteria",
    "margin_ratio",
]


@dataclass(frozen=True)
class BaselineCriteria:
    """Criteria sample plus the defect split a baseline produced."""

    criteria: np.ndarray
    defect_indices: tuple[int, ...]
    healthy_indices: tuple[int, ...]
    method: str


def iqr_criteria(samples) -> BaselineCriteria:
    """IQR fence on per-sample mean throughput (Figure 9 baseline)."""
    if len(samples) < 3:
        raise CriteriaError("IQR criteria needs at least three samples")
    means = np.array([as_sample(s).mean() for s in samples])
    q1, q3 = np.percentile(means, [25.0, 75.0])
    fence = q1 - 1.5 * (q3 - q1)
    healthy = np.flatnonzero(means >= fence)
    defective = np.flatnonzero(means < fence)
    if healthy.size == 0:
        raise CriteriaError("IQR fence excluded every sample")
    median_of_healthy = healthy[int(np.argsort(means[healthy])[healthy.size // 2])]
    return BaselineCriteria(
        criteria=np.sort(as_sample(samples[median_of_healthy])),
        defect_indices=tuple(int(i) for i in defective),
        healthy_indices=tuple(int(i) for i in healthy),
        method="iqr",
    )


def _lloyd_kmeans(matrix: np.ndarray, k: int, seed: int,
                  n_iterations: int = 100) -> np.ndarray:
    """Plain Lloyd's algorithm; returns per-row cluster labels."""
    rng = np.random.default_rng(seed)
    n = matrix.shape[0]
    centers = matrix[rng.choice(n, size=k, replace=False)]
    labels = np.zeros(n, dtype=int)
    for _ in range(n_iterations):
        dists = ((matrix[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = dists.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for cluster in range(k):
            members = matrix[labels == cluster]
            if members.size:
                centers[cluster] = members.mean(axis=0)
    return labels


def kmeans_criteria(samples, *, seed: int = 0) -> BaselineCriteria:
    """k-means (k=2) on equal-length series (Figure 9 baseline).

    The majority cluster is healthy; its element-wise mean becomes the
    criteria sample.  Samples must share one length (they do for a
    fixed-step end-to-end benchmark); shorter samples are rejected.
    """
    if len(samples) < 3:
        raise CriteriaError("k-means criteria needs at least three samples")
    arrays = [as_sample(s) for s in samples]
    length = arrays[0].size
    if any(a.size != length for a in arrays):
        raise CriteriaError("k-means criteria needs equal-length samples")
    matrix = np.vstack(arrays)
    labels = _lloyd_kmeans(matrix, k=2, seed=seed)

    counts = np.bincount(labels, minlength=2)
    majority = int(counts.argmax())
    if counts.min() == 0:
        # Degenerate clustering: everything healthy.
        healthy = np.arange(len(samples))
        defective = np.array([], dtype=int)
    else:
        healthy = np.flatnonzero(labels == majority)
        defective = np.flatnonzero(labels != majority)
    return BaselineCriteria(
        criteria=np.sort(matrix[healthy].mean(axis=0)),
        defect_indices=tuple(int(i) for i in defective),
        healthy_indices=tuple(int(i) for i in healthy),
        method="kmeans",
    )


def margin_ratio(samples, criteria, defect_indices) -> float:
    """Margin Ratio of a criteria against a defect split (§5.3).

    ``inf`` when there is no defect (nothing to separate), ``0`` when a
    defect sits exactly on the criteria.  The *healthy* max distance is
    floored at a tiny epsilon to keep the ratio finite for perfectly
    repeatable benchmarks.
    """
    defect_set = set(int(i) for i in defect_indices)
    if not defect_set:
        return float("inf")
    batch = SortedSampleBatch.from_samples(samples)
    distances = one_vs_many_distances(batch, criteria)
    defective = np.array(sorted(defect_set))
    healthy = np.array([i for i in range(len(samples)) if i not in defect_set])
    if healthy.size == 0:
        raise CriteriaError("margin ratio needs at least one healthy sample")
    min_defect = float(distances[defective].min())
    max_healthy = max(float(distances[healthy].max()), 1e-9)
    return min_defect / max_healthy
