"""Outlier-detection and criteria baselines used by the evaluation."""

from repro.analysis.baselines import (
    BaselineCriteria,
    iqr_criteria,
    kmeans_criteria,
    margin_ratio,
)
from repro.analysis.outliers import OneClassSvm, local_outlier_factor, lof_outliers
from repro.analysis.plots import ascii_bars, ascii_cdf

__all__ = [
    "BaselineCriteria",
    "OneClassSvm",
    "ascii_bars",
    "ascii_cdf",
    "iqr_criteria",
    "kmeans_criteria",
    "local_outlier_factor",
    "lof_outliers",
    "margin_ratio",
]
