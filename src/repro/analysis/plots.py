"""Terminal plots for benchmark distributions (no plotting deps).

The paper's evaluation is figures of CDFs and bars; the offline
environment has no matplotlib, so this module renders the two chart
types the examples and benches need as plain text:

* :func:`ascii_cdf` -- empirical CDF curves (Figure 3 style), multiple
  series overlaid with distinct glyphs;
* :func:`ascii_bars` -- horizontal bar chart (Figure 1/9 style).
"""

from __future__ import annotations

import numpy as np

from repro.core.ecdf import as_sample

__all__ = ["ascii_cdf", "ascii_bars"]

_GLYPHS = "*o+x#@"


def ascii_cdf(series: dict[str, object], *, width: int = 60, height: int = 16,
              x_label: str = "") -> str:
    """Render empirical CDFs of one or more samples as ASCII art.

    Parameters
    ----------
    series:
        Label -> 1-D sample.  Up to six series, each drawn with its own
        glyph.
    width, height:
        Plot body size in characters.
    x_label:
        Axis caption appended under the plot.
    """
    if not series:
        raise ValueError("ascii_cdf needs at least one series")
    if len(series) > len(_GLYPHS):
        raise ValueError(f"at most {len(_GLYPHS)} series supported")
    samples = {label: np.sort(as_sample(values))
               for label, values in series.items()}
    lo = min(float(s[0]) for s in samples.values())
    hi = max(float(s[-1]) for s in samples.values())
    if hi <= lo:
        hi = lo + 1.0
    xs = np.linspace(lo, hi, width)

    grid = [[" "] * width for _ in range(height)]
    for glyph, (label, sample) in zip(_GLYPHS, samples.items()):
        f = np.searchsorted(sample, xs, side="right") / sample.size
        rows = np.clip(((1.0 - f) * (height - 1)).astype(int), 0, height - 1)
        for col, row in enumerate(rows):
            grid[row][col] = glyph

    lines = []
    for index, row in enumerate(grid):
        f_value = 1.0 - index / (height - 1)
        lines.append(f"{f_value:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<12.4g}{'':{max(width - 24, 1)}}{hi:>12.4g}")
    if x_label:
        lines.append(f"      {x_label}")
    legend = "   ".join(f"{glyph} {label}"
                        for glyph, label in zip(_GLYPHS, samples))
    lines.append(f"      {legend}")
    return "\n".join(lines)


def ascii_bars(values: dict[str, float], *, width: int = 50,
               fmt: str = "{:.2f}") -> str:
    """Render a label -> value map as a horizontal bar chart."""
    if not values:
        raise ValueError("ascii_bars needs at least one value")
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(str(label)) for label in values)
    lines = []
    for label, value in values.items():
        bar = "#" * max(int(round(abs(value) / peak * width)), 0)
        lines.append(f"{str(label):<{label_width}} |{bar:<{width}} "
                     + fmt.format(value))
    return "\n".join(lines)
