"""Classical outlier-detection baselines (paper §2.3, Figure 6).

The paper motivates its clustering criteria by showing that generic
outlier detectors misbehave on benchmark metrics: the Local Outlier
Factor marks low-density-but-expected points as outliers, and the
One-Class SVM draws false-positive boundaries inside dense intervals.
scikit-learn is unavailable offline, so both are implemented here:

* :func:`local_outlier_factor` -- Breunig et al.'s LOF, exact kNN.
* :class:`OneClassSvm` -- Scholkopf et al.'s nu-SVM with an RBF
  kernel, solved by projected gradient descent on the dual (the data
  sets involved are small benchmark-metric samples).
"""

from __future__ import annotations

import numpy as np

__all__ = ["local_outlier_factor", "lof_outliers", "OneClassSvm"]


def _as_points(data, min_points: int = 2) -> np.ndarray:
    points = np.asarray(data, dtype=float)
    if points.ndim == 1:
        points = points[:, None]
    if points.ndim != 2 or points.shape[0] < min_points:
        raise ValueError(f"need a (n, d) array with n >= {min_points} points")
    return points


def local_outlier_factor(data, k: int = 10) -> np.ndarray:
    """LOF score per point (1 ~ inlier, larger = more outlying).

    Uses exact pairwise distances; ``k`` is clipped to ``n - 1``.
    """
    points = _as_points(data)
    n = points.shape[0]
    k = max(1, min(k, n - 1))

    diffs = points[:, None, :] - points[None, :, :]
    dists = np.sqrt((diffs ** 2).sum(axis=2))
    np.fill_diagonal(dists, np.inf)

    neighbor_idx = np.argsort(dists, axis=1)[:, :k]
    k_distance = dists[np.arange(n), neighbor_idx[:, -1]]

    # Reachability distance: max(k-distance(b), d(a, b)).
    reach = np.maximum(k_distance[neighbor_idx], dists[np.arange(n)[:, None],
                                                       neighbor_idx])
    lrd = k / np.maximum(reach.sum(axis=1), 1e-12)
    lof = (lrd[neighbor_idx].sum(axis=1) / k) / np.maximum(lrd, 1e-12)
    return lof


def lof_outliers(data, k: int = 10, threshold: float = 1.5) -> np.ndarray:
    """Indices flagged as outliers by LOF at the given threshold."""
    return np.flatnonzero(local_outlier_factor(data, k) > threshold)


class OneClassSvm:
    """nu-One-Class SVM with an RBF kernel.

    Solves the standard dual

    ``min 0.5 a^T K a  s.t.  0 <= a_i <= 1/(nu * n),  sum a = 1``

    with projected gradient descent; the projection onto the
    box-constrained simplex uses bisection on the shift.

    Parameters
    ----------
    nu:
        Upper bound on the training outlier fraction.
    gamma:
        RBF width; ``"scale"`` uses ``1 / (d * var)`` like scikit-learn.
    """

    def __init__(self, nu: float = 0.1, gamma: float | str = "scale", *,
                 n_iterations: int = 500, learning_rate: float = 0.5):
        if not 0.0 < nu <= 1.0:
            raise ValueError(f"nu must be in (0, 1], got {nu}")
        self.nu = float(nu)
        self.gamma = gamma
        self.n_iterations = int(n_iterations)
        self.learning_rate = float(learning_rate)
        self._train_points: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._rho: float | None = None
        self._gamma_value: float | None = None

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        return np.exp(-self._gamma_value * sq)

    @staticmethod
    def _project(alpha: np.ndarray, upper: float) -> np.ndarray:
        """Project onto {0 <= a <= upper, sum a = 1} by bisection."""
        lo = alpha.min() - 1.0
        hi = alpha.max()
        for _ in range(64):
            mid = 0.5 * (lo + hi)
            total = np.clip(alpha - mid, 0.0, upper).sum()
            if total > 1.0:
                lo = mid
            else:
                hi = mid
        return np.clip(alpha - 0.5 * (lo + hi), 0.0, upper)

    def fit(self, data) -> "OneClassSvm":
        points = _as_points(data)
        n, d = points.shape
        if self.gamma == "scale":
            variance = float(points.var()) or 1.0
            self._gamma_value = 1.0 / (d * variance)
        else:
            self._gamma_value = float(self.gamma)
        self._train_points = points

        kernel = self._kernel(points, points)
        upper = 1.0 / (self.nu * n)
        alpha = np.full(n, 1.0 / n)
        alpha = self._project(alpha, upper)
        step = self.learning_rate / max(float(np.linalg.norm(kernel, 2)), 1e-9)
        for _ in range(self.n_iterations):
            gradient = kernel @ alpha
            alpha = self._project(alpha - step * gradient, upper)
        self._alpha = alpha

        # Calibrate the offset so roughly a nu-fraction of training
        # points falls outside -- the projected-gradient solution is
        # approximate, so the classic margin-SV estimate of rho drifts.
        scores = kernel @ alpha
        self._rho = float(np.quantile(scores, self.nu))
        return self

    def decision_function(self, data) -> np.ndarray:
        """Signed score: negative = outlier."""
        if self._alpha is None:
            raise RuntimeError("OneClassSvm.fit has not been called")
        points = _as_points(data, min_points=1)
        return self._kernel(points, self._train_points) @ self._alpha - self._rho

    def outliers(self, data) -> np.ndarray:
        """Indices of points with negative decision score."""
        return np.flatnonzero(self.decision_function(data) < 0.0)
