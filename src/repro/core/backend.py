"""The one distance backend: Eq. (2)--(4) behind a single dispatch.

Before this module existed the paper's distance math lived twice --
:mod:`repro.core.distance` (scalar reference) and
:mod:`repro.core.fastdist` (vectorized kernels) -- and every consumer
chose an implementation and threaded the ``nonfinite`` policy by hand.
The :class:`DistanceBackend` protocol collapses that into one
interface; ``repeatability``, ``drift``, ``criteria``, ``paramsearch``
and ``validator`` all route through it, and the scalar module survives
only as the property-test oracle (this module is its sole production
importer).

The default :class:`DispatchBackend` picks the implementation by
shape: single-pair calls go to the scalar reference (cheapest for one
pair, and bit-identical to the paper's equations), collection calls go
to the vectorized kernels, which internally select the compiled C
merge, the Abel-summation table kernel, or the ragged row-block kernel
by batch shape and availability.

The non-finite policy is a property of the backend *instance* --
``get_backend("reject")`` / ``get_backend("mask")`` -- resolved once
per batch from measurement provenance (see
:attr:`repro.core.measurement.MeasurementBatch.nonfinite_policy`), so
``nonfinite=`` keyword arguments no longer cross module boundaries.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Protocol, runtime_checkable

import numpy as np

# The ONE production import of the scalar Eq. (2)-(4) reference; every
# other module reaches the scalar semantics through a backend.
from repro.core import distance as _scalar
from repro.core import fastdist as _fast
from repro.core.ecdf import as_sample
from repro.core.fastdist import SortedSampleBatch
from repro.core.measurement import (
    NONFINITE_MASK,
    NONFINITE_REJECT,
    MeasurementBatch,
)
from repro.exceptions import ReproError

__all__ = [
    "DistanceBackend",
    "ScalarBackend",
    "VectorizedBackend",
    "DispatchBackend",
    "get_backend",
    "default_backend",
    "backend_for",
    "cdf_distance",
    "similarity",
    "one_sided_distance",
    "one_sided_similarity",
    "pairwise_similarity_matrix",
]


@runtime_checkable
class DistanceBackend(Protocol):
    """What every distance implementation must provide.

    A backend owns its non-finite policy (``nonfinite``), so callers
    never pass one.  Collection entry points accept either raw samples
    or a batch previously returned by :meth:`prepare` -- preparing once
    and reusing the batch across kernels is the hot-path idiom.
    """

    nonfinite: str

    def clean(self, values: np.ndarray | Sequence[float]) -> np.ndarray:
        """Validate one sample under this backend's non-finite policy."""
        ...

    def prepare(self, samples: Iterable[np.ndarray | Sequence[float]], *,
                assume_sorted: bool = False) -> SortedSampleBatch:
        """Validate/sort many samples once, for reuse across kernels."""
        ...

    def cdf_distance(self, sample_a: np.ndarray | Sequence[float],
                     sample_b: np.ndarray | Sequence[float]) -> float:
        """Eq. (2) distance for one pair."""
        ...

    def similarity(self, sample_a: np.ndarray | Sequence[float],
                   sample_b: np.ndarray | Sequence[float]) -> float:
        """Eq. (3) similarity for one pair."""
        ...

    def one_sided_distance(self, observed: np.ndarray | Sequence[float],
                           reference: np.ndarray | Sequence[float], *,
                           higher_is_better: bool = True) -> float:
        """Eq. (4) one-sided distance for one pair."""
        ...

    def one_sided_similarity(self, observed: np.ndarray | Sequence[float],
                             reference: np.ndarray | Sequence[float], *,
                             higher_is_better: bool = True) -> float:
        """``1 -`` Eq. (4) for one pair."""
        ...

    def pairwise_similarities(
            self,
            samples: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch) -> np.ndarray:
        """Full symmetric Eq. (3) matrix (unit diagonal)."""
        ...

    def one_vs_many_distances(
            self,
            samples: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch,
            reference: np.ndarray | Sequence[float], *,
            signed_direction: int = 0,
            assume_sorted: bool = False) -> np.ndarray:
        """Distance of every sample to one reference (online filter)."""
        ...

    def one_vs_many_similarities(
            self,
            samples: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch,
            reference: np.ndarray | Sequence[float], *,
            signed_direction: int = 0,
            assume_sorted: bool = False) -> np.ndarray:
        """Similarity of every sample to one reference."""
        ...

    def rowwise_similarities(self, rows_a: np.ndarray,
                             rows_b: np.ndarray, *,
                             assume_sorted: bool = False) -> np.ndarray:
        """Eq. (3) similarity of row ``i`` of ``rows_a`` vs ``rows_b``."""
        ...

    def landmark_similarities(
            self,
            samples: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch,
            landmarks: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch, *,
            assume_sorted: bool = False) -> np.ndarray:
        """``(n, L)`` Eq. (3) matrix of every sample vs each landmark."""
        ...


class _BackendBase:
    """Shared policy plumbing for the concrete backends."""

    def __init__(self, nonfinite: str = NONFINITE_REJECT) -> None:
        if nonfinite not in (NONFINITE_REJECT, NONFINITE_MASK):
            raise ReproError(
                f"unknown nonfinite policy {nonfinite!r}; expected "
                f"{NONFINITE_REJECT!r} or {NONFINITE_MASK!r}")
        self.nonfinite = nonfinite

    def __repr__(self) -> str:
        return f"{type(self).__name__}(nonfinite={self.nonfinite!r})"

    def clean(self, values: np.ndarray | Sequence[float]) -> np.ndarray:
        """Validate one sample under this backend's non-finite policy."""
        return as_sample(values, nonfinite=self.nonfinite)

    def prepare(self, samples: Iterable[np.ndarray | Sequence[float]], *,
                assume_sorted: bool = False) -> SortedSampleBatch:
        """Validate/sort many samples once, for reuse across kernels."""
        if isinstance(samples, SortedSampleBatch):
            return samples
        if assume_sorted:
            return SortedSampleBatch.from_sorted(
                [np.asarray(s, dtype=float) for s in samples])
        return SortedSampleBatch.from_samples(samples,
                                              nonfinite=self.nonfinite)

    def _rows(self, rows: np.ndarray,
              assume_sorted: bool) -> SortedSampleBatch:
        """A uniform 2-D array of samples as a batch, without copies."""
        arr = np.asarray(rows, dtype=float)
        if arr.ndim == 2 and assume_sorted:
            sizes = np.full(arr.shape[0], arr.shape[1], dtype=np.intp)
            return SortedSampleBatch(arr, sizes)
        return self.prepare(list(arr), assume_sorted=assume_sorted)

    def one_sided_similarity(self, observed: np.ndarray | Sequence[float],
                             reference: np.ndarray | Sequence[float], *,
                             higher_is_better: bool = True) -> float:
        """``1 -`` Eq. (4) for one pair."""
        return 1.0 - self.one_sided_distance(  # type: ignore[attr-defined]
            observed, reference, higher_is_better=higher_is_better)

    def similarity(self, sample_a: np.ndarray | Sequence[float],
                   sample_b: np.ndarray | Sequence[float]) -> float:
        """Eq. (3) similarity for one pair."""
        return 1.0 - self.cdf_distance(  # type: ignore[attr-defined]
            sample_a, sample_b)

    def one_vs_many_similarities(
            self,
            samples: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch,
            reference: np.ndarray | Sequence[float], *,
            signed_direction: int = 0,
            assume_sorted: bool = False) -> np.ndarray:
        """Similarity of every sample to one reference."""
        return 1.0 - self.one_vs_many_distances(  # type: ignore[attr-defined]
            samples, reference, signed_direction=signed_direction,
            assume_sorted=assume_sorted)

    def rowwise_similarities(self, rows_a: np.ndarray,
                             rows_b: np.ndarray, *,
                             assume_sorted: bool = False) -> np.ndarray:
        """Eq. (3) similarity of row ``i`` of ``rows_a`` vs ``rows_b``."""
        batch_a = self._rows(rows_a, assume_sorted)
        batch_b = self._rows(rows_b, assume_sorted)
        return 1.0 - _fast.batch_gap_integrals(batch_a, batch_b)

    def landmark_similarities(
            self,
            samples: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch,
            landmarks: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch, *,
            assume_sorted: bool = False) -> np.ndarray:
        """``(n, L)`` Eq. (3) matrix of every sample vs each landmark.

        One one-vs-many pass per landmark, routed through this
        backend's own ``one_vs_many_similarities`` -- so the scalar
        backend yields the oracle landmark profile and the vectorized
        backend the production kernel, with identical semantics.
        """
        batch = self.prepare(samples, assume_sorted=assume_sorted)
        landmark_batch = self.prepare(landmarks, assume_sorted=assume_sorted)
        out = np.empty((batch.n, landmark_batch.n))
        for j in range(landmark_batch.n):
            out[:, j] = self.one_vs_many_similarities(  # type: ignore[attr-defined]
                batch, landmark_batch.row(j), assume_sorted=True)
        return out


class ScalarBackend(_BackendBase):
    """The Eq. (2)--(4) reference semantics, one scalar call per pair.

    Exact (to the paper) and cheapest for a single pair; collection
    entry points fall back to Python loops, so only the property suite
    and single-pair dispatch should use it.
    """

    def cdf_distance(self, sample_a: np.ndarray | Sequence[float],
                     sample_b: np.ndarray | Sequence[float]) -> float:
        """Eq. (2) distance for one pair."""
        return _scalar.cdf_distance(self.clean(sample_a),
                                    self.clean(sample_b))

    def one_sided_distance(self, observed: np.ndarray | Sequence[float],
                           reference: np.ndarray | Sequence[float], *,
                           higher_is_better: bool = True) -> float:
        """Eq. (4) one-sided distance for one pair."""
        return _scalar.one_sided_distance(
            self.clean(observed), self.clean(reference),
            higher_is_better=higher_is_better)

    def pairwise_similarities(
            self,
            samples: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch) -> np.ndarray:
        """Full symmetric Eq. (3) matrix via the scalar pair loop."""
        if isinstance(samples, SortedSampleBatch):
            samples = [samples.row(i) for i in range(samples.n)]
        cleaned = [self.clean(s) for s in samples]
        return _scalar.pairwise_similarity_matrix_reference(cleaned)

    def one_vs_many_distances(
            self,
            samples: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch,
            reference: np.ndarray | Sequence[float], *,
            signed_direction: int = 0,
            assume_sorted: bool = False) -> np.ndarray:
        """Distance of every sample to one reference, one pair at a time."""
        ref = (np.asarray(reference, dtype=float) if assume_sorted
               else np.sort(self.clean(reference)))
        if isinstance(samples, SortedSampleBatch):
            rows = [samples.row(i) for i in range(samples.n)]
        elif assume_sorted:
            rows = [np.asarray(s, dtype=float) for s in samples]
        else:
            rows = [np.sort(self.clean(s)) for s in samples]
        return np.asarray([
            _scalar._cdf_gap_integral(row, ref,
                                      signed_direction=signed_direction,
                                      assume_sorted=True)
            for row in rows
        ], dtype=float)


class VectorizedBackend(_BackendBase):
    """The batched :mod:`repro.core.fastdist` kernels.

    ``fastdist`` itself picks the compiled C merge, the Abel-summation
    table kernel, or the ragged row-block kernel by batch shape and
    host capability; this class only adapts the protocol surface and
    applies the instance policy.
    """

    def cdf_distance(self, sample_a: np.ndarray | Sequence[float],
                     sample_b: np.ndarray | Sequence[float]) -> float:
        """Eq. (2) distance for one pair, via the one-vs-many kernel."""
        batch = self.prepare([sample_a])
        return float(_fast.one_vs_many_distances(
            batch, self.clean(sample_b), nonfinite=self.nonfinite)[0])

    def one_sided_distance(self, observed: np.ndarray | Sequence[float],
                           reference: np.ndarray | Sequence[float], *,
                           higher_is_better: bool = True) -> float:
        """Eq. (4) one-sided distance for one pair."""
        direction = +1 if higher_is_better else -1
        batch = self.prepare([observed])
        return float(_fast.one_vs_many_distances(
            batch, self.clean(reference), signed_direction=direction,
            nonfinite=self.nonfinite)[0])

    def pairwise_similarities(
            self,
            samples: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch) -> np.ndarray:
        """Full symmetric Eq. (3) matrix (unit diagonal)."""
        batch = self.prepare(samples)
        sims = _fast.pairwise_similarities(batch)
        np.fill_diagonal(sims, 1.0)
        return sims

    def one_vs_many_distances(
            self,
            samples: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch,
            reference: np.ndarray | Sequence[float], *,
            signed_direction: int = 0,
            assume_sorted: bool = False) -> np.ndarray:
        """Distance of every sample to one reference, in one kernel call."""
        batch = self.prepare(samples, assume_sorted=assume_sorted)
        return _fast.one_vs_many_distances(
            batch, reference, signed_direction=signed_direction,
            assume_sorted=assume_sorted, nonfinite=self.nonfinite)


class DispatchBackend(_BackendBase):
    """The production backend: route each call by its shape.

    Single-pair calls go to the scalar reference -- for one pair the
    scalar path is both the cheapest and the semantics the paper
    audits against -- while collection calls go to the vectorized
    kernels.  Consumers hold exactly one of these (via
    :func:`get_backend`) and never choose an implementation again.
    """

    def __init__(self, nonfinite: str = NONFINITE_REJECT) -> None:
        super().__init__(nonfinite)
        self._scalar = ScalarBackend(nonfinite)
        self._vector = VectorizedBackend(nonfinite)

    def cdf_distance(self, sample_a: np.ndarray | Sequence[float],
                     sample_b: np.ndarray | Sequence[float]) -> float:
        """Eq. (2) for one pair (scalar reference path)."""
        return self._scalar.cdf_distance(sample_a, sample_b)

    def one_sided_distance(self, observed: np.ndarray | Sequence[float],
                           reference: np.ndarray | Sequence[float], *,
                           higher_is_better: bool = True) -> float:
        """Eq. (4) for one pair (scalar reference path)."""
        return self._scalar.one_sided_distance(
            observed, reference, higher_is_better=higher_is_better)

    def pairwise_similarities(
            self,
            samples: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch) -> np.ndarray:
        """Full Eq. (3) matrix (vectorized path)."""
        return self._vector.pairwise_similarities(samples)

    def one_vs_many_distances(
            self,
            samples: Iterable[np.ndarray | Sequence[float]]
            | SortedSampleBatch,
            reference: np.ndarray | Sequence[float], *,
            signed_direction: int = 0,
            assume_sorted: bool = False) -> np.ndarray:
        """One-vs-many distances (vectorized path)."""
        return self._vector.one_vs_many_distances(
            samples, reference, signed_direction=signed_direction,
            assume_sorted=assume_sorted)


_BACKENDS: dict[str, DispatchBackend] = {}


def get_backend(nonfinite: str = NONFINITE_REJECT) -> DispatchBackend:
    """The shared dispatch backend for one non-finite policy.

    Backends are stateless after construction, so one cached instance
    per policy serves the whole process.
    """
    backend = _BACKENDS.get(nonfinite)
    if backend is None:
        backend = DispatchBackend(nonfinite)
        _BACKENDS[nonfinite] = backend
    return backend


def default_backend() -> DispatchBackend:
    """The strict (``"reject"``) dispatch backend."""
    return get_backend(NONFINITE_REJECT)


def backend_for(batch: MeasurementBatch) -> DispatchBackend:
    """The backend matching one batch's resolved non-finite policy."""
    return get_backend(batch.nonfinite_policy)


def cdf_distance(sample_a: np.ndarray | Sequence[float],
                 sample_b: np.ndarray | Sequence[float]) -> float:
    """Eq. (2) under the default backend (public API convenience)."""
    return default_backend().cdf_distance(sample_a, sample_b)


def similarity(sample_a: np.ndarray | Sequence[float],
               sample_b: np.ndarray | Sequence[float]) -> float:
    """Eq. (3) under the default backend (public API convenience)."""
    return default_backend().similarity(sample_a, sample_b)


def one_sided_distance(observed: np.ndarray | Sequence[float],
                       reference: np.ndarray | Sequence[float], *,
                       higher_is_better: bool = True) -> float:
    """Eq. (4) under the default backend (public API convenience)."""
    return default_backend().one_sided_distance(
        observed, reference, higher_is_better=higher_is_better)


def one_sided_similarity(observed: np.ndarray | Sequence[float],
                         reference: np.ndarray | Sequence[float], *,
                         higher_is_better: bool = True) -> float:
    """``1 -`` Eq. (4) under the default backend."""
    return default_backend().one_sided_similarity(
        observed, reference, higher_is_better=higher_is_better)


def pairwise_similarity_matrix(
        samples: Iterable[np.ndarray | Sequence[float]]
        | SortedSampleBatch) -> np.ndarray:
    """Full symmetric Eq. (3) matrix under the default backend."""
    return default_backend().pairwise_similarities(samples)
