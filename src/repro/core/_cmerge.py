"""Optional compiled merge kernel for the uniform pairwise hot path.

The numpy kernels in :mod:`repro.core.fastdist` are memory-bound: every
elementwise pass over an ``(N, 2m)`` intermediate streams hundreds of
megabytes at fleet scale.  The classic two-pointer ECDF merge needs none
of those intermediates -- one register-resident walk per pair -- but it
is a scalar loop, so it only pays off compiled.

This module compiles a ~30-line C kernel at first use with whatever
``cc`` the host already has (no build system, no new dependency) and
loads it through :mod:`ctypes`.  Everything degrades gracefully: if
there is no compiler, compilation fails, or ``REPRO_NO_CKERNEL`` is
set, :func:`load` returns ``None`` and callers fall back to the pure
numpy kernels.  The C path is an *accelerator*, never a requirement.

Kernel contract (mirrors the fastdist exactness argument): rows are
sorted ascending with one ``+inf`` sentinel appended, so the merge
loop needs no bounds checks; the Eq. (2) integrand over cumulative
counts ``(ca, cb)`` is precomputed into a ``(m+1) x (m+1)`` table
(one rounding per entry, at least as accurate as the scalar
reference), and each merged segment adds ``table[ca][cb] * width``.
Tie order only permutes zero-width segments, so it cannot change the
sum.
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import tempfile

import numpy as np

__all__ = ["load", "available"]

_SOURCE = r"""
/* data: n rows of m+1 doubles; row = sorted sample, row[m] = +inf.
 * tbl:  (m+1)*(m+1) doubles; tbl[ca*(m+1)+cb] = Eq. (2) integrand
 *       after ca a-observations and cb b-observations.
 * out:  n*n doubles; unnormalized gap integrals, symmetric, diag 0.
 *
 * Indexing trick: after k merge steps ca + cb == k, so the table
 * offset tbl[ca*(m+1) + (k-ca)] collapses to tbl[ca*m + k].  The
 * sentinel makes the take-a test branch-free (inf never wins a <=
 * against a remaining real observation).
 */
void pairwise_gap_integrals(const double *data, long n, long m,
                            const double *tbl, double *out)
{
    long w = m + 1;
    long steps = 2 * m;
    for (long i = 0; i < n; ++i) {
        const double *a = data + i * w;
        for (long j = i + 1; j < n; ++j) {
            const double *b = data + j * w;
            long ca = 0, cb = 0;
            double integ = 0.0;
            double x_prev = a[0] <= b[0] ? a[0] : b[0];
            for (long k = 0; k < steps; ++k) {
                double f = tbl[ca * m + k];
                double av = a[ca], bv = b[cb];
                long take_a = (av <= bv);
                double x = take_a ? av : bv;
                ca += take_a;
                cb += 1 - take_a;
                integ += f * (x - x_prev);
                x_prev = x;
            }
            out[i * n + j] = integ;
            out[j * n + i] = integ;
        }
    }
}
"""

_lib = None
_tried = False


def _compile() -> ctypes.CDLL | None:
    compiler = (shutil.which("cc") or shutil.which("gcc")
                or shutil.which("clang"))
    if compiler is None:
        return None
    workdir = tempfile.mkdtemp(prefix="repro-cmerge-")
    atexit.register(shutil.rmtree, workdir, ignore_errors=True)
    src = os.path.join(workdir, "cmerge.c")
    lib_path = os.path.join(workdir, "cmerge.so")
    with open(src, "w", encoding="utf-8") as handle:
        handle.write(_SOURCE)
    subprocess.run(
        [compiler, "-O3", "-fPIC", "-shared", "-o", lib_path, src],
        check=True, capture_output=True, timeout=120,
    )
    lib = ctypes.CDLL(lib_path)
    double_matrix = np.ctypeslib.ndpointer(dtype=np.float64,
                                           flags="C_CONTIGUOUS")
    lib.pairwise_gap_integrals.argtypes = [
        double_matrix, ctypes.c_long, ctypes.c_long,
        double_matrix, double_matrix,
    ]
    lib.pairwise_gap_integrals.restype = None
    return lib


def load() -> ctypes.CDLL | None:
    """The compiled kernel library, or ``None`` when unavailable.

    Compilation happens once per process; failures (missing compiler,
    sandboxed tmpdir, ...) are cached as "unavailable" so the cost is
    never paid twice.  Set ``REPRO_NO_CKERNEL=1`` to force the pure
    numpy path -- the property suite uses this to test both.
    """
    global _lib, _tried
    if os.environ.get("REPRO_NO_CKERNEL"):
        return None
    if _tried:
        return _lib
    _tried = True
    try:
        _lib = _compile()
    except Exception:
        _lib = None
    return _lib


def available() -> bool:
    """Whether the compiled kernel can be used right now."""
    return load() is not None
