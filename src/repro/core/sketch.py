"""Mergeable equi-depth quantile sketches for bounded-memory windows.

The incremental criteria engine (``repro.core.incremental``) never
holds the full fleet's raw windows in its persistent state.  Each node
window is summarized by a *k-point equi-depth sketch*: the sorted
values at the midpoint quantiles ``(j + 0.5) / k`` with the true
minimum and maximum preserved.  A sketch is itself a plain sorted
sample, so every existing Eq. 2-4 kernel in :mod:`repro.core.fastdist`
evaluates sketch-to-sketch distances unchanged -- no parallel distance
implementation to keep honest.

Design properties
-----------------
* **Bounded memory** -- ``min(m, k)`` float64 values per window
  regardless of window length ``m``; a window shorter than ``k`` is
  stored exactly (the sketch is the identity, zero approximation
  error).
* **Mergeable** -- :func:`merge_sketches` pools sketches under
  count-proportional weights, which is exactly how the hybrid
  centroid pools raw survivor windows; the pooled sketch approximates
  the pooled raw sample the same way a window sketch approximates its
  window.
* **Bounded distance error** -- the ECDF of a sketch tracks the ECDF
  of its window within ``O(1/k)`` in sup norm, so the normalized gap
  integral of Eq. 2 between two sketches deviates from the exact
  distance by at most :func:`distance_bound` (property-tested against
  the scalar oracle in ``tests/test_sketch.py``).
* **Fingerprintable** -- :func:`fingerprint` hashes a window's raw
  bytes to a 64-bit value so delta re-learning can detect *which*
  windows changed without retaining them.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "DEFAULT_SKETCH_SIZE",
    "distance_bound",
    "fingerprint",
    "fingerprint_rows",
    "merge_sketches",
    "sketch_rows",
    "sketch_sorted",
]

DEFAULT_SKETCH_SIZE = 128

# Empirical-with-margin constant for the Eq. 2 distance error between
# sketch-to-sketch and raw-to-raw evaluation.  The sup-norm ECDF error
# of an equi-depth sketch is ~1.5/k; the normalized gap integral
# amplifies it by a small constant in the region where the denominator
# max(F_a, F_b) is moderate and contributes nothing where both ECDFs
# are still zero.  The hypothesis suite in tests/test_sketch.py pins
# the realized error well below this bound across uniform, normal,
# lognormal, bimodal and heavy-duplicate windows.
_BOUND_FACTOR = 4.0


def distance_bound(k: int) -> float:
    """Upper bound on ``|d_sketch - d_exact|`` for k-point sketches.

    Valid for Eq. 2 distances (and therefore Eq. 3 similarities, which
    are ``1 - d``) between any two windows summarized at sketch size
    ``k``.  Windows with at most ``k`` values are represented exactly
    and contribute no error at all; the bound is driven by the larger
    approximation of the two sides.
    """
    if k < 2:
        raise ValueError(f"sketch size must be >= 2, got {k}")
    return _BOUND_FACTOR / float(k)


def sketch_sorted(values: np.ndarray, k: int = DEFAULT_SKETCH_SIZE) -> np.ndarray:
    """Equi-depth sketch of an already-sorted 1-D window.

    Returns a sorted float64 array of ``min(len(values), k)`` points:
    the midpoint-quantile order statistics with the first and last
    entries pinned to the window's true min and max (the Eq. 2 span
    normalization depends on the extremes, so they are never smoothed
    away).  Identity when the window already fits in ``k`` points.
    """
    values = np.asarray(values, dtype=float)
    m = values.size
    if m == 0:
        raise ValueError("cannot sketch an empty window")
    if k < 2:
        raise ValueError(f"sketch size must be >= 2, got {k}")
    if m <= k:
        return values.copy()
    idx = ((np.arange(k) + 0.5) * m / k).astype(np.intp)
    out = values[np.minimum(idx, m - 1)]
    out[0] = values[0]
    out[-1] = values[-1]
    return out


def sketch_rows(data: np.ndarray, k: int = DEFAULT_SKETCH_SIZE) -> np.ndarray:
    """Vectorized :func:`sketch_sorted` over uniform sorted rows.

    ``data`` is an ``(n, m)`` array whose rows are each sorted
    ascending.  Returns an ``(n, min(m, k))`` array of per-row
    sketches -- a single fancy-index gather, which is what keeps
    full-fleet sketch construction out of Python loops.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"sketch_rows needs a 2-D array, got ndim={data.ndim}")
    n, m = data.shape
    if m == 0:
        raise ValueError("cannot sketch empty windows")
    if m <= k:
        return data.copy()
    idx = ((np.arange(k) + 0.5) * m / k).astype(np.intp)
    out = data[:, np.minimum(idx, m - 1)]
    out[:, 0] = data[:, 0]
    out[:, -1] = data[:, -1]
    return out


def merge_sketches(rows, counts, k: int = DEFAULT_SKETCH_SIZE) -> np.ndarray:
    """Pool sketches into one sketch of at most ``k`` points.

    ``rows`` is a sequence of sorted sketch arrays; ``counts[i]`` is
    the number of raw observations row ``i`` summarizes, so each of
    its points carries weight ``counts[i] / len(rows[i])``.  The merge
    is the weighted equi-depth selection over the combined point set:
    exactly the sketch of the pooled raw sample, up to the input
    sketches' own resolution.  Used by the hybrid centroid to build
    the pooled criteria from survivor sketches without touching raw
    windows.
    """
    if len(rows) == 0:
        raise ValueError("cannot merge zero sketches")
    if len(rows) != len(counts):
        raise ValueError("rows and counts must have the same length")
    if k < 2:
        raise ValueError(f"sketch size must be >= 2, got {k}")
    arrays = [np.asarray(row, dtype=float) for row in rows]
    sizes = np.fromiter((a.size for a in arrays), dtype=np.intp,
                        count=len(arrays))
    counts_arr = np.asarray(counts, dtype=float)
    if (sizes == 0).any():
        raise ValueError("cannot merge an empty sketch")
    if (counts_arr < sizes).any():
        raise ValueError("a sketch cannot claim fewer observations "
                         "than it has points")
    per_point = counts_arr / sizes
    if np.ptp(per_point) == 0.0:
        # Uniform per-point weights (the fleet-survivor case: equal
        # window lengths, equal sketch sizes): the weighted equi-depth
        # selection collapses to a plain sort + midpoint gather.
        points = np.sort(np.concatenate(arrays))
        return sketch_sorted(points, k)
    weight = np.concatenate([np.full(a.size, w)
                             for a, w in zip(arrays, per_point)])
    points = np.concatenate(arrays)
    order = np.argsort(points, kind="stable")
    points = points[order]
    weight = weight[order]
    if points.size <= k:
        return points.copy()
    cum = np.cumsum(weight)
    total = cum[-1]
    targets = (np.arange(k) + 0.5) * total / k
    idx = np.minimum(np.searchsorted(cum, targets, side="left"),
                     points.size - 1)
    out = points[idx]
    out[0] = points[0]
    out[-1] = points[-1]
    return out


def fingerprint(values: np.ndarray) -> int:
    """64-bit content hash of a raw window (order-sensitive).

    Hashes the float64 byte image, so any value edit, reorder, append
    or truncation changes the fingerprint.  Delta re-learning compares
    fingerprints against the persisted ``CriteriaState`` to find the
    ``d`` changed windows without storing the windows themselves.
    """
    arr = np.ascontiguousarray(np.asarray(values, dtype=float).ravel())
    digest = hashlib.blake2b(arr.tobytes(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def fingerprint_rows(samples) -> np.ndarray:
    """Per-window :func:`fingerprint` over a sequence of raw windows.

    Accepts either a 2-D array (uniform windows, hashed row-wise
    without per-row conversion overhead) or any sequence of 1-D
    windows.  Returns a uint64 array aligned with the input order.
    """
    if isinstance(samples, np.ndarray) and samples.ndim == 2:
        data = np.ascontiguousarray(samples, dtype=float)
        out = np.empty(data.shape[0], dtype=np.uint64)
        for i in range(data.shape[0]):
            digest = hashlib.blake2b(data[i].tobytes(), digest_size=8).digest()
            out[i] = int.from_bytes(digest, "little")
        return out
    out = np.empty(len(samples), dtype=np.uint64)
    for i, sample in enumerate(samples):
        out[i] = fingerprint(sample)
    return out
