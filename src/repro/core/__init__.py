"""ANUBIS/SuperBench core: Validator, Selector and the system facade.

Exports resolve lazily (PEP 562): importing one core submodule -- say
:mod:`repro.core.measurement` from the benchsuite layer -- no longer
pulls the whole validator stack, which is what lets lower layers
depend on the measurement spine without an import cycle.

Distance names (``cdf_distance``, ``similarity``, ``one_sided_*``,
``pairwise_similarity_matrix``) resolve to :mod:`repro.core.backend`,
the unified dispatch layer; the scalar :mod:`repro.core.distance`
module is the property-test oracle only.
"""

from __future__ import annotations

import importlib

# Export name -> defining submodule.  Resolved on first attribute
# access; ``from repro.core import X`` works unchanged.
_EXPORTS = {
    # backend (the unified distance dispatch; also the public homes of
    # the Eq. 2-4 entry points)
    "DistanceBackend": "backend",
    "ScalarBackend": "backend",
    "VectorizedBackend": "backend",
    "DispatchBackend": "backend",
    "get_backend": "backend",
    "default_backend": "backend",
    "backend_for": "backend",
    "cdf_distance": "backend",
    "similarity": "backend",
    "one_sided_distance": "backend",
    "one_sided_similarity": "backend",
    "pairwise_similarity_matrix": "backend",
    # measurement spine
    "SCHEMA_VERSION": "measurement",
    "NONFINITE_REJECT": "measurement",
    "NONFINITE_MASK": "measurement",
    "MetricWindow": "measurement",
    "MeasurementBatch": "measurement",
    "PipelineStats": "measurement",
    # criteria
    "CriteriaResult": "criteria",
    "learn_criteria": "criteria",
    # scalar oracle (kept importable for the property suite)
    "pairwise_similarity_matrix_reference": "distance",
    # drift
    "DriftReport": "drift",
    "evaluate_drift": "drift",
    # ecdf
    "Ecdf": "ecdf",
    "as_sample": "ecdf",
    # fastdist kernels
    "SortedSampleBatch": "fastdist",
    "batch_gap_integrals": "fastdist",
    "one_vs_many_distances": "fastdist",
    "one_vs_many_similarities": "fastdist",
    "pairwise_distances": "fastdist",
    "pairwise_similarities": "fastdist",
    # parallel
    "process_map": "parallel",
    "resolve_workers": "parallel",
    # persistence
    "apply_criteria_payload": "persistence",
    "criteria_payload": "persistence",
    "load_criteria": "persistence",
    "save_criteria": "persistence",
    # paramsearch
    "estimate_period": "paramsearch",
    "search_window": "paramsearch",
    "seasonal_decompose": "paramsearch",
    "tune_window_across_nodes": "paramsearch",
    # repeatability
    "criteria_repeatability": "repeatability",
    "pairwise_repeatability": "repeatability",
    # selection
    "CoverageTable": "selection",
    "SelectionResult": "selection",
    "joint_incident_probability": "selection",
    "select_benchmarks": "selection",
    "select_benchmarks_exhaustive": "selection",
    # selector
    "NodeStatus": "selector",
    "Selector": "selector",
    # system facade
    "FULL_VALIDATION_KINDS": "system",
    "Anubis": "system",
    "EventKind": "system",
    "ValidationEvent": "system",
    "ValidationOutcome": "system",
    "ValidationPlan": "system",
    # validator
    "MetricCriteria": "validator",
    "ValidationReport": "validator",
    "Validator": "validator",
    "Violation": "validator",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value  # cache: resolve each export once
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
