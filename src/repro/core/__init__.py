"""ANUBIS/SuperBench core: Validator, Selector and the system facade."""

from repro.core.criteria import CriteriaResult, learn_criteria
from repro.core.distance import (
    cdf_distance,
    one_sided_distance,
    one_sided_similarity,
    pairwise_similarity_matrix,
    pairwise_similarity_matrix_reference,
    similarity,
)
from repro.core.drift import DriftReport, evaluate_drift
from repro.core.ecdf import Ecdf, as_sample
from repro.core.fastdist import (
    SortedSampleBatch,
    batch_gap_integrals,
    one_vs_many_distances,
    one_vs_many_similarities,
    pairwise_distances,
    pairwise_similarities,
)
from repro.core.parallel import process_map, resolve_workers
from repro.core.persistence import (
    apply_criteria_payload,
    criteria_payload,
    load_criteria,
    save_criteria,
)
from repro.core.paramsearch import (
    estimate_period,
    search_window,
    seasonal_decompose,
    tune_window_across_nodes,
)
from repro.core.repeatability import criteria_repeatability, pairwise_repeatability
from repro.core.selection import (
    CoverageTable,
    SelectionResult,
    joint_incident_probability,
    select_benchmarks,
    select_benchmarks_exhaustive,
)
from repro.core.selector import NodeStatus, Selector
from repro.core.system import (
    FULL_VALIDATION_KINDS,
    Anubis,
    EventKind,
    ValidationEvent,
    ValidationOutcome,
    ValidationPlan,
)
from repro.core.validator import (
    MetricCriteria,
    ValidationReport,
    Validator,
    Violation,
)

__all__ = [
    "Anubis",
    "CoverageTable",
    "CriteriaResult",
    "DriftReport",
    "Ecdf",
    "EventKind",
    "FULL_VALIDATION_KINDS",
    "MetricCriteria",
    "NodeStatus",
    "SelectionResult",
    "Selector",
    "SortedSampleBatch",
    "ValidationEvent",
    "ValidationOutcome",
    "ValidationPlan",
    "ValidationReport",
    "Validator",
    "Violation",
    "apply_criteria_payload",
    "as_sample",
    "batch_gap_integrals",
    "cdf_distance",
    "criteria_payload",
    "criteria_repeatability",
    "estimate_period",
    "evaluate_drift",
    "joint_incident_probability",
    "learn_criteria",
    "load_criteria",
    "one_sided_distance",
    "one_sided_similarity",
    "one_vs_many_distances",
    "one_vs_many_similarities",
    "pairwise_distances",
    "pairwise_repeatability",
    "pairwise_similarities",
    "pairwise_similarity_matrix",
    "pairwise_similarity_matrix_reference",
    "process_map",
    "resolve_workers",
    "save_criteria",
    "search_window",
    "seasonal_decompose",
    "select_benchmarks",
    "select_benchmarks_exhaustive",
    "similarity",
    "tune_window_across_nodes",
]
