"""ANUBIS/SuperBench core: Validator, Selector and the system facade."""

from repro.core.criteria import CriteriaResult, learn_criteria
from repro.core.distance import (
    cdf_distance,
    one_sided_distance,
    one_sided_similarity,
    pairwise_similarity_matrix,
    similarity,
)
from repro.core.drift import DriftReport, evaluate_drift
from repro.core.ecdf import Ecdf, as_sample
from repro.core.persistence import load_criteria, save_criteria
from repro.core.paramsearch import (
    estimate_period,
    search_window,
    seasonal_decompose,
    tune_window_across_nodes,
)
from repro.core.repeatability import criteria_repeatability, pairwise_repeatability
from repro.core.selection import (
    CoverageTable,
    SelectionResult,
    joint_incident_probability,
    select_benchmarks,
    select_benchmarks_exhaustive,
)
from repro.core.selector import NodeStatus, Selector
from repro.core.system import Anubis, EventKind, ValidationEvent, ValidationOutcome
from repro.core.validator import (
    MetricCriteria,
    ValidationReport,
    Validator,
    Violation,
)

__all__ = [
    "Anubis",
    "CoverageTable",
    "CriteriaResult",
    "DriftReport",
    "Ecdf",
    "EventKind",
    "MetricCriteria",
    "NodeStatus",
    "SelectionResult",
    "Selector",
    "ValidationEvent",
    "ValidationOutcome",
    "ValidationReport",
    "Validator",
    "Violation",
    "as_sample",
    "cdf_distance",
    "criteria_repeatability",
    "estimate_period",
    "evaluate_drift",
    "joint_incident_probability",
    "learn_criteria",
    "load_criteria",
    "one_sided_distance",
    "one_sided_similarity",
    "pairwise_repeatability",
    "pairwise_similarity_matrix",
    "save_criteria",
    "search_window",
    "seasonal_decompose",
    "select_benchmarks",
    "select_benchmarks_exhaustive",
    "similarity",
    "tune_window_across_nodes",
]
