"""The Selector (paper §3.3): when to validate, with which benchmarks.

The Selector joins the two offline artifacts -- an incident-probability
model (Cox-Time) and the historical benchmark coverage table -- with
the online greedy selection of Algorithm 1:

1. for a validation event over nodes ``N`` with an expected usage
   duration (job length), query each node's incident probability
   within that duration from the survival model;
2. if the joint probability is at most ``p0``, skip validation
   entirely (saving node hours);
3. otherwise run Algorithm 1 to pick the cheapest benchmark subset
   whose historical coverage brings the residual probability below
   ``p0``.

The Selector also owns *regular validation*: nodes whose predicted
incident probability over a look-ahead window exceeds ``p0`` are due
for re-validation even without an allocation event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.selection import (
    CoverageTable,
    SelectionResult,
    select_benchmarks,
)
from repro.survival.base import SurvivalModel

__all__ = ["NodeStatus", "Selector"]


@dataclass(frozen=True)
class NodeStatus:
    """A node's observable status covariates at selection time."""

    node_id: str
    covariates: np.ndarray

    def __post_init__(self):
        object.__setattr__(
            self, "covariates", np.asarray(self.covariates, dtype=float).ravel()
        )


class Selector:
    """Benchmark selection policy bound to a model and coverage history.

    Parameters
    ----------
    model:
        Fitted incident-probability model.
    coverage:
        Historical benchmark -> identified-defect table, updated by the
        caller after every validation.
    durations:
        Benchmark name -> running time in minutes.
    p0:
        Residual incident-probability target (per validation event).
    """

    def __init__(self, model: SurvivalModel, coverage: CoverageTable,
                 durations: dict[str, float], *, p0: float = 0.10):
        if not 0.0 <= p0 < 1.0:
            raise ValueError(f"p0 must be in [0, 1), got {p0}")
        if not durations:
            raise ValueError("Selector needs benchmark durations")
        self.model = model
        self.coverage = coverage
        self.durations = dict(durations)
        self.p0 = float(p0)
        for name in self.durations:
            self.coverage.ensure_benchmark(name)

    def incident_probabilities(self, statuses: list[NodeStatus],
                               duration_hours: float) -> np.ndarray:
        """Per-node P(incident within ``duration_hours``)."""
        if duration_hours <= 0:
            raise ValueError("duration_hours must be positive")
        if not statuses:
            return np.zeros(0)
        covariates = np.vstack([s.covariates for s in statuses])
        return self.model.incident_probability(covariates, duration_hours)

    def select_for_event(self, statuses: list[NodeStatus],
                         duration_hours: float) -> SelectionResult:
        """Full Selector decision for one validation event.

        Returns a :class:`SelectionResult`; ``skipped`` means the
        joint probability was already below ``p0``.
        """
        probs = self.incident_probabilities(statuses, duration_hours)
        return select_benchmarks(probs, self.durations, self.coverage, self.p0)

    def nodes_due_for_regular_validation(self, statuses: list[NodeStatus],
                                         lookahead_hours: float = 24.0
                                         ) -> list[NodeStatus]:
        """Nodes whose individual risk over the look-ahead exceeds p0.

        Used by the periodic check that validates idle-but-risky nodes
        (workflow step 1 in §3.1).
        """
        if not statuses:
            return []
        probs = self.incident_probabilities(statuses, lookahead_hours)
        return [status for status, p in zip(statuses, probs) if p > self.p0]

    def record_validation(self, report, defect_tag=None) -> None:
        """Fold a :class:`~repro.core.validator.ValidationReport` into
        the coverage history.

        ``defect_tag`` optionally maps node ids to richer defect keys
        (e.g. ``(node, incident_index)``) so coverage distinguishes
        repeat offenders.
        """
        by_benchmark = report.violations_by_benchmark()
        for benchmark in report.benchmarks_run:
            self.coverage.ensure_benchmark(benchmark)
        for benchmark, node_ids in by_benchmark.items():
            if defect_tag is not None:
                self.coverage.record(benchmark, {defect_tag[n] for n in node_ids})
            else:
                self.coverage.record(benchmark, node_ids)
