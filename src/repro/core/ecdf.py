"""Empirical cumulative distribution functions (ECDFs).

The Validator compares benchmark results in *distribution space*
(paper §3.4): a benchmark run yields a sample -- either a single scalar
(micro-benchmarks) or a time series of step metrics (end-to-end
benchmarks) -- and all comparisons are made between the empirical CDFs
of those samples.  This module provides a small, allocation-conscious
ECDF representation used by :mod:`repro.core.distance`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidSampleError

__all__ = ["Ecdf", "as_sample"]


def as_sample(values, *, nonfinite: str = "reject") -> np.ndarray:
    """Coerce ``values`` into a validated 1-D float array.

    ``nonfinite`` selects the policy for NaN/Inf entries:

    * ``"reject"`` (default) -- raise :class:`InvalidSampleError`,
      which is how crashed or hung benchmark runs surface to the
      Validator;
    * ``"mask"`` -- drop the non-finite entries and keep the rest, the
      dirty-telemetry policy (one corrupted measurement must not void a
      whole window).  An all-non-finite sample still raises: a window
      with nothing left carries no signal at all.

    Raises :class:`InvalidSampleError` when the sample is empty (under
    either policy).
    """
    if nonfinite not in ("reject", "mask"):
        raise ValueError(f"unknown non-finite policy {nonfinite!r}")
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise InvalidSampleError("benchmark sample is empty")
    finite = np.isfinite(arr)
    if not np.all(finite):
        if nonfinite == "reject":
            raise InvalidSampleError(
                "benchmark sample contains non-finite values")
        arr = arr[finite]
        if arr.size == 0:
            raise InvalidSampleError(
                "benchmark sample is entirely non-finite")
    return arr


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF over a 1-D sample.

    Attributes
    ----------
    points:
        The sorted sample values (ascending, duplicates preserved).
    """

    points: np.ndarray

    @classmethod
    def from_sample(cls, values) -> "Ecdf":
        """Build an ECDF from raw benchmark output."""
        return cls(points=np.sort(as_sample(values)))

    @property
    def n(self) -> int:
        """Number of observations behind the ECDF."""
        return int(self.points.size)

    @property
    def support(self) -> tuple[float, float]:
        """``(min, max)`` of the observed sample."""
        return float(self.points[0]), float(self.points[-1])

    def evaluate(self, xs) -> np.ndarray:
        """Evaluate ``F(x) = P(X <= x)`` at each point of ``xs``.

        The ECDF is right-continuous: ``F(x)`` counts observations
        less than or equal to ``x``.
        """
        xs = np.asarray(xs, dtype=float)
        counts = np.searchsorted(self.points, xs, side="right")
        return counts / self.points.size

    def quantile(self, q: float) -> float:
        """Return the empirical ``q``-quantile (linear interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.points, q))

    def mean(self) -> float:
        """Arithmetic mean of the underlying sample."""
        return float(self.points.mean())
